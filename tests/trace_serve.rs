//! Trace-propagation integration: sampled request traces through a
//! live sharded cluster server.
//!
//! The acceptance invariants (DESIGN §7i):
//!
//! * every sampled query produces one complete span tree — a `server`
//!   root whose `router` child carries the route outcome, with the
//!   cache probe (and, on a cache miss, the shard engine dispatch)
//!   recorded beneath it;
//! * route tags are exact: the shard index on exact-route spans equals
//!   what the partition plan assigns to the hostname's suffix, the
//!   generation is the shard's reload count, and uncovered hostnames
//!   tag `route_miss` with no shard;
//! * the sampler is deterministic: a fixed seed and request script
//!   reproduce the same trace ids and the same span sets (modulo
//!   timestamps) across fresh server instances;
//! * dumps round-trip: the `TRACES` JSONL reparses, and converts to
//!   non-empty Chrome trace JSON and collapsed flamegraph stacks.

use hoiho_repro::cluster::{plan, ClusterBackend, ShardRouter};
use hoiho_repro::hoiho::classify::NcClass;
use hoiho_repro::hoiho::regex::Regex;
use hoiho_repro::hoiho::taxonomy::Taxonomy;
use hoiho_repro::obs::span::{self, detail, trace_id_for, Layer, ReqSpan, NO_PARENT, NO_SHARD};
use hoiho_repro::obs::Obs;
use hoiho_repro::serve::model::{EvalCounts, Model, ModelEntry};
use hoiho_repro::serve::server::Client;
use hoiho_repro::serve::ServerHandle;
use std::sync::Arc;

const SEED: u64 = 0xDECAF;
const SHARDS: u32 = 2;

/// The fixed request script. Shapes covered: a cache-miss extract hit,
/// a repeat of the same hostname (cache hit, no engine span), a hit on
/// a different suffix, an uncovered hostname (route miss), and a
/// covered hostname the regexes reject (extract miss).
const SCRIPT: [&str; 5] = [
    "as64500.example.com",
    "as64500.example.com",
    "r1.as65000.example.net",
    "nope.example.io",
    "wat.example.com",
];

fn entry(suffix: &str, rx: &str) -> ModelEntry {
    ModelEntry {
        suffix: suffix.to_string(),
        class: NcClass::Good,
        single: false,
        taxonomy: Taxonomy::Start,
        hostnames: 5,
        counts: EvalCounts::default(),
        regexes: vec![Regex::parse(rx).unwrap()],
    }
}

fn model() -> Model {
    Model {
        entries: vec![
            entry("example.com", r"^as(\d+)\.example\.com$"),
            entry("example.net", r"^r\d+\.as(\d+)\.example\.net$"),
            entry("example.org", r"^[a-z]+-as(\d+)\.example\.org$"),
        ],
    }
}

/// Starts a fresh sharded server with every-request sampling under
/// `SEED`, runs `SCRIPT`, and returns the parsed `TRACES` dump.
fn run_script() -> Vec<ReqSpan> {
    let obs = Arc::new(Obs::new());
    obs.sampler().configure(1, SEED);
    let router = Arc::new(
        ShardRouter::from_model_obs(&model(), SHARDS, 64, Arc::clone(&obs)).expect("router"),
    );
    let backend = Arc::new(ClusterBackend::new(router));
    let srv =
        ServerHandle::start_with_backend_obs("127.0.0.1:0", backend, 1, obs).expect("bind");
    let mut client = Client::connect(srv.local_addr()).expect("connect");
    for host in SCRIPT {
        let resp = client.request(host).expect("query");
        assert!(resp.starts_with(host), "echo intact: {resp:?}");
    }
    let first = client.request("TRACES").expect("traces");
    let mut jsonl = String::new();
    if first != "." {
        jsonl.push_str(&first);
        jsonl.push('\n');
        for l in client.read_until_dot().expect("traces body") {
            jsonl.push_str(&l);
            jsonl.push('\n');
        }
    }
    srv.shutdown();
    span::parse_jsonl(&jsonl).expect("TRACES dump reparses")
}

/// The spans of one trace, keyed by layer-independent queries.
struct Tree<'a> {
    spans: Vec<&'a ReqSpan>,
}

impl<'a> Tree<'a> {
    fn of(spans: &'a [ReqSpan], trace: u64) -> Tree<'a> {
        Tree { spans: spans.iter().filter(|s| s.trace == trace).collect() }
    }

    fn root(&self) -> &ReqSpan {
        let roots: Vec<_> = self.spans.iter().filter(|s| s.parent == NO_PARENT).collect();
        assert_eq!(roots.len(), 1, "exactly one root per trace");
        roots[0]
    }

    fn only(&self, layer: Layer) -> Option<&ReqSpan> {
        let hits: Vec<_> = self.spans.iter().filter(|s| s.layer == layer).collect();
        assert!(hits.len() <= 1, "at most one {} span per query trace", layer.name());
        hits.first().map(|s| **s)
    }
}

#[test]
fn sampled_queries_record_complete_span_trees_with_exact_route_tags() {
    let spans = run_script();
    let map = plan(&model(), SHARDS).expect("plan");
    let com = map.shard_of("example.com").expect("example.com assigned");
    let net = map.shard_of("example.net").expect("example.net assigned");

    // Request i is the i-th sampler slot, so its trace id is pure in
    // (seed, i) — the dump must contain exactly the script's traces
    // (the trailing TRACES request's own root closes after the dump).
    for (i, _) in SCRIPT.iter().enumerate() {
        let id = trace_id_for(SEED, i as u64);
        assert!(spans.iter().any(|s| s.trace == id), "trace for request {i} present");
    }

    // Request 0: cache miss, routed exactly, engine extract hit.
    let t = Tree::of(&spans, trace_id_for(SEED, 0));
    let root = t.root();
    assert_eq!(root.layer, Layer::Server);
    assert_eq!(root.detail, detail::QUERY);
    let router = t.only(Layer::Router).expect("router span");
    assert_eq!(router.parent, root.id, "router is a child of the server root");
    assert_eq!(router.detail, detail::EXACT);
    assert_eq!(router.shard, com, "route tag matches the partition plan");
    assert_eq!(router.generation, 0, "fresh shard generation");
    let cache = t.only(Layer::Cache).expect("cache span");
    assert_eq!(cache.parent, router.id, "cache probe is inside the router span");
    assert_eq!(cache.detail, detail::MISS);
    assert_eq!(cache.shard, NO_SHARD, "a cold probe has no route tag yet");
    let engine = t.only(Layer::Engine).expect("engine span on a cache miss");
    assert_eq!(engine.parent, router.id, "shard dispatch is inside the router span");
    assert_eq!(engine.detail, detail::EXTRACT_HIT);
    assert_eq!(engine.shard, com);
    assert_eq!(engine.generation, 0);
    assert!(root.start_ns <= router.start_ns && router.end_ns <= root.end_ns);
    assert!(router.start_ns <= engine.start_ns && engine.end_ns <= router.end_ns);

    // Request 1: same hostname again — a cache hit carrying the cached
    // route tag, and no engine dispatch.
    let t = Tree::of(&spans, trace_id_for(SEED, 1));
    let router = t.only(Layer::Router).expect("router span");
    assert_eq!(router.detail, detail::EXACT);
    assert_eq!(router.shard, com);
    let cache = t.only(Layer::Cache).expect("cache span");
    assert_eq!(cache.detail, detail::HIT);
    assert_eq!(cache.shard, com, "a hit revalidates and reports the cached route");
    assert_eq!(cache.generation, 0);
    assert!(t.only(Layer::Engine).is_none(), "a cache hit never reaches a shard engine");

    // Request 2: a different suffix lands on its own planned shard.
    let t = Tree::of(&spans, trace_id_for(SEED, 2));
    let engine = t.only(Layer::Engine).expect("engine span");
    assert_eq!(engine.detail, detail::EXTRACT_HIT);
    assert_eq!(engine.shard, net);
    assert_eq!(t.only(Layer::Router).expect("router span").shard, net);

    // Request 3: no suffix covers the hostname — route_miss, shardless,
    // no engine.
    let t = Tree::of(&spans, trace_id_for(SEED, 3));
    let router = t.only(Layer::Router).expect("router span");
    assert_eq!(router.detail, detail::ROUTE_MISS);
    assert_eq!(router.shard, NO_SHARD);
    assert!(t.only(Layer::Engine).is_none(), "a route miss dispatches to no shard");

    // Request 4: covered suffix, but every regex rejects the name.
    let t = Tree::of(&spans, trace_id_for(SEED, 4));
    let engine = t.only(Layer::Engine).expect("engine span");
    assert_eq!(engine.detail, detail::EXTRACT_MISS);
    assert_eq!(engine.shard, com);
}

/// The sampler contract: identical seed + script ⇒ identical span sets
/// across fresh servers. Timestamps and thread ids differ between
/// runs; everything the trace *means* must not.
#[test]
fn fixed_seed_reproduces_identical_span_sets() {
    let shape = |spans: &[ReqSpan]| -> Vec<(u64, u32, u32, Layer, u8, u32, u64)> {
        let mut v: Vec<_> = spans
            .iter()
            .map(|s| (s.trace, s.id, s.parent, s.layer, s.detail, s.shard, s.generation))
            .collect();
        v.sort_unstable();
        v
    };
    let a = run_script();
    let b = run_script();
    assert!(!a.is_empty(), "sampled runs record spans");
    assert_eq!(shape(&a), shape(&b), "same seed and script, same spans");
}

#[test]
fn dump_converts_to_chrome_and_collapsed_forms() {
    let spans = run_script();
    let chrome = span::to_chrome_json(&spans);
    assert!(chrome.starts_with("{\"displayTimeUnit\""), "Chrome trace document wrapper");
    assert!(chrome.contains("server:query"), "frames are layer:detail");
    assert!(chrome.contains("\"ph\":\"X\""), "complete events");
    let collapsed = span::to_collapsed(&spans);
    assert!(
        collapsed.lines().any(|l| l.starts_with("server:query;router:exact;engine:extract_hit ")),
        "collapsed stacks walk root→leaf: {collapsed:?}"
    );
    for line in collapsed.lines() {
        let (_, self_ns) = line.rsplit_once(' ').expect("stack + self-time");
        assert!(self_ns.parse::<u64>().is_ok(), "self-times are integral ns: {line:?}");
    }
}
