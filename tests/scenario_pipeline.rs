//! Scenario-subsystem integration: checked-in corpus file → compiled
//! world → learner → model → sharded cluster, asserting the PR's
//! acceptance criteria end to end — equal (file, seed) builds are
//! byte-identical, and the sharded serve tier answers byte-identically
//! to a single engine on a scenario-compiled world, so the quality
//! matrix is the same number no matter which tier computed it.

use hoiho_repro::cluster::ShardRouter;
use hoiho_repro::hoiho::learner::{learn_all, LearnConfig};
use hoiho_repro::hoiho::quality::QualityCounts;
use hoiho_repro::itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_repro::psl::PublicSuffixList;
use hoiho_repro::scenario::compile::ground_truth_rows;
use hoiho_repro::scenario::traffic::universe;
use hoiho_repro::scenario::Scenario;
use hoiho_repro::serve::{Engine, Model};
use std::path::Path;

fn corpus(name: &str) -> Scenario {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios").join(name);
    Scenario::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Train the serving model the same way `hoiho-serve scenario run`
/// does: compile the scenario, build a measurement snapshot over the
/// same world, group by suffix, learn conventions.
fn model_for(sc: &Scenario) -> (BuiltSnapshot, Model) {
    let cfg = sc.compile().expect("corpus scenario compiles");
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: format!("scenario-it-{}", sc.name),
        method: Method::BdrmapIt,
        cfg,
        alias_split: 0.3,
    });
    let groups = snap.training_set().by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    assert!(!learned.is_empty(), "{}: nothing learned", sc.name);
    let model = Model::from_learned(&learned);
    (snap, model)
}

/// Determinism across independent loads: the same corpus file builds
/// the same world, hostname for hostname.
#[test]
fn corpus_file_builds_identical_worlds_across_loads() {
    let a = corpus("paper-default.hoiho").build().expect("build a");
    let b = corpus("paper-default.hoiho").build().expect("build b");
    assert_eq!(a.digest(), b.digest(), "world digests diverge across loads");
    assert_eq!(universe(&a), universe(&b), "hostname universes diverge across loads");
    assert!(!universe(&a).is_empty(), "scenario world has no hostnames");
}

/// The acceptance criterion: on a scenario-compiled world, a sharded
/// router (2 shards) answers every universe hostname byte-identically
/// to the single engine, and the quality matrix computed through
/// either path is the same number.
#[test]
fn sharded_answers_match_single_engine_on_scenario_world() {
    let sc = corpus("paper-default.hoiho");
    let (snap, model) = model_for(&sc);
    let single = Engine::new(&model);
    let router = ShardRouter::from_model(&model, 2, 256).expect("build 2-shard router");

    let world = &snap.internet;
    let uni = universe(world);
    assert!(uni.len() > 50, "universe too small to be meaningful: {}", uni.len());
    for h in &uni {
        assert_eq!(
            router.lookup(h).asn,
            single.extract(h).asn,
            "sharded router != single engine for {h}"
        );
    }

    let rows = ground_truth_rows(world);
    let mut via_single = QualityCounts::default();
    let mut via_router = QualityCounts::default();
    for (hostname, expected) in &rows {
        via_single.observe(*expected, single.extract(hostname).asn);
        via_router.observe(*expected, router.lookup(hostname).asn);
    }
    assert_eq!(via_single, via_router, "quality matrix depends on the serving tier");
    assert!(via_single.total() > 0, "no ground-truth rows scored");
}

/// Distinct corpus scenarios must actually produce distinct worlds —
/// otherwise the matrix rows are redundant and a regression in one
/// regime could hide behind another.
#[test]
fn corpus_scenarios_produce_distinct_worlds() {
    let a = corpus("paper-default.hoiho").build().expect("build paper-default");
    let b = corpus("stale-churn.hoiho").build().expect("build stale-churn");
    assert_ne!(a.digest(), b.digest(), "different scenarios built the same world");
}
