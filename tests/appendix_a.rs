//! Appendix A: merging regexes vs regex sets.
//!
//! The paper argues NC #7 (two crisp regexes) is the right expression of
//! the Equinix convention: equivalent alternatives exist — one
//! over-merged regex (#7a) or four fragmentary regexes (#7b) — but the
//! merged form mixes structure into an `or` statement and the
//! fragmentary form splits a convention a human would write once.
//! These tests pin the behaviours that steer the learner to #7: the
//! merge phase refuses structural (dot-crossing) alternations, and the
//! greedy set construction stops once coverage stops improving.

use hoiho_repro::hoiho::eval::evaluate;
use hoiho_repro::hoiho::phases::merge::merge;
use hoiho_repro::hoiho::phases::sets::{build_sets, SetsConfig};
use hoiho_repro::hoiho::training::{Observation, SuffixTraining};
use hoiho_repro::hoiho::Regex;

fn training() -> SuffixTraining {
    let rows: &[(u32, &str)] = &[
        (109, "109.sgw.equinix.com"),
        (714, "714.os.equinix.com"),
        (714, "714.me1.equinix.com"),
        (714, "p714.sgw.equinix.com"),
        (714, "s714.sgw.equinix.com"),
        (24115, "p24115.mel.equinix.com"),
        (24115, "s24115.tyo.equinix.com"),
        (22282, "22822-2.tyo.equinix.com"),
        (24482, "24482-fr5-ix.equinix.com"),
        (54827, "54827-dc5-ix2.equinix.com"),
        (55247, "55247-ch3-ix.equinix.com"),
        (2906, "netflix.zh2.corp.eu.equinix.com"),
        (19324, "ipv4.dosarrest.eqix.equinix.com"),
        (8075, "8069.tyo.equinix.com"),
        (8075, "8074.hkg.equinix.com"),
        (55923, "45437-sy1-ix.equinix.com"),
    ];
    let obs: Vec<Observation> =
        rows.iter().map(|&(a, h)| Observation::new(h, [198, 51, 100, 8], a)).collect();
    SuffixTraining::build("equinix.com", &obs)
}

fn rx(s: &str) -> Regex {
    Regex::parse(s).unwrap()
}

#[test]
fn merge_refuses_the_7a_style_structural_alternation() {
    // #7's two regexes differ in structure (`\.[a-z\d]+` vs `-.+`), not
    // in one simple string; phase 2 must not fuse them into a #7a-style
    // `(?:\.[a-z\d]+|-.+)` monster.
    let pool = vec![
        rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
        rx(r"^(\d+)-.+\.equinix\.com$"),
    ];
    let merged = merge(&pool);
    for m in &merged {
        let s = m.to_string();
        assert!(
            !s.contains("(?:") || !s.contains('|') || s.matches("(?:").count() <= 1,
            "unexpectedly complex merge {s}"
        );
        // No alternation option may contain a dot (structure).
        for e in m.elems() {
            if let hoiho_repro::hoiho::regex::Elem::Alt(a) = e {
                assert!(a.opts.iter().all(|o| !o.contains('.')), "structural alt in {s}");
            }
        }
    }
}

#[test]
fn nc7_equivalent_to_7b_but_preferred_for_size() {
    let st = training();
    // The figure's NC #7.
    let nc7 = [
        rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
        rx(r"^(\d+)-.+\.equinix\.com$"),
    ];
    // The fragmentary NC #7b: four regexes covering the same hostnames.
    let nc7b = [
        rx(r"^(\d+)\.[a-z\d]+\.equinix\.com$"),
        rx(r"^p(\d+)\.[a-z\d]+\.equinix\.com$"),
        rx(r"^s(\d+)\.[a-z]+\.equinix\.com$"),
        rx(r"^(\d+)-.+\.equinix\.com$"),
    ];
    let c7 = evaluate(&nc7, &st.hosts);
    let c7b = evaluate(&nc7b, &st.hosts);
    assert_eq!(c7.atp(), c7b.atp(), "the two NCs are functionally equivalent here");
    assert_eq!(c7.tp, c7b.tp);

    // Set construction seeded from the same pool must come back with
    // the two-regex expression ranked above any 3+-regex equivalent.
    let pool: Vec<Regex> = nc7b.iter().chain(nc7.iter()).cloned().collect();
    let cands = build_sets(&pool, &st.hosts, &SetsConfig::default());
    let best = &cands[0];
    assert!(
        best.regexes.len() <= 2,
        "best candidate uses {} regexes: {:?}",
        best.regexes.len(),
        best.regexes.iter().map(|r| r.to_string()).collect::<Vec<_>>()
    );
    assert_eq!(best.counts.atp(), 8);
}

#[test]
fn smaller_set_preferred_at_equal_quality() {
    // §3.6's fewer-regexes preference, end to end: give the learner the
    // pieces of #7b and #7; it must not select a convention with more
    // regexes than #7 when the counts tie.
    let st = training();
    let learned = hoiho_repro::hoiho::learner::learn_suffix(
        &st,
        &hoiho_repro::hoiho::learner::LearnConfig::default(),
    )
    .expect("learned");
    assert!(learned.convention.len() <= 2);
}
