//! Serving-subsystem integration: synthetic Internet → learner → model
//! artifact on disk → extraction engine → TCP server, asserting the
//! served answers are indistinguishable from running the learner's
//! conventions directly.

use hoiho_devkit::rng::StdRng;
use hoiho_devkit::{RngExt, SeedableRng};
use hoiho_repro::cluster::{ClusterBackend, ShardRouter};
use hoiho_repro::hoiho::learner::{learn_all, LearnConfig, LearnedConvention};
use hoiho_repro::itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_repro::netsim::SimConfig;
use hoiho_repro::psl::PublicSuffixList;
use hoiho_repro::serve::server::Client;
use hoiho_repro::serve::{Engine, Model, ServerHandle};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn learn(seed: u64) -> (BuiltSnapshot, Vec<LearnedConvention>) {
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: format!("serve-it-{seed}"),
        method: Method::BdrmapIt,
        cfg: SimConfig::tiny(seed),
        alias_split: 0.3,
    });
    let groups = snap.training_set().by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    (snap, learned)
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hoiho-serve-{}-{name}", std::process::id()))
}

#[test]
fn saved_model_serves_the_learners_extractions() {
    // Accumulate over several simulated Internets so the threshold below
    // is meaningful (any single tiny snapshot yields a few dozen
    // hostnames under learned suffixes).
    let (mut checked, mut extracted) = (0usize, 0usize);
    for seed in [20807, 4242, 991] {
        let (snap, learned) = learn(seed);
        assert!(!learned.is_empty());

        // Save → load round trip through the on-disk artifact.
        let model = Model::from_learned(&learned);
        let path = scratch(&format!("pipeline-{seed}.model"));
        model.save(&path).expect("save model");
        let loaded = Model::load(&path).expect("load model");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, model, "artifact round trip changed the model");

        // Every training hostname: the served extraction must equal the
        // learner's direct extraction through its own convention.
        let engine = Engine::new(&loaded);
        let by_suffix: BTreeMap<&str, &LearnedConvention> =
            learned.iter().map(|l| (l.convention.suffix.as_str(), l)).collect();
        let groups = snap.training_set().by_suffix(&PublicSuffixList::builtin());
        for st in &groups {
            let Some(lc) = by_suffix.get(st.suffix.as_str()) else { continue };
            for h in &st.hosts {
                let direct = lc.convention.extract(&h.hostname);
                let served = engine.extract(&h.hostname);
                assert_eq!(
                    served.asn, direct,
                    "served {:?} != direct {:?} for {}",
                    served.asn, direct, h.hostname
                );
                let nc = served.nc.expect("training hostname must dispatch");
                assert_eq!(engine.conventions()[nc].suffix, st.suffix);
                checked += 1;
                extracted += usize::from(direct.is_some());
            }
        }
    }
    assert!(checked > 60, "only {checked} hostnames exercised");
    assert!(extracted > 0, "no hostname extracted at all");
}

#[test]
fn threaded_batches_match_single_threaded() {
    // Regression mirroring the learn_all threads test: batch extraction
    // must be byte-identical however the work is sharded.
    let (snap, learned) = learn(4242);
    let engine = Engine::new(&Model::from_learned(&learned));
    let hostnames: Vec<String> =
        snap.training_set().observations().iter().map(|o| o.hostname.clone()).collect();
    assert!(hostnames.len() > 100);
    let single = engine.extract_all(&hostnames, 1);
    for threads in [2, 4, 7, 32, 0] {
        assert_eq!(engine.extract_all(&hostnames, threads), single, "threads={threads}");
    }
    for (h, x) in hostnames.iter().zip(&single) {
        assert_eq!(engine.extract(h), *x);
    }
}

#[test]
fn live_tcp_server_smoke() {
    // Serve the learned model on an ephemeral port, query it over real
    // sockets, read STATS, and shut down cleanly.
    let (snap, learned) = learn(991);
    let engine = Arc::new(Engine::new(&Model::from_learned(&learned)));
    let srv = ServerHandle::start("127.0.0.1:0", Arc::clone(&engine), 2).expect("bind");
    let addr = srv.local_addr();

    let hostnames: Vec<String> = snap
        .training_set()
        .observations()
        .iter()
        .take(200)
        .map(|o| o.hostname.clone())
        .collect();
    let mut client = Client::connect(addr).expect("connect");
    let mut served_hits = 0usize;
    for h in &hostnames {
        let direct = engine.extract(h).asn;
        let over_tcp = client.query(h).expect("query");
        assert_eq!(over_tcp, direct, "TCP answer diverged for {h}");
        served_hits += usize::from(over_tcp.is_some());
    }
    assert!(served_hits > 0, "smoke test never extracted an ASN");

    let stats = client.request("STATS").expect("stats");
    assert!(stats.starts_with("stats\t"), "bad STATS response: {stats}");
    let snapshot = srv.stats();
    assert_eq!(
        (snapshot.hits + snapshot.misses) as usize,
        hostnames.len(),
        "counters disagree with queries sent"
    );
    assert_eq!(snapshot.hits as usize, served_hits);

    let bye = client.request("SHUTDOWN").expect("shutdown");
    assert_eq!(bye, "ok\tbye");
    srv.join();
}

/// Property: a pipelined stream of N query lines, written to the socket
/// split at arbitrary (RNG-driven) byte boundaries, yields exactly N
/// responses in request order, each identical to the answer a
/// one-request-at-a-time client gets. Exercises the event loop's
/// partial-line buffering at every cut point a TCP segmentation could
/// produce.
#[test]
fn pipelined_stream_split_at_arbitrary_boundaries_answers_in_order() {
    let (snap, learned) = learn(4242);
    let engine = Arc::new(Engine::new(&Model::from_learned(&learned)));
    let srv = ServerHandle::start("127.0.0.1:0", engine, 2).expect("bind");
    let addr = srv.local_addr();

    let hostnames: Vec<String> = snap
        .training_set()
        .observations()
        .iter()
        .take(60)
        .map(|o| o.hostname.clone())
        .collect();
    assert!(hostnames.len() >= 40, "sim too small for the property");

    // Reference answers over a plain one-at-a-time connection.
    let mut single = Client::connect(addr).expect("connect");
    let expected: Vec<String> =
        hostnames.iter().map(|h| single.request(h).expect("single query")).collect();

    for seed in [1u64, 7, 20807] {
        let mut rng = StdRng::seed_from_u64(seed);
        let stream: Vec<u8> =
            hostnames.iter().flat_map(|h| h.bytes().chain([b'\n'])).collect();
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.set_nodelay(true).expect("nodelay");
        let reader_sock = sock.try_clone().expect("clone");
        // Read concurrently with the fragmented writes so neither side's
        // socket buffer has to hold the whole conversation.
        let expected_ref = &expected;
        std::thread::scope(|scope| {
            let reader = scope.spawn(move || {
                let mut r = BufReader::new(reader_sock);
                let mut got = Vec::with_capacity(expected_ref.len());
                for _ in 0..expected_ref.len() {
                    let mut line = String::new();
                    r.read_line(&mut line).expect("response line");
                    got.push(line.trim_end().to_string());
                }
                got
            });
            let mut sent = 0usize;
            while sent < stream.len() {
                let n = rng.random_range(1..=9usize).min(stream.len() - sent);
                sock.write_all(&stream[sent..sent + n]).expect("fragment write");
                sent += n;
                if rng.random_bool(0.06) {
                    // An occasional real pause forces the server to see
                    // a partial line across epoll wakeups.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            let got = reader.join().expect("reader thread");
            assert_eq!(&got, expected_ref, "seed {seed}: pipelined responses diverged");
        });
    }
    srv.shutdown();
}

/// `BATCH` answers are byte-identical to one-at-a-time queries, for
/// both the single-engine backend and the sharded cluster backend —
/// and sharded batches agree with the single engine host for host.
#[test]
fn batch_matches_single_queries_on_engine_and_cluster_backends() {
    let (snap, learned) = learn(991);
    let model = Model::from_learned(&learned);
    let hostnames: Vec<String> = snap
        .training_set()
        .observations()
        .iter()
        .take(150)
        .map(|o| o.hostname.clone())
        .collect();

    let single_engine_answers;
    {
        let engine = Arc::new(Engine::new(&model));
        let srv = ServerHandle::start("127.0.0.1:0", engine, 2).expect("bind");
        let mut c = Client::connect(srv.local_addr()).expect("connect");
        let singles: Vec<String> =
            hostnames.iter().map(|h| c.request(h).expect("query")).collect();
        // Several batch sizes, including one that does not divide N.
        for size in [1usize, 7, 64, hostnames.len()] {
            let mut batched = Vec::with_capacity(hostnames.len());
            for chunk in hostnames.chunks(size) {
                batched.extend(c.batch(chunk).expect("batch"));
            }
            assert_eq!(batched, singles, "engine backend, batch size {size}");
        }
        single_engine_answers = singles;
        srv.shutdown();
    }

    for shards in [2u32, 4] {
        let router =
            Arc::new(ShardRouter::from_model(&model, shards, 256).expect("router"));
        let backend = Arc::new(ClusterBackend::new(router));
        let srv =
            ServerHandle::start_with_backend("127.0.0.1:0", backend, 2).expect("bind");
        let mut c = Client::connect(srv.local_addr()).expect("connect");
        let singles: Vec<String> =
            hostnames.iter().map(|h| c.request(h).expect("query")).collect();
        assert_eq!(
            singles, single_engine_answers,
            "shards={shards}: sharded single queries diverged from the single engine"
        );
        let mut batched = Vec::with_capacity(hostnames.len());
        for chunk in hostnames.chunks(32) {
            batched.extend(c.batch(chunk).expect("batch"));
        }
        assert_eq!(batched, singles, "shards={shards}: batch diverged");
        srv.shutdown();
    }
}
