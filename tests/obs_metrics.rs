//! METRICS exposition integration: scripted traffic against a live
//! clustered TCP server whose router and protocol layer share one
//! observability context, then a strict in-test parse of the `METRICS`
//! response proving (a) the exposition round-trips losslessly through
//! the parser, (b) histogram buckets are cumulative-monotone and end
//! at the series count, and (c) every counter accounts for exactly the
//! traffic the script sent — N queries, K cache hits, one shard
//! reload — no more, no less.

use hoiho_repro::cluster::{split, ClusterBackend, ShardRouter};
use hoiho_repro::hoiho::classify::NcClass;
use hoiho_repro::hoiho::regex::Regex;
use hoiho_repro::hoiho::taxonomy::Taxonomy;
use hoiho_repro::obs::Obs;
use hoiho_repro::serve::model::{EvalCounts, Model, ModelEntry};
use hoiho_repro::serve::server::Client;
use hoiho_repro::serve::ServerHandle;
use std::path::PathBuf;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// A strict parser for the Prometheus-style text the registry renders.
// Anything it does not recognize is a panic, not a skip — the test
// fails on any drift in the exposition format.

/// One parsed exposition line.
#[derive(Debug, Clone, PartialEq)]
enum Line {
    /// `# TYPE <name> <kind>`
    Type { name: String, kind: String },
    /// `<name>{<labels>} <integer-value>` (label block optional).
    Sample { name: String, labels: Vec<(String, String)>, value: i128 },
}

fn parse_name(s: &str) -> (String, &str) {
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    assert!(end > 0, "empty metric name in {s:?}");
    (s[..end].to_string(), &s[end..])
}

fn parse_labels(mut s: &str) -> (Vec<(String, String)>, &str) {
    let mut labels = Vec::new();
    assert!(s.starts_with('{'), "expected label block in {s:?}");
    s = &s[1..];
    loop {
        let (key, rest) = parse_name(s);
        assert!(rest.starts_with("=\""), "expected =\" after label key in {rest:?}");
        let mut value = String::new();
        let mut chars = rest[2..].char_indices();
        let tail = loop {
            let (i, c) = chars.next().expect("unterminated label value");
            match c {
                '\\' => match chars.next().expect("dangling escape").1 {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => panic!("unknown escape \\{other}"),
                },
                '"' => break &rest[2 + i + 1..],
                c => value.push(c),
            }
        };
        labels.push((key, value));
        if let Some(rest) = tail.strip_prefix(',') {
            s = rest;
        } else {
            let rest = tail.strip_prefix('}').expect("label block must close with }");
            return (labels, rest);
        }
    }
}

/// Parses a full exposition document; panics on any malformed line.
fn parse(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    for raw in text.lines() {
        if let Some(rest) = raw.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line needs a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown family kind {kind:?}"
            );
            out.push(Line::Type { name: name.to_string(), kind: kind.to_string() });
            continue;
        }
        let (name, rest) = parse_name(raw);
        let (labels, rest) =
            if rest.starts_with('{') { parse_labels(rest) } else { (Vec::new(), rest) };
        let value = rest
            .strip_prefix(' ')
            .and_then(|v| v.parse::<i128>().ok())
            .unwrap_or_else(|| panic!("bad sample value in {raw:?}"));
        out.push(Line::Sample { name, labels, value });
    }
    out
}

/// Re-renders parsed lines; with [`parse`] this must reproduce the
/// input byte for byte (the round-trip proof that parsing is lossless).
fn render(lines: &[Line]) -> String {
    let mut out = String::new();
    for line in lines {
        match line {
            Line::Type { name, kind } => out.push_str(&format!("# TYPE {name} {kind}\n")),
            Line::Sample { name, labels, value } => {
                out.push_str(name);
                if !labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let escaped: String = v
                            .chars()
                            .map(|c| match c {
                                '\\' => "\\\\".to_string(),
                                '"' => "\\\"".to_string(),
                                '\n' => "\\n".to_string(),
                                c => c.to_string(),
                            })
                            .collect();
                        out.push_str(&format!("{k}=\"{escaped}\""));
                    }
                    out.push('}');
                }
                out.push_str(&format!(" {value}\n"));
            }
        }
    }
    out
}

/// The value of the unique series `name` + exact label set (order
/// insensitive); panics when absent or ambiguous.
fn value(lines: &[Line], name: &str, labels: &[(&str, &str)]) -> i128 {
    let mut want: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    want.sort();
    let matches: Vec<i128> = lines
        .iter()
        .filter_map(|l| match l {
            Line::Sample { name: n, labels: ls, value } if n == name => {
                let mut have = ls.clone();
                have.sort();
                (have == want).then_some(*value)
            }
            _ => None,
        })
        .collect();
    assert_eq!(matches.len(), 1, "series {name}{labels:?}: found {matches:?}");
    matches[0]
}

/// Sum over every series of exactly `name` (not `name_bucket` etc.).
fn sum_series(lines: &[Line], name: &str) -> i128 {
    lines
        .iter()
        .filter_map(|l| match l {
            Line::Sample { name: n, value, .. } if n == name => Some(*value),
            _ => None,
        })
        .sum()
}

// ---------------------------------------------------------------------------

fn entry(suffix: &str, rx: &[&str]) -> ModelEntry {
    ModelEntry {
        suffix: suffix.to_string(),
        class: NcClass::Good,
        single: false,
        taxonomy: Taxonomy::Start,
        hostnames: 5,
        counts: EvalCounts::default(),
        regexes: rx.iter().map(|s| Regex::parse(s).unwrap()).collect(),
    }
}

fn model() -> Model {
    Model {
        entries: vec![
            entry("equinix.com", &[r"^[^\.]+\.[^\.]+\.as(\d+)\.equinix\.com$"]),
            entry("nts.ch", &[r"^[^\.]+\.\d+\.[a-z]+\.as(\d+)\.nts\.ch$"]),
            entry("sgw.equinix.com", &[r"^p(\d+)\.sgw\.equinix\.com$"]),
            entry("example.net", &[r"^as(\d+)\.example\.net$"]),
        ],
    }
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hoiho-obs-metrics-{}-{name}", std::process::id()))
}

/// The acceptance test: METRICS exactly accounts scripted traffic.
#[test]
fn metrics_exposition_accounts_scripted_traffic_exactly() {
    const K: i128 = 5; // scripted cache hits

    let obs = Arc::new(Obs::new());
    let (parts, _map) = split(&model(), 2).expect("split");
    let router = Arc::new(
        ShardRouter::new_obs(&parts, 128, Arc::clone(&obs)).expect("build router"),
    );
    let backend = Arc::new(ClusterBackend::new(Arc::clone(&router)));
    let srv = ServerHandle::start_with_backend_obs("127.0.0.1:0", backend, 2, obs)
        .expect("bind");
    let mut client = Client::connect(srv.local_addr()).expect("connect");

    // --- the script: N = K+2 queries, K cache hits, one shard reload.
    let hit_host = "a.b.as64500.equinix.com";
    assert_eq!(client.query(hit_host).expect("first query"), Some(64500)); // cache miss
    for _ in 0..K {
        assert_eq!(client.query(hit_host).expect("repeat query"), Some(64500)); // cache hits
    }
    assert_eq!(client.query("nothing.example.org").expect("miss query"), None); // miss route
    let shard0 = scratch("shard0.model");
    parts[0].save(&shard0).expect("save shard 0 model");
    let resp = client
        .request(&format!("RELOAD SHARD 0 {}", shard0.display()))
        .expect("reload shard");
    std::fs::remove_file(&shard0).ok();
    assert!(resp.starts_with("ok\treloaded\tshard=0\t"), "bad reload response: {resp}");
    let n_requests = K + 3; // K+2 queries + 1 reload, all before METRICS

    // --- fetch and strictly parse the exposition.
    let first = client.request("METRICS").expect("metrics");
    assert!(first.starts_with("# TYPE "), "METRICS must open with a TYPE line: {first}");
    let mut text = first;
    text.push('\n');
    for l in client.read_until_dot().expect("metrics body") {
        text.push_str(&l);
        text.push('\n');
    }
    let lines = parse(&text);
    assert_eq!(render(&lines), text, "parser must round-trip the exposition losslessly");

    // --- query counters: 6 hits (first + K repeats), 1 miss.
    assert_eq!(
        value(&lines, "hoiho_requests_total", &[("verb", "query"), ("outcome", "hit")]),
        K + 1
    );
    assert_eq!(
        value(&lines, "hoiho_requests_total", &[("verb", "query"), ("outcome", "miss")]),
        1
    );
    assert_eq!(
        value(&lines, "hoiho_requests_total", &[("verb", "reload"), ("outcome", "ok")]),
        1
    );
    // The METRICS request itself is counted after its response renders,
    // so this first exposition must not contain a metrics-verb series.
    assert_eq!(
        sum_series(&lines, "hoiho_requests_total"),
        n_requests,
        "request series must sum to exactly the pre-METRICS traffic"
    );

    // --- per-shard cache counters: K hits on the hit host's shard,
    // 2 misses total of which 1 on the shard="none" (uncovered) series.
    assert_eq!(sum_series(&lines, "hoiho_cache_hits_total"), K);
    assert_eq!(sum_series(&lines, "hoiho_cache_misses_total"), 2);
    assert_eq!(value(&lines, "hoiho_cache_misses_total", &[("shard", "none")]), 1);
    assert_eq!(value(&lines, "hoiho_cache_hits_total", &[("shard", "none")]), 0);
    assert_eq!(sum_series(&lines, "hoiho_cache_evictions_total"), 0);
    assert_eq!(sum_series(&lines, "hoiho_cache_stale_total"), 0);

    // --- the one shard reload: counter, generation gauge, suffix gauge.
    assert_eq!(value(&lines, "hoiho_shard_reloads_total", &[("shard", "0")]), 1);
    assert_eq!(value(&lines, "hoiho_shard_reloads_total", &[("shard", "1")]), 0);
    assert_eq!(value(&lines, "hoiho_shard_generation", &[("shard", "0")]), 1);
    assert_eq!(value(&lines, "hoiho_shard_generation", &[("shard", "1")]), 0);
    assert_eq!(
        value(&lines, "hoiho_shard_suffixes", &[("shard", "0")]),
        parts[0].entries.len() as i128
    );
    // Engine dispatches (cache hits never reach a shard engine): one
    // per cache miss.
    assert_eq!(sum_series(&lines, "hoiho_shard_queries_total"), 1);

    // --- connection + latency accounting.
    assert_eq!(sum_series(&lines, "hoiho_connections_total"), 1);
    assert_eq!(sum_series(&lines, "hoiho_request_latency_ns_count"), n_requests);

    // --- histogram invariants: buckets cumulative-monotone, the +Inf
    // bucket equal to the count.
    let buckets: Vec<(Vec<(String, String)>, i128)> = lines
        .iter()
        .filter_map(|l| match l {
            Line::Sample { name, labels, value } if name == "hoiho_request_latency_ns_bucket" => {
                Some((labels.clone(), *value))
            }
            _ => None,
        })
        .collect();
    assert!(!buckets.is_empty(), "latency histogram has no buckets");
    let mut prev = 0i128;
    for (labels, cum) in &buckets {
        assert!(*cum >= prev, "bucket counts must be cumulative-monotone: {buckets:?}");
        prev = *cum;
        assert!(
            labels.iter().any(|(k, _)| k == "le"),
            "every bucket carries an le label: {labels:?}"
        );
    }
    let (inf_labels, inf) = buckets.last().unwrap();
    assert!(
        inf_labels.iter().any(|(k, v)| k == "le" && v == "+Inf"),
        "last bucket must be +Inf: {inf_labels:?}"
    );
    assert_eq!(*inf, n_requests, "+Inf bucket must equal the series count");
    assert!(
        value(&lines, "hoiho_request_latency_ns_sum", &[])
            >= value(&lines, "hoiho_request_latency_ns_max", &[]),
        "sum of observations is at least the max"
    );

    // --- a second METRICS now shows the first one (self-exclusion).
    let first = client.request("METRICS").expect("metrics again");
    let mut text2 = first;
    text2.push('\n');
    for l in client.read_until_dot().expect("metrics body again") {
        text2.push_str(&l);
        text2.push('\n');
    }
    let lines2 = parse(&text2);
    assert_eq!(
        value(&lines2, "hoiho_requests_total", &[("verb", "metrics"), ("outcome", "ok")]),
        1
    );

    // --- EVENTS carries the reload trail (loopback client is admin).
    let first = client.request("EVENTS 16").expect("events");
    let mut events = vec![first];
    events.extend(client.read_until_dot().expect("events body"));
    assert!(
        events.iter().any(|l| l.contains("\"kind\":\"shard_reload\"")),
        "event log must record the shard reload: {events:?}"
    );

    let bye = client.request("SHUTDOWN").expect("shutdown");
    assert_eq!(bye, "ok\tbye");
    srv.join();
}

/// METRICS under fire: one thread hammers per-shard reloads while
/// another repeatedly fetches and strictly parses the exposition.
/// Every response must parse and round-trip losslessly (no torn or
/// interleaved documents), and the request counter must be monotone
/// across fetches — a reload mid-render must never produce a snapshot
/// that goes backwards.
#[test]
fn metrics_stays_parseable_and_monotone_under_concurrent_reloads() {
    let obs = Arc::new(Obs::new());
    let (parts, _map) = split(&model(), 2).expect("split");
    let router = Arc::new(
        ShardRouter::new_obs(&parts, 128, Arc::clone(&obs)).expect("build router"),
    );
    let backend = Arc::new(ClusterBackend::new(Arc::clone(&router)));
    let srv = ServerHandle::start_with_backend_obs("127.0.0.1:0", backend, 2, obs)
        .expect("bind");

    let shard_paths: Vec<PathBuf> = parts
        .iter()
        .enumerate()
        .map(|(k, p)| {
            let path = scratch(&format!("reload-storm-shard{k}.model"));
            p.save(&path).expect("save shard model");
            path
        })
        .collect();

    const RELOADS: usize = 40;
    const FETCHES: usize = 25;
    let addr = srv.local_addr();
    std::thread::scope(|scope| {
        let reloader = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("reloader connect");
            for i in 0..RELOADS {
                let k = i % shard_paths.len();
                let resp = client
                    .request(&format!("RELOAD SHARD {k} {}", shard_paths[k].display()))
                    .expect("reload under storm");
                assert!(
                    resp.starts_with(&format!("ok\treloaded\tshard={k}\t")),
                    "bad reload response under storm: {resp}"
                );
            }
        });

        let mut client = Client::connect(addr).expect("metrics connect");
        let mut prev_requests = 0i128;
        for i in 0..FETCHES {
            // Interleave a little query traffic so counters move.
            client.query("a.b.as64500.equinix.com").expect("query under storm");
            let first = client.request("METRICS").expect("metrics under storm");
            assert!(
                first.starts_with("# TYPE "),
                "fetch {i}: METRICS must open with a TYPE line: {first}"
            );
            let mut text = first;
            text.push('\n');
            for l in client.read_until_dot().expect("metrics body under storm") {
                text.push_str(&l);
                text.push('\n');
            }
            let lines = parse(&text);
            assert_eq!(
                render(&lines),
                text,
                "fetch {i}: exposition must round-trip losslessly mid-reload"
            );
            let requests = sum_series(&lines, "hoiho_requests_total");
            assert!(
                requests >= prev_requests,
                "fetch {i}: request counter went backwards ({prev_requests} -> {requests})"
            );
            prev_requests = requests;
        }
        reloader.join().expect("reloader thread panicked");
    });

    // After the storm: reload counters sum to exactly the scripted
    // total and the server still answers.
    let mut client = Client::connect(addr).expect("post-storm connect");
    let first = client.request("METRICS").expect("post-storm metrics");
    let mut text = first;
    text.push('\n');
    for l in client.read_until_dot().expect("post-storm metrics body") {
        text.push_str(&l);
        text.push('\n');
    }
    let lines = parse(&text);
    assert_eq!(
        sum_series(&lines, "hoiho_shard_reloads_total"),
        RELOADS as i128,
        "every reload in the storm must be counted exactly once"
    );
    assert_eq!(
        client.query("a.b.as64500.equinix.com").expect("post-storm query"),
        Some(64500)
    );

    for p in &shard_paths {
        std::fs::remove_file(p).ok();
    }
    let bye = client.request("SHUTDOWN").expect("shutdown");
    assert_eq!(bye, "ok\tbye");
    srv.join();
}
