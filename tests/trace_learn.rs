//! Learner tracing integration: the `hoiho learn --trace` pipeline —
//! synthetic Internet → training set → traced learner → Chrome
//! trace-event JSON — validated by a strict in-test JSON parse. Every
//! learned suffix must contribute exactly one complete-duration span
//! (`ph:"X"`) per learner phase (§3.2 generate, §3.3 merge, §3.4
//! classes, §3.5 sets, §3.6 select), nested inside its `learn_suffix`
//! span by time containment, and the whole document must parse as JSON
//! with the `traceEvents` shape `chrome://tracing` / Perfetto load.

use hoiho_repro::hoiho::learner::{learn_all_traced, LearnConfig};
use hoiho_repro::hoiho::training::{Observation, TrainingSet};
use hoiho_repro::netsim::{Internet, SimConfig};
use hoiho_repro::obs::Tracer;
use hoiho_repro::psl::PublicSuffixList;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// A small strict JSON parser (objects, arrays, strings, numbers — the
// grammar subset trace documents use). Any malformed input panics.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Object(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key:?}")),
            other => panic!("expected object with {key:?}, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::String(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn as_f64(&self) -> f64 {
        match self {
            Json::Number(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_array(&self) -> &[Json] {
        match self {
            Json::Array(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON document");
        v
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        assert_eq!(self.bytes.get(self.pos), Some(&b), "expected {:?} at {}", b as char, self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        self.skip_ws();
        match *self.bytes.get(self.pos).expect("unexpected end of JSON") {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::String(self.string()),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Json::Object(map);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.skip_ws();
            self.expect(b':');
            let prev = map.insert(key.clone(), self.value());
            assert!(prev.is_none(), "duplicate key {key:?}");
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Json::Object(map);
                }
                other => panic!("expected , or }} in object, got {other:?}"),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Json::Array(items);
        }
        loop {
            items.push(self.value());
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Json::Array(items);
                }
                other => panic!("expected , or ] in array, got {other:?}"),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.pos).expect("unterminated string") {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos).expect("dangling escape") {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .expect("bad \\u escape");
                            let cp = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            out.push(char::from_u32(cp).expect("bad \\u codepoint"));
                            self.pos += 4;
                        }
                        other => panic!("unknown escape \\{}", other as char),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("invalid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Number(s.parse().unwrap_or_else(|_| panic!("bad number {s:?}")))
    }
}

// ---------------------------------------------------------------------------

/// The `hoiho learn --sim` training path: every named interface of the
/// tiny synthetic Internet contributes ground truth.
fn sim_training(seed: u64) -> TrainingSet {
    let internet = Internet::generate(&SimConfig::tiny(seed));
    let mut ts = TrainingSet::new();
    for (iface, owner) in internet.named_interfaces() {
        let hostname = iface.hostname.as_deref().expect("named interface has a hostname");
        ts.push(Observation::new(hostname, iface.addr.to_be_bytes(), owner));
    }
    ts
}

const PHASES: [&str; 5] = ["generate", "merge", "classes", "sets", "select"];

/// The acceptance test: a traced `--sim` learner run emits valid
/// Chrome trace JSON with one span per learner phase per learned
/// suffix.
#[test]
fn traced_sim_learn_emits_valid_chrome_trace_json() {
    let groups = sim_training(7).by_suffix(&PublicSuffixList::builtin());
    let tracer = Tracer::new();
    let learned = learn_all_traced(&groups, &LearnConfig::default(), Some(&tracer));
    assert!(!learned.is_empty(), "the seed must learn at least one convention");

    let doc = Parser::parse(&tracer.to_chrome_json());
    let events = doc.get("traceEvents").as_array();
    assert!(!events.is_empty(), "trace must contain events");

    // Shape: every event is a complete-duration span with the fields
    // chrome://tracing requires, tagged with its suffix.
    // (suffix, name) → (ts, dur) for the containment check below.
    let mut spans: BTreeMap<(String, String), (f64, f64)> = BTreeMap::new();
    let mut count: BTreeMap<(String, String), usize> = BTreeMap::new();
    for e in events {
        assert_eq!(e.get("ph").as_str(), "X", "only complete-duration events");
        assert_eq!(e.get("cat").as_str(), "hoiho");
        let (ts, dur) = (e.get("ts").as_f64(), e.get("dur").as_f64());
        assert!(ts >= 0.0 && dur >= 0.0, "ts/dur must be nonnegative");
        e.get("pid").as_f64();
        e.get("tid").as_f64();
        let name = e.get("name").as_str().to_string();
        let suffix = e.get("args").get("suffix").as_str().to_string();
        let key = (suffix, name);
        *count.entry(key.clone()).or_insert(0) += 1;
        spans.insert(key, (ts, dur));
    }

    // Accounting: exactly one span per phase per learned suffix, each
    // contained in that suffix's learn_suffix span.
    for l in &learned {
        let suffix = &l.convention.suffix;
        let outer_key = ("learn_suffix".to_string(), suffix.clone());
        let (outer_ts, outer_dur) = spans
            .get(&(suffix.clone(), "learn_suffix".to_string()))
            .unwrap_or_else(|| panic!("no learn_suffix span for {suffix}: {outer_key:?}"));
        for phase in PHASES {
            let key = (suffix.clone(), phase.to_string());
            assert_eq!(
                count.get(&key).copied().unwrap_or(0),
                1,
                "suffix {suffix} must have exactly one {phase} span"
            );
            let (ts, dur) = spans[&key];
            assert!(
                *outer_ts <= ts && ts + dur <= outer_ts + outer_dur + 1e-6,
                "{phase} span of {suffix} must nest inside learn_suffix \
                 ({ts}+{dur} vs {outer_ts}+{outer_dur})"
            );
        }
    }
    let phase_spans = events
        .iter()
        .filter(|e| PHASES.contains(&e.get("name").as_str()))
        .count();
    assert_eq!(
        phase_spans,
        PHASES.len() * learned.len(),
        "phase spans must exist only for suffixes that completed the pipeline"
    );
}
