//! Cluster-tier integration: synthetic Internet → learner → model
//! artifact → shard planner → shard router, asserting the sharded
//! cluster's answers are indistinguishable from a single engine and
//! from the learner's own conventions, for every shard count — then
//! the same invariant over a live TCP cluster server with per-shard
//! reload and `STATS CLUSTER`.

use hoiho_repro::cluster::{
    shard_file_name, split, ClusterBackend, ShardMap, ShardRouter, SHARDMAP_FILE_NAME,
};
use hoiho_repro::hoiho::learner::{learn_all, LearnConfig, LearnedConvention};
use hoiho_repro::itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_repro::netsim::SimConfig;
use hoiho_repro::psl::PublicSuffixList;
use hoiho_repro::serve::server::Client;
use hoiho_repro::serve::{Engine, Model, ServerHandle};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

fn learn(seed: u64) -> (BuiltSnapshot, Vec<LearnedConvention>) {
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: format!("cluster-it-{seed}"),
        method: Method::BdrmapIt,
        cfg: SimConfig::tiny(seed),
        alias_split: 0.3,
    });
    let groups = snap.training_set().by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    (snap, learned)
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hoiho-cluster-{}-{name}", std::process::id()))
}

/// The acceptance invariant: for every hostname in the sim-trained
/// corpus, shard(N)+router extraction == single-engine extraction ==
/// the learner's direct extraction, for N ∈ {1, 2, 4} — with the
/// shard artifacts and manifest round-tripped through disk.
#[test]
fn sharded_cluster_matches_single_engine_and_learner() {
    let (snap, learned) = learn(20807);
    assert!(!learned.is_empty());
    let model = Model::from_learned(&learned);
    let single = Engine::new(&model);
    let by_suffix: BTreeMap<&str, &LearnedConvention> =
        learned.iter().map(|l| (l.convention.suffix.as_str(), l)).collect();
    let groups = snap.training_set().by_suffix(&PublicSuffixList::builtin());

    for shards in [1u32, 2, 4] {
        // Split through the disk artifacts, the way `hoiho-serve
        // shard` + a clustered server would consume them.
        let dir = scratch(&format!("pipeline-{shards}"));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let (parts, map) = split(&model, shards).expect("split");
        for (k, p) in parts.iter().enumerate() {
            p.save(dir.join(shard_file_name(k as u32))).expect("save shard");
        }
        map.save(dir.join(SHARDMAP_FILE_NAME)).expect("save manifest");

        let reloaded_map = ShardMap::load(dir.join(SHARDMAP_FILE_NAME)).expect("load manifest");
        assert_eq!(reloaded_map, map, "manifest disk round trip changed the plan");
        let reloaded: Vec<Model> = (0..shards)
            .map(|k| Model::load(dir.join(shard_file_name(k))).expect("load shard"))
            .collect();
        assert_eq!(reloaded, parts, "shard artifact disk round trip changed a model");
        std::fs::remove_dir_all(&dir).ok();

        let router = ShardRouter::new(&reloaded, 256).expect("build router");
        let (mut checked, mut extracted) = (0usize, 0usize);
        for st in &groups {
            let lc = by_suffix.get(st.suffix.as_str());
            for h in &st.hosts {
                let routed = router.lookup(&h.hostname);
                let direct = single.extract(&h.hostname);
                assert_eq!(
                    routed.asn, direct.asn,
                    "router(shards={shards}) != single engine for {}",
                    h.hostname
                );
                if let Some(lc) = lc {
                    assert_eq!(
                        routed.asn,
                        lc.convention.extract(&h.hostname),
                        "router(shards={shards}) != learner for {}",
                        h.hostname
                    );
                    checked += 1;
                    extracted += usize::from(routed.asn.is_some());
                }
                // Second pass through the cache must agree too.
                assert_eq!(router.lookup(&h.hostname), routed, "cached re-read diverged");
            }
        }
        assert!(checked > 20, "only {checked} hostnames exercised (shards={shards})");
        assert!(extracted > 0, "no hostname extracted at all (shards={shards})");
        assert!(router.cache_stats().hits > 0, "cache never hit (shards={shards})");
    }
}

/// A live clustered TCP server: queries answered identically to the
/// local router, `STATS CLUSTER` reports shard and cache counters,
/// `RELOAD SHARD` hot-swaps one shard over the wire, `SHUTDOWN` works.
#[test]
fn live_tcp_cluster_server_smoke() {
    let (snap, learned) = learn(991);
    let model = Model::from_learned(&learned);
    let single = Engine::new(&model);
    let router = Arc::new(ShardRouter::from_model(&model, 2, 128).expect("build router"));
    let backend = Arc::new(ClusterBackend::new(Arc::clone(&router)));
    let srv = ServerHandle::start_with_backend("127.0.0.1:0", backend, 2).expect("bind");
    let addr = srv.local_addr();

    let hostnames: Vec<String> = snap
        .training_set()
        .observations()
        .iter()
        .take(150)
        .map(|o| o.hostname.clone())
        .collect();
    let mut client = Client::connect(addr).expect("connect");
    let mut served_hits = 0usize;
    for h in &hostnames {
        let over_tcp = client.query(h).expect("query");
        assert_eq!(over_tcp, single.extract(h).asn, "TCP cluster answer diverged for {h}");
        served_hits += usize::from(over_tcp.is_some());
    }
    assert!(served_hits > 0, "smoke test never extracted an ASN");
    // Repeat a few to generate cache hits visible in STATS CLUSTER.
    for h in hostnames.iter().take(10) {
        client.query(h).expect("repeat query");
    }

    let first = client.request("STATS CLUSTER").expect("stats cluster");
    assert!(first.starts_with("shard\t0\t"), "bad STATS CLUSTER first line: {first}");
    let rest = client.read_until_dot().expect("stats body");
    assert!(rest.iter().any(|l| l.starts_with("shard\t1\t")), "missing shard 1: {rest:?}");
    let cache_line = rest
        .iter()
        .find(|l| l.starts_with("cache\t"))
        .unwrap_or_else(|| panic!("missing cache line: {rest:?}"));
    assert!(cache_line.contains("capacity=128"), "bad cache line: {cache_line}");
    let hits: u64 = cache_line
        .split('\t')
        .find_map(|f| f.strip_prefix("hits="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("unparseable cache line: {cache_line}"));
    assert!(hits >= 10, "repeated queries produced only {hits} cache hits");

    // Hot-reload shard 0 over the wire with an emptied model: its
    // former suffixes stop answering; the other shard is untouched.
    let empty_path = scratch("empty.model");
    Model::default().save(&empty_path).expect("save empty model");
    let resp = client
        .request(&format!("RELOAD SHARD 0 {}", empty_path.display()))
        .expect("reload shard");
    std::fs::remove_file(&empty_path).ok();
    assert_eq!(resp, "ok\treloaded\tshard=0\tconventions=0", "bad reload response: {resp}");
    for h in &hostnames {
        let after = client.query(h).expect("post-reload query");
        assert_eq!(after, router.lookup(h).asn, "post-reload TCP diverged for {h}");
    }

    // A malformed cluster reload is refused without killing the server.
    let bad = client.request("RELOAD /nonexistent.model").expect("bad reload");
    assert!(bad.starts_with("err\t"), "bad reload accepted: {bad}");

    let bye = client.request("SHUTDOWN").expect("shutdown");
    assert_eq!(bye, "ok\tbye");
    srv.join();
}
