//! Figures 2 and 3: the supplier-own-ASN convention and the
//! apparent-ASN edge cases, end to end through the learner.

use hoiho_repro::hoiho::apparent::{congruence, Congruence};
use hoiho_repro::hoiho::classify::NcClass;
use hoiho_repro::hoiho::learner::{learn_all, LearnConfig};
use hoiho_repro::hoiho::training::{Observation, TrainingSet};
use hoiho_repro::psl::PublicSuffixList;

#[test]
fn figure2_nts_ch_learns_a_single_unusable_convention() {
    // The nts.ch operator embeds its own AS15576 in every hostname,
    // including those supplied to customer routers. The learner must
    // produce a convention, but one that extracts a single unique ASN —
    // never usable for neighbor inference.
    let rows: &[(u32, &str)] = &[
        (15576, "ge0-2.01.p.ost.ch.as15576.nts.ch"),
        (15576, "lo1000.01.lns.czh.ch.as15576.nts.ch"),
        (15576, "te0-0-24.01.p.bre.ch.as15576.nts.ch"),
        (44879, "01.r.cba.ch.bl.cust.as15576.nts.ch"),
        (51768, "02.r.czh.ch.sda.cust.as15576.nts.ch"),
        (206616, "01.r.cbs.ch.wwc.cust.as15576.nts.ch"),
    ];
    let mut ts = TrainingSet::new();
    for &(asn, h) in rows {
        ts.push(Observation::new(h, [203, 0, 113, 5], asn));
    }
    let groups = ts.by_suffix(&PublicSuffixList::builtin());
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].suffix, "nts.ch");
    let learned = learn_all(&groups, &LearnConfig::default());
    assert_eq!(learned.len(), 1);
    let lc = &learned[0];
    assert!(lc.single, "nts.ch must be flagged single");
    assert!(!lc.class.usable(), "single-ASN conventions are not usable");
    assert_eq!(lc.counts.unique_extracted.len(), 1);
    assert!(lc.counts.unique_extracted.contains(&15576));
    // And the convention does extract 15576 from the operator's shapes.
    assert_eq!(lc.convention.extract("xe-9.02.p.zrh.ch.as15576.nts.ch"), Some(15576));
}

#[test]
fn figure3a_typo_rules() {
    // Rows of Figure 3a with the rule outcomes §3.1 prescribes.
    let cases: &[(&str, u32, Congruence)] = &[
        // Typos / coincidences at distance one with matching first+last:
        ("24940", 20940, Congruence::Typo),
        ("202073", 205073, Congruence::Typo),
        ("20732", 207032, Congruence::Typo),
        // Coincidence rejected: last digits differ.
        ("605", 6057, Congruence::No),
        // Plain agreement.
        ("701", 701, Congruence::Exact),
    ];
    for &(extracted, training, want) in cases {
        assert_eq!(congruence(extracted, training), want, "{extracted} vs {training}");
    }
}

#[test]
fn figure3b_ip_fragments_never_train_conventions() {
    // Hostnames deriving from the interface address must not give the
    // learner an apparent ASN, even when an octet equals the training
    // ASN. With only such hostnames, nothing is learned.
    let rows: &[(u32, [u8; 4], &str)] = &[
        (122, [50, 236, 216, 122], "50-236-216-122-static.hfc.combusiness.net"),
        (209, [209, 201, 58, 109], "209-201-58-109.dia.stat.combusiness.net"),
        (209, [209, 206, 252, 105], "209-206-252-105.stat.combusiness.net"),
    ];
    let mut ts = TrainingSet::new();
    for &(asn, addr, h) in rows {
        ts.push(Observation::new(h, addr, asn));
    }
    let groups = ts.by_suffix(&PublicSuffixList::builtin());
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].apparent_count(), 0, "IP fragments must not look like ASNs");
    let learned = learn_all(&groups, &LearnConfig::default());
    assert!(learned.is_empty(), "no convention should be learned from IP-derived names");
}

#[test]
fn figure1_style_neighbor_annotations_learned_usable() {
    // gtt.net-style: the supplier annotates each neighbor ASN.
    let rows: &[(u32, &str)] = &[
        (13335, "ip4.gtt-like.net.as13335.any"),
        (3356, "xe-11-0-0.cr2-phx2.ip4.gtt-like.net"),
    ];
    let _ = rows; // (illustrative rows above; the learnable set below)
    let mut ts = TrainingSet::new();
    for i in 0..6u32 {
        let asn = 50000 + i * 17;
        ts.push(Observation::new(
            &format!("as{asn}-xe-{i}.lax{}.gtt-like.net", i % 3),
            [198, 51, 100, i as u8 + 1],
            asn,
        ));
    }
    let groups = ts.by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    assert_eq!(learned.len(), 1);
    let lc = &learned[0];
    assert_eq!(lc.class, NcClass::Good);
    assert!(!lc.single);
    assert_eq!(lc.convention.extract("as64999-xe-9.lax1.gtt-like.net"), Some(64999));
}
