//! Fault-injection integration: seeded `ChaosConn` clients against a
//! live sharded cluster server.
//!
//! The acceptance invariant: under injected faults (fragmentation,
//! delays, garbage writes, truncation, drops) the run always
//! terminates, every failure is *counted* rather than fatal, and every
//! response that survives intact — echoes the hostname that was asked
//! — is byte-identical to what a single un-sharded engine answers for
//! that hostname. Chaos may lose or mangle requests; it must never
//! change an answer. A zero-rate control run proves the chaos path
//! itself is transparent: no errors, every answer verified.

use hoiho_repro::cluster::{ClusterBackend, ShardRouter};
use hoiho_repro::hoiho::classify::NcClass;
use hoiho_repro::hoiho::regex::Regex;
use hoiho_repro::hoiho::taxonomy::Taxonomy;
use hoiho_repro::serve::model::{EvalCounts, Model, ModelEntry};
use hoiho_repro::serve::server::{Backend, Client};
use hoiho_repro::serve::{ChaosConfig, Engine, EngineBackend, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

fn entry(suffix: &str, rx: &[&str]) -> ModelEntry {
    ModelEntry {
        suffix: suffix.to_string(),
        class: NcClass::Good,
        single: false,
        taxonomy: Taxonomy::Start,
        hostnames: 5,
        counts: EvalCounts::default(),
        regexes: rx.iter().map(|s| Regex::parse(s).unwrap()).collect(),
    }
}

fn model() -> Model {
    Model {
        entries: vec![
            entry("example.com", &[r"^as(\d+)\.example\.com$"]),
            entry("example.net", &[r"^r\d+\.as(\d+)\.example\.net$"]),
            entry("example.org", &[r"^[a-z]+-as(\d+)\.example\.org$"]),
        ],
    }
}

/// The hostname stream: hits across all three suffixes, misses, and a
/// non-convention name.
fn hosts() -> Vec<String> {
    let mut h = Vec::new();
    for i in 0..10u32 {
        h.push(format!("as{}.example.com", 64500 + i));
        h.push(format!("r1.as{}.example.net", 65000 + i));
        h.push(format!("core-as{}.example.org", 64496 + i));
        h.push(format!("nope{i}.example.io"));
    }
    h
}

/// Splits a query response into `(echoed request, answer fields)`.
/// The answer is always the last three tab fields (asn, suffix,
/// class); the echo is everything before — chaos can splice tabs into
/// a request, so the echo itself may contain them. `None` for lines
/// that are not query answers (`err\t...`).
fn split_response(resp: &str) -> Option<(&str, String)> {
    let mut it = resp.rsplitn(4, '\t');
    let class = it.next()?;
    let suffix = it.next()?;
    let asn = it.next()?;
    let echoed = it.next()?;
    Some((echoed, format!("{asn}\t{suffix}\t{class}")))
}

/// One chaos-client run: `requests` queries through a seeded faulty
/// connection. Every response line that parses as a query answer is
/// checked byte-for-byte against the single-engine reference *for the
/// request the server actually received* (chaos may have mangled it in
/// flight — the answer to the mangled request must still match).
/// A response answering something other than the hostname asked, or
/// any I/O failure, is counted and the connection is rebuilt.
/// Returns (verified, errors).
fn run_chaos_conn(
    addr: std::net::SocketAddr,
    reference: &EngineBackend,
    rate: f64,
    seed: u64,
    requests: usize,
) -> (u64, u64) {
    let connect = |attempt: u64| {
        Client::connect_opts(
            addr,
            Some(Duration::from_secs(2)),
            Some(ChaosConfig { rate, seed: seed ^ (attempt << 32) }),
        )
    };
    let stream = hosts();
    let mut verified = 0u64;
    let mut errors = 0u64;
    let mut attempt = 0u64;
    let mut client: Option<Client> = None;
    for i in 0..requests {
        let cl = match client.as_mut() {
            Some(cl) => cl,
            None => match connect(attempt) {
                Ok(cl) => client.insert(cl),
                Err(_) => {
                    // Connect itself is plain TCP to a live loopback
                    // server; a failure here would be a real bug.
                    panic!("reconnect to the live server failed");
                }
            },
        };
        let h = &stream[i % stream.len()];
        let survived = match cl.request(h) {
            Ok(resp) => match split_response(&resp) {
                Some((echoed, fields)) => {
                    assert_eq!(
                        fields,
                        reference.query(echoed, &hoiho_repro::obs::TraceCtx::off()).render_fields(),
                        "sharded answer for received request {echoed:?} diverged \
                         from the single engine"
                    );
                    echoed == h.as_str()
                }
                None => false, // an err line: the fault reached the server
            },
            Err(_) => false, // I/O fault or timeout
        };
        if survived {
            verified += 1;
        } else {
            // Mangled, desynced, or failed: count it and resync on a
            // fresh connection.
            errors += 1;
            attempt += 1;
            client = None;
        }
    }
    (verified, errors)
}

#[test]
fn chaos_clients_terminate_and_surviving_answers_match_single_engine() {
    let model = model();
    let router = Arc::new(ShardRouter::from_model(&model, 2, 128).expect("build router"));
    let backend = Arc::new(ClusterBackend::new(router));
    let srv = ServerHandle::start_with_backend("127.0.0.1:0", backend, 2).expect("bind");
    let reference = EngineBackend::new(Arc::new(Engine::new(&model)));

    // Zero-rate control: the chaos wrapper must be transparent.
    let (verified, errors) = run_chaos_conn(srv.local_addr(), &reference, 0.0, 0xC0FFEE, 120);
    assert_eq!(errors, 0, "zero-chaos control saw errors");
    assert_eq!(verified, 120, "zero-chaos control must verify every answer");

    // Faulty runs: several seeded connections in parallel, all must
    // terminate with each request either verified or counted.
    let (verified, errors) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                let reference = &reference;
                let addr = srv.local_addr();
                scope.spawn(move || {
                    run_chaos_conn(addr, reference, 0.2, 0xC0FF_EE00 ^ c, 150)
                })
            })
            .collect();
        handles.into_iter().fold((0u64, 0u64), |(v, e), h| {
            let (hv, he) = h.join().expect("chaos client panicked");
            (v + hv, e + he)
        })
    });
    assert_eq!(verified + errors, 4 * 150, "every request must be accounted for");
    assert!(
        verified > 0,
        "at 20% fault rate some requests must still survive and verify"
    );
    assert!(
        errors > 0,
        "at 20% fault rate the seeded fault stream must produce counted errors"
    );

    // The server must still be fully alive after the storm.
    let mut clean = Client::connect(srv.local_addr()).expect("post-chaos connect");
    assert_eq!(clean.query("as64500.example.com").expect("post-chaos query"), Some(64500));
}
