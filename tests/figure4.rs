//! End-to-end reproduction of the paper's Figure 4: the four learning
//! phases on the Equinix suffix, with the exact per-hostname
//! classifications and ATP values from the figure.

use hoiho_repro::hoiho::eval::{classify_host, evaluate, Outcome};
use hoiho_repro::hoiho::learner::{learn_suffix, LearnConfig};
use hoiho_repro::hoiho::phases::base::{self, BaseConfig};
use hoiho_repro::hoiho::phases::{classes, merge};
use hoiho_repro::hoiho::training::{Observation, SuffixTraining};
use hoiho_repro::hoiho::Regex;

/// The figure's rows: (training ASN, hostname, label a–p).
const ROWS: &[(u32, &str, char)] = &[
    (109, "109.sgw.equinix.com", 'a'),
    (714, "714.os.equinix.com", 'b'),
    (714, "714.me1.equinix.com", 'c'),
    (714, "p714.sgw.equinix.com", 'd'),
    (714, "s714.sgw.equinix.com", 'e'),
    (24115, "p24115.mel.equinix.com", 'f'),
    (24115, "s24115.tyo.equinix.com", 'g'),
    (22282, "22822-2.tyo.equinix.com", 'h'),
    (24482, "24482-fr5-ix.equinix.com", 'i'),
    (54827, "54827-dc5-ix2.equinix.com", 'j'),
    (55247, "55247-ch3-ix.equinix.com", 'k'),
    (2906, "netflix.zh2.corp.eu.equinix.com", 'l'),
    (19324, "ipv4.dosarrest.eqix.equinix.com", 'm'),
    (8075, "8069.tyo.equinix.com", 'n'),
    (8075, "8074.hkg.equinix.com", 'o'),
    (55923, "45437-sy1-ix.equinix.com", 'p'),
];

fn training() -> SuffixTraining {
    let obs: Vec<Observation> = ROWS
        .iter()
        .map(|&(asn, h, _)| Observation::new(h, [198, 51, 100, 7], asn))
        .collect();
    SuffixTraining::build("equinix.com", &obs)
}

fn rx(s: &str) -> Regex {
    Regex::parse(s).unwrap()
}

/// Labels of TP/FP/FN hostnames for a regex list.
fn labels(st: &SuffixTraining, regexes: &[Regex]) -> (String, String, String) {
    let (mut tp, mut fp, mut fnn) = (String::new(), String::new(), String::new());
    for (host, &(_, _, label)) in st.hosts.iter().zip(ROWS) {
        match classify_host(regexes, host) {
            Outcome::TruePositive(_) => tp.push(label),
            Outcome::FalsePositive(_) => fp.push(label),
            Outcome::FalseNegative => fnn.push(label),
            Outcome::TrueNegative => {}
        }
    }
    (tp, fp, fnn)
}

#[test]
fn phase1_regex1_exact_classification() {
    let st = training();
    let r = rx(r"^(\d+)\.[^\.]+\.equinix\.com$");
    assert_eq!(labels(&st, std::slice::from_ref(&r)), ("abc".into(), "no".into(), "defghijk".into()));
    assert_eq!(evaluate(std::slice::from_ref(&r), &st.hosts).atp(), -7);
}

#[test]
fn phase1_regexes_2_and_3() {
    let st = training();
    for (pat, tp) in [(r"^p(\d+)\.[^\.]+\.equinix\.com$", "df"), (r"^s(\d+)\.[^\.]+\.equinix\.com$", "eg")] {
        let r = rx(pat);
        let (got_tp, got_fp, _) = labels(&st, std::slice::from_ref(&r));
        assert_eq!(got_tp, tp);
        assert_eq!(got_fp, "");
        assert_eq!(evaluate(std::slice::from_ref(&r), &st.hosts).atp(), -7);
    }
}

#[test]
fn phase1_regex4_typo_tp() {
    // Regex #4 catches hostname h via the Damerau-Levenshtein typo rule
    // (22822 vs training 22282).
    let st = training();
    let r = rx(r"^(\d+)-.+\.equinix\.com$");
    assert_eq!(labels(&st, std::slice::from_ref(&r)), ("hijk".into(), "p".into(), "abcdefg".into()));
    assert_eq!(evaluate(std::slice::from_ref(&r), &st.hosts).atp(), -4);
}

#[test]
fn phase1_generates_figure_regexes() {
    let st = training();
    let pool: Vec<String> = base::generate(&st, &BaseConfig::default())
        .iter()
        .map(|r| r.to_string())
        .collect();
    for want in [
        r"^(\d+)\.[^\.]+\.equinix\.com$",
        r"^p(\d+)\.[^\.]+\.equinix\.com$",
        r"^s(\d+)\.[^\.]+\.equinix\.com$",
        r"^(\d+)-.+\.equinix\.com$",
    ] {
        assert!(pool.iter().any(|g| g == want), "phase 1 missing {want}");
    }
}

#[test]
fn phase2_produces_regex5() {
    let st = training();
    let pool = base::generate(&st, &BaseConfig::default());
    let merged: Vec<String> = merge::merge(&pool).iter().map(|r| r.to_string()).collect();
    assert!(
        merged.iter().any(|s| s == r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$"),
        "phase 2 missing regex #5 in {merged:?}"
    );
    let r5 = rx(r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$");
    assert_eq!(evaluate(std::slice::from_ref(&r5), &st.hosts).atp(), 1);
}

#[test]
fn phase3_produces_regex6() {
    let st = training();
    let mut pool = base::generate(&st, &BaseConfig::default());
    pool.extend(merge::merge(&pool));
    let specialised: Vec<String> =
        classes::embed_classes(&pool, &st.hosts).iter().map(|r| r.to_string()).collect();
    assert!(
        specialised.iter().any(|s| s == r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
        "phase 3 missing regex #6 in {specialised:?}"
    );
}

#[test]
fn phase4_set_reaches_atp8_and_selection_picks_it() {
    let st = training();
    let set = [
        rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
        rx(r"^(\d+)-.+\.equinix\.com$"),
    ];
    let counts = evaluate(&set, &st.hosts);
    assert_eq!((counts.tp, counts.fp, counts.fnn), (11, 3, 0));
    assert_eq!(counts.atp(), 8);

    // The full learner must select exactly the figure's NC #7.
    let learned = learn_suffix(&st, &LearnConfig::default()).expect("learned");
    let got: Vec<String> = learned.convention.regexes.iter().map(|r| r.to_string()).collect();
    assert_eq!(
        got,
        vec![
            r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$".to_string(),
            r"^(\d+)-.+\.equinix\.com$".to_string(),
        ],
        "selection did not pick the figure's NC #7"
    );
    assert_eq!(learned.counts.atp(), 8);
}

#[test]
fn microsoft_siblings_are_fps_here() {
    // Hostnames n and o embed Microsoft sibling ASNs (8069, 8074-typo'd
    // 8075 fails the last-digit rule) while the training ASN is 8075 —
    // both must be FPs under the plain §3.1 rules.
    let st = training();
    let r = rx(r"^(\d+)\.[a-z]+\.equinix\.com$");
    let (_, fp, _) = labels(&st, std::slice::from_ref(&r));
    assert!(fp.contains('n') && fp.contains('o'), "fp set was {fp:?}");
}
