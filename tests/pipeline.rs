//! Whole-system integration: synthetic Internet → traceroute → alias
//! resolution → ownership inference → Hoiho learning → §5 integration,
//! asserting the paper's qualitative claims hold end to end.

use hoiho_repro::bdrmap::integrate::{integrate, ConventionSet};
use hoiho_repro::hoiho::classify::NcClass;
use hoiho_repro::hoiho::learner::{learn_all, LearnConfig};
use hoiho_repro::itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_repro::netsim::SimConfig;
use hoiho_repro::psl::PublicSuffixList;
use std::collections::BTreeMap;

fn spec(method: Method, seed: u64) -> SnapshotSpec {
    SnapshotSpec { label: format!("it-{seed}"), method, cfg: SimConfig::tiny(seed), alias_split: 0.3 }
}

#[test]
fn method_ordering_rtaa_below_bdrmapit_below_peeringdb() {
    // Figure 6's headline ordering must hold on the same Internet.
    let seed = 777;
    let r = BuiltSnapshot::build(&spec(Method::Rtaa, seed));
    let b = BuiltSnapshot::build(&spec(Method::BdrmapIt, seed));
    let p = BuiltSnapshot::build(&spec(Method::PeeringDb, seed));
    let (ra, ba, pa) = (r.training_accuracy(), b.training_accuracy(), p.training_accuracy());
    assert!(ra < ba, "RTAA {ra} should be below bdrmapIT {ba}");
    assert!(ba < pa + 0.05, "bdrmapIT {ba} should not beat PeeringDB {pa} materially");
    assert!(ra > 0.5 && pa > 0.9);
}

#[test]
fn learner_finds_usable_conventions_on_snapshot() {
    let snap = BuiltSnapshot::build(&spec(Method::BdrmapIt, 4242));
    let psl = PublicSuffixList::builtin();
    let training = snap.training_set();
    assert!(training.len() > 100, "thin training set: {}", training.len());
    let groups = training.by_suffix(&psl);
    let learned = learn_all(&groups, &LearnConfig::default());
    assert!(!learned.is_empty());
    let usable = learned.iter().filter(|l| l.class.usable()).count();
    assert!(usable >= 3, "only {usable} usable conventions");
    // Every learned convention extracts from its own suffix.
    for lc in &learned {
        assert!(!lc.convention.is_empty());
        assert!(lc.counts.tp > 0);
    }
}

#[test]
fn integration_improves_against_ground_truth() {
    // The §5 loop: agreement and ground-truth accuracy must not get
    // worse, and stale hostnames must mostly be rejected. A full-size
    // Internet keeps the decision sample large enough to be stable.
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: "it-991".into(),
        method: Method::BdrmapIt,
        cfg: SimConfig { seed: 991, ..SimConfig::default() },
        alias_split: 0.3,
    });
    let psl = PublicSuffixList::builtin();
    let groups = snap.training_set().by_suffix(&psl);
    let learned = learn_all(&groups, &LearnConfig::default());
    let conventions = ConventionSet::new(
        learned.iter().filter(|l| !l.single).map(|l| (l.convention.clone(), l.class)),
    );
    let mut hostnames = BTreeMap::new();
    for &addr in snap.graph.by_addr.keys() {
        if let Some(iface) = snap.internet.iface_at(addr) {
            if let Some(h) = iface.hostname.as_deref() {
                hostnames.insert(addr, h.to_string());
            }
        }
    }
    let res = integrate(&snap.graph, &snap.input, &snap.owners, &hostnames, &conventions);
    assert!(res.annotated > 20, "annotated: {}", res.annotated);
    assert!(res.final_rate() >= res.initial_rate());

    // Ground truth scoring over annotated interfaces.
    let score = |owners: &[Option<u32>]| -> (usize, usize) {
        let (mut ok, mut all) = (0, 0);
        for (&addr, h) in &hostnames {
            if conventions.extract(h).is_none() {
                continue;
            }
            let ridx = snap.graph.by_addr[&addr];
            let Some(truth) = snap.internet.owner_of_addr(addr) else { continue };
            let Some(inf) = owners[ridx] else { continue };
            all += 1;
            if inf == truth || snap.input.org.siblings(inf, truth) {
                ok += 1;
            }
        }
        (ok, all)
    };
    let (ok0, all0) = score(&snap.owners);
    let (ok1, all1) = score(&res.owners);
    assert_eq!(all0, all1);
    assert!(ok1 >= ok0, "integration reduced accuracy: {ok0}/{all0} -> {ok1}/{all1}");

    // Decision accuracy against simulator ground truth (the Table 2
    // protocol over every decision): ≥ 70% correct.
    let mut correct = 0usize;
    for d in &res.decisions {
        let truth = snap.internet.owner_of_addr(d.addr).unwrap();
        let hostname_right = d.extracted == truth || snap.input.org.siblings(d.extracted, truth);
        if hostname_right == d.used {
            correct += 1;
        }
    }
    if !res.decisions.is_empty() {
        let rate = correct as f64 / res.decisions.len() as f64;
        assert!(rate >= 0.7, "stale-vs-correct arbitration only {rate:.2}");
    }
}

#[test]
fn itdk_and_peeringdb_are_complementary() {
    // §4: the two sources overlap on IXPs but each contributes unique
    // usable suffixes (on a big-enough Internet).
    let cfg = SimConfig { seed: 606, ..SimConfig::default() };
    let itdk = BuiltSnapshot::build(&SnapshotSpec {
        label: "itdk".into(),
        method: Method::BdrmapIt,
        cfg: cfg.clone(),
        alias_split: 0.3,
    });
    let pdb = BuiltSnapshot::build(&SnapshotSpec {
        label: "pdb".into(),
        method: Method::PeeringDb,
        cfg,
        alias_split: 0.3,
    });
    let psl = PublicSuffixList::builtin();
    let usable = |snap: &BuiltSnapshot| -> std::collections::BTreeSet<String> {
        learn_all(&snap.training_set().by_suffix(&psl), &LearnConfig::default())
            .into_iter()
            .filter(|l| l.class.usable())
            .map(|l| l.convention.suffix)
            .collect()
    };
    let a = usable(&itdk);
    let b = usable(&pdb);
    assert!(!a.is_empty() && !b.is_empty());
    assert!(a.difference(&b).count() > 0, "ITDK contributed nothing unique");
}

#[test]
fn good_conventions_have_high_ppv_on_holdout() {
    // Learn on one snapshot, apply to the same Internet's full
    // ground-truth interface table (a superset of the training data):
    // good NCs must stay mostly correct.
    let snap = BuiltSnapshot::build(&spec(Method::BdrmapIt, 31415));
    let psl = PublicSuffixList::builtin();
    let learned = learn_all(&snap.training_set().by_suffix(&psl), &LearnConfig::default());
    let mut ok = 0usize;
    let mut bad = 0usize;
    for lc in learned.iter().filter(|l| l.class == NcClass::Good && !l.single) {
        for (iface, owner) in snap.internet.named_interfaces() {
            let h = iface.hostname.as_deref().unwrap();
            if let Some(extracted) = lc.convention.extract(h) {
                if extracted == owner || snap.input.org.siblings(extracted, owner) {
                    ok += 1;
                } else {
                    bad += 1;
                }
            }
        }
    }
    assert!(ok > 0);
    let ppv = ok as f64 / (ok + bad) as f64;
    assert!(ppv > 0.75, "holdout PPV {ppv:.2}");
}
