#!/usr/bin/env bash
# Guards the hermetic-build policy: no Cargo manifest may declare a
# registry (crates.io) dependency. The build container has no network
# access to a registry, so any such dependency makes the workspace
# unbuildable. All dependencies must be path deps inside this repo.
#
# Exits non-zero and names the offending lines if a violation is found.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

# Known-bad dependencies this repo used to declare (rand, proptest,
# criterion) must never reappear in any manifest.
if grep -rn -E '^\s*(rand|proptest|criterion)\s*(=|\.)' --include=Cargo.toml .; then
    echo "error: registry dependency (rand/proptest/criterion) found in a manifest" >&2
    status=1
fi

# General rule: every dependency line with a version requirement must
# also be a path dependency (version-only strings pull from a registry).
if grep -rn -E '^\s*[A-Za-z0-9_-]+\s*=\s*"[0-9^~*]' --include=Cargo.toml . \
        | grep -v -E '^\./(target|\.git)/' \
        | grep -v -E '(^|:)\s*(version|edition|resolver|rust-version)\s*=' ; then
    echo "error: version-only (registry) dependency found in a manifest" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "no-external-deps: OK (all manifests are path-only)"
fi
exit "$status"
