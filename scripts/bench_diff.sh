#!/usr/bin/env bash
# Compare two devkit bench result files (BENCH_<name>.json) and flag
# median-time regressions.
#
#   scripts/bench_diff.sh [--quality] [--slo] OLD.json NEW.json [threshold_pct]
#
# Benchmarks are matched by id; a benchmark whose median_ns grew by
# more than threshold_pct (default 20) is reported as a REGRESSION and
# the script exits nonzero. Ids present in only one file are listed but
# never fail the diff (benches come and go across PRs).
#
# --quality diffs only the scalar metrics and ignores every timing
# record, with a tighter default threshold (3%). This is the mode for
# SCENARIOS.json: quality metrics (precision/recall/conventions) are
# bit-deterministic in (scenario, seed), so even a small drop is a
# genuine regression, while the latency rows jitter by a log-histogram
# bucket on a noisy host and must never gate.
#
# --slo appends summary rows computed from NEW.json alone: for every
# benchmark id that also exists in a "<id>_traced" variant (the serve
# bench's sampled-tracing runs), the overhead of the traced median over
# the untraced one is printed against the 5% tracing budget from
# DESIGN.md §7i. The rows are advisory — overhead on this 1-core host
# jitters like every other timing — so they never change the exit
# status; the hard <5% check happens when BENCH_serve.json is
# regenerated on a quiet host.
#
# Scalar metrics (the optional "metrics" array: hit rates, balance
# factors — goodness measures where DOWN is bad) are matched by id too:
# a metric whose value dropped by more than threshold_pct is a
# REGRESSION; growth beyond the threshold is reported as "changed" but
# never fails, since the sign convention only guarantees that lower is
# worse.
#
# Relies on the devkit harness writing one result record per line —
# that one-record-per-line shape is part of the documented schema
# (DESIGN.md), which keeps this diff a plain awk job in the
# dependency-free workspace.
set -euo pipefail

QUALITY=0
SLO=0
while :; do
    case "${1:-}" in
        --quality) QUALITY=1; shift ;;
        --slo) SLO=1; shift ;;
        *) break ;;
    esac
done
if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: $0 [--quality] [--slo] OLD.json NEW.json [threshold_pct]" >&2
    exit 2
fi
OLD=$1
NEW=$2
if [ "$QUALITY" = 1 ]; then
    THRESHOLD=${3:-3}
else
    THRESHOLD=${3:-20}
fi
[ -f "$OLD" ] || { echo "bench_diff: no such file: $OLD" >&2; exit 2; }
[ -f "$NEW" ] || { echo "bench_diff: no such file: $NEW" >&2; exit 2; }

# Each result record sits on its own line: pull out (id, median_ns).
extract() {
    awk '
        /"id":/ && /"median_ns":/ {
            id = $0;    sub(/.*"id": "/, "", id);        sub(/".*/, "", id)
            med = $0;   sub(/.*"median_ns": /, "", med); sub(/[,}].*/, "", med)
            print id "\t" med
        }
    ' "$1"
}

extract "$OLD" | sort > "${TMPDIR:-/tmp}/bench_diff_old.$$"
extract "$NEW" | sort > "${TMPDIR:-/tmp}/bench_diff_new.$$"
trap 'rm -f "${TMPDIR:-/tmp}/bench_diff_old.$$" "${TMPDIR:-/tmp}/bench_diff_new.$$"' EXIT

STATUS=0
if [ "$QUALITY" = 0 ]; then
join -t "$(printf '\t')" \
    "${TMPDIR:-/tmp}/bench_diff_old.$$" "${TMPDIR:-/tmp}/bench_diff_new.$$" |
awk -F'\t' -v thr="$THRESHOLD" '
    {
        old = $2 + 0; new = $3 + 0
        delta = old > 0 ? (new - old) * 100.0 / old : 0
        mark = "ok        "
        if (delta > thr)       { mark = "REGRESSION"; bad++ }
        else if (delta < -thr) { mark = "improved  " }
        printf "%s  %-40s  %12.1f -> %12.1f ns  %+7.1f%%\n", mark, $1, old, new, delta
    }
    END { exit bad > 0 ? 1 : 0 }
' || STATUS=1

# Ids only in one file: informational.
comm -23 "${TMPDIR:-/tmp}/bench_diff_old.$$" "${TMPDIR:-/tmp}/bench_diff_new.$$" |
    cut -f1 | while read -r id; do
        grep -q "^$id	" "${TMPDIR:-/tmp}/bench_diff_new.$$" || echo "removed     $id"
    done
comm -13 "${TMPDIR:-/tmp}/bench_diff_old.$$" "${TMPDIR:-/tmp}/bench_diff_new.$$" |
    cut -f1 | while read -r id; do
        grep -q "^$id	" "${TMPDIR:-/tmp}/bench_diff_old.$$" || echo "added       $id"
    done
fi

# Scalar metric records carry "value" instead of "median_ns".
extract_metrics() {
    awk '
        /"id":/ && /"value":/ && !/"median_ns":/ {
            id = $0;   sub(/.*"id": "/, "", id);      sub(/".*/, "", id)
            val = $0;  sub(/.*"value": /, "", val);   sub(/[,}].*/, "", val)
            print id "\t" val
        }
    ' "$1"
}

extract_metrics "$OLD" | sort > "${TMPDIR:-/tmp}/bench_diff_mold.$$"
extract_metrics "$NEW" | sort > "${TMPDIR:-/tmp}/bench_diff_mnew.$$"
trap 'rm -f "${TMPDIR:-/tmp}/bench_diff_old.$$" "${TMPDIR:-/tmp}/bench_diff_new.$$" \
            "${TMPDIR:-/tmp}/bench_diff_mold.$$" "${TMPDIR:-/tmp}/bench_diff_mnew.$$"' EXIT

join -t "$(printf '\t')" \
    "${TMPDIR:-/tmp}/bench_diff_mold.$$" "${TMPDIR:-/tmp}/bench_diff_mnew.$$" |
awk -F'\t' -v thr="$THRESHOLD" '
    {
        old = $2 + 0; new = $3 + 0
        delta = old > 0 ? (new - old) * 100.0 / old : 0
        mark = "ok        "
        if (delta < -thr)      { mark = "REGRESSION"; bad++ }
        else if (delta > thr)  { mark = "changed   " }
        printf "%s  %-40s  %12.1f -> %12.1f      %+7.1f%%\n", mark, $1, old, new, delta
    }
    END { exit bad > 0 ? 1 : 0 }
' || STATUS=1
comm -23 "${TMPDIR:-/tmp}/bench_diff_mold.$$" "${TMPDIR:-/tmp}/bench_diff_mnew.$$" |
    cut -f1 | while read -r id; do
        grep -q "^$id	" "${TMPDIR:-/tmp}/bench_diff_mnew.$$" || echo "removed     $id (metric)"
    done
comm -13 "${TMPDIR:-/tmp}/bench_diff_mold.$$" "${TMPDIR:-/tmp}/bench_diff_mnew.$$" |
    cut -f1 | while read -r id; do
        grep -q "^$id	" "${TMPDIR:-/tmp}/bench_diff_mold.$$" || echo "added       $id (metric)"
    done

# --slo: tracing-overhead summary rows from NEW alone. Every
# "<id>_traced" result is paired with its untraced "<id>" and the
# overhead printed against the 5% budget (advisory: never fails).
if [ "$SLO" = 1 ]; then
    awk -F'\t' '
        { med[$1] = $2 + 0 }
        END {
            for (id in med) {
                base = id; if (sub(/_traced$/, "", base) && base in med && med[base] > 0) {
                    over = (med[id] - med[base]) * 100.0 / med[base]
                    mark = over > 5 ? "over      " : "ok        "
                    printf "%s  slo:tracing-overhead %-19s  %12.1f -> %12.1f ns  %+7.1f%%  (budget 5%%)\n", \
                        mark, base, med[base], med[id], over
                }
            }
        }
    ' "${TMPDIR:-/tmp}/bench_diff_new.$$"
fi

exit "$STATUS"
