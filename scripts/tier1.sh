#!/usr/bin/env bash
# Tier-1 gate: what must be green before any PR merges.
#   1. The hermetic-dependency check (manifests are path-only).
#   2. A clean offline release build of the whole workspace.
#   3. The full test suite, offline.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

./scripts/no-external-deps.sh
cargo build --release --offline
cargo test -q --offline
echo "tier1: OK"
