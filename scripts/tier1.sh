#!/usr/bin/env bash
# Tier-1 gate: what must be green before any PR merges.
#   1. The hermetic-dependency check (manifests are path-only).
#   2. A clean offline release build of the whole workspace, including
#      every example and binary.
#   3. The full test suite, offline, then the multi-matcher equivalence
#      gate by name: fixed-seed `learn_all` output must be byte-identical
#      with Aho–Corasick literal dispatch on (default) and off (the
#      per-regex column build kept as the oracle).
#   4. A live smoke test of the serving subsystem: learn a model from a
#      simulated snapshot, serve it over TCP, drive one query + STATS,
#      and shut down cleanly.
#   5. A live smoke test of the cluster tier: shard that model, serve it
#      with --shards 2 plus a response cache, query hostnames landing on
#      both shards, check STATS CLUSTER reports cache hits after a
#      repeat, round-trip a pipelined BATCH across both shards, and shut
#      down cleanly.
#   6. An observability smoke over the same live cluster server: METRICS
#      must expose the scripted query-miss counter, a nonzero per-shard
#      cache-hit counter, and the BATCH request counter.
#   7. A request-tracing/profiling/SLO smoke over the same live cluster
#      server (started with --trace-sample 1 --slo slo/default.slo):
#      the TRACES dump must be valid JSONL (python3-validated) holding
#      at least one complete server→router→(cache|engine) span tree,
#      the trace subcommand must emit parseable Chrome JSON plus
#      collapsed stacks, PROFILE must expose phase samples and span
#      self-time, and SLO must report the file's objectives with
#      burn-rate windows and no breach.
#   8. The loadgen --slo gate: a control run against slo/default.slo
#      must exit zero; a seeded-chaos run against a zero-error-budget
#      objective must breach and exit nonzero.
#   9. A learner-tracing smoke: `hoiho learn --sim --trace` must write
#      Chrome trace JSON that parses (validated with python3 when
#      available) and contains one span per learner phase.
#  10. A scenario-subsystem smoke: train a model from a checked-in
#      corpus scenario, serve it, drive the scenario's own traffic
#      profile with zero protocol errors, regenerate the quality
#      matrix for the whole corpus, validate its shape, and hard-gate
#      the (deterministic) quality metrics against the committed
#      SCENARIOS.json via bench_diff.sh --quality.
#  11. A fuzz-tier smoke: replay the committed `fuzz/corpus/` through
#      every target's oracle, then a short fixed-seed fuzz run across
#      all five targets (regex, artifact, shardmap, scenario, framing)
#      that must find nothing.
#  12. A fault-injection smoke over the live cluster server: loadgen
#      with --chaos 0.2 must terminate, report its error rate, and
#      leave the server answering normally.
#  13. Advisory (warn-only): the learning bench against the committed
#      BENCH_learning.json baseline via scripts/bench_diff.sh. This
#      1-core host is too noisy to gate on, but a >20% median regression
#      should be seen before merge, not after.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

./scripts/no-external-deps.sh
cargo build --release --offline --workspace --examples --bins
cargo test -q --offline

# --- multi-matcher equivalence gate: dispatch on vs off, by name, so a
# filter typo in the suite can never silently drop it ---
cargo test -q --offline -p hoiho --test compiled_equiv \
    learn_all_identical_with_multi_matcher_on_and_off -- --exact \
    | grep -q "1 passed" \
    || { echo "tier1: multi-matcher equivalence gate did not run/pass" >&2; exit 1; }
echo "tier1: multi-matcher on/off equivalence gate OK"

# --- fuzz tier smoke: corpus replay + a short fixed-seed run ---
FUZZ=target/release/hoiho-fuzz
FUZZ_SCRATCH=$(mktemp -d)
"$FUZZ" replay > /dev/null \
    || { echo "tier1: committed fuzz corpus regressed" >&2
         "$FUZZ" replay >&2 || true; rm -rf "$FUZZ_SCRATCH"; exit 1; }
# Any find is written (minimized) into the scratch corpus for triage;
# the box is 120s so a hung oracle fails the gate instead of wedging it.
timeout 120 "$FUZZ" run --iters 500 --seed 0xC0FFEE --corpus "$FUZZ_SCRATCH" > /dev/null \
    || { echo "tier1: fuzz smoke found failures (minimized cases in $FUZZ_SCRATCH)" >&2
         timeout 120 "$FUZZ" run --iters 500 --seed 0xC0FFEE --corpus "$FUZZ_SCRATCH" >&2 || true
         exit 1; }
rm -rf "$FUZZ_SCRATCH"
echo "tier1: fuzz corpus replay + 500-iter smoke OK"

SRV=target/release/hoiho-serve
SMOKE_DIR=$(mktemp -d)
SRV_PID=
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

"$SRV" save --sim 2020 "$SMOKE_DIR/model.hoiho" 2>/dev/null
"$SRV" inspect "$SMOKE_DIR/model.hoiho" > /dev/null
"$SRV" serve "$SMOKE_DIR/model.hoiho" 127.0.0.1:0 2 2> "$SMOKE_DIR/serve.log" &
SRV_PID=$!

# The server prints its bound (ephemeral) address on startup.
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.* on \([0-9.]*:[0-9]*\).*/\1/p' "$SMOKE_DIR/serve.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$SMOKE_DIR/serve.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "tier1: server never reported its address" >&2; exit 1; }

"$SRV" send "$ADDR" smoke-test.invalid | grep -q "smoke-test.invalid"
"$SRV" send "$ADDR" STATS | grep -q "^stats"
"$SRV" send "$ADDR" SHUTDOWN | grep -q "^ok"
wait "$SRV_PID"
SRV_PID=

# --- cluster tier smoke ---
"$SRV" shard "$SMOKE_DIR/model.hoiho" 2 "$SMOKE_DIR/shards" 2>/dev/null
[ -f "$SMOKE_DIR/shards/shard.0.model" ]
[ -f "$SMOKE_DIR/shards/shard.1.model" ]
[ -f "$SMOKE_DIR/shards/shardmap.hoiho" ]

"$SRV" serve "$SMOKE_DIR/model.hoiho" 127.0.0.1:0 2 --shards 2 --cache-capacity 64 \
    --trace-sample 1 --trace-seed 7 --slo slo/default.slo \
    2> "$SMOKE_DIR/cluster.log" &
SRV_PID=$!
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.* on \([0-9.]*:[0-9]*\).*/\1/p' "$SMOKE_DIR/cluster.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$SMOKE_DIR/cluster.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "tier1: cluster server never reported its address" >&2; exit 1; }

# One suffix from each shard (the manifest records the assignment), so
# the queries below exercise both shards' engines.
SUF0=$(awk -F'\t' '$1 == "A" && $3 == 0 { print $2; exit }' "$SMOKE_DIR/shards/shardmap.hoiho")
SUF1=$(awk -F'\t' '$1 == "A" && $3 == 1 { print $2; exit }' "$SMOKE_DIR/shards/shardmap.hoiho")
[ -n "$SUF0" ] && [ -n "$SUF1" ] || { echo "tier1: shard map has an empty shard" >&2; exit 1; }
"$SRV" send "$ADDR" "test.$SUF0" | grep -q "test.$SUF0"
"$SRV" send "$ADDR" "test.$SUF1" | grep -q "test.$SUF1"
# Repeat one query: the second answer must come from the cache.
"$SRV" send "$ADDR" "test.$SUF0" > /dev/null
"$SRV" send "$ADDR" "STATS CLUSTER" | grep "^cache" | grep -vq "hits=0" \
    || { echo "tier1: repeated query produced no cache hit" >&2; exit 1; }

# Pipelined BATCH round trip across both shards: one request, two
# in-order answer lines echoing the queried hostnames.
"$SRV" batch "$ADDR" "test.$SUF0" "test.$SUF1" > "$SMOKE_DIR/batch.txt"
[ "$(wc -l < "$SMOKE_DIR/batch.txt")" -eq 2 ] \
    || { echo "tier1: BATCH answered the wrong line count" >&2; exit 1; }
sed -n 1p "$SMOKE_DIR/batch.txt" | grep -q "^test\.$SUF0	" \
    || { echo "tier1: BATCH answer 1 out of order" >&2; exit 1; }
sed -n 2p "$SMOKE_DIR/batch.txt" | grep -q "^test\.$SUF1	" \
    || { echo "tier1: BATCH answer 2 out of order" >&2; exit 1; }

# --- observability smoke: METRICS over the live cluster server ---
"$SRV" send "$ADDR" METRICS > "$SMOKE_DIR/metrics.txt"
# The scripted queries above were extraction misses; their counter must
# be present and nonzero (labels render in sorted key order).
grep -F 'hoiho_requests_total{outcome="miss",verb="query"}' "$SMOKE_DIR/metrics.txt" \
    | grep -vq ' 0$' \
    || { echo "tier1: METRICS missing a nonzero query-miss counter" >&2; exit 1; }
# The repeated query above hit the cache on some shard.
grep '^hoiho_cache_hits_total{' "$SMOKE_DIR/metrics.txt" | grep -vq ' 0$' \
    || { echo "tier1: METRICS missing a nonzero per-shard cache-hit counter" >&2; exit 1; }
# The BATCH round trip above counted once under verb="batch".
grep -F 'hoiho_requests_total{outcome="ok",verb="batch"}' "$SMOKE_DIR/metrics.txt" \
    | grep -vq ' 0$' \
    || { echo "tier1: METRICS missing a nonzero batch request counter" >&2; exit 1; }
grep -q '^# TYPE hoiho_request_latency_ns histogram' "$SMOKE_DIR/metrics.txt" \
    || { echo "tier1: METRICS missing the latency histogram" >&2; exit 1; }

# --- request-tracing / profiling / SLO smoke over the live cluster ---
# The cluster server above runs with --trace-sample 1, so every
# scripted request was traced. The dump must be well-formed JSONL and
# contain at least one complete server→router span tree.
"$SRV" send "$ADDR" TRACES > "$SMOKE_DIR/traces.jsonl"
[ -s "$SMOKE_DIR/traces.jsonl" ] || { echo "tier1: TRACES dumped nothing" >&2; exit 1; }
if command -v python3 > /dev/null 2>&1; then
    python3 - "$SMOKE_DIR/traces.jsonl" <<'EOF'
import json, sys
spans = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert spans, "TRACES dump is empty"
keys = {"trace", "span", "parent", "layer", "detail", "shard",
        "generation", "start_ns", "end_ns", "tid"}
for s in spans:
    assert set(s) == keys, f"span keys diverge: {sorted(s)}"
    assert s["end_ns"] >= s["start_ns"], s
by_trace = {}
for s in spans:
    by_trace.setdefault(s["trace"], {})[s["span"]] = s
complete = 0
for tree in by_trace.values():
    roots = [s for s in tree.values() if s["parent"] is None]
    assert len(roots) == 1, f"one root per trace: {tree}"
    if any(s["layer"] == "router" and s["parent"] == roots[0]["span"]
           for s in tree.values()) and \
       any(s["layer"] in ("cache", "engine") for s in tree.values()):
        complete += 1
assert complete >= 1, "no complete server→router→(cache|engine) tree"
print(f"tier1: TRACES OK ({len(spans)} spans, {len(by_trace)} traces, "
      f"{complete} complete trees)")
EOF
else
    grep -q '"layer":"server"' "$SMOKE_DIR/traces.jsonl" \
        || { echo "tier1: TRACES dump lacks a server span" >&2; exit 1; }
fi
# The trace subcommand converts the same dump for tooling.
"$SRV" trace "$ADDR" --chrome "$SMOKE_DIR/spans.json" \
    --collapsed "$SMOKE_DIR/spans.folded" 2> /dev/null
[ -s "$SMOKE_DIR/spans.json" ] && [ -s "$SMOKE_DIR/spans.folded" ] \
    || { echo "tier1: trace subcommand wrote no output" >&2; exit 1; }
if command -v python3 > /dev/null 2>&1; then
    python3 -c 'import json,sys; doc=json.load(open(sys.argv[1])); \
assert doc["traceEvents"], "empty Chrome trace"' "$SMOKE_DIR/spans.json" \
        || { echo "tier1: trace --chrome output is not valid JSON" >&2; exit 1; }
fi
grep -q ';' "$SMOKE_DIR/spans.folded" \
    || { echo "tier1: collapsed stacks have no multi-frame line" >&2; exit 1; }
# Continuous profiling: the watcher thread has been sampling phase
# markers since startup; the exposition must carry samples and the
# span-attributed self-time section.
"$SRV" send "$ADDR" PROFILE > "$SMOKE_DIR/profile.txt"
grep -q '^hoiho_profile_samples_total{' "$SMOKE_DIR/profile.txt" \
    || { echo "tier1: PROFILE missing phase sample counters" >&2; exit 1; }
grep -q '^hoiho_span_self_time_ns{layer="server"}' "$SMOKE_DIR/profile.txt" \
    || { echo "tier1: PROFILE missing span self-time attribution" >&2; exit 1; }
# SLO: the objectives from slo/default.slo, evaluated live; a healthy
# loopback smoke must not breach the generous defaults.
"$SRV" send "$ADDR" SLO > "$SMOKE_DIR/slo.txt"
grep -q '^slo	p99_latency	' "$SMOKE_DIR/slo.txt" \
    || { echo "tier1: SLO verb lost the objectives from slo/default.slo" >&2; exit 1; }
grep -q 'burn_10s=' "$SMOKE_DIR/slo.txt" \
    || { echo "tier1: SLO verb reports no burn-rate windows" >&2; exit 1; }
grep -q 'status=breach' "$SMOKE_DIR/slo.txt" \
    && { echo "tier1: healthy smoke server breaches its default SLOs" >&2
         cat "$SMOKE_DIR/slo.txt" >&2; exit 1; }
echo "tier1: tracing/profiling/SLO smoke OK"

# --- loadgen --slo gate: control must pass, induced faults must fail ---
printf 'test.%s\ntest.%s\n' "$SUF0" "$SUF1" > "$SMOKE_DIR/slo_hosts.txt"
timeout 120 "$SRV" loadgen "$ADDR" "$SMOKE_DIR/slo_hosts.txt" 2 200 --slo slo/default.slo \
    > "$SMOKE_DIR/slo_control.txt" 2> /dev/null \
    || { echo "tier1: control loadgen breached the default SLOs" >&2
         cat "$SMOKE_DIR/slo_control.txt" >&2; exit 1; }
grep -q '^slo	' "$SMOKE_DIR/slo_control.txt" \
    || { echo "tier1: loadgen --slo printed no objective statuses" >&2; exit 1; }
# A zero-error-budget objective under seeded fault injection must
# breach, and the breach must surface as a nonzero exit.
printf 'slo error_rate max 0 no_errors\n' > "$SMOKE_DIR/strict.slo"
if timeout 120 "$SRV" loadgen "$ADDR" "$SMOKE_DIR/slo_hosts.txt" 2 300 \
    --chaos 0.2 --slo "$SMOKE_DIR/strict.slo" > "$SMOKE_DIR/slo_breach.txt" 2> /dev/null; then
    echo "tier1: chaos loadgen passed a zero-error SLO (breach not detected)" >&2
    cat "$SMOKE_DIR/slo_breach.txt" >&2
    exit 1
fi
grep -q 'status=breach' "$SMOKE_DIR/slo_breach.txt" \
    || { echo "tier1: breach exit carried no breach status line" >&2; exit 1; }
echo "tier1: loadgen --slo gate OK (control passed, induced breach failed)"

# --- fault-injection smoke: chaos loadgen against the live cluster ---
# Every connection's traffic flows through a seeded fault-injecting
# wrapper; the run must terminate, report its error rate, and leave
# the server healthy.
printf 'test.%s\ntest.%s\n' "$SUF0" "$SUF1" > "$SMOKE_DIR/chaos_hosts.txt"
timeout 120 "$SRV" loadgen "$ADDR" "$SMOKE_DIR/chaos_hosts.txt" 2 300 --chaos 0.2 \
    > "$SMOKE_DIR/chaos.txt" 2> /dev/null \
    || { echo "tier1: chaos loadgen did not terminate cleanly" >&2
         cat "$SMOKE_DIR/chaos.txt" >&2; exit 1; }
grep -q "error-rate=" "$SMOKE_DIR/chaos.txt" \
    || { echo "tier1: chaos loadgen reported no error rate" >&2
         cat "$SMOKE_DIR/chaos.txt" >&2; exit 1; }
"$SRV" send "$ADDR" "test.$SUF0" | grep -q "test.$SUF0" \
    || { echo "tier1: cluster server unhealthy after the chaos run" >&2; exit 1; }
echo "tier1: chaos loadgen smoke OK ($(grep -o 'error-rate=[0-9.]*%' "$SMOKE_DIR/chaos.txt" | head -1))"

"$SRV" send "$ADDR" SHUTDOWN | grep -q "^ok"
wait "$SRV_PID"
SRV_PID=

# --- learner tracing smoke: hoiho learn --sim --trace ---
HOIHO=target/release/hoiho
"$HOIHO" learn --sim 2020 --trace "$SMOKE_DIR/trace.json" > /dev/null 2>&1
[ -s "$SMOKE_DIR/trace.json" ] || { echo "tier1: --trace wrote no file" >&2; exit 1; }
if command -v python3 > /dev/null 2>&1; then
    python3 - "$SMOKE_DIR/trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "trace has no events"
names = {e["name"] for e in events}
for phase in ("generate", "merge", "classes", "sets", "select", "learn_suffix"):
    assert phase in names, f"trace missing {phase} spans: {sorted(names)}"
for e in events:
    assert e["ph"] == "X" and e["dur"] >= 0 and "suffix" in e["args"], e
print(f"tier1: trace OK ({len(events)} spans)")
EOF
else
    # No python3: at least require the Chrome trace envelope.
    grep -q '^{"traceEvents":\[' "$SMOKE_DIR/trace.json" \
        || { echo "tier1: --trace output lacks the traceEvents envelope" >&2; exit 1; }
fi

# --- scenario subsystem smoke: corpus file → trained model → live
# serve → scenario-shaped loadgen → quality matrix ---
"$SRV" scenario save scenarios/paper-default.hoiho "$SMOKE_DIR/scenario.model" 2> /dev/null
"$SRV" inspect "$SMOKE_DIR/scenario.model" > /dev/null
"$SRV" serve "$SMOKE_DIR/scenario.model" 127.0.0.1:0 2 2> "$SMOKE_DIR/scenario.log" &
SRV_PID=$!
ADDR=
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.* on \([0-9.]*:[0-9]*\).*/\1/p' "$SMOKE_DIR/scenario.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$SMOKE_DIR/scenario.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "tier1: scenario server never reported its address" >&2; exit 1; }
# Drive the scenario's own traffic profile (zipf skew, seeded stream)
# against the live server; every request must parse as a protocol
# answer — errors mean the scenario universe and model disagree.
"$SRV" loadgen "$ADDR" --scenario scenarios/paper-default.hoiho 2 400 \
    > "$SMOKE_DIR/loadgen.txt" 2> /dev/null
grep -q "errors=0 " "$SMOKE_DIR/loadgen.txt" \
    || { echo "tier1: scenario loadgen saw protocol errors" >&2
         cat "$SMOKE_DIR/loadgen.txt" >&2; exit 1; }
"$SRV" send "$ADDR" SHUTDOWN | grep -q "^ok"
wait "$SRV_PID"
SRV_PID=

# The full corpus quality matrix, regenerated into the smoke dir (the
# committed SCENARIOS.json baseline is never clobbered by the gate).
"$SRV" scenario run scenarios/*.hoiho --out "$SMOKE_DIR/SCENARIOS.json" 2> /dev/null
if command -v python3 > /dev/null 2>&1; then
    python3 - "$SMOKE_DIR/SCENARIOS.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["benchmark"] == "scenarios", doc["benchmark"]
names = {r["id"].split("/")[1] for r in doc["results"]}
assert len(names) >= 6, f"matrix covers only {sorted(names)}"
for n in names:
    for q in ("precision_pct", "recall_pct", "conventions_found_pct"):
        (m,) = [m for m in doc["metrics"] if m["id"] == f"scenario/{n}/{q}"]
        assert 0.0 <= m["value"] <= 100.0 and m["unit"] == "percent", m
    for t in ("extract_p50", "extract_p99"):
        (r,) = [r for r in doc["results"] if r["id"] == f"scenario/{n}/{t}"]
        assert r["median_ns"] > 0, r
print(f"tier1: SCENARIOS.json OK ({len(names)} scenarios)")
EOF
else
    grep -q '"benchmark": "scenarios"' "$SMOKE_DIR/SCENARIOS.json" \
        || { echo "tier1: SCENARIOS.json lacks the bench envelope" >&2; exit 1; }
fi
# Quality metrics are bit-deterministic in (scenario, seed), so unlike
# the timing bench this diff gates hard: a drop means a real change in
# what the learner extracts, not host noise.
./scripts/bench_diff.sh --quality SCENARIOS.json "$SMOKE_DIR/SCENARIOS.json" \
    > "$SMOKE_DIR/quality_diff.log" 2>&1 \
    || { cat "$SMOKE_DIR/quality_diff.log" >&2
         echo "tier1: scenario quality matrix regressed vs committed SCENARIOS.json" >&2
         exit 1; }
echo "tier1: scenario quality matrix matches the committed baseline"

# --- advisory: learning bench vs the committed baseline (warn-only) ---
# BENCH_OUT_DIR redirects the fresh results into the smoke dir so the
# committed baseline at the repo root is never clobbered by the gate.
if BENCH_OUT_DIR="$SMOKE_DIR" cargo bench --offline -p hoiho-bench --bench learning \
    > "$SMOKE_DIR/bench.log" 2>&1; then
    if ./scripts/bench_diff.sh BENCH_learning.json "$SMOKE_DIR/BENCH_learning.json" \
        > "$SMOKE_DIR/bench_diff.log" 2>&1; then
        echo "tier1: learning bench within threshold of the committed baseline"
    else
        cat "$SMOKE_DIR/bench_diff.log" >&2
        echo "tier1: WARNING: learning bench regressed vs committed baseline (advisory on this 1-core host)" >&2
    fi
else
    echo "tier1: WARNING: learning bench failed to run (advisory)" >&2
fi

echo "tier1: OK"
