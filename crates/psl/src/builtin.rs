//! Embedded public suffix list snapshot.
//!
//! A compact extract of the Mozilla public suffix list covering the
//! effective TLDs that appear in the paper's datasets and in the suffixes
//! our synthetic Internet generator emits. The full Mozilla list can be
//! loaded at runtime with [`crate::PublicSuffixList::parse`]; this snapshot
//! exists so the reproduction runs fully offline.

/// Rules in Mozilla file syntax (one rule per line, `//` comments).
pub const BUILTIN_PSL: &str = r#"
// Generic top-level domains
com
net
org
edu
gov
int
mil
info
biz
name
io
co
me
tv
cc
ws
nu
cloud
network
global
zone
host
systems
digital
technology

// Country-code TLDs used directly as suffixes
ad
ae
at
be
ca
ch
cl
cn
cz
de
dk
es
eu
fi
fr
gr
hk
hu
ie
in
it
jp
kr
lu
mx
my
nl
no
nz
pl
pt
ro
ru
se
sg
si
sk
th
tw
ua
uk
us
uy
vn
za

// Second-level registries relevant to the paper / simulator
co.uk
org.uk
net.uk
ac.uk
gov.uk
co.nz
net.nz
org.nz
ac.nz
govt.nz
geek.nz
com.au
net.au
org.au
edu.au
gov.au
com.br
net.br
org.br
com.uy
net.uy
org.uy
edu.uy
com.mx
net.mx
org.mx
co.jp
ne.jp
or.jp
ad.jp
ac.jp
com.cn
net.cn
org.cn
com.hk
net.hk
com.sg
net.sg
com.tw
net.tw
co.kr
ne.kr
or.kr
co.za
net.za
org.za
ac.za
com.ar
net.ar
org.ar
com.my
net.my
co.in
net.in
org.in
ac.in
com.tr
net.tr
co.th
in.th
net.th
com.ua
net.ua

// Wildcard and exception examples kept for algorithmic coverage
*.ck
!www.ck
"#;
