//! Public suffix list parsing and effective-TLD+1 lookup.
//!
//! Hoiho groups router hostnames by *suffix*: the registrable domain under
//! which an operator names its routers (the paper, §3, determines suffixes
//! "using the Mozilla public suffix list"). This crate implements the
//! [Public Suffix List algorithm](https://publicsuffix.org/list/) — rules,
//! wildcard rules (`*.ck`), and exception rules (`!www.ck`) — and exposes
//! the two lookups Hoiho needs:
//!
//! * [`PublicSuffixList::public_suffix`] — the effective TLD of a hostname
//!   (e.g. `org.nz` for `luckie.org.nz`).
//! * [`PublicSuffixList::registrable_domain`] — the suffix Hoiho groups by:
//!   the public suffix plus one label (e.g. `equinix.com` for
//!   `p714.sgw.equinix.com`).
//!
//! The list snapshot embedded in [`PublicSuffixList::builtin`] covers the
//! effective TLDs exercised by this reproduction (generic TLDs plus the
//! country-code second-level registries that appear in the paper's figures
//! and in our synthetic Internet). The parser accepts the full Mozilla file
//! format, so a complete list can be loaded with
//! [`PublicSuffixList::parse`].
//!
//! Scope notes: hostnames here are DNS PTR strings, which in practice are
//! ASCII; internationalized labels (punycode) pass through untouched as
//! opaque labels.

mod builtin;

/// A parsed public suffix list.
///
/// Rule storage is a flat vector of reversed-label rules; lookups scan per
/// candidate rule. Hostname suffix determination happens once per hostname
/// at training-set construction, so simplicity beats a radix tree here.
#[derive(Debug, Clone, Default)]
pub struct PublicSuffixList {
    /// Normal rules, stored as lowercase label sequences, most-significant
    /// (TLD) label first. `["nz", "org"]` represents the rule `org.nz`.
    rules: Vec<Vec<String>>,
    /// Wildcard rules: `*.ck` stored as `["ck"]` (labels under the star).
    wildcards: Vec<Vec<String>>,
    /// Exception rules: `!www.ck` stored as `["ck", "www"]`.
    exceptions: Vec<Vec<String>>,
}

/// Outcome of a suffix lookup on one hostname.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixMatch {
    /// Number of labels (from the right) forming the public suffix.
    pub suffix_labels: usize,
    /// The public suffix itself, e.g. `org.nz`.
    pub public_suffix: String,
    /// The registrable domain (suffix + 1 label), if the hostname has one.
    pub registrable: Option<String>,
}

impl PublicSuffixList {
    /// Builds an empty list (only the implicit `*` rule applies: the last
    /// label is the public suffix).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the built-in snapshot used throughout this reproduction.
    pub fn builtin() -> Self {
        let mut psl = Self::new();
        psl.extend_from_str(builtin::BUILTIN_PSL);
        psl
    }

    /// Parses a list in the Mozilla file format.
    ///
    /// Lines are trimmed; blank lines and lines starting with `//` are
    /// ignored. A leading `!` marks an exception rule; a leading `*.` marks
    /// a wildcard rule. Everything after the first whitespace on a line is
    /// ignored, as the specification requires.
    pub fn parse(text: &str) -> Self {
        let mut psl = Self::new();
        psl.extend_from_str(text);
        psl
    }

    /// Adds all rules from `text` (same format as [`Self::parse`]).
    pub fn extend_from_str(&mut self, text: &str) {
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            let rule = line.split_whitespace().next().unwrap_or("");
            if rule.is_empty() {
                continue;
            }
            self.add_rule(rule);
        }
        self.rules.sort();
        self.rules.dedup();
        self.wildcards.sort();
        self.wildcards.dedup();
        self.exceptions.sort();
        self.exceptions.dedup();
    }

    /// Adds one rule in list syntax (`org.nz`, `*.ck`, `!www.ck`).
    pub fn add_rule(&mut self, rule: &str) {
        if let Some(exc) = rule.strip_prefix('!') {
            self.exceptions.push(reverse_labels(exc));
        } else if let Some(rest) = rule.strip_prefix("*.") {
            self.wildcards.push(reverse_labels(rest));
        } else if rule == "*" {
            // The implicit rule; nothing to store.
        } else {
            self.rules.push(reverse_labels(rule));
        }
    }

    /// Number of explicit rules loaded (normal + wildcard + exception).
    pub fn len(&self) -> usize {
        self.rules.len() + self.wildcards.len() + self.exceptions.len()
    }

    /// True if no explicit rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Computes the public suffix and registrable domain of `hostname`.
    ///
    /// Returns `None` for hostnames with no labels (empty string, `"."`)
    /// or with empty labels (`a..b`). The hostname is lowercased and a
    /// single trailing dot is ignored.
    pub fn lookup(&self, hostname: &str) -> Option<SuffixMatch> {
        let name = hostname.trim_end_matches('.').to_ascii_lowercase();
        if name.is_empty() {
            return None;
        }
        let labels: Vec<&str> = name.split('.').collect();
        if labels.iter().any(|l| l.is_empty()) {
            return None;
        }
        let rev: Vec<&str> = labels.iter().rev().copied().collect();

        // The prevailing rule is the matching rule with the most labels;
        // exception rules beat all others. Per the algorithm, an exception
        // rule's effective suffix drops the exception's leftmost label.
        let mut suffix_labels = 1; // implicit `*` rule
        if let Some(n) = longest_match(&self.exceptions, &rev) {
            // Exception matched in full: suffix is the rule minus one label.
            suffix_labels = n - 1;
        } else {
            if let Some(n) = longest_match(&self.rules, &rev) {
                suffix_labels = suffix_labels.max(n);
            }
            // A wildcard rule `*.ck` (stored as ["ck"]) matches any name
            // with >= 2 labels whose tail matches; the suffix is one label
            // longer than the stored part.
            if let Some(n) = longest_wildcard_match(&self.wildcards, &rev) {
                suffix_labels = suffix_labels.max(n + 1);
            }
        }

        // Exception rules can reduce the count to zero in a pathological
        // list (`!com`); clamp so every name keeps at least one suffix
        // label and never more labels than it has.
        suffix_labels = suffix_labels.clamp(1, labels.len());

        let public_suffix = labels[labels.len() - suffix_labels..].join(".");
        let registrable = if labels.len() > suffix_labels {
            Some(labels[labels.len() - suffix_labels - 1..].join("."))
        } else {
            None
        };
        Some(SuffixMatch { suffix_labels, public_suffix, registrable })
    }

    /// The public suffix (effective TLD) of `hostname`, if it has labels.
    pub fn public_suffix(&self, hostname: &str) -> Option<String> {
        self.lookup(hostname).map(|m| m.public_suffix)
    }

    /// The registrable domain — public suffix plus one label. This is the
    /// "suffix" Hoiho groups hostnames by. `None` when the hostname is
    /// itself a public suffix (e.g. `com`) or unparsable.
    pub fn registrable_domain(&self, hostname: &str) -> Option<String> {
        self.lookup(hostname).and_then(|m| m.registrable)
    }

    /// The keys to probe a suffix-keyed index with, in priority order:
    /// the PSL registrable domain first (the key the learner groups
    /// by), then every label-boundary suffix longest-first (so a model
    /// keyed deeper than — or, under PSL drift, differently from — the
    /// registrable domain is still reachable, deepest suffix winning).
    ///
    /// `lower` must already be lowercased; the yielded keys are then
    /// lowercase too. Both the serving engine and the cluster router
    /// dispatch through this, which is what keeps their suffix choice
    /// identical for any hostname.
    pub fn dispatch_keys<'n>(
        &self,
        lower: &'n str,
    ) -> impl Iterator<Item = std::borrow::Cow<'n, str>> {
        let rd = self.registrable_domain(lower).map(std::borrow::Cow::Owned);
        rd.into_iter().chain(label_suffixes(lower).map(std::borrow::Cow::Borrowed))
    }
}

/// Iterates the suffixes of `hostname` at label boundaries, longest
/// (the whole name) first: `a.b.c` → `a.b.c`, `b.c`, `c`.
///
/// Serving-side dispatch uses this to probe a suffix-keyed index when
/// the PSL-derived registrable domain misses — a model may key a suffix
/// deeper than (or, with a different PSL snapshot, different from) the
/// registrable domain the local list computes. A trailing dot is
/// ignored; the empty hostname yields nothing.
pub fn label_suffixes(hostname: &str) -> impl Iterator<Item = &str> {
    let name = hostname.trim_end_matches('.');
    let whole = (!name.is_empty()).then_some(name);
    whole.into_iter().chain(
        name.char_indices()
            .filter(|&(_, c)| c == '.')
            .map(move |(i, _)| &name[i + 1..])
            .filter(|s| !s.is_empty()),
    )
}

/// Splits a rule into lowercase labels, most-significant first.
fn reverse_labels(rule: &str) -> Vec<String> {
    rule.trim_end_matches('.')
        .split('.')
        .rev()
        .map(|l| l.to_ascii_lowercase())
        .collect()
}

/// Length in labels of the longest rule fully matching the reversed name,
/// or `None`.
fn longest_match(rules: &[Vec<String>], rev_name: &[&str]) -> Option<usize> {
    let mut best = None;
    for rule in rules {
        if rule.len() <= rev_name.len()
            && rule.iter().zip(rev_name).all(|(a, b)| a == b)
        {
            best = best.max(Some(rule.len()));
        }
    }
    best
}

/// Length in labels of the longest wildcard *tail* matching the reversed
/// name with at least one extra label available for the star.
fn longest_wildcard_match(rules: &[Vec<String>], rev_name: &[&str]) -> Option<usize> {
    let mut best = None;
    for rule in rules {
        if rule.len() < rev_name.len()
            && rule.iter().zip(rev_name).all(|(a, b)| a == b)
        {
            best = best.max(Some(rule.len()));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psl() -> PublicSuffixList {
        PublicSuffixList::builtin()
    }

    #[test]
    fn label_suffixes_longest_first() {
        let got: Vec<&str> = label_suffixes("p714.sgw.equinix.com").collect();
        assert_eq!(got, ["p714.sgw.equinix.com", "sgw.equinix.com", "equinix.com", "com"]);
        assert_eq!(label_suffixes("com").collect::<Vec<_>>(), ["com"]);
        assert_eq!(label_suffixes("").count(), 0);
        // Trailing dot ignored; empty tail labels skipped.
        assert_eq!(label_suffixes("a.b.").collect::<Vec<_>>(), ["a.b", "b"]);
    }

    #[test]
    fn dispatch_keys_registrable_first_then_longest_suffixes() {
        let p = psl();
        let got: Vec<String> =
            p.dispatch_keys("p714.sgw.equinix.com").map(|c| c.into_owned()).collect();
        assert_eq!(
            got,
            ["equinix.com", "p714.sgw.equinix.com", "sgw.equinix.com", "equinix.com", "com"]
        );
        // A public suffix alone has no registrable domain: only the
        // label-suffix probes remain.
        assert_eq!(p.dispatch_keys("com").map(|c| c.into_owned()).collect::<Vec<_>>(), ["com"]);
        assert_eq!(p.dispatch_keys("").count(), 0);
    }

    #[test]
    fn simple_tld() {
        let p = psl();
        assert_eq!(p.public_suffix("equinix.com").as_deref(), Some("com"));
        assert_eq!(
            p.registrable_domain("p714.sgw.equinix.com").as_deref(),
            Some("equinix.com")
        );
    }

    #[test]
    fn second_level_registry() {
        let p = psl();
        assert_eq!(p.public_suffix("luckie.org.nz").as_deref(), Some("org.nz"));
        assert_eq!(
            p.registrable_domain("www.luckie.org.nz").as_deref(),
            Some("luckie.org.nz")
        );
        // The paper's akl-ix.nz counts as suffix+1 under .nz.
        assert_eq!(
            p.registrable_domain("as24940.akl-ix.nz").as_deref(),
            Some("akl-ix.nz")
        );
    }

    #[test]
    fn uy_and_ch_examples_from_paper() {
        let p = psl();
        assert_eq!(
            p.registrable_domain("mlg4bras1-be127-605.antel.net.uy").as_deref(),
            Some("antel.net.uy")
        );
        assert_eq!(
            p.registrable_domain("ge0-2.01.p.ost.ch.as15576.nts.ch").as_deref(),
            Some("nts.ch")
        );
    }

    #[test]
    fn hostname_equal_to_suffix_has_no_registrable() {
        let p = psl();
        assert_eq!(p.registrable_domain("com"), None);
        assert_eq!(p.registrable_domain("org.nz"), None);
        assert_eq!(p.public_suffix("org.nz").as_deref(), Some("org.nz"));
    }

    #[test]
    fn unknown_tld_uses_implicit_star_rule() {
        let p = psl();
        assert_eq!(p.public_suffix("router.example.zzz").as_deref(), Some("zzz"));
        assert_eq!(
            p.registrable_domain("router.example.zzz").as_deref(),
            Some("example.zzz")
        );
    }

    #[test]
    fn wildcard_rule() {
        let mut p = PublicSuffixList::new();
        p.extend_from_str("*.ck\n!www.ck\n");
        assert_eq!(p.public_suffix("anything.ck").as_deref(), Some("anything.ck"));
        assert_eq!(
            p.registrable_domain("r1.foo.anything.ck").as_deref(),
            Some("foo.anything.ck")
        );
        // The exception rule makes www.ck registrable under ck.
        assert_eq!(p.public_suffix("www.ck").as_deref(), Some("ck"));
        assert_eq!(p.registrable_domain("www.ck").as_deref(), Some("www.ck"));
        assert_eq!(p.registrable_domain("r1.www.ck").as_deref(), Some("www.ck"));
    }

    #[test]
    fn comments_blank_lines_and_inline_junk_ignored() {
        let p = PublicSuffixList::parse(
            "// a comment\n\n  org.nz  trailing junk\n// another\nco.nz\n",
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p.public_suffix("x.org.nz").as_deref(), Some("org.nz"));
    }

    #[test]
    fn case_and_trailing_dot_normalised() {
        let p = psl();
        assert_eq!(
            p.registrable_domain("P714.SGW.Equinix.COM.").as_deref(),
            Some("equinix.com")
        );
    }

    #[test]
    fn degenerate_names_rejected() {
        let p = psl();
        assert_eq!(p.lookup(""), None);
        assert_eq!(p.lookup("."), None);
        assert_eq!(p.lookup("a..b.com"), None);
    }

    #[test]
    fn longest_rule_wins() {
        let mut p = PublicSuffixList::new();
        p.extend_from_str("jp\nkobe.jp\ncity.kobe.jp\n");
        assert_eq!(
            p.public_suffix("r.foo.city.kobe.jp").as_deref(),
            Some("city.kobe.jp")
        );
        assert_eq!(
            p.registrable_domain("r.foo.city.kobe.jp").as_deref(),
            Some("foo.city.kobe.jp")
        );
    }

    #[test]
    fn builtin_is_nonempty_and_idempotent() {
        let p = psl();
        assert!(p.len() > 50);
        let mut again = PublicSuffixList::builtin();
        again.extend_from_str(builtin::BUILTIN_PSL);
        assert_eq!(p.len(), again.len());
    }

    #[test]
    fn dedup_across_reloads() {
        let mut p = PublicSuffixList::parse("org.nz\n");
        p.extend_from_str("org.nz\nco.nz\n");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn single_label_hostname_on_known_tld() {
        let p = psl();
        // "com" alone: the whole name is the suffix.
        let m = p.lookup("com").unwrap();
        assert_eq!(m.suffix_labels, 1);
        assert_eq!(m.registrable, None);
    }
}
