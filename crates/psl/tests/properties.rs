//! Property-based tests for the public suffix list lookups, on the
//! devkit harness (`hoiho_devkit::prop`).

use hoiho_devkit::prop::{string_of, vec_of, Gen};
use hoiho_devkit::{prop_assert, prop_assert_eq, props};
use hoiho_psl::PublicSuffixList;

/// A DNS label: `[a-z][a-z0-9-]{0,6}`.
fn label() -> impl Gen<Value = String> {
    (string_of("abcdefghijklmnopqrstuvwxyz", 1..=1usize), string_of("abcdefghijklmnopqrstuvwxyz0123456789-", 0..=6usize))
        .prop_map(|(head, tail)| format!("{head}{tail}"))
}

/// A hostname of one to five labels.
fn hostname() -> impl Gen<Value = String> {
    vec_of(label(), 1..6usize).prop_map(|ls| ls.join("."))
}

props! {
    cases = 256;

    /// Structural invariants of every lookup: the public suffix is a
    /// label-suffix of the hostname, the registrable domain is the
    /// suffix plus exactly one label, and the hostname ends with it.
    fn lookup_invariants(h in hostname()) {
        let psl = PublicSuffixList::builtin();
        let m = psl.lookup(&h).expect("well-formed hostname");
        let labels: Vec<&str> = h.split('.').collect();
        prop_assert!(m.suffix_labels >= 1 && m.suffix_labels <= labels.len());
        prop_assert_eq!(
            &m.public_suffix,
            &labels[labels.len() - m.suffix_labels..].join(".")
        );
        match &m.registrable {
            Some(reg) => {
                prop_assert_eq!(reg.split('.').count(), m.suffix_labels + 1);
                let dotted = format!(".{reg}");
                prop_assert!(h == *reg || h.ends_with(&dotted));
                prop_assert!(reg.ends_with(&m.public_suffix));
            }
            None => prop_assert_eq!(m.suffix_labels, labels.len()),
        }
    }

    /// The registrable domain is a fixpoint: looking it up again yields
    /// itself.
    fn registrable_is_fixpoint(h in hostname()) {
        let psl = PublicSuffixList::builtin();
        if let Some(reg) = psl.registrable_domain(&h) {
            prop_assert_eq!(psl.registrable_domain(&reg), Some(reg));
        }
    }

    /// Lookups are case-insensitive and ignore one trailing dot.
    fn normalisation(h in hostname()) {
        let psl = PublicSuffixList::builtin();
        let upper = h.to_ascii_uppercase();
        let dotted = format!("{h}.");
        prop_assert_eq!(psl.lookup(&h), psl.lookup(&upper));
        prop_assert_eq!(psl.lookup(&h), psl.lookup(&dotted));
    }

    /// Adding an unrelated rule never changes lookups under other TLDs.
    fn rule_locality(h in hostname()) {
        let mut a = PublicSuffixList::builtin();
        let before = a.lookup(&h);
        a.extend_from_str("unrelated-zzz.example\n");
        if !h.ends_with("example") {
            prop_assert_eq!(a.lookup(&h), before);
        }
    }
}
