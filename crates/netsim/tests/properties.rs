//! Property-based tests over random simulation seeds, on the devkit
//! harness: structural invariants of the generated Internet and its
//! measurement, plus the fixed-seed determinism guarantee the devkit
//! PRNG exists to provide.

use hoiho_netsim::internet::{EmbeddedInfo, IfaceKind, Internet as InternetStruct};
use hoiho_netsim::traceroute::{run_traceroutes, Routing};
use hoiho_netsim::{Internet, SimConfig};
use hoiho_devkit::prop::any;
use hoiho_devkit::{prop_assert, prop_assert_eq, prop_assert_ne, props};

props! {
    // Each case builds a whole Internet; keep the count modest.
    cases = 12;

    /// Every hostname is DNS-safe; every written ASN string appears in
    /// its hostname; far-side interfaces are supplier-routed but
    /// neighbor-operated.
    fn internet_invariants(seed in 0u64..10_000) {
        let net = Internet::generate(&SimConfig::tiny(seed));
        for iface in &net.interfaces {
            if let Some(h) = iface.hostname.as_deref() {
                prop_assert!(
                    h.bytes().all(|b| b.is_ascii_lowercase()
                        || b.is_ascii_digit()
                        || b == b'.'
                        || b == b'-'),
                    "unsafe hostname {h}"
                );
                if let EmbeddedInfo::NeighborAsn { written, .. } = &iface.embedded {
                    prop_assert!(h.contains(written.as_str()));
                }
            }
            if iface.kind == IfaceKind::InterconnectFar {
                let origin = net.aslevel.bgp.lookup_value(iface.addr).copied();
                let owner = net.routers[iface.router as usize].owner;
                prop_assert!(origin.is_some());
                prop_assert_ne!(origin.unwrap(), owner);
            }
            if iface.kind == IfaceKind::IxpLan {
                prop_assert_eq!(net.aslevel.bgp.lookup_value(iface.addr), None);
            }
        }
    }

    /// Interface addresses are unique and resolve back to themselves.
    fn addresses_unique(seed in 0u64..10_000) {
        let net = Internet::generate(&SimConfig::tiny(seed));
        let mut seen = std::collections::BTreeSet::new();
        for iface in &net.interfaces {
            prop_assert!(seen.insert(iface.addr), "duplicate address");
            prop_assert_eq!(net.iface_at(iface.addr).map(|i| i.id), Some(iface.id));
        }
    }

    /// AS paths are valley-free for random source/destination samples.
    fn paths_valley_free(seed in 0u64..10_000, d_pick in any::<usize>(), s_pick in any::<usize>()) {
        let net = Internet::generate(&SimConfig::tiny(seed));
        let routing = Routing::new(&net);
        let n = net.aslevel.ases.len();
        let d = d_pick % n;
        let s = s_pick % n;
        if s != d {
            let next = routing.next_hops(d);
            if let Some(path) = routing.as_path(s, d, &next) {
                let mut descending = false;
                let mut peers = 0;
                for w in path.windows(2) {
                    let ra = net.aslevel.ases[w[0]].asn;
                    let rb = net.aslevel.ases[w[1]].asn;
                    match net.aslevel.rel.relationship(ra, rb).unwrap() {
                        hoiho_asdb::Relationship::CustomerOf => {
                            prop_assert!(!descending, "valley in {path:?}");
                        }
                        hoiho_asdb::Relationship::Peer => {
                            peers += 1;
                            descending = true;
                        }
                        hoiho_asdb::Relationship::ProviderOf => descending = true,
                    }
                }
                prop_assert!(peers <= 1);
            }
        }
    }

    /// Every responsive hop is either a known interface or the reached
    /// destination.
    fn hops_resolve(seed in 0u64..10_000) {
        let net = Internet::generate(&SimConfig::tiny(seed));
        let ts = run_traceroutes(&net);
        for p in ts.paths.iter().take(200) {
            for (i, h) in p.hops.iter().enumerate() {
                if let Some(addr) = h {
                    let last = i == p.hops.len() - 1;
                    prop_assert!(
                        net.iface_at(*addr).is_some() || (last && *addr == p.dst),
                        "unknown hop"
                    );
                }
            }
        }
    }
}

/// Flattens every seed-derived artifact of a generated Internet into
/// one byte string, so two generations can be compared exactly.
fn digest(net: &InternetStruct) -> String {
    let mut s = String::new();
    for a in &net.aslevel.ases {
        s.push_str(&format!(
            "as {} tier {:?} brand {} naming {:?} prefixes {:?}\n",
            a.asn, a.tier, a.brand, a.naming, a.prefixes
        ));
    }
    s.push_str(&net.aslevel.rel.to_text());
    for iface in &net.interfaces {
        s.push_str(&format!(
            "iface {} addr {} router {} kind {:?} host {:?} embedded {:?}\n",
            iface.id, iface.addr, iface.router, iface.kind, iface.hostname, iface.embedded
        ));
    }
    for r in &net.routers {
        s.push_str(&format!("router {} owner {}\n", r.id, r.owner));
    }
    s
}

/// The devkit PRNG's reason to exist: the same seed must produce a
/// byte-identical synthetic Internet, twice in a row, including every
/// hostname, address, relationship, and embedded-ASN artifact.
#[test]
fn same_seed_byte_identical_internet() {
    let a = Internet::generate(&SimConfig::tiny(2020));
    let b = Internet::generate(&SimConfig::tiny(2020));
    assert_eq!(digest(&a), digest(&b), "same seed must reproduce the Internet byte-for-byte");

    // And traceroute measurement over it is equally deterministic.
    let ta = run_traceroutes(&a);
    let tb = run_traceroutes(&b);
    assert_eq!(ta.paths.len(), tb.paths.len());
    for (p, q) in ta.paths.iter().zip(&tb.paths) {
        assert_eq!(p.dst, q.dst);
        assert_eq!(p.hops, q.hops);
    }

    // A different seed produces a different world (sanity that the
    // digest actually captures seed-derived state).
    let c = Internet::generate(&SimConfig::tiny(2021));
    assert_ne!(digest(&a), digest(&c));
}
