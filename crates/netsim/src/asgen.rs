//! AS-level topology generation.
//!
//! Produces the AS graph and databases the inference substrate needs:
//! tiers with customer/provider and peer relationships (tier-1 clique,
//! tier-2 transit, multi-homed edges), sibling organizations, prefix
//! allocations originated in a BGP table, and IXPs with member sets.
//! IXP peering-LAN prefixes are deliberately *not* originated in BGP —
//! as in the real Internet, those addresses have no origin AS, which is
//! precisely why hostnames and PeeringDB are the ownership signal there.

use crate::config::SimConfig;
use crate::naming::{brand_slug, OperatorNaming, StyleKind};
use hoiho_asdb::{As2Org, AsRelationships, Asn, IxpDirectory, Prefix, RouteTable};
use hoiho_devkit::rngs::StdRng;
use hoiho_devkit::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Position of an AS in the transit hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Transit-free; peers with every other tier-1.
    Tier1,
    /// Regional transit provider.
    Tier2,
    /// Stub / access / enterprise network.
    Edge,
}

/// One autonomous system.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Hierarchy tier.
    pub tier: Tier,
    /// Brand slug (also the organization's hostname-safe name).
    pub brand: String,
    /// Address blocks this AS originates.
    pub prefixes: Vec<Prefix>,
    /// The operator's naming convention.
    pub naming: OperatorNaming,
}

/// The generated AS level.
#[derive(Debug, Clone)]
pub struct AsLevel {
    /// All ASes; index is the dense AS id used by the router level.
    pub ases: Vec<AsInfo>,
    /// ASN → dense id.
    pub asn_index: BTreeMap<Asn, usize>,
    /// The relationship graph.
    pub rel: AsRelationships,
    /// AS → organization (defines siblings).
    pub org: As2Org,
    /// IXPs with peering LANs and members (dense AS ids translated to
    /// ASNs).
    pub ixps: IxpDirectory,
    /// BGP table: prefix → origin ASN.
    pub bgp: RouteTable<Asn>,
}

impl AsLevel {
    /// Dense id for an ASN.
    pub fn id_of(&self, asn: Asn) -> Option<usize> {
        self.asn_index.get(&asn).copied()
    }

    /// The [`AsInfo`] for an ASN.
    pub fn by_asn(&self, asn: Asn) -> Option<&AsInfo> {
        self.id_of(asn).map(|i| &self.ases[i])
    }
}

/// Sequential address-space allocator.
struct Allocator {
    next: u32,
}

impl Allocator {
    fn new() -> Allocator {
        // Start in 1.0.0.0; the sim never uses reserved-space semantics.
        Allocator { next: 0x01000000 }
    }

    /// Allocates an aligned block of the given prefix length.
    fn alloc(&mut self, len: u8) -> Prefix {
        let size = 1u32 << (32 - u32::from(len));
        // Align up.
        let addr = (self.next + size - 1) & !(size - 1);
        self.next = addr + size;
        Prefix::new(addr, len)
    }
}

/// Generates the AS level for a configuration.
#[allow(clippy::needless_range_loop)] // tier boundaries are index ranges
pub fn generate(cfg: &SimConfig) -> AsLevel {
    if let Err(e) = cfg.validate() {
        panic!("invalid SimConfig: {e}");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_0001);
    let total = cfg.total_ases();

    // Unique ASNs: tier-1s get low numbers for flavour, everyone else a
    // scattered range, deduplicated.
    let mut asns: Vec<Asn> = Vec::with_capacity(total);
    let mut used = std::collections::BTreeSet::new();
    for i in 0..total {
        let range = if i < cfg.tier1 { 100..9_000 } else { 1_000..350_000 };
        loop {
            let a = rng.random_range(range.clone());
            if used.insert(a) {
                asns.push(a);
                break;
            }
        }
    }

    // Brands, naming styles, prefixes. Per-tier style overrides use
    // the same single draw per sample as the base mix, so a config
    // without overrides generates the exact pre-override world.
    // Vendors draw from their own seeded stream for the same reason:
    // the default generic-only mix must not perturb the main stream.
    let mut alloc = Allocator::new();
    let tier_weights = [
        cfg.styles_for(Tier::Tier1).weights(),
        cfg.styles_for(Tier::Tier2).weights(),
        cfg.styles_for(Tier::Edge).weights(),
    ];
    let vendor_weights = cfg.vendors.weights();
    let mut vendor_rng = StdRng::seed_from_u64(cfg.seed ^ 0xFACE_0007);
    let mut ases: Vec<AsInfo> = Vec::with_capacity(total);
    for (i, &asn) in asns.iter().enumerate() {
        let tier = if i < cfg.tier1 {
            Tier::Tier1
        } else if i < cfg.tier1 + cfg.tier2 {
            Tier::Tier2
        } else {
            Tier::Edge
        };
        let weights = tier_weights[tier as usize];
        // Transit providers always name their gear; pure-edge networks
        // draw from the full mixture.
        let kind = match tier {
            Tier::Tier1 | Tier::Tier2 => {
                // Re-sample until we get a style with PTR records: big
                // networks run DNS.
                let mut k = StyleKind::sample(&weights, &mut rng);
                for _ in 0..8 {
                    if k != StyleKind::None {
                        break;
                    }
                    k = StyleKind::sample(&weights, &mut rng);
                }
                k
            }
            Tier::Edge => StyleKind::sample(&weights, &mut rng),
        };
        let mut naming = OperatorNaming::generate(kind, &mut rng);
        naming.vendor = crate::naming::VendorKind::sample(&vendor_weights, &mut vendor_rng);
        let plen = match tier {
            Tier::Tier1 => 14,
            Tier::Tier2 => 16,
            Tier::Edge => 20,
        };
        let mut prefixes = vec![alloc.alloc(plen)];
        if tier != Tier::Edge && rng.random_bool(0.5) {
            prefixes.push(alloc.alloc(plen + 2));
        }
        let brand = if naming.suffix.is_empty() {
            brand_slug(&mut rng)
        } else {
            // Brand matches the suffix's first label for coherence.
            naming.suffix.split('.').next().unwrap_or("net").to_string()
        };
        ases.push(AsInfo { asn, tier, brand, prefixes, naming });
    }

    // Organizations: mostly one per AS; some operate 2–3 siblings.
    let mut org = As2Org::new();
    let mut next_org: u32 = 0;
    let mut i = 0usize;
    while i < total {
        let id = next_org;
        next_org += 1;
        let name = ases[i].brand.clone();
        org.assign(ases[i].asn, id, &name);
        let mut take = 1;
        if rng.random_bool(cfg.sibling_org_rate) {
            take += 1 + usize::from(rng.random_bool(0.3));
        }
        for j in 1..take {
            if i + j < total {
                // Siblings share the brand (one company, several ASNs).
                let sib_brand = name.clone();
                ases[i + j].brand = sib_brand;
                org.assign(ases[i + j].asn, id, &name);
            }
        }
        i += take;
    }

    // Relationships.
    let mut rel = AsRelationships::new();
    let t1 = cfg.tier1;
    let t2_end = cfg.tier1 + cfg.tier2;
    // Tier-1 clique.
    for a in 0..t1 {
        for b in (a + 1)..t1 {
            rel.add_peer(ases[a].asn, ases[b].asn);
        }
    }
    // Tier-2: one or two tier-1 providers, plus lateral peering.
    for x in t1..t2_end {
        let nprov = 1 + usize::from(rng.random_bool(0.6));
        let mut provs = std::collections::BTreeSet::new();
        while provs.len() < nprov.min(t1) {
            provs.insert(rng.random_range(0..t1));
        }
        for p in provs {
            rel.add_provider_customer(ases[p].asn, ases[x].asn);
        }
    }
    if cfg.tier2 > 1 {
        let pairs = (cfg.tier2 as f64 * cfg.tier2_peering / 2.0) as usize;
        for _ in 0..pairs {
            let a = rng.random_range(t1..t2_end);
            let b = rng.random_range(t1..t2_end);
            if a != b && rel.relationship(ases[a].asn, ases[b].asn).is_none() {
                rel.add_peer(ases[a].asn, ases[b].asn);
            }
        }
    }
    // Edges: one or two providers, mostly tier-2. Clamp to the number
    // of distinct transit ASes so a degenerate topology (one tier-1,
    // no tier-2s) cannot spin the rejection loop forever.
    for x in t2_end..total {
        let nprov = (1 + usize::from(rng.random_bool(0.35))).min(t2_end);
        let mut provs = std::collections::BTreeSet::new();
        while provs.len() < nprov {
            let p = if rng.random_bool(0.82) && cfg.tier2 > 0 {
                rng.random_range(t1..t2_end)
            } else {
                rng.random_range(0..t1)
            };
            provs.insert(p);
        }
        for p in provs {
            rel.add_provider_customer(ases[p].asn, ases[x].asn);
        }
    }

    // IXPs: LAN prefix + members; members peer among themselves with
    // moderate probability. A third of the IXPs are large exchanges
    // where tier-2s concentrate; the rest are small regional fabrics
    // with a handful of edge members and sparse peering — those are
    // well-documented in PeeringDB yet rarely traversed by traceroute
    // (the paper's PeeringDB-only suffixes).
    let mut ixps = IxpDirectory::new();
    for k in 0..cfg.ixps {
        let lan = alloc.alloc(24);
        let large = k < cfg.ixps.div_ceil(3);
        let mut members: Vec<Asn> = Vec::new();
        if large {
            // Tier-2s join the big IXPs eagerly; edges per the rate.
            for x in t1..t2_end {
                if rng.random_bool(0.35) {
                    members.push(ases[x].asn);
                }
            }
            for x in t2_end..total {
                if rng.random_bool(cfg.ixp_member_rate / cfg.ixps.max(1) as f64 * 2.0) {
                    members.push(ases[x].asn);
                }
            }
        } else if total > t2_end {
            // Same clamp: a world with only a couple of edge ASes
            // cannot seat 4–8 distinct members.
            let n = (4 + rng.random_range(0..5)).min(total - t2_end);
            while members.len() < n {
                let x = rng.random_range(t2_end..total);
                if !members.contains(&ases[x].asn) {
                    members.push(ases[x].asn);
                }
            }
            members.sort_unstable();
        }
        // Peering mesh across members.
        let mesh = if large { 0.3 } else { 0.12 };
        for ai in 0..members.len() {
            for bi in (ai + 1)..members.len() {
                if rng.random_bool(mesh)
                    && rel.relationship(members[ai], members[bi]).is_none()
                {
                    rel.add_peer(members[ai], members[bi]);
                }
            }
        }
        let name = format!("{}-ix{}", brand_slug(&mut rng), k + 1);
        ixps.add(&name, lan, &members);
    }

    // BGP table (IXP LANs intentionally absent).
    let mut bgp = RouteTable::new();
    for a in &ases {
        for p in &a.prefixes {
            bgp.insert(*p, a.asn);
        }
    }

    let asn_index = ases.iter().enumerate().map(|(i, a)| (a.asn, i)).collect();
    AsLevel { ases, asn_index, rel, org, ixps, bgp }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level() -> AsLevel {
        generate(&SimConfig::tiny(11))
    }

    #[test]
    fn counts_match_config() {
        let cfg = SimConfig::tiny(11);
        let l = level();
        assert_eq!(l.ases.len(), cfg.total_ases());
        assert_eq!(l.ixps.len(), cfg.ixps);
        assert_eq!(l.asn_index.len(), l.ases.len()); // unique ASNs
    }

    #[test]
    fn deterministic() {
        let a = generate(&SimConfig::tiny(5));
        let b = generate(&SimConfig::tiny(5));
        assert_eq!(a.ases.len(), b.ases.len());
        for (x, y) in a.ases.iter().zip(&b.ases) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.naming.suffix, y.naming.suffix);
        }
        assert_eq!(a.rel.to_text(), b.rel.to_text());
        let c = generate(&SimConfig::tiny(6));
        assert_ne!(a.rel.to_text(), c.rel.to_text());
    }

    #[test]
    fn tier1_clique() {
        let cfg = SimConfig::tiny(11);
        let l = level();
        for a in 0..cfg.tier1 {
            for b in 0..cfg.tier1 {
                if a != b {
                    assert_eq!(
                        l.rel.relationship(l.ases[a].asn, l.ases[b].asn),
                        Some(hoiho_asdb::Relationship::Peer)
                    );
                }
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let cfg = SimConfig::tiny(11);
        let l = level();
        for x in cfg.tier1..l.ases.len() {
            assert!(
                l.rel.providers(l.ases[x].asn).next().is_some(),
                "AS{} has no provider",
                l.ases[x].asn
            );
        }
    }

    #[test]
    fn prefixes_unique_and_routed() {
        let l = level();
        let mut seen = std::collections::BTreeSet::new();
        for a in &l.ases {
            for p in &a.prefixes {
                assert!(seen.insert(*p), "duplicate prefix {p}");
                assert_eq!(l.bgp.lookup_value(p.addr()), Some(&a.asn));
            }
        }
    }

    #[test]
    fn ixp_lans_not_in_bgp() {
        let l = level();
        for ix in l.ixps.ixps() {
            assert_eq!(l.bgp.lookup_value(ix.lan.addr()), None);
            assert!(!ix.members.is_empty(), "IXP {} has no members", ix.name);
            for m in &ix.members {
                assert!(l.asn_index.contains_key(m));
            }
        }
    }

    #[test]
    fn siblings_exist_and_share_brand() {
        // With enough ASes the sibling rate produces at least one org
        // with two ASNs.
        let mut cfg = SimConfig::tiny(3);
        cfg.sibling_org_rate = 0.5;
        let l = generate(&cfg);
        let mut found = false;
        for a in &l.ases {
            let sibs = l.org.sibling_set(a.asn);
            if sibs.len() > 1 {
                found = true;
                for s in &sibs {
                    assert_eq!(l.by_asn(*s).unwrap().brand, a.brand);
                }
            }
        }
        assert!(found, "no sibling organizations generated");
    }

    #[test]
    fn tier_style_override_applies_to_that_tier_only() {
        use crate::config::StyleMix;
        let mut cfg = SimConfig::tiny(31);
        // Force every edge operator to IpEmbed; transit tiers keep the
        // default mix (which draws IpEmbed rarely).
        cfg.tier_styles.edge = Some(StyleMix {
            none: 0.0,
            infra: 0.0,
            simple: 0.0,
            start: 0.0,
            end: 0.0,
            bare: 0.0,
            complex: 0.0,
            own_asn: 0.0,
            as_name: 0.0,
            ip_embed: 1.0,
        });
        let l = generate(&cfg);
        for a in l.ases.iter().skip(cfg.tier1 + cfg.tier2) {
            assert_eq!(a.naming.kind, StyleKind::IpEmbed, "AS{}", a.asn);
        }
        // No-override config is unchanged by the override machinery.
        let plain = generate(&SimConfig::tiny(31));
        let again = generate(&SimConfig::tiny(31));
        for (x, y) in plain.ases.iter().zip(&again.ases) {
            assert_eq!(x.naming, y.naming);
        }
    }

    #[test]
    fn vendor_mix_assigns_vendors_without_perturbing_names() {
        use crate::config::VendorMix;
        use crate::naming::VendorKind;
        let plain = generate(&SimConfig::tiny(33));
        let mut cfg = SimConfig::tiny(33);
        cfg.vendors = VendorMix { generic: 0.0, juniper: 1.0, cisco: 1.0, arista: 1.0 };
        let vend = generate(&cfg);
        // The vendor stream is independent: suffixes, styles, and
        // brands are identical to the generic world.
        for (x, y) in plain.ases.iter().zip(&vend.ases) {
            assert_eq!(x.naming.suffix, y.naming.suffix);
            assert_eq!(x.naming.kind, y.naming.kind);
            assert_eq!(x.brand, y.brand);
        }
        assert!(plain.ases.iter().all(|a| a.naming.vendor == VendorKind::Generic));
        assert!(vend.ases.iter().all(|a| a.naming.vendor != VendorKind::Generic));
        let vendors: std::collections::BTreeSet<_> =
            vend.ases.iter().map(|a| a.naming.vendor).collect();
        assert!(vendors.len() >= 2, "vendor diversity expected: {vendors:?}");
    }

    #[test]
    #[should_panic(expected = "invalid SimConfig")]
    fn generate_rejects_zero_style_mix() {
        let mut cfg = SimConfig::tiny(1);
        cfg.styles = crate::config::StyleMix {
            none: 0.0,
            infra: 0.0,
            simple: 0.0,
            start: 0.0,
            end: 0.0,
            bare: 0.0,
            complex: 0.0,
            own_asn: 0.0,
            as_name: 0.0,
            ip_embed: 0.0,
        };
        generate(&cfg);
    }

    #[test]
    fn transit_tiers_have_names() {
        let l = level();
        let cfg = SimConfig::tiny(11);
        for a in l.ases.iter().take(cfg.tier1 + cfg.tier2) {
            // Tier-1/2 operators were re-sampled away from StyleKind::None
            // (best effort; suffix may still be empty in the tail case).
            if a.naming.kind != StyleKind::None {
                assert!(!a.naming.suffix.is_empty());
            }
        }
    }
}
