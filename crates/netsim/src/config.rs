//! Simulation configuration.
//!
//! Defaults produce an Internet small enough to learn from in seconds but
//! large enough to show the paper's effects; the ITDK timeline in
//! `hoiho-itdk` scales several of these knobs per snapshot year (more
//! operators embedding ASNs, more vantage points, better heuristics —
//! the three growth factors §4 names for Figure 5).

/// Mixture of naming styles across operators. Weights need not sum to 1;
/// they are normalised. The defaults are loosely calibrated to Table 1:
/// most neighbor-annotating operators put the ASN at the start, while
/// own-ASN operators favour the end of the hostname.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StyleMix {
    /// No PTR records, or names carrying no AS information.
    pub none: f64,
    /// Plain infrastructure names (interface/router/pop, no ASN).
    pub infra: f64,
    /// `^as<asn>\.suffix$` only (Table 1 "simple").
    pub simple: f64,
    /// `as<asn>` at the start plus more fields ("start").
    pub start: f64,
    /// `as<asn>` at the end, fields before ("end").
    pub end: f64,
    /// ASN digits without an alphabetic annotation ("bare").
    pub bare: f64,
    /// ASN mid-hostname, odd annotations, or multiple formats ("complex").
    pub complex: f64,
    /// Operator embeds its *own* ASN in every hostname (Figure 2).
    pub own_asn: f64,
    /// Operator embeds the neighbor's *name*, not number (Figure 1,
    /// telia/seabone style) — not learnable as an ASN convention.
    pub as_name: f64,
    /// Hostnames derived from the IP address (Figure 3b).
    pub ip_embed: f64,
}

impl Default for StyleMix {
    fn default() -> Self {
        StyleMix {
            none: 0.30,
            infra: 0.22,
            simple: 0.025,
            start: 0.10,
            end: 0.040,
            bare: 0.030,
            complex: 0.045,
            own_asn: 0.05,
            as_name: 0.13,
            ip_embed: 0.10,
        }
    }
}

impl StyleMix {
    /// The weights as a fixed array (order matches
    /// [`crate::naming::StyleKind::ALL`]).
    pub fn weights(&self) -> [f64; 10] {
        [
            self.none,
            self.infra,
            self.simple,
            self.start,
            self.end,
            self.bare,
            self.complex,
            self.own_asn,
            self.as_name,
            self.ip_embed,
        ]
    }

    /// Checks the mix is usable as a sampling distribution: every
    /// weight finite and non-negative, and at least one positive.
    /// Rejecting the all-zero mix here (and at scenario-compile time)
    /// keeps [`crate::naming::StyleKind::sample`] from quietly
    /// degenerating to [`crate::naming::StyleKind::None`] for every
    /// operator when the total is zero.
    pub fn validate(&self) -> Result<(), String> {
        let w = self.weights();
        for (i, &x) in w.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "style weight {} must be a finite non-negative number, got {x}",
                    crate::naming::StyleKind::ALL[i].label()
                ));
            }
        }
        if w.iter().sum::<f64>() <= 0.0 {
            return Err("style mix has zero total weight (all styles disabled)".into());
        }
        Ok(())
    }
}

/// Optional per-tier [`StyleMix`] overrides. An unset tier inherits
/// [`SimConfig::styles`]; a set tier replaces the mix wholesale for
/// operators of that tier (the scenario compiler's
/// `[styles.tier1]`-style sections lower to this).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TierStyles {
    /// Override for tier-1 operators.
    pub tier1: Option<StyleMix>,
    /// Override for tier-2 operators.
    pub tier2: Option<StyleMix>,
    /// Override for edge operators.
    pub edge: Option<StyleMix>,
}

impl TierStyles {
    /// The overrides as labelled options, for validation/rendering.
    pub fn entries(&self) -> [(&'static str, Option<StyleMix>); 3] {
        [("tier1", self.tier1), ("tier2", self.tier2), ("edge", self.edge)]
    }
}

/// Mixture of router vendors across operators. Each operator's gear is
/// drawn from this mix and its hostnames use that vendor's interface
/// fragments — the fingerprint "Classifying Network Vendors at
/// Internet Scale" exploits. The default is generic-only, which
/// renders the exact hostnames the pre-vendor simulator produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VendorMix {
    /// Vendor-neutral interface names (the original table).
    pub generic: f64,
    /// Juniper-style names (`xe-`, `ae`, `et-`, `irb`).
    pub juniper: f64,
    /// Cisco-style names (`te`, `gi`, `hu`, `be`, `po`).
    pub cisco: f64,
    /// Arista-style names (`et`, `po`, `vlan`).
    pub arista: f64,
}

impl Default for VendorMix {
    fn default() -> Self {
        VendorMix { generic: 1.0, juniper: 0.0, cisco: 0.0, arista: 0.0 }
    }
}

impl VendorMix {
    /// The weights as a fixed array (order matches
    /// [`crate::naming::VendorKind::ALL`]).
    pub fn weights(&self) -> [f64; 4] {
        [self.generic, self.juniper, self.cisco, self.arista]
    }

    /// Same contract as [`StyleMix::validate`].
    pub fn validate(&self) -> Result<(), String> {
        let w = self.weights();
        for (i, &x) in w.iter().enumerate() {
            if !x.is_finite() || x < 0.0 {
                return Err(format!(
                    "vendor weight {} must be a finite non-negative number, got {x}",
                    crate::naming::VendorKind::ALL[i].label()
                ));
            }
        }
        if w.iter().sum::<f64>() <= 0.0 {
            return Err("vendor mix has zero total weight".into());
        }
        Ok(())
    }
}

/// Top-level simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// RNG seed; everything downstream is deterministic in this.
    pub seed: u64,
    /// Number of tier-1 (transit-free, mutually peering) ASes.
    pub tier1: usize,
    /// Number of tier-2 (regional transit) ASes.
    pub tier2: usize,
    /// Number of edge ASes (access networks, enterprises, stubs).
    pub edge: usize,
    /// Number of IXPs.
    pub ixps: usize,
    /// Fraction of organizations operating 2–3 sibling ASNs.
    pub sibling_org_rate: f64,
    /// Naming-style mixture across operators.
    pub styles: StyleMix,
    /// Optional per-tier overrides of `styles`.
    pub tier_styles: TierStyles,
    /// Router-vendor mixture across operators (drives which vendor's
    /// interface fragments appear in hostnames).
    pub vendors: VendorMix,
    /// Probability that an ASN-bearing hostname is stale (names a
    /// previous neighbor).
    pub stale_rate: f64,
    /// Probability of a single-digit typo in an embedded ASN.
    pub typo_rate: f64,
    /// Probability that an operator annotates a *sibling* ASN of the
    /// neighbor (applies only when the neighbor's organization has
    /// several ASNs).
    pub sibling_embed_rate: f64,
    /// Probability a named interconnect interface keeps a hostname at
    /// all (operators do not name everything).
    pub name_coverage: f64,
    /// Number of traceroute vantage points.
    pub vantage_points: usize,
    /// Probability a hop does not respond.
    pub unresponsive_rate: f64,
    /// Probability a hop answers from a different interface of the same
    /// router (a third-party address) — a classic traceroute artefact
    /// that pollutes bdrmapIT's subsequent sets.
    pub third_party_rate: f64,
    /// Average number of extra peer links per tier-2 AS.
    pub tier2_peering: f64,
    /// Fraction of edge ASes joining at least one IXP.
    pub ixp_member_rate: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 20200127,
            tier1: 8,
            tier2: 56,
            edge: 360,
            ixps: 16,
            sibling_org_rate: 0.05,
            styles: StyleMix::default(),
            tier_styles: TierStyles::default(),
            vendors: VendorMix::default(),
            stale_rate: 0.05,
            typo_rate: 0.004,
            sibling_embed_rate: 0.18,
            name_coverage: 0.92,
            vantage_points: 24,
            unresponsive_rate: 0.03,
            third_party_rate: 0.18,
            tier2_peering: 2.0,
            ixp_member_rate: 0.25,
        }
    }
}

impl SimConfig {
    /// Total AS count.
    pub fn total_ases(&self) -> usize {
        self.tier1 + self.tier2 + self.edge
    }

    /// Checks the configuration is generatable: positive topology
    /// counts where the builder requires them, probabilities in
    /// `[0, 1]`, and every style/vendor mix a usable distribution.
    /// [`crate::asgen::generate`] calls this and panics on failure, so
    /// a degenerate config fails loudly instead of producing a silent
    /// all-`None` naming world.
    pub fn validate(&self) -> Result<(), String> {
        if self.tier1 == 0 {
            return Err("tier1 must be at least 1 (the clique supplies transit)".into());
        }
        if self.vantage_points == 0 {
            return Err("vantage_points must be at least 1".into());
        }
        for (name, v) in [
            ("sibling_org_rate", self.sibling_org_rate),
            ("stale_rate", self.stale_rate),
            ("typo_rate", self.typo_rate),
            ("sibling_embed_rate", self.sibling_embed_rate),
            ("name_coverage", self.name_coverage),
            ("unresponsive_rate", self.unresponsive_rate),
            ("third_party_rate", self.third_party_rate),
            ("ixp_member_rate", self.ixp_member_rate),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(format!("{name} must be a probability in 0..=1, got {v}"));
            }
        }
        if !self.tier2_peering.is_finite() || self.tier2_peering < 0.0 {
            return Err(format!(
                "tier2_peering must be a non-negative link count, got {}",
                self.tier2_peering
            ));
        }
        self.styles.validate().map_err(|e| format!("styles: {e}"))?;
        for (tier, mix) in self.tier_styles.entries() {
            if let Some(m) = mix {
                m.validate().map_err(|e| format!("styles.{tier}: {e}"))?;
            }
        }
        self.vendors.validate().map_err(|e| format!("vendors: {e}"))?;
        Ok(())
    }

    /// The effective style mix for a tier (override or base).
    pub fn styles_for(&self, tier: crate::asgen::Tier) -> StyleMix {
        let o = match tier {
            crate::asgen::Tier::Tier1 => self.tier_styles.tier1,
            crate::asgen::Tier::Tier2 => self.tier_styles.tier2,
            crate::asgen::Tier::Edge => self.tier_styles.edge,
        };
        o.unwrap_or(self.styles)
    }

    /// A small configuration for fast unit tests.
    pub fn tiny(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            tier1: 3,
            tier2: 8,
            edge: 40,
            ixps: 2,
            vantage_points: 6,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let c = SimConfig::default();
        assert_eq!(c.total_ases(), 8 + 56 + 360);
        let w = c.styles.weights();
        assert!(w.iter().all(|&x| x >= 0.0));
        assert!(w.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn tiny_is_smaller() {
        let c = SimConfig::tiny(1);
        assert!(c.total_ases() < SimConfig::default().total_ases());
        assert_eq!(c.seed, 1);
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
        assert_eq!(SimConfig::tiny(7).validate(), Ok(()));
    }

    #[test]
    fn zero_style_mix_rejected() {
        let zero = StyleMix {
            none: 0.0,
            infra: 0.0,
            simple: 0.0,
            start: 0.0,
            end: 0.0,
            bare: 0.0,
            complex: 0.0,
            own_asn: 0.0,
            as_name: 0.0,
            ip_embed: 0.0,
        };
        let err = zero.validate().unwrap_err();
        assert!(err.contains("zero total weight"), "{err}");
        let mut cfg = SimConfig::tiny(1);
        cfg.styles = zero;
        assert!(cfg.validate().unwrap_err().starts_with("styles:"));
        // Per-tier overrides are validated too.
        let mut cfg = SimConfig::tiny(1);
        cfg.tier_styles.edge = Some(zero);
        assert!(cfg.validate().unwrap_err().starts_with("styles.edge:"));
    }

    #[test]
    fn negative_and_non_finite_weights_rejected() {
        let mut m = StyleMix::default();
        m.simple = -0.1;
        assert!(m.validate().unwrap_err().contains("simple"));
        m.simple = f64::NAN;
        assert!(m.validate().is_err());
        let mut v = VendorMix::default();
        v.cisco = -1.0;
        assert!(v.validate().unwrap_err().contains("cisco"));
        v = VendorMix { generic: 0.0, juniper: 0.0, cisco: 0.0, arista: 0.0 };
        assert!(v.validate().unwrap_err().contains("zero total"));
    }

    #[test]
    fn out_of_range_rates_rejected() {
        let mut cfg = SimConfig::tiny(1);
        cfg.stale_rate = 1.5;
        assert!(cfg.validate().unwrap_err().contains("stale_rate"));
        let mut cfg = SimConfig::tiny(1);
        cfg.tier1 = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn styles_for_prefers_override() {
        let mut cfg = SimConfig::tiny(1);
        let mut loud = StyleMix::default();
        loud.simple = 9.0;
        cfg.tier_styles.tier2 = Some(loud);
        assert_eq!(cfg.styles_for(crate::asgen::Tier::Tier2), loud);
        assert_eq!(cfg.styles_for(crate::asgen::Tier::Tier1), cfg.styles);
        assert_eq!(cfg.styles_for(crate::asgen::Tier::Edge), cfg.styles);
    }
}
