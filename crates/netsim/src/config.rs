//! Simulation configuration.
//!
//! Defaults produce an Internet small enough to learn from in seconds but
//! large enough to show the paper's effects; the ITDK timeline in
//! `hoiho-itdk` scales several of these knobs per snapshot year (more
//! operators embedding ASNs, more vantage points, better heuristics —
//! the three growth factors §4 names for Figure 5).

/// Mixture of naming styles across operators. Weights need not sum to 1;
/// they are normalised. The defaults are loosely calibrated to Table 1:
/// most neighbor-annotating operators put the ASN at the start, while
/// own-ASN operators favour the end of the hostname.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StyleMix {
    /// No PTR records, or names carrying no AS information.
    pub none: f64,
    /// Plain infrastructure names (interface/router/pop, no ASN).
    pub infra: f64,
    /// `^as<asn>\.suffix$` only (Table 1 "simple").
    pub simple: f64,
    /// `as<asn>` at the start plus more fields ("start").
    pub start: f64,
    /// `as<asn>` at the end, fields before ("end").
    pub end: f64,
    /// ASN digits without an alphabetic annotation ("bare").
    pub bare: f64,
    /// ASN mid-hostname, odd annotations, or multiple formats ("complex").
    pub complex: f64,
    /// Operator embeds its *own* ASN in every hostname (Figure 2).
    pub own_asn: f64,
    /// Operator embeds the neighbor's *name*, not number (Figure 1,
    /// telia/seabone style) — not learnable as an ASN convention.
    pub as_name: f64,
    /// Hostnames derived from the IP address (Figure 3b).
    pub ip_embed: f64,
}

impl Default for StyleMix {
    fn default() -> Self {
        StyleMix {
            none: 0.30,
            infra: 0.22,
            simple: 0.025,
            start: 0.10,
            end: 0.040,
            bare: 0.030,
            complex: 0.045,
            own_asn: 0.05,
            as_name: 0.13,
            ip_embed: 0.10,
        }
    }
}

impl StyleMix {
    /// The weights as a fixed array (order matches
    /// [`crate::naming::StyleKind::ALL`]).
    pub fn weights(&self) -> [f64; 10] {
        [
            self.none,
            self.infra,
            self.simple,
            self.start,
            self.end,
            self.bare,
            self.complex,
            self.own_asn,
            self.as_name,
            self.ip_embed,
        ]
    }
}

/// Top-level simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// RNG seed; everything downstream is deterministic in this.
    pub seed: u64,
    /// Number of tier-1 (transit-free, mutually peering) ASes.
    pub tier1: usize,
    /// Number of tier-2 (regional transit) ASes.
    pub tier2: usize,
    /// Number of edge ASes (access networks, enterprises, stubs).
    pub edge: usize,
    /// Number of IXPs.
    pub ixps: usize,
    /// Fraction of organizations operating 2–3 sibling ASNs.
    pub sibling_org_rate: f64,
    /// Naming-style mixture across operators.
    pub styles: StyleMix,
    /// Probability that an ASN-bearing hostname is stale (names a
    /// previous neighbor).
    pub stale_rate: f64,
    /// Probability of a single-digit typo in an embedded ASN.
    pub typo_rate: f64,
    /// Probability that an operator annotates a *sibling* ASN of the
    /// neighbor (applies only when the neighbor's organization has
    /// several ASNs).
    pub sibling_embed_rate: f64,
    /// Probability a named interconnect interface keeps a hostname at
    /// all (operators do not name everything).
    pub name_coverage: f64,
    /// Number of traceroute vantage points.
    pub vantage_points: usize,
    /// Probability a hop does not respond.
    pub unresponsive_rate: f64,
    /// Probability a hop answers from a different interface of the same
    /// router (a third-party address) — a classic traceroute artefact
    /// that pollutes bdrmapIT's subsequent sets.
    pub third_party_rate: f64,
    /// Average number of extra peer links per tier-2 AS.
    pub tier2_peering: f64,
    /// Fraction of edge ASes joining at least one IXP.
    pub ixp_member_rate: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 20200127,
            tier1: 8,
            tier2: 56,
            edge: 360,
            ixps: 16,
            sibling_org_rate: 0.05,
            styles: StyleMix::default(),
            stale_rate: 0.05,
            typo_rate: 0.004,
            sibling_embed_rate: 0.18,
            name_coverage: 0.92,
            vantage_points: 24,
            unresponsive_rate: 0.03,
            third_party_rate: 0.18,
            tier2_peering: 2.0,
            ixp_member_rate: 0.25,
        }
    }
}

impl SimConfig {
    /// Total AS count.
    pub fn total_ases(&self) -> usize {
        self.tier1 + self.tier2 + self.edge
    }

    /// A small configuration for fast unit tests.
    pub fn tiny(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            tier1: 3,
            tier2: 8,
            edge: 40,
            ixps: 2,
            vantage_points: 6,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let c = SimConfig::default();
        assert_eq!(c.total_ases(), 8 + 56 + 360);
        let w = c.styles.weights();
        assert!(w.iter().all(|&x| x >= 0.0));
        assert!(w.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn tiny_is_smaller() {
        let c = SimConfig::tiny(1);
        assert!(c.total_ases() < SimConfig::default().total_ases());
        assert_eq!(c.seed, 1);
    }
}
