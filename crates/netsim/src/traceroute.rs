//! Traceroute simulation over the synthetic Internet.
//!
//! AS-level forwarding follows Gao-Rexford policy routing: an AS prefers
//! routes through customers over peers over providers, never exporting a
//! peer/provider route to another peer/provider (valley-free paths). The
//! route computation is the standard three-phase BFS per destination:
//! customer routes propagate up provider links, one optional peer edge,
//! then provider routes propagate down.
//!
//! Router-level expansion walks the star topology inside each AS and the
//! interconnect/IXP links between them, recording at each hop the
//! address of the interface the packet *entered* — which, on
//! supplier-addressed interconnects, is an address routed and named by
//! the previous AS (the paper's central measurement artefact).

use crate::internet::{Internet, RouterId};
use hoiho_asdb::{Addr, Asn, Relationship};
use hoiho_devkit::rngs::StdRng;
use hoiho_devkit::{RngExt, SeedableRng};
use std::collections::BinaryHeap;

/// One traceroute.
#[derive(Debug, Clone)]
pub struct TracePath {
    /// ASN hosting the vantage point.
    pub vp_asn: Asn,
    /// Destination address probed.
    pub dst: Addr,
    /// Hop responses in order; `None` is an unresponsive hop.
    pub hops: Vec<Option<Addr>>,
    /// True when the destination itself answered as the final hop.
    pub reached: bool,
}

/// A collection of traceroutes from a set of vantage points.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    /// All paths.
    pub paths: Vec<TracePath>,
    /// Dense AS ids hosting vantage points.
    pub vp_as_ids: Vec<usize>,
}

const INF: u32 = u32::MAX;

/// Per-destination policy routing state.
pub struct Routing {
    /// Adjacency (dense ids) restricted to ASes actually linked, with
    /// the relationship from the perspective of the first AS.
    nbrs: Vec<Vec<(usize, Relationship)>>,
}

impl Routing {
    /// Builds the routing adjacency from an [`Internet`].
    pub fn new(net: &Internet) -> Routing {
        let n = net.aslevel.ases.len();
        let mut nbrs: Vec<Vec<(usize, Relationship)>> = vec![Vec::new(); n];
        for &(a, b) in net.link_index.keys() {
            let ra = net.aslevel.ases[a].asn;
            let rb = net.aslevel.ases[b].asn;
            if let Some(rel) = net.aslevel.rel.relationship(ra, rb) {
                nbrs[a].push((b, rel));
            }
        }
        for list in &mut nbrs {
            list.sort_by_key(|&(id, _)| id);
            list.dedup_by_key(|&mut (id, _)| id);
        }
        Routing { nbrs }
    }

    /// Computes the next-hop table towards destination `d` (dense id).
    /// `next[x]` is the dense id of the AS `x` forwards to, or `None`
    /// when `x` has no valley-free route to `d`.
    #[allow(clippy::needless_range_loop)] // x indexes several parallel tables
    pub fn next_hops(&self, d: usize) -> Vec<Option<usize>> {
        let n = self.nbrs.len();
        let mut dist_cust = vec![INF; n];
        dist_cust[d] = 0;
        // Customer routes climb provider edges: if x has a customer
        // route, every provider of x learns one.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize)>> = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0, d)));
        while let Some(std::cmp::Reverse((dx, x))) = heap.pop() {
            if dx > dist_cust[x] {
                continue;
            }
            for &(y, rel) in &self.nbrs[x] {
                // y is x's provider when x is y's customer.
                if rel == Relationship::CustomerOf && dx + 1 < dist_cust[y] {
                    dist_cust[y] = dx + 1;
                    heap.push(std::cmp::Reverse((dx + 1, y)));
                }
            }
        }
        // Peer routes: exactly one lateral step onto a customer route.
        let mut dist_peer = vec![INF; n];
        for x in 0..n {
            for &(y, rel) in &self.nbrs[x] {
                if rel == Relationship::Peer && dist_cust[y] != INF {
                    dist_peer[x] = dist_peer[x].min(dist_cust[y] + 1);
                }
            }
        }
        // Provider routes descend customer edges from any base route.
        let base =
            |i: usize, dc: &Vec<u32>, dp: &Vec<u32>| -> u32 { dc[i].min(dp[i]) };
        let mut dist_prov = vec![INF; n];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize)>> = BinaryHeap::new();
        for x in 0..n {
            let b = base(x, &dist_cust, &dist_peer);
            if b != INF {
                heap.push(std::cmp::Reverse((b, x)));
            }
        }
        while let Some(std::cmp::Reverse((dx, x))) = heap.pop() {
            let best_x = base(x, &dist_cust, &dist_peer).min(dist_prov[x]);
            if dx > best_x {
                continue;
            }
            for &(y, rel) in &self.nbrs[x] {
                // y is x's customer: y can use x as provider.
                if rel == Relationship::ProviderOf && dx + 1 < dist_prov[y] {
                    dist_prov[y] = dx + 1;
                    heap.push(std::cmp::Reverse((dx + 1, y)));
                }
            }
        }

        // Next-hop selection: customer > peer > provider, shortest, then
        // lowest dense id (deterministic).
        let mut next: Vec<Option<usize>> = vec![None; n];
        for x in 0..n {
            if x == d {
                continue;
            }
            let mut choice: Option<usize> = None;
            if dist_cust[x] != INF {
                choice = self.nbrs[x]
                    .iter()
                    .filter(|&&(y, rel)| {
                        rel == Relationship::ProviderOf && dist_cust[y] == dist_cust[x] - 1
                    })
                    .map(|&(y, _)| y)
                    .min();
            } else if dist_peer[x] != INF {
                choice = self.nbrs[x]
                    .iter()
                    .filter(|&&(y, rel)| {
                        rel == Relationship::Peer && dist_cust[y] == dist_peer[x] - 1
                    })
                    .map(|&(y, _)| y)
                    .min();
            } else if dist_prov[x] != INF {
                choice = self.nbrs[x]
                    .iter()
                    .filter(|&&(y, rel)| {
                        rel == Relationship::CustomerOf
                            && base(y, &dist_cust, &dist_peer).min(dist_prov[y])
                                == dist_prov[x] - 1
                    })
                    .map(|&(y, _)| y)
                    .min();
            }
            next[x] = choice;
        }
        next
    }

    /// The AS-level path from `s` to `d` under `next` (from
    /// [`Routing::next_hops`] for `d`), inclusive of both ends.
    pub fn as_path(&self, s: usize, d: usize, next: &[Option<usize>]) -> Option<Vec<usize>> {
        let mut path = vec![s];
        let mut cur = s;
        while cur != d {
            let nx = next[cur]?;
            // Defensive: valley-free next-hops cannot loop, but a bug
            // would hang the simulator, so bound the walk.
            if path.len() > self.nbrs.len() {
                return None;
            }
            path.push(nx);
            cur = nx;
        }
        Some(path)
    }
}

/// Runs the full measurement campaign: every vantage point traceroutes
/// to one destination in every AS.
pub fn run_traceroutes(net: &Internet) -> TraceSet {
    let mut rng = StdRng::seed_from_u64(net.cfg.seed ^ 0x7E57_0003);
    let n = net.aslevel.ases.len();
    let routing = Routing::new(net);

    // Vantage points: deterministic spread across edge and tier-2 ASes.
    let mut vp_as_ids: Vec<usize> = Vec::new();
    let mut cursor = 0usize;
    while vp_as_ids.len() < net.cfg.vantage_points.min(n) {
        let cand = (net.cfg.tier1 + cursor * 7) % n;
        if !vp_as_ids.contains(&cand) {
            vp_as_ids.push(cand);
        }
        cursor += 1;
        if cursor > 4 * n {
            break;
        }
    }

    let mut paths = Vec::new();
    for d in 0..n {
        let next = routing.next_hops(d);
        let dst = net.dest_addr(d);
        for &vp in &vp_as_ids {
            if vp == d {
                continue;
            }
            let Some(as_path) = routing.as_path(vp, d, &next) else { continue };
            let (hops, reached) = expand_path(net, &as_path, &mut rng);
            paths.push(TracePath {
                vp_asn: net.aslevel.ases[vp].asn,
                dst,
                hops,
                reached,
            });
        }
    }
    TraceSet { paths, vp_as_ids }
}

/// Expands an AS path into hop addresses.
fn expand_path(
    net: &Internet,
    as_path: &[usize],
    rng: &mut StdRng,
) -> (Vec<Option<Addr>>, bool) {
    let mut hops: Vec<Addr> = Vec::new();
    // The probe starts at the VP AS's core router.
    let mut cur_router: RouterId = net.as_routers[as_path[0]][0];
    for w in as_path.windows(2) {
        let (a, b) = (w[0], w[1]);
        let Some(&li) = net.link_index.get(&(a, b)) else { break };
        let link = &net.links[li];
        let (exit_router, entry_router, entry_iface) = if link.a_as == a {
            (link.a_router, link.b_router, link.b_iface)
        } else {
            (link.b_router, link.a_router, link.a_iface)
        };
        // Internal walk to the exit border (star topology: at most two
        // internal hops, via the core).
        record_internal(net, &mut hops, cur_router, exit_router, a);
        // Crossing the interconnect: the hop answers with the entry
        // interface — a supplier-routed address on the neighbor's router.
        // With some probability the router answers from a *different*
        // interface instead (a third-party address), the classic
        // traceroute artefact that muddies ownership evidence.
        let mut answer = net.interfaces[entry_iface as usize].addr;
        if rng.random_bool(net.cfg.third_party_rate) {
            // Third-party answers come from the interface the reply
            // leaves through — some point-to-point or internal port,
            // never the shared IXP LAN.
            let candidates: Vec<u32> = net.routers[entry_router as usize]
                .interfaces
                .iter()
                .copied()
                .filter(|&i| {
                    net.interfaces[i as usize].kind != crate::internet::IfaceKind::IxpLan
                })
                .collect();
            if candidates.len() > 1 {
                let pick = candidates[rng.random_range(0..candidates.len())];
                answer = net.interfaces[pick as usize].addr;
            }
        }
        hops.push(answer);
        cur_router = entry_router;
    }
    // Inside the destination AS, walk to the core where the host hangs.
    let d = *as_path.last().expect("non-empty path");
    let core = net.as_routers[d][0];
    record_internal(net, &mut hops, cur_router, core, d);
    // The destination host answers most of the time.
    let reached = rng.random_bool(0.85);
    let mut out: Vec<Option<Addr>> = hops
        .into_iter()
        .map(|h| if rng.random_bool(net.cfg.unresponsive_rate) { None } else { Some(h) })
        .collect();
    if reached {
        out.push(Some(net.dest_addr(d)));
    }
    (out, reached)
}

/// Records the interior hops of a star-topology AS between two routers.
fn record_internal(
    net: &Internet,
    hops: &mut Vec<Addr>,
    from: RouterId,
    to: RouterId,
    as_id: usize,
) {
    if from == to {
        return;
    }
    let core = net.as_routers[as_id][0];
    if from != core && to != core {
        // from → core → to.
        if let Some(&(_, on_core)) = net.internal.get(&(from, core)) {
            hops.push(net.interfaces[on_core as usize].addr);
        }
        if let Some(&(_, on_to)) = net.internal.get(&(core, to)) {
            hops.push(net.interfaces[on_to as usize].addr);
        }
    } else if let Some(&(_, on_to)) = net.internal.get(&(from, to)) {
        hops.push(net.interfaces[on_to as usize].addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::internet::Internet;
    use hoiho_asdb::Relationship;

    fn net() -> Internet {
        Internet::generate(&SimConfig::tiny(31))
    }

    #[test]
    fn traceroutes_produced() {
        let n = net();
        let ts = run_traceroutes(&n);
        assert_eq!(ts.vp_as_ids.len(), n.cfg.vantage_points);
        assert!(!ts.paths.is_empty());
        // Typical scale: most VP/destination pairs produce a path.
        assert!(ts.paths.len() > n.aslevel.ases.len());
    }

    #[test]
    fn hops_are_known_interfaces_or_dest() {
        let n = net();
        let ts = run_traceroutes(&n);
        for p in ts.paths.iter().take(500) {
            for (i, h) in p.hops.iter().enumerate() {
                let Some(addr) = h else { continue };
                let is_last = i == p.hops.len() - 1;
                let known = n.addr_index.contains_key(addr);
                let is_dst = *addr == p.dst;
                assert!(known || (is_last && is_dst && p.reached), "stray hop {addr:#x}");
            }
        }
    }

    #[test]
    fn paths_are_valley_free() {
        let n = net();
        let routing = Routing::new(&n);
        let total = n.aslevel.ases.len();
        for d in (0..total).step_by(7) {
            let next = routing.next_hops(d);
            for s in (0..total).step_by(5) {
                if s == d {
                    continue;
                }
                let Some(path) = routing.as_path(s, d, &next) else { continue };
                assert!(path.len() >= 2);
                assert_eq!(path[0], s);
                assert_eq!(*path.last().unwrap(), d);
                // Valley-free: once we step down (to a customer) or
                // across (peer), we never step up (to a provider) and
                // cross at most one peer edge.
                let mut descending = false;
                let mut peer_edges = 0;
                for w in path.windows(2) {
                    let ra = n.aslevel.ases[w[0]].asn;
                    let rb = n.aslevel.ases[w[1]].asn;
                    match n.aslevel.rel.relationship(ra, rb).expect("adjacent") {
                        Relationship::CustomerOf => {
                            assert!(!descending, "up step after down step in {path:?}");
                        }
                        Relationship::Peer => {
                            peer_edges += 1;
                            descending = true;
                        }
                        Relationship::ProviderOf => {
                            descending = true;
                        }
                    }
                }
                assert!(peer_edges <= 1, "multiple peer edges in {path:?}");
            }
        }
    }

    #[test]
    fn reachability_is_high() {
        // Everyone has a provider chain to the tier-1 clique, so routes
        // must exist between almost all pairs.
        let n = net();
        let routing = Routing::new(&n);
        let total = n.aslevel.ases.len();
        let mut ok = 0;
        let mut all = 0;
        for d in 0..total {
            let next = routing.next_hops(d);
            for s in 0..total {
                if s == d {
                    continue;
                }
                all += 1;
                if routing.as_path(s, d, &next).is_some() {
                    ok += 1;
                }
            }
        }
        assert!(ok as f64 / all as f64 > 0.95, "reachability {ok}/{all}");
    }

    #[test]
    fn deterministic() {
        let n = net();
        let a = run_traceroutes(&n);
        let b = run_traceroutes(&n);
        assert_eq!(a.paths.len(), b.paths.len());
        for (x, y) in a.paths.iter().zip(&b.paths) {
            assert_eq!(x.hops, y.hops);
        }
    }

    #[test]
    fn far_side_addresses_appear_in_paths() {
        // Traceroute must observe supplier-routed addresses on customer
        // routers — the measurement artefact under study.
        let n = net();
        let ts = run_traceroutes(&n);
        let mut seen_far = 0;
        for p in &ts.paths {
            for h in p.hops.iter().flatten() {
                if let Some(iface) = n.iface_at(*h) {
                    if iface.kind == crate::internet::IfaceKind::InterconnectFar {
                        seen_far += 1;
                    }
                }
            }
        }
        assert!(seen_far > 50, "only {seen_far} far-side observations");
    }
}
