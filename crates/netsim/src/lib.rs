//! # hoiho-netsim — a synthetic Internet for hostname-convention research
//!
//! The paper trains and validates on measurement data we cannot ship
//! (CAIDA ITDK traceroute-derived router graphs, operator ground truth).
//! This crate builds the closest synthetic equivalent that exercises the
//! same code paths:
//!
//! * [`asgen`] — an AS-level topology: tiers, customer/provider and peer
//!   relationships, sibling organizations, prefix allocations, IXPs.
//! * [`naming`] — per-operator hostname conventions drawn from the
//!   taxonomy the paper observed (Table 1): `as`-prefixed neighbor ASNs
//!   at the start or end, bare ASNs, complex mixes, operators embedding
//!   their *own* ASN everywhere (Figure 2), AS-*name* conventions the
//!   learner must not be misled by, and IP-derived hostnames (Figure 3b).
//!   Stale hostnames and digit typos are injected at configurable rates.
//! * [`internet`] — the router-level topology. The load-bearing semantic
//!   from the paper's Figure 1: when two ASes interconnect, the supplier
//!   allocates the /30 or /31 from *its own* address space and assigns
//!   PTR names to *both* sides under *its own* suffix — so the address
//!   and name of a border interface attribute to the supplier while the
//!   router belongs to the neighbor. Heuristic inference then errs
//!   exactly the way the paper describes.
//! * [`traceroute`] — vantage points, valley-free BGP path selection,
//!   router-level path expansion, and hop responses using the inbound
//!   interface address.
//!
//! Everything is seeded and deterministic: the same [`SimConfig`] always
//! produces the same Internet.

pub mod asgen;
pub mod config;
pub mod internet;
pub mod naming;
pub mod traceroute;

pub use config::{SimConfig, StyleMix, TierStyles, VendorMix};
pub use internet::{EmbeddedInfo, Interface, Internet, Link, Router};
pub use naming::{StyleKind, VendorKind};
pub use traceroute::{TracePath, TraceSet};
