//! Router-level topology with supplier-assigned interconnect addressing.
//!
//! The semantics that drive every result in the paper (Figure 1): when
//! AS *A* and AS *B* interconnect, the *supplier* (the provider, or one
//! peer) allocates a /31 from its own address space and assigns PTR
//! names to **both** sides under its own suffix. The neighbor-facing
//! address — the one traceroute sees when a packet enters *B*'s border
//! router — is therefore routed and named by *A*, even though the router
//! belongs to *B*. Naïve IP-to-AS mapping attributes that router to *A*;
//! hostnames that embed *B*'s ASN are the corrective signal.
//!
//! IXP peering LANs add the second hard case: addresses with no BGP
//! origin at all, where only the IXP directory, PeeringDB, and hostnames
//! identify the member.
//!
//! The builder records full ground truth (who operates each router, what
//! each hostname's embedded ASN means, which hostnames are stale or
//! typoed) so experiments can score inference exactly.

use crate::asgen::{self, AsLevel, Tier};
use crate::config::SimConfig;
use crate::naming::{NameCtx, OperatorNaming, StyleKind};
use hoiho_asdb::{Addr, Asn};
use hoiho_devkit::rngs::StdRng;
use hoiho_devkit::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Dense router identifier.
pub type RouterId = u32;
/// Dense interface identifier.
pub type IfaceId = u32;

/// One router, with ground-truth ownership.
#[derive(Debug, Clone)]
pub struct Router {
    /// Identifier (index into [`Internet::routers`]).
    pub id: RouterId,
    /// Dense AS id of the operator (ground truth).
    pub as_id: usize,
    /// The operator's ASN (ground truth).
    pub owner: Asn,
    /// Interfaces on this router.
    pub interfaces: Vec<IfaceId>,
}

/// What the ASN digits embedded in a hostname mean (ground truth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddedInfo {
    /// The supplier annotated the neighbor's ASN.
    NeighborAsn {
        /// Digits actually written in the hostname (after stale, typo,
        /// or sibling injection).
        written: String,
        /// The ASN of the current neighbor (the router's operator).
        intended: Asn,
        /// True when `written` names a previous neighbor (the hostname
        /// is stale and wrong).
        stale: bool,
        /// True when `written` is a typo of `intended`.
        typo: bool,
        /// True when `written` is a sibling ASN of the operator (the
        /// Microsoft AS8075/AS8069 situation in the paper's Table 2).
        sibling: bool,
    },
    /// The operator embedded its own ASN (Figure 2 style).
    OwnAsn {
        /// The embedded (operator's) ASN.
        asn: Asn,
    },
    /// The hostname carries no ASN.
    NoAsn,
}

/// Why an interface exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceKind {
    /// Internal backbone link.
    Internal,
    /// Supplier's own side of an interconnect /31.
    InterconnectNear,
    /// Neighbor-facing side of an interconnect /31 (address and name
    /// belong to the supplier; the router belongs to the neighbor).
    InterconnectFar,
    /// Port on an IXP peering LAN.
    IxpLan,
}

/// One interface.
#[derive(Debug, Clone)]
pub struct Interface {
    /// Identifier (index into [`Internet::interfaces`]).
    pub id: IfaceId,
    /// IPv4 address.
    pub addr: Addr,
    /// Owning router.
    pub router: RouterId,
    /// PTR hostname, if one is assigned.
    pub hostname: Option<String>,
    /// The AS that assigned the address and hostname (the supplier for
    /// interconnects, the IXP or member for LAN ports, the operator for
    /// internal links).
    pub namer: Option<Asn>,
    /// Role of the interface.
    pub kind: IfaceKind,
    /// Ground truth about the embedded ASN.
    pub embedded: EmbeddedInfo,
}

/// How two ASes exchange traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Point-to-point /31 supplied by one side (dense AS id).
    PtP {
        /// Dense AS id of the address supplier.
        supplier: usize,
    },
    /// Across an IXP peering LAN.
    Ixp {
        /// IXP id in the directory.
        ixp: u32,
    },
}

/// A usable forwarding adjacency between two ASes.
#[derive(Debug, Clone)]
pub struct Link {
    /// Dense AS id of side A.
    pub a_as: usize,
    /// Dense AS id of side B.
    pub b_as: usize,
    /// Border router on side A.
    pub a_router: RouterId,
    /// Border router on side B.
    pub b_router: RouterId,
    /// Interface used by A towards B.
    pub a_iface: IfaceId,
    /// Interface used by B towards A (the address a packet entering B
    /// responds from).
    pub b_iface: IfaceId,
    /// PtP or IXP.
    pub kind: LinkKind,
}

/// The full synthetic Internet.
#[derive(Debug, Clone)]
pub struct Internet {
    /// Configuration used to build it.
    pub cfg: SimConfig,
    /// The AS level (relationships, orgs, prefixes, IXPs, BGP).
    pub aslevel: AsLevel,
    /// All routers.
    pub routers: Vec<Router>,
    /// All interfaces.
    pub interfaces: Vec<Interface>,
    /// Inter-AS links.
    pub links: Vec<Link>,
    /// Routers of each AS (indexed by dense AS id); element 0 is the
    /// core router.
    pub as_routers: Vec<Vec<RouterId>>,
    /// (a_as, b_as) → index into `links`, both directions.
    pub link_index: BTreeMap<(usize, usize), usize>,
    /// Internal adjacency: (router, router) → (iface on first, iface on
    /// second), both directions.
    pub internal: BTreeMap<(RouterId, RouterId), (IfaceId, IfaceId)>,
    /// addr → interface.
    pub addr_index: BTreeMap<Addr, IfaceId>,
}

/// Per-AS address cursor within its first prefix.
struct AsAlloc {
    base: Addr,
    used: u32,
    limit: u32,
}

impl AsAlloc {
    fn take(&mut self, n: u32) -> Option<Addr> {
        if self.used + n > self.limit {
            return None;
        }
        let a = self.base + self.used;
        self.used += n;
        Some(a)
    }
}

impl Internet {
    /// Builds the Internet for a configuration.
    pub fn generate(cfg: &SimConfig) -> Internet {
        Builder::new(cfg.clone()).build()
    }

    /// Interface by address.
    pub fn iface_at(&self, addr: Addr) -> Option<&Interface> {
        self.addr_index.get(&addr).map(|&i| &self.interfaces[i as usize])
    }

    /// Ground-truth operator of the router holding `addr`.
    pub fn owner_of_addr(&self, addr: Addr) -> Option<Asn> {
        self.iface_at(addr).map(|i| self.routers[i.router as usize].owner)
    }

    /// The traceroute destination address for an AS (a host inside its
    /// first prefix).
    pub fn dest_addr(&self, as_id: usize) -> Addr {
        let p = self.aslevel.ases[as_id].prefixes[0];
        p.addr() + (p.size() as u32 - 2)
    }

    /// All interfaces with hostnames, as (addr, hostname, router owner)
    /// ground-truth rows.
    pub fn named_interfaces(&self) -> impl Iterator<Item = (&Interface, Asn)> {
        self.interfaces
            .iter()
            .filter(|i| i.hostname.is_some())
            .map(|i| (i, self.routers[i.router as usize].owner))
    }

    /// A stable 64-bit FNV-1a digest over the whole generated world —
    /// AS level, routers, interfaces (addresses, hostnames, ground
    /// truth), and links. Two [`Internet`]s with equal digests are
    /// byte-identical for every consumer in the workspace; the
    /// scenario compiler's determinism contract (same file + seed →
    /// identical world) is checked against this.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for a in &self.aslevel.ases {
            h.u64(u64::from(a.asn));
            h.u64(a.tier as u64);
            h.str(&a.brand);
            h.str(&a.naming.suffix);
            h.u64(a.naming.kind as u64);
            h.u64(u64::from(a.naming.variant));
            h.u64(a.naming.vendor as u64);
            for p in &a.naming.pops {
                h.str(p);
            }
            for p in &a.prefixes {
                h.u64(u64::from(p.addr()));
                h.u64(u64::from(p.len()));
            }
        }
        h.str(&self.aslevel.rel.to_text());
        for r in &self.routers {
            h.u64(u64::from(r.id));
            h.u64(r.as_id as u64);
            h.u64(u64::from(r.owner));
        }
        for i in &self.interfaces {
            h.u64(u64::from(i.id));
            h.u64(u64::from(i.addr));
            h.u64(u64::from(i.router));
            h.str(i.hostname.as_deref().unwrap_or("-"));
            h.u64(i.namer.map_or(u64::MAX, u64::from));
            h.u64(i.kind as u64);
            match &i.embedded {
                EmbeddedInfo::NoAsn => h.u64(0),
                EmbeddedInfo::OwnAsn { asn } => {
                    h.u64(1);
                    h.u64(u64::from(*asn));
                }
                EmbeddedInfo::NeighborAsn { written, intended, stale, typo, sibling } => {
                    h.u64(2);
                    h.str(written);
                    h.u64(u64::from(*intended));
                    h.u64(u64::from(*stale) | u64::from(*typo) << 1 | u64::from(*sibling) << 2);
                }
            }
        }
        for l in &self.links {
            h.u64(l.a_as as u64);
            h.u64(l.b_as as u64);
            h.u64(u64::from(l.a_iface));
            h.u64(u64::from(l.b_iface));
            match l.kind {
                LinkKind::PtP { supplier } => h.u64(supplier as u64),
                LinkKind::Ixp { ixp } => h.u64(u64::from(ixp) | 1 << 32),
            }
        }
        h.0
    }
}

/// FNV-1a, the workspace's house choice for cheap stable digests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

struct Builder {
    cfg: SimConfig,
    aslevel: AsLevel,
    rng: StdRng,
    routers: Vec<Router>,
    interfaces: Vec<Interface>,
    links: Vec<Link>,
    as_routers: Vec<Vec<RouterId>>,
    link_index: BTreeMap<(usize, usize), usize>,
    internal: BTreeMap<(RouterId, RouterId), (IfaceId, IfaceId)>,
    addr_index: BTreeMap<Addr, IfaceId>,
    alloc: Vec<AsAlloc>,
    /// Per-AS counter used as `link_index` in naming contexts.
    name_counter: Vec<u32>,
    /// Per-member IXP LAN interface: (as_id, ixp) → iface.
    ixp_port: BTreeMap<(usize, u32), IfaceId>,
}

impl Builder {
    fn new(cfg: SimConfig) -> Builder {
        let aslevel = asgen::generate(&cfg);
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xB0B0_0002);
        let n = aslevel.ases.len();
        let alloc = aslevel
            .ases
            .iter()
            .map(|a| {
                let p = a.prefixes[0];
                AsAlloc {
                    base: p.addr(),
                    used: 0,
                    // Keep the top quarter for destination hosts.
                    limit: (p.size() as u32).saturating_sub(p.size() as u32 / 4).max(8),
                }
            })
            .collect();
        Builder {
            cfg,
            aslevel,
            rng,
            routers: Vec::new(),
            interfaces: Vec::new(),
            links: Vec::new(),
            as_routers: vec![Vec::new(); n],
            link_index: BTreeMap::new(),
            internal: BTreeMap::new(),
            addr_index: BTreeMap::new(),
            alloc,
            name_counter: vec![0; n],
            ixp_port: BTreeMap::new(),
        }
    }

    fn build(mut self) -> Internet {
        self.make_routers();
        self.make_internal_links();
        self.make_ixp_ports();
        self.make_interconnects();
        Internet {
            cfg: self.cfg,
            aslevel: self.aslevel,
            routers: self.routers,
            interfaces: self.interfaces,
            links: self.links,
            as_routers: self.as_routers,
            link_index: self.link_index,
            internal: self.internal,
            addr_index: self.addr_index,
        }
    }

    fn new_router(&mut self, as_id: usize) -> RouterId {
        let id = self.routers.len() as RouterId;
        self.routers.push(Router {
            id,
            as_id,
            owner: self.aslevel.ases[as_id].asn,
            interfaces: Vec::new(),
        });
        self.as_routers[as_id].push(id);
        id
    }

    fn new_iface(
        &mut self,
        addr: Addr,
        router: RouterId,
        hostname: Option<String>,
        namer: Option<Asn>,
        kind: IfaceKind,
        embedded: EmbeddedInfo,
    ) -> IfaceId {
        let id = self.interfaces.len() as IfaceId;
        self.interfaces.push(Interface { id, addr, router, hostname, namer, kind, embedded });
        self.routers[router as usize].interfaces.push(id);
        self.addr_index.insert(addr, id);
        id
    }

    fn make_routers(&mut self) {
        for as_id in 0..self.aslevel.ases.len() {
            let n = match self.aslevel.ases[as_id].tier {
                Tier::Tier1 => 5,
                Tier::Tier2 => 3,
                Tier::Edge => 1 + usize::from(self.rng.random_bool(0.6)),
            };
            for _ in 0..n {
                self.new_router(as_id);
            }
        }
    }

    /// Star topology inside each AS: every router links to the core
    /// (router 0) over a /31 from the AS's own space.
    fn make_internal_links(&mut self) {
        for as_id in 0..self.aslevel.ases.len() {
            let routers = self.as_routers[as_id].clone();
            let core = routers[0];
            for &r in &routers[1..] {
                let Some(base) = self.alloc[as_id].take(2) else { continue };
                let asn = self.aslevel.ases[as_id].asn;
                let naming = self.aslevel.ases[as_id].naming.clone();
                let idx = self.bump_counter(as_id);
                let mk = |b: &mut Builder, addr: Addr, router: RouterId, idx2: u32| {
                    let ctx = NameCtx {
                        neighbor_asn: asn,
                        neighbor_slug: "core",
                        own_asn: asn,
                        link_index: idx2,
                        addr: hoiho_asdb::addr_octets(addr),
                    };
                    let hostname = if b.rng.random_bool(b.cfg.name_coverage) {
                        naming.infra_name(&ctx)
                    } else {
                        None
                    };
                    let embedded = match (&hostname, naming.kind) {
                        (Some(_), StyleKind::OwnAsn) => EmbeddedInfo::OwnAsn { asn },
                        _ => EmbeddedInfo::NoAsn,
                    };
                    b.new_iface(addr, router, hostname, Some(asn), IfaceKind::Internal, embedded)
                };
                let i0 = mk(self, base, core, idx);
                let i1 = mk(self, base + 1, r, idx.wrapping_add(1));
                self.internal.insert((core, r), (i0, i1));
                self.internal.insert((r, core), (i1, i0));
            }
        }
    }

    /// One port per (member, IXP) on the member's border router.
    ///
    /// IXP port PTR records are curated far better than interconnect
    /// names (ports are provisioned through the IXP's portal), so the
    /// stale rate is halved while the sibling-ASN phenomenon remains.
    fn make_ixp_ports(&mut self) {
        let saved_stale = self.cfg.stale_rate;
        self.cfg.stale_rate = saved_stale * 0.5;
        // Each IXP gets its own naming convention, biased towards
        // member-ASN-embedding styles (the PeeringDB-visible pattern).
        let ixps = self.aslevel.ixps.clone();
        for ix in ixps.ixps() {
            let mut ix_rng = StdRng::seed_from_u64(self.cfg.seed ^ (0xC0DE + u64::from(ix.id)));
            let style = match ix_rng.random_range(0..10u32) {
                0..=3 => StyleKind::Simple,
                4..=6 => StyleKind::Start,
                7 => StyleKind::Bare,
                8 => StyleKind::AsName,
                _ => StyleKind::Infra,
            };
            let mut ix_naming = OperatorNaming::generate(style, &mut ix_rng);
            // The IXP's own suffix reuses its directory name.
            ix_naming.suffix = format!("{}.net", ix.name);
            for (slot, &member) in ix.members.iter().enumerate() {
                let Some(as_id) = self.aslevel.id_of(member) else { continue };
                let addr = match ix.lan.nth(2 + slot as u64) {
                    Some(a) => a,
                    None => continue, // LAN full
                };
                let router = self.border_router(as_id);
                let member_slug = self.aslevel.ases[as_id].brand.clone();
                let ctx = NameCtx {
                    neighbor_asn: member,
                    neighbor_slug: &member_slug,
                    own_asn: member,
                    link_index: slot as u32,
                    addr: hoiho_asdb::addr_octets(addr),
                };
                // Either the IXP names the port (embedding the member
                // ASN) or the member names it under its own suffix.
                let ixp_names = self.rng.random_bool(0.7);
                let (hostname, namer, embedded) = if ixp_names {
                    let (h, emb) = self.render_neighbor_name(&ix_naming, &ctx, member);
                    (h, None, emb)
                } else {
                    let member_naming = self.aslevel.ases[as_id].naming.clone();
                    let h = member_naming.infra_name(&ctx);
                    let emb = match (&h, member_naming.kind) {
                        (Some(_), StyleKind::OwnAsn) => EmbeddedInfo::OwnAsn { asn: member },
                        _ => EmbeddedInfo::NoAsn,
                    };
                    (h, Some(member), emb)
                };
                let iface =
                    self.new_iface(addr, router, hostname, namer, IfaceKind::IxpLan, embedded);
                self.ixp_port.insert((as_id, ix.id), iface);
            }
        }
        self.cfg.stale_rate = saved_stale;
    }

    /// Renders a neighbor-annotating hostname with stale/typo injection,
    /// returning the hostname and ground truth. Applies name coverage.
    fn render_neighbor_name(
        &mut self,
        naming: &OperatorNaming,
        ctx: &NameCtx<'_>,
        neighbor: Asn,
    ) -> (Option<String>, EmbeddedInfo) {
        if !self.rng.random_bool(self.cfg.name_coverage) {
            return (None, EmbeddedInfo::NoAsn);
        }
        if naming.kind == StyleKind::None {
            return (None, EmbeddedInfo::NoAsn);
        }
        let annotates = naming.kind.embeds_neighbor_asn();
        if !annotates {
            let h = naming.interconnect_name(ctx, None);
            let emb = match (&h, naming.kind) {
                (Some(_), StyleKind::OwnAsn) => EmbeddedInfo::OwnAsn { asn: ctx.own_asn },
                _ => EmbeddedInfo::NoAsn,
            };
            return (h, emb);
        }
        // Stale: the hostname still names a previous neighbor. Sibling:
        // the operator annotates a different ASN of the same
        // organization. Typo: a single-digit slip.
        let stale = self.rng.random_bool(self.cfg.stale_rate);
        let siblings = self.aslevel.org.sibling_set(neighbor);
        let sibling = !stale
            && siblings.len() > 1
            && self.rng.random_bool(self.cfg.sibling_embed_rate);
        let typo = !stale && !sibling && self.rng.random_bool(self.cfg.typo_rate);
        let written = if stale {
            let other = loop {
                let i = self.rng.random_range(0..self.aslevel.ases.len());
                let a = self.aslevel.ases[i].asn;
                if a != neighbor {
                    break a;
                }
            };
            other.to_string()
        } else if sibling {
            let alt = siblings
                .iter()
                .copied()
                .find(|&s| s != neighbor)
                .expect("sibling set has another member");
            alt.to_string()
        } else if typo {
            OperatorNaming::typo_asn(neighbor, &mut self.rng)
        } else {
            neighbor.to_string()
        };
        let h = naming.interconnect_name(ctx, Some(written.clone()));
        (
            h,
            EmbeddedInfo::NeighborAsn { written, intended: neighbor, stale, typo, sibling },
        )
    }

    /// Picks a border router for an AS (any non-core router when the AS
    /// has several, round-robin; the core otherwise).
    fn border_router(&mut self, as_id: usize) -> RouterId {
        let n = self.as_routers[as_id].len();
        if n == 1 {
            self.as_routers[as_id][0]
        } else {
            let k = self.bump_counter(as_id) as usize;
            self.as_routers[as_id][1 + k % (n - 1)]
        }
    }

    fn bump_counter(&mut self, as_id: usize) -> u32 {
        let c = self.name_counter[as_id];
        self.name_counter[as_id] += 1;
        c
    }

    /// Creates forwarding adjacencies for every AS relationship.
    fn make_interconnects(&mut self) {
        // Deterministic link order: iterate the relationship text form.
        let mut pairs: Vec<(Asn, Asn, bool)> = Vec::new(); // (a, b, a_is_provider)
        let rel = self.aslevel.rel.clone();
        for a in rel.asns() {
            for c in rel.customers(a) {
                pairs.push((a, c, true));
            }
            for p in rel.peers(a) {
                if a < p {
                    pairs.push((a, p, false));
                }
            }
        }
        for (a, b, a_provides) in pairs {
            let (Some(a_id), Some(b_id)) = (self.aslevel.id_of(a), self.aslevel.id_of(b)) else {
                continue;
            };
            // Peers sharing an IXP usually interconnect across its LAN.
            if !a_provides {
                if let Some(ixp) = self.common_ixp(a_id, b_id) {
                    if self.rng.random_bool(0.5) {
                        self.add_ixp_link(a_id, b_id, ixp);
                        continue;
                    }
                }
            }
            // Point-to-point: the provider supplies addresses; peers
            // flip a deterministic coin.
            let coin = self.rng.random_bool(0.5);
            let supplier = if a_provides || coin { a_id } else { b_id };
            self.add_ptp_link(a_id, b_id, supplier);
        }
    }

    fn common_ixp(&self, a_id: usize, b_id: usize) -> Option<u32> {
        for ix in self.aslevel.ixps.ixps() {
            if self.ixp_port.contains_key(&(a_id, ix.id))
                && self.ixp_port.contains_key(&(b_id, ix.id))
            {
                return Some(ix.id);
            }
        }
        None
    }

    fn add_ixp_link(&mut self, a_id: usize, b_id: usize, ixp: u32) {
        let (Some(&ai), Some(&bi)) =
            (self.ixp_port.get(&(a_id, ixp)), self.ixp_port.get(&(b_id, ixp)))
        else {
            return;
        };
        let link = Link {
            a_as: a_id,
            b_as: b_id,
            a_router: self.interfaces[ai as usize].router,
            b_router: self.interfaces[bi as usize].router,
            a_iface: ai,
            b_iface: bi,
            kind: LinkKind::Ixp { ixp },
        };
        let idx = self.links.len();
        self.links.push(link);
        self.link_index.insert((a_id, b_id), idx);
        self.link_index.insert((b_id, a_id), idx);
    }

    fn add_ptp_link(&mut self, a_id: usize, b_id: usize, supplier: usize) {
        let customer = if supplier == a_id { b_id } else { a_id };
        let Some(base) = self.alloc[supplier].take(2) else { return };
        let sup_router = self.border_router(supplier);
        let cust_router = self.border_router(customer);
        let sup_asn = self.aslevel.ases[supplier].asn;
        let cust_asn = self.aslevel.ases[customer].asn;
        let naming = self.aslevel.ases[supplier].naming.clone();
        let cust_slug = self.aslevel.ases[customer].brand.clone();
        let idx = self.bump_counter(supplier);

        // Supplier's own side: infrastructure name.
        let near_ctx = NameCtx {
            neighbor_asn: cust_asn,
            neighbor_slug: &cust_slug,
            own_asn: sup_asn,
            link_index: idx,
            addr: hoiho_asdb::addr_octets(base),
        };
        let near_host = if self.rng.random_bool(self.cfg.name_coverage) {
            naming.infra_name(&near_ctx)
        } else {
            None
        };
        let near_emb = match (&near_host, naming.kind) {
            (Some(_), StyleKind::OwnAsn) => EmbeddedInfo::OwnAsn { asn: sup_asn },
            _ => EmbeddedInfo::NoAsn,
        };
        let near = self.new_iface(
            base,
            sup_router,
            near_host,
            Some(sup_asn),
            IfaceKind::InterconnectNear,
            near_emb,
        );

        // Neighbor-facing side: the address the paper is about.
        let far_ctx = NameCtx {
            neighbor_asn: cust_asn,
            neighbor_slug: &cust_slug,
            own_asn: sup_asn,
            link_index: idx,
            addr: hoiho_asdb::addr_octets(base + 1),
        };
        let (far_host, far_emb) = self.render_neighbor_name(&naming, &far_ctx, cust_asn);
        let far = self.new_iface(
            base + 1,
            cust_router,
            far_host,
            Some(sup_asn),
            IfaceKind::InterconnectFar,
            far_emb,
        );

        let (a_as, b_as) = (supplier, customer);
        let link = Link {
            a_as,
            b_as,
            a_router: sup_router,
            b_router: cust_router,
            a_iface: near,
            b_iface: far,
            kind: LinkKind::PtP { supplier },
        };
        let idx = self.links.len();
        self.links.push(link);
        self.link_index.insert((a_as, b_as), idx);
        self.link_index.insert((b_as, a_as), idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Internet {
        Internet::generate(&SimConfig::tiny(21))
    }

    #[test]
    fn structure_sane() {
        let n = net();
        assert_eq!(n.as_routers.len(), n.aslevel.ases.len());
        assert!(n.routers.len() >= n.aslevel.ases.len());
        assert!(!n.links.is_empty());
        // Every interface address resolves back to itself.
        for i in &n.interfaces {
            assert_eq!(n.addr_index.get(&i.addr), Some(&i.id));
        }
        // Every router belongs to its AS.
        for r in &n.routers {
            assert_eq!(r.owner, n.aslevel.ases[r.as_id].asn);
            assert!(n.as_routers[r.as_id].contains(&r.id));
        }
    }

    #[test]
    fn deterministic() {
        let a = net();
        let b = net();
        assert_eq!(a.routers.len(), b.routers.len());
        assert_eq!(a.interfaces.len(), b.interfaces.len());
        for (x, y) in a.interfaces.iter().zip(&b.interfaces) {
            assert_eq!(x.addr, y.addr);
            assert_eq!(x.hostname, y.hostname);
        }
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_separates_configs() {
        let a = Internet::generate(&SimConfig::tiny(21));
        let b = Internet::generate(&SimConfig::tiny(22));
        assert_ne!(a.digest(), b.digest(), "different seeds, different worlds");
        let mut cfg = SimConfig::tiny(21);
        cfg.stale_rate = 0.4;
        let c = Internet::generate(&cfg);
        assert_ne!(a.digest(), c.digest(), "different rates, different worlds");
    }

    #[test]
    fn far_side_semantics() {
        // The critical invariant: a far-side interconnect interface is
        // routed (BGP origin) by the supplier but operated by the
        // customer.
        let n = net();
        let mut checked = 0;
        for l in &n.links {
            let LinkKind::PtP { supplier } = l.kind else { continue };
            let far = &n.interfaces[l.b_iface as usize];
            assert_eq!(far.kind, IfaceKind::InterconnectFar);
            let origin = n.aslevel.bgp.lookup_value(far.addr).copied();
            assert_eq!(origin, Some(n.aslevel.ases[supplier].asn));
            let owner = n.routers[far.router as usize].owner;
            assert_ne!(owner, n.aslevel.ases[supplier].asn, "far side operated by neighbor");
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn ixp_addresses_have_no_origin() {
        let n = net();
        let mut seen = 0;
        for i in &n.interfaces {
            if i.kind == IfaceKind::IxpLan {
                assert_eq!(n.aslevel.bgp.lookup_value(i.addr), None);
                seen += 1;
            }
        }
        assert!(seen > 0, "no IXP ports generated");
    }

    #[test]
    fn stale_and_correct_hostnames_recorded() {
        let mut cfg = SimConfig::tiny(22);
        cfg.stale_rate = 0.3;
        let n = Internet::generate(&cfg);
        let mut stale = 0;
        let mut correct = 0;
        for i in &n.interfaces {
            if let EmbeddedInfo::NeighborAsn { written, intended, stale: s, .. } = &i.embedded {
                let h = i.hostname.as_ref().expect("annotated iface has hostname");
                assert!(h.contains(written.as_str()), "{h} lacks {written}");
                if *s {
                    assert_ne!(written, &intended.to_string());
                    stale += 1;
                } else {
                    correct += 1;
                }
            }
        }
        assert!(stale > 0, "stale injection inactive");
        assert!(correct > stale, "most hostnames should be correct");
    }

    #[test]
    fn embedded_intended_matches_owner() {
        // For non-stale neighbor annotations, the intended ASN is the
        // ground-truth operator of the router holding the interface.
        let n = net();
        for i in &n.interfaces {
            if let EmbeddedInfo::NeighborAsn { intended, .. } = &i.embedded {
                if i.kind == IfaceKind::InterconnectFar {
                    assert_eq!(*intended, n.routers[i.router as usize].owner);
                }
            }
        }
    }

    #[test]
    fn links_connect_distinct_ases() {
        let n = net();
        for l in &n.links {
            assert_ne!(l.a_as, l.b_as);
            assert_eq!(n.routers[l.a_router as usize].as_id, l.a_as);
            assert_eq!(n.routers[l.b_router as usize].as_id, l.b_as);
            assert!(n.link_index.contains_key(&(l.a_as, l.b_as)));
            assert!(n.link_index.contains_key(&(l.b_as, l.a_as)));
        }
    }

    #[test]
    fn dest_addr_outside_interface_space() {
        let n = net();
        for as_id in 0..n.aslevel.ases.len() {
            let d = n.dest_addr(as_id);
            assert!(n.aslevel.ases[as_id].prefixes[0].contains(d));
            assert!(!n.addr_index.contains_key(&d), "dest addr collides with an interface");
        }
    }

    #[test]
    fn own_asn_operators_embed_their_asn_everywhere() {
        let mut cfg = SimConfig::tiny(23);
        cfg.styles.own_asn = 5.0; // force plenty of OwnAsn operators
        let n = Internet::generate(&cfg);
        let mut seen = 0;
        for i in &n.interfaces {
            if let EmbeddedInfo::OwnAsn { asn } = i.embedded {
                let h = i.hostname.as_ref().unwrap();
                assert!(h.contains(&format!("as{asn}")), "{h}");
                seen += 1;
            }
        }
        assert!(seen > 0);
    }
}
