//! Operator naming conventions.
//!
//! Each operator (AS) gets a domain suffix and a [`StyleKind`] drawn from
//! the configured mixture. The styles mirror the paper's Table 1 taxonomy
//! plus the confounders its figures document:
//!
//! | style      | example                                   | paper ref |
//! |------------|-------------------------------------------|-----------|
//! | `Simple`   | `as64500.tele-nova.net`                   | Table 1   |
//! | `Start`    | `as64500-xe-1-2-0.fra.tele-nova.net`      | Table 1   |
//! | `End`      | `ae3.fra.as64500.tele-nova.net`           | Table 1   |
//! | `Bare`     | `64500-fra2-ix.tele-nova.net`             | Table 1   |
//! | `Complex`  | `cust64500.fra.tele-nova.net`, mixes      | Table 1   |
//! | `OwnAsn`   | `r1.acme.cust.as64499.tele-nova.net`      | Figure 2  |
//! | `AsName`   | `ae3.fra.acmecorp.tele-nova.net`          | Figure 1  |
//! | `IpEmbed`  | `192-0-2-41.static.tele-nova.net`         | Figure 3b |
//! | `Infra`    | `te0-0-1.cr2.fra.tele-nova.net`           | —         |
//! | `None`     | (no PTR record)                           | —         |
//!
//! Rendering is deterministic in the inputs; staleness and typos are
//! separate, explicit transformations so the simulator can record ground
//! truth about which hostnames lie.

use hoiho_devkit::rngs::StdRng;
use hoiho_devkit::RngExt;

/// What an operator encodes in the hostnames it assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StyleKind {
    /// No PTR records at all.
    None,
    /// Infrastructure names without AS information.
    Infra,
    /// `^as<asn>\.suffix$` and nothing else.
    Simple,
    /// Neighbor ASN at the start of the hostname.
    Start,
    /// Neighbor ASN at the end of the hostname.
    End,
    /// Neighbor ASN without an alphabetic annotation.
    Bare,
    /// Neighbor ASN mid-hostname, unusual annotation, or mixed formats.
    Complex,
    /// The operator's own ASN in every hostname (Figure 2).
    OwnAsn,
    /// The neighbor's organization name instead of its number.
    AsName,
    /// Hostnames derived from the interface address (Figure 3b).
    IpEmbed,
}

impl StyleKind {
    /// All styles, in the order of
    /// [`crate::config::StyleMix::weights`].
    pub const ALL: [StyleKind; 10] = [
        StyleKind::None,
        StyleKind::Infra,
        StyleKind::Simple,
        StyleKind::Start,
        StyleKind::End,
        StyleKind::Bare,
        StyleKind::Complex,
        StyleKind::OwnAsn,
        StyleKind::AsName,
        StyleKind::IpEmbed,
    ];

    /// True when the style embeds the *neighbor's* ASN in interconnect
    /// hostnames — the conventions Hoiho should learn as usable.
    pub fn embeds_neighbor_asn(self) -> bool {
        matches!(
            self,
            StyleKind::Simple | StyleKind::Start | StyleKind::End | StyleKind::Bare | StyleKind::Complex
        )
    }

    /// True when the style embeds *some* ASN (neighbor or own).
    pub fn embeds_asn(self) -> bool {
        self.embeds_neighbor_asn() || self == StyleKind::OwnAsn
    }

    /// The scenario-grammar key for the style (also used in
    /// validation errors).
    pub fn label(self) -> &'static str {
        match self {
            StyleKind::None => "none",
            StyleKind::Infra => "infra",
            StyleKind::Simple => "simple",
            StyleKind::Start => "start",
            StyleKind::End => "end",
            StyleKind::Bare => "bare",
            StyleKind::Complex => "complex",
            StyleKind::OwnAsn => "own_asn",
            StyleKind::AsName => "as_name",
            StyleKind::IpEmbed => "ip_embed",
        }
    }

    /// Samples a style from weighted `mix` (weights aligned to
    /// [`StyleKind::ALL`]). Callers are responsible for rejecting a
    /// zero-total mix first ([`crate::config::StyleMix::validate`]);
    /// with a zero total every draw degenerates to the first style.
    pub fn sample(weights: &[f64; 10], rng: &mut StdRng) -> StyleKind {
        debug_assert!(
            weights.iter().sum::<f64>() > 0.0,
            "sampling from a zero-total style mix; validate the config first"
        );
        let total: f64 = weights.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return StyleKind::ALL[i];
            }
            x -= w;
        }
        StyleKind::None
    }
}

/// Which vendor's gear an operator runs — visible in hostnames through
/// the vendor's interface-name fragments, the signal "Classifying
/// Network Vendors at Internet Scale" (PAPERS.md) classifies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VendorKind {
    /// Vendor-neutral fragments (the original simulator table).
    Generic,
    /// Juniper-style fragments.
    Juniper,
    /// Cisco-style fragments.
    Cisco,
    /// Arista-style fragments.
    Arista,
}

impl VendorKind {
    /// All vendors, in the order of
    /// [`crate::config::VendorMix::weights`].
    pub const ALL: [VendorKind; 4] =
        [VendorKind::Generic, VendorKind::Juniper, VendorKind::Cisco, VendorKind::Arista];

    /// The scenario-grammar key for the vendor.
    pub fn label(self) -> &'static str {
        match self {
            VendorKind::Generic => "generic",
            VendorKind::Juniper => "juniper",
            VendorKind::Cisco => "cisco",
            VendorKind::Arista => "arista",
        }
    }

    /// The vendor's interface-name fragments.
    fn ifaces(self) -> &'static [&'static str] {
        match self {
            VendorKind::Generic => IFACES,
            VendorKind::Juniper => IFACES_JUNIPER,
            VendorKind::Cisco => IFACES_CISCO,
            VendorKind::Arista => IFACES_ARISTA,
        }
    }

    /// Samples a vendor from weighted `mix` (weights aligned to
    /// [`VendorKind::ALL`]). Same zero-total contract as
    /// [`StyleKind::sample`].
    pub fn sample(weights: &[f64; 4], rng: &mut StdRng) -> VendorKind {
        debug_assert!(
            weights.iter().sum::<f64>() > 0.0,
            "sampling from a zero-total vendor mix; validate the config first"
        );
        let total: f64 = weights.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return VendorKind::ALL[i];
            }
            x -= w;
        }
        VendorKind::Generic
    }
}

/// Point-of-presence codes operators sprinkle into hostnames.
const POPS: &[&str] = &[
    "akl", "syd", "lax", "nyc", "fra", "lhr", "ams", "sin", "tyo", "mel", "chi", "dal", "sea",
    "mia", "par", "mad", "zrh", "vie", "waw", "sto", "hel", "osl", "cph", "dub", "yyz", "gru",
    "scl", "bog", "mex", "hkg",
];

/// Interface-name fragments (hostname-safe, vendor-neutral).
const IFACES: &[&str] = &[
    "ge0-1", "te0-0-1", "xe-1-2-0", "ae3", "be127", "hu0-1-0-3", "et-0-0-49", "te1-4", "ge2-0",
    "ae12", "xe-0-0-3", "te0-7-0-5",
];

/// Juniper-style interface fragments (`xe`/`ge`/`et` with FPC-PIC-port
/// triples, `ae` bundles, `irb` units).
const IFACES_JUNIPER: &[&str] = &[
    "xe-0-1-0", "xe-2-0-3", "ge-1-0-7", "et-0-0-49", "ae5", "ae31", "irb-310", "xe-1-2-0",
    "ge-0-3-1", "et-3-1-0", "ae12", "xe-4-0-1",
];

/// Cisco-style interface fragments (`te`/`gi`/`hu` rack-slot-port,
/// `be` bundles, `po` port-channels).
const IFACES_CISCO: &[&str] = &[
    "te0-0-0-1", "te0-1-0-5", "gi0-0-0-12", "hu0-2-0-0", "be127", "be14", "po23", "te1-4",
    "gi0-1", "hu0-1-0-3", "be202", "te0-7-0-5",
];

/// Arista-style interface fragments (flat `et` ports with breakouts,
/// `po` channels, `vlan` SVIs).
const IFACES_ARISTA: &[&str] = &[
    "et49", "et50-1", "et3", "et12-4", "po100", "po7", "vlan210", "et25-1", "et61", "po12",
    "vlan3020", "et17",
];

/// Link bandwidths for conventions that annotate them (in Gbit/s).
const BANDWIDTHS: &[u32] = &[1, 10, 40, 100];

/// Name syllables for synthetic operator brands.
const SYLLABLES: &[&str] = &[
    "tel", "net", "air", "fib", "lux", "nova", "west", "east", "nor", "sud", "alt", "giga",
    "meta", "path", "core", "wave", "link", "zen", "vel", "oro", "stra", "mon", "hel", "bal",
    "pan", "riv", "sol", "ter", "vok", "quan",
];

/// Top-level domains for operator suffixes (weighted towards `.net`).
const TLDS: &[&str] = &[
    "net", "net", "net", "com", "com", "ch", "de", "io", "nl", "fr", "pl", "cz", "se", "nz",
    "co.uk", "net.uy", "net.au", "com.br", "co.jp", "org",
];

/// Generates a hostname-safe brand slug, e.g. `telnova` or `fib-west`.
pub fn brand_slug(rng: &mut StdRng) -> String {
    let n = 2 + usize::from(rng.random_bool(0.35));
    let mut s = String::new();
    for i in 0..n {
        if i > 0 && rng.random_bool(0.12) {
            s.push('-');
        }
        s.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
    }
    s
}

/// Generates an operator suffix (registrable domain) from a brand.
pub fn suffix_for(brand: &str, rng: &mut StdRng) -> String {
    format!("{brand}.{}", TLDS[rng.random_range(0..TLDS.len())])
}

/// One operator's naming convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorNaming {
    /// The style of the convention.
    pub kind: StyleKind,
    /// The operator's domain suffix (empty for [`StyleKind::None`]).
    pub suffix: String,
    /// Sub-template selector, fixed per operator.
    pub variant: u8,
    /// POP codes this operator uses.
    pub pops: Vec<String>,
    /// Whose interface-name fragments the operator's hostnames carry.
    pub vendor: VendorKind,
}

/// Inputs for rendering one hostname.
#[derive(Debug, Clone, Copy)]
pub struct NameCtx<'a> {
    /// The ASN the convention annotates interconnects with (the
    /// neighbor receiving the address).
    pub neighbor_asn: u32,
    /// The neighbor's brand slug (for [`StyleKind::AsName`]).
    pub neighbor_slug: &'a str,
    /// The operator's own ASN.
    pub own_asn: u32,
    /// Deterministic per-link counter (selects POP, interface, etc.).
    pub link_index: u32,
    /// The interface address, for [`StyleKind::IpEmbed`].
    pub addr: [u8; 4],
}

impl OperatorNaming {
    /// Creates the naming convention for one operator.
    pub fn generate(kind: StyleKind, rng: &mut StdRng) -> OperatorNaming {
        let brand = brand_slug(rng);
        let suffix = if kind == StyleKind::None { String::new() } else { suffix_for(&brand, rng) };
        let npops = 2 + rng.random_range(0..4);
        let mut pops: Vec<String> = Vec::with_capacity(npops);
        while pops.len() < npops {
            let p = POPS[rng.random_range(0..POPS.len())].to_string();
            if !pops.contains(&p) {
                pops.push(p);
            }
        }
        OperatorNaming {
            kind,
            suffix,
            variant: rng.random_range(0..3),
            pops,
            vendor: VendorKind::Generic,
        }
    }

    fn pop(&self, i: u32) -> &str {
        &self.pops[(i as usize) % self.pops.len()]
    }

    fn iface(&self, i: u32) -> &'static str {
        let t = self.vendor.ifaces();
        t[(i as usize) % t.len()]
    }

    /// Hostname for the *neighbor-facing* side of an interconnect this
    /// operator supplied the addresses for. `None` when the operator
    /// assigns no PTR records.
    ///
    /// `asn_override` substitutes the embedded ASN digits (used by the
    /// simulator's stale/typo injection); ground truth bookkeeping stays
    /// with the caller.
    pub fn interconnect_name(&self, ctx: &NameCtx<'_>, asn_override: Option<String>) -> Option<String> {
        let asn = asn_override.unwrap_or_else(|| ctx.neighbor_asn.to_string());
        let pop = self.pop(ctx.link_index);
        let iface = self.iface(ctx.link_index);
        let bw = BANDWIDTHS[(ctx.link_index as usize) % BANDWIDTHS.len()];
        let i = ctx.link_index;
        let s = &self.suffix;
        match self.kind {
            StyleKind::None => None,
            StyleKind::Infra => Some(format!("{iface}.br{}.{pop}.{s}", i % 4 + 1)),
            StyleKind::Simple => Some(format!("as{asn}.{s}")),
            StyleKind::Start => Some(match self.variant {
                0 => format!("as{asn}.{pop}.{s}"),
                1 => format!("as{asn}-{iface}.{pop}.{s}"),
                _ => format!("as{asn}-{bw}g.{pop}{}.{s}", i % 3 + 1),
            }),
            StyleKind::End => Some(match self.variant {
                0 => format!("{iface}.{pop}.as{asn}.{s}"),
                _ => format!("{pop}{}.as{asn}.{s}", i % 4 + 1),
            }),
            StyleKind::Bare => Some(match self.variant {
                0 => format!("{asn}.{pop}.{s}"),
                _ => format!("{asn}-{pop}{}-ix.{s}", i % 3 + 1),
            }),
            StyleKind::Complex => Some(match self.variant {
                0 => format!("{pop}.as{asn}.{iface}.{s}"),
                1 => format!("cust{asn}.{pop}.{s}"),
                // Mixed formats: alternate between two shapes so the
                // learner needs a regex set.
                _ => {
                    if i.is_multiple_of(2) {
                        format!("p{asn}.{pop}.{s}")
                    } else {
                        format!("{asn}-{pop}-ix.{s}")
                    }
                }
            }),
            // Own-ASN operators place their ASN per house style: at the
            // end (Figure 2's nts.ch), at the start, or mid-hostname —
            // the "single" column of Table 1 spreads over all shapes.
            StyleKind::OwnAsn => Some(match self.variant {
                0 => format!("r{}.{}.cust.as{}.{s}", i % 8 + 1, ctx.neighbor_slug, ctx.own_asn),
                1 => format!("as{}-cust-{}.{pop}.{s}", ctx.own_asn, ctx.neighbor_slug),
                _ => format!("{}.as{}.cust{}.{s}", ctx.neighbor_slug, ctx.own_asn, i % 8 + 1),
            }),
            StyleKind::AsName => Some(format!("{iface}.{pop}.{}.{s}", ctx.neighbor_slug)),
            StyleKind::IpEmbed => {
                let [a, b, c, d] = ctx.addr;
                Some(format!("{a}-{b}-{c}-{d}.static.{s}"))
            }
        }
    }

    /// Hostname for an operator-internal interface (backbone links,
    /// the supplier's own side of an interconnect).
    pub fn infra_name(&self, ctx: &NameCtx<'_>) -> Option<String> {
        let pop = self.pop(ctx.link_index);
        let iface = self.iface(ctx.link_index.wrapping_add(5));
        let i = ctx.link_index;
        let s = &self.suffix;
        match self.kind {
            StyleKind::None => None,
            StyleKind::OwnAsn => Some(match self.variant {
                0 => format!("{iface}.{:02}.p.{pop}.as{}.{s}", i % 20 + 1, ctx.own_asn),
                1 => format!("as{}-{iface}.{pop}.{s}", ctx.own_asn),
                _ => format!("{iface}.as{}.{pop}.{s}", ctx.own_asn),
            }),
            StyleKind::IpEmbed => {
                let [a, b, c, d] = ctx.addr;
                Some(format!("{a}-{b}-{c}-{d}.static.{s}"))
            }
            _ => Some(format!("{iface}.cr{}.{pop}.{s}", i % 4 + 1)),
        }
    }

    /// Applies a single-digit typo to an ASN string (transpose,
    /// substitute, delete, or duplicate a digit).
    pub fn typo_asn(asn: u32, rng: &mut StdRng) -> String {
        let mut d: Vec<u8> = asn.to_string().into_bytes();
        let op = rng.random_range(0..4);
        let pos = rng.random_range(0..d.len());
        match op {
            0 if d.len() >= 2 => {
                let p = pos.min(d.len() - 2);
                d.swap(p, p + 1);
            }
            1 => {
                let nd = b'0' + rng.random_range(0..10u8);
                d[pos] = nd;
            }
            2 if d.len() >= 4 => {
                d.remove(pos);
            }
            _ => {
                let c = d[pos];
                d.insert(pos, c);
            }
        }
        // Avoid a leading zero, which no operator writes.
        if d[0] == b'0' {
            d[0] = b'1';
        }
        String::from_utf8(d).expect("digits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoiho_devkit::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn ctx<'a>(slug: &'a str) -> NameCtx<'a> {
        NameCtx {
            neighbor_asn: 64500,
            neighbor_slug: slug,
            own_asn: 64499,
            link_index: 3,
            addr: [192, 0, 2, 41],
        }
    }

    fn op(kind: StyleKind) -> OperatorNaming {
        let mut o = OperatorNaming::generate(kind, &mut rng());
        o.suffix = "tele-nova.net".to_string();
        o
    }

    #[test]
    fn style_sampling_respects_zero_weights() {
        let mut weights = [0.0; 10];
        weights[2] = 1.0; // Simple only
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(StyleKind::sample(&weights, &mut r), StyleKind::Simple);
        }
    }

    #[test]
    fn style_sampling_covers_support() {
        let weights = crate::config::StyleMix::default().weights();
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..4000 {
            seen.insert(StyleKind::sample(&weights, &mut r));
        }
        assert!(seen.len() >= 8, "only saw {seen:?}");
    }

    #[test]
    fn simple_style_shape() {
        let o = op(StyleKind::Simple);
        assert_eq!(
            o.interconnect_name(&ctx("acme"), None).unwrap(),
            "as64500.tele-nova.net"
        );
    }

    #[test]
    fn start_style_contains_leading_asn() {
        let o = op(StyleKind::Start);
        let h = o.interconnect_name(&ctx("acme"), None).unwrap();
        assert!(h.starts_with("as64500"), "{h}");
        assert!(h.ends_with(".tele-nova.net"), "{h}");
    }

    #[test]
    fn end_style_places_asn_before_suffix() {
        let o = op(StyleKind::End);
        let h = o.interconnect_name(&ctx("acme"), None).unwrap();
        assert!(h.ends_with(".as64500.tele-nova.net"), "{h}");
    }

    #[test]
    fn bare_style_has_no_alpha_annotation() {
        let o = op(StyleKind::Bare);
        let h = o.interconnect_name(&ctx("acme"), None).unwrap();
        assert!(h.starts_with("64500"), "{h}");
        assert!(!h.contains("as64500"), "{h}");
    }

    #[test]
    fn own_asn_style_embeds_own_not_neighbor() {
        let mut o = op(StyleKind::OwnAsn);
        // Pin the Figure 2 shape: only variant 0 renders the bare
        // `.cust.` label this test asserts on; the own-vs-neighbor ASN
        // checks below hold for every variant.
        o.variant = 0;
        let h = o.interconnect_name(&ctx("acme"), None).unwrap();
        assert!(h.contains("as64499"), "{h}");
        assert!(!h.contains("64500"), "{h}");
        assert!(h.contains(".cust."), "{h}");
        let infra = o.infra_name(&ctx("acme")).unwrap();
        assert!(infra.contains("as64499"), "{infra}");
    }

    #[test]
    fn as_name_style_embeds_slug() {
        let o = op(StyleKind::AsName);
        let h = o.interconnect_name(&ctx("acmecorp"), None).unwrap();
        assert!(h.contains(".acmecorp."), "{h}");
        assert!(!h.contains("64500"), "{h}");
    }

    #[test]
    fn ip_embed_style_uses_address() {
        let o = op(StyleKind::IpEmbed);
        let h = o.interconnect_name(&ctx("acme"), None).unwrap();
        assert_eq!(h, "192-0-2-41.static.tele-nova.net");
    }

    #[test]
    fn none_style_has_no_names() {
        let o = op(StyleKind::None);
        assert_eq!(o.interconnect_name(&ctx("acme"), None), None);
        assert_eq!(o.infra_name(&ctx("acme")), None);
    }

    #[test]
    fn override_substitutes_digits() {
        let o = op(StyleKind::Simple);
        assert_eq!(
            o.interconnect_name(&ctx("acme"), Some("999".into())).unwrap(),
            "as999.tele-nova.net"
        );
    }

    #[test]
    fn complex_mixed_variant_alternates() {
        let mut o = op(StyleKind::Complex);
        o.variant = 2;
        let mut c = ctx("acme");
        c.link_index = 0;
        let h0 = o.interconnect_name(&c, None).unwrap();
        c.link_index = 1;
        let h1 = o.interconnect_name(&c, None).unwrap();
        assert!(h0.starts_with("p64500."), "{h0}");
        assert!(h1.starts_with("64500-"), "{h1}");
    }

    #[test]
    fn typo_distance() {
        let mut r = rng();
        for _ in 0..200 {
            let t = OperatorNaming::typo_asn(64500, &mut r);
            assert_ne!(t, "");
            assert!(t.bytes().all(|b| b.is_ascii_digit()));
            assert!(t.as_bytes()[0] != b'0');
        }
    }

    #[test]
    fn hostnames_are_dns_safe() {
        let c = ctx("acme");
        for kind in StyleKind::ALL {
            let o = op(kind);
            for h in [o.interconnect_name(&c, None), o.infra_name(&c)].into_iter().flatten() {
                assert!(
                    h.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'-'),
                    "unsafe hostname {h}"
                );
                assert!(!h.contains(".."), "{h}");
                assert!(!h.starts_with('.') && !h.ends_with('.'), "{h}");
            }
        }
    }

    #[test]
    fn vendor_fragments_reach_hostnames() {
        let mut o = op(StyleKind::Infra);
        let c = ctx("acme");
        let generic = o.interconnect_name(&c, None).unwrap();
        o.vendor = VendorKind::Juniper;
        let juniper = o.interconnect_name(&c, None).unwrap();
        assert_ne!(generic, juniper);
        assert!(juniper.starts_with("xe-") || juniper.starts_with("ge-")
            || juniper.starts_with("et-") || juniper.starts_with("ae")
            || juniper.starts_with("irb"), "{juniper}");
        // Vendor changes only the interface fragment, never the suffix.
        assert!(juniper.ends_with(".tele-nova.net"), "{juniper}");
    }

    #[test]
    fn vendor_hostnames_stay_dns_safe() {
        let c = ctx("acme");
        for vendor in VendorKind::ALL {
            for kind in StyleKind::ALL {
                let mut o = op(kind);
                o.vendor = vendor;
                for h in [o.interconnect_name(&c, None), o.infra_name(&c)].into_iter().flatten() {
                    assert!(
                        h.bytes().all(|b| b.is_ascii_lowercase()
                            || b.is_ascii_digit()
                            || b == b'.'
                            || b == b'-'),
                        "unsafe hostname {h} ({vendor:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn vendor_sampling_respects_weights() {
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(
                VendorKind::sample(&[1.0, 0.0, 0.0, 0.0], &mut r),
                VendorKind::Generic
            );
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..400 {
            seen.insert(VendorKind::sample(&[1.0, 1.0, 1.0, 1.0], &mut r));
        }
        assert_eq!(seen.len(), 4, "all vendors drawn: {seen:?}");
    }

    #[test]
    fn brands_and_suffixes_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(brand_slug(&mut a), brand_slug(&mut b));
        let s1 = suffix_for("telnova", &mut a);
        let s2 = suffix_for("telnova", &mut b);
        assert_eq!(s1, s2);
        assert!(s1.starts_with("telnova."));
    }
}
