//! `hoiho-fuzz` — drive the structured fuzzing tier.
//!
//! ```text
//! hoiho-fuzz run [--iters N] [--seed S] [--target NAME] [--corpus DIR]
//! hoiho-fuzz replay [--target NAME] [--corpus DIR]
//! hoiho-fuzz minimize <file> --target NAME
//! ```
//!
//! `run` fuzzes each registered target for N deterministic iterations
//! (seeds accept `0x` hex); failures are minimized, written into the
//! corpus as `crash-*.case`, and make the exit status nonzero.
//! `replay` re-runs every committed corpus case and fails if any
//! regressed. `minimize` shrinks one case file in place.

use hoiho_fuzz::{corpus, runner, targets};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hoiho-fuzz run [--iters N] [--seed S] [--target NAME] [--corpus DIR]\n\
         \u{20}      hoiho-fuzz replay [--target NAME] [--corpus DIR]\n\
         \u{20}      hoiho-fuzz minimize <file> --target NAME"
    );
    ExitCode::from(2)
}

/// Accepts decimal or 0x-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

struct Flags {
    iters: u64,
    seed: u64,
    target: Option<String>,
    corpus: PathBuf,
    file: Option<PathBuf>,
}

fn parse_flags(args: &[String]) -> Option<Flags> {
    let mut f = Flags {
        iters: 10_000,
        seed: 0xC0FFEE,
        target: None,
        corpus: corpus::default_dir(),
        file: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => f.iters = it.next()?.parse().ok()?,
            "--seed" => f.seed = parse_seed(it.next()?)?,
            "--target" => f.target = Some(it.next()?.clone()),
            "--corpus" => f.corpus = PathBuf::from(it.next()?),
            other if !other.starts_with("--") && f.file.is_none() => {
                f.file = Some(PathBuf::from(other));
            }
            _ => return None,
        }
    }
    Some(f)
}

fn selected_targets(name: Option<&str>) -> Result<Vec<Box<dyn targets::Target>>, ExitCode> {
    let all = targets::all_targets();
    match name {
        None => Ok(all),
        Some(n) => {
            let picked: Vec<_> = all.into_iter().filter(|t| t.name() == n).collect();
            if picked.is_empty() {
                eprintln!("unknown target {n:?}; known targets:");
                for t in targets::all_targets() {
                    eprintln!("  {}", t.name());
                }
                return Err(ExitCode::from(2));
            }
            Ok(picked)
        }
    }
}

fn cmd_run(flags: Flags) -> ExitCode {
    let picked = match selected_targets(flags.target.as_deref()) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let mut failed = false;
    for target in &picked {
        let report =
            runner::run_target(target.as_ref(), flags.iters, flags.seed, Some(&flags.corpus));
        if report.failures.is_empty() {
            println!("{}\tok\titers={}", report.target, report.iters);
        } else {
            failed = true;
            println!(
                "{}\tFAIL\titers={}\tfailures={}",
                report.target,
                report.iters,
                report.failures.len()
            );
            for f in &report.failures {
                println!(
                    "  iter {}\t{} bytes -> {} minimized\t{}",
                    f.iter,
                    f.case.len(),
                    f.minimized.len(),
                    f.path.as_deref().map(|p| p.display().to_string()).unwrap_or_default()
                );
                println!("    {}", f.error.lines().next().unwrap_or(""));
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(flags: Flags) -> ExitCode {
    let picked = match selected_targets(flags.target.as_deref()) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let outcomes = match runner::replay(&picked, &flags.corpus) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("corpus read failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = 0usize;
    for o in &outcomes {
        match &o.result {
            Ok(()) => println!("{}\t{}\tok", o.target, o.case),
            Err(e) => {
                failed += 1;
                println!("{}\t{}\tFAIL\t{}", o.target, o.case, e.lines().next().unwrap_or(""));
            }
        }
    }
    println!("replayed {} cases, {} failed", outcomes.len(), failed);
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_minimize(flags: Flags) -> ExitCode {
    let (Some(file), Some(name)) = (&flags.file, flags.target.as_deref()) else {
        return usage();
    };
    let Some(target) = targets::target_by_name(name) else {
        eprintln!("unknown target {name:?}");
        return ExitCode::from(2);
    };
    let case = match std::fs::read(file) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("read {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };
    if runner::exec(target.as_ref(), &case).is_ok() {
        eprintln!("case passes; nothing to minimize");
        return ExitCode::FAILURE;
    }
    let min = runner::minimize(target.as_ref(), &case);
    if let Err(e) = std::fs::write(file, &min) {
        eprintln!("write {}: {e}", file.display());
        return ExitCode::FAILURE;
    }
    println!("{} bytes -> {} bytes\t{}", case.len(), min.len(), file.display());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let Some(flags) = parse_flags(&args[1..]) else {
        return usage();
    };
    match cmd.as_str() {
        "run" => cmd_run(flags),
        "replay" => cmd_replay(flags),
        "minimize" => cmd_minimize(flags),
        _ => usage(),
    }
}
