//! # hoiho-fuzz — structured fuzzing + differential-oracle tier
//!
//! The system exposes five strict surfaces real traffic hits: the
//! regex dialect, the model artifact, the shard map, the scenario
//! format, and the server's byte framing. This crate fuzzes each one
//! with a *structured* generator (an entropy-budget decoder in the
//! style of the devkit property harness — see [`input`]) paired with a
//! *differential oracle*: redundant implementations and documented
//! fixpoints that must agree, so the fuzzer hunts semantic divergence
//! and panics rather than mere crashes-on-garbage.
//!
//! * [`targets`] — the registry; one [`targets::Target`] per surface
//!   with its oracle (see the module's oracle table).
//! * [`runner`] — the deterministic fuzz loop, panic capture,
//!   case-level minimization, and corpus replay.
//! * [`corpus`] — the checked-in `fuzz/corpus/` exact-input regression
//!   store, replayed by plain `cargo test`.
//!
//! The `hoiho-fuzz` binary drives it: `run` (generate + minimize +
//! record), `replay` (the committed corpus must stay green), and
//! `minimize` (shrink one case file by hand).

pub mod corpus;
pub mod input;
pub mod runner;
pub mod targets;

pub use input::FuzzInput;
pub use runner::{exec, minimize, replay, run_target, Failure, FuzzReport, ReplayOutcome};
pub use targets::{all_targets, target_by_name, Target};
