//! The checked-in case corpus: `fuzz/corpus/<target>/<name>.case`.
//!
//! Files store the *exact decoded case bytes* a target's oracle runs
//! on, not the entropy that generated them — so a committed case is an
//! exact-input regression test that stays meaningful even when the
//! generator changes. Naming encodes provenance:
//!
//! * `seed-<hash>.case` — hand-planted hard cases (nastiest known
//!   inputs for the surface); replay must always pass.
//! * `crash-<hash>.case` — minimized counterexamples the fuzzer found.
//!   At the moment of discovery they fail; they are committed together
//!   with the fix, after which replay keeps them green forever.
//!
//! `cargo test` replays the whole corpus via
//! `crates/fuzz/tests/corpus_replay.rs`.

use std::fs;
use std::path::{Path, PathBuf};

/// FNV-1a over the case bytes: stable content-addressed file names, so
/// re-finding the same minimized case never duplicates a file.
pub fn case_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The repository's default corpus root (`fuzz/corpus` at the
/// workspace root), overridable with `HOIHO_FUZZ_CORPUS`.
pub fn default_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HOIHO_FUZZ_CORPUS") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

/// Writes `bytes` as a `<kind>-<hash>.case` file under the target's
/// corpus directory, returning the path.
pub fn save_case(
    dir: &Path,
    target: &str,
    kind: &str,
    bytes: &[u8],
) -> std::io::Result<PathBuf> {
    let tdir = dir.join(target);
    fs::create_dir_all(&tdir)?;
    let path = tdir.join(format!("{kind}-{:016x}.case", case_hash(bytes)));
    fs::write(&path, bytes)?;
    Ok(path)
}

/// Loads every `.case` file for one target, sorted by file name.
/// A missing target directory is an empty corpus, not an error.
pub fn load_cases(dir: &Path, target: &str) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let tdir = dir.join(target);
    let mut cases = Vec::new();
    let entries = match fs::read_dir(&tdir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(cases),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "case") {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            cases.push((name, fs::read(&path)?));
        }
    }
    cases.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_then_load_roundtrips_and_content_addresses() {
        let dir = std::env::temp_dir().join(format!("hoiho-fuzz-corpus-{}", std::process::id()));
        let case = b"first line\nsecond line\n";
        let p1 = save_case(&dir, "demo", "seed", case).unwrap();
        let p2 = save_case(&dir, "demo", "seed", case).unwrap();
        assert_eq!(p1, p2, "same bytes must land in the same file");
        let cases = load_cases(&dir, "demo").unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].1, case);
        assert!(load_cases(&dir, "absent").unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
