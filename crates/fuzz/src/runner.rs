//! The fuzz loop: deterministic case generation, oracle execution with
//! panic capture, case-level minimization, and corpus replay.
//!
//! Determinism: iteration `i` of target `t` under seed `s` always sees
//! the same entropy buffer (seeded from `s`, the target name, and
//! `i`), so `hoiho-fuzz run --seed 0xC0FFEE` reproduces bit-for-bit.
//!
//! Minimization works on the *case bytes*, not the entropy — the
//! shrunk artifact is an exact input the oracle still fails on, ready
//! to commit as a `crash-*.case` regression. Passes (whole-line
//! removal, tail truncation, byte simplification toward `'a'`/`'0'`)
//! repeat until a sweep makes no progress or the evaluation budget is
//! spent.

use crate::corpus;
use crate::input::FuzzInput;
use crate::targets::Target;
use hoiho_devkit::rng::{RngExt, SeedableRng, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Bytes of entropy per generated case.
const ENTROPY_BUDGET: usize = 1024;

/// Maximum oracle evaluations one minimization may spend.
const MINIMIZE_BUDGET: usize = 500;

/// One failing case, as found and as minimized.
#[derive(Debug)]
pub struct Failure {
    /// The iteration that produced it.
    pub iter: u64,
    /// The original generated case.
    pub case: Vec<u8>,
    /// The minimized case (still failing).
    pub minimized: Vec<u8>,
    /// The minimized case's error.
    pub error: String,
    /// Corpus file the minimized case was written to, if a corpus
    /// directory was given.
    pub path: Option<std::path::PathBuf>,
}

/// Outcome of fuzzing one target.
#[derive(Debug)]
pub struct FuzzReport {
    /// Target name.
    pub target: String,
    /// Iterations executed.
    pub iters: u64,
    /// Failures found (each already minimized).
    pub failures: Vec<Failure>,
}

/// Stop a runaway target after this many distinct failures — the
/// corpus wants representative minimized cases, not ten thousand
/// duplicates of one bug.
const MAX_FAILURES: usize = 5;

/// Evaluates the oracle with panics captured as errors, so a parser
/// panic is a finding, not a fuzzer crash.
pub fn exec(target: &dyn Target, case: &[u8]) -> Result<(), String> {
    install_quiet_hook();
    match catch_unwind(AssertUnwindSafe(|| target.run(case))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Runs `iters` generated cases through `target`. Found failures are
/// minimized and, when `corpus_dir` is given, written as
/// `crash-*.case` files.
pub fn run_target(
    target: &dyn Target,
    iters: u64,
    seed: u64,
    corpus_dir: Option<&Path>,
) -> FuzzReport {
    let base = seed ^ corpus::case_hash(target.name().as_bytes());
    let mut failures: Vec<Failure> = Vec::new();
    let mut done = 0u64;
    for iter in 0..iters {
        done = iter + 1;
        let mut rng =
            StdRng::seed_from_u64(base ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let buf: Vec<u8> = (0..ENTROPY_BUDGET).map(|_| rng.random::<u8>()).collect();
        let case = target.generate(&mut FuzzInput::new(&buf));
        if let Err(first_err) = exec(target, &case) {
            let minimized = minimize(target, &case);
            let error = exec(target, &minimized).err().unwrap_or(first_err);
            let path = corpus_dir
                .and_then(|d| corpus::save_case(d, target.name(), "crash", &minimized).ok());
            let duplicate = failures
                .iter()
                .any(|f| f.minimized == minimized || f.error == error);
            if !duplicate {
                failures.push(Failure { iter, case, minimized, error, path });
                if failures.len() >= MAX_FAILURES {
                    break;
                }
            }
        }
    }
    FuzzReport { target: target.name().to_string(), iters: done, failures }
}

/// Shrinks a failing case while the oracle keeps failing. Returns the
/// smallest failing case found.
pub fn minimize(target: &dyn Target, case: &[u8]) -> Vec<u8> {
    let mut best = case.to_vec();
    let mut budget = MINIMIZE_BUDGET;
    let fails = |candidate: &[u8], budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        exec(target, candidate).is_err()
    };

    loop {
        let mut improved = false;

        // Pass 1: drop whole lines (cases are line-structured).
        let mut i = 0usize;
        loop {
            let lines: Vec<&[u8]> = split_lines(&best);
            if i >= lines.len() || budget == 0 {
                break;
            }
            let mut cand: Vec<u8> = Vec::with_capacity(best.len());
            for (j, l) in lines.iter().enumerate() {
                if j != i {
                    cand.extend_from_slice(l);
                }
            }
            if cand.len() < best.len() && fails(&cand, &mut budget) {
                best = cand;
                improved = true;
                // Same index now names the next line.
            } else {
                i += 1;
            }
        }

        // Pass 2: delete single bytes (catches what line-granular
        // removal can't — separators, trailing newlines).
        let mut i = 0usize;
        while i < best.len() && budget > 0 {
            let mut cand = best.clone();
            cand.remove(i);
            if fails(&cand, &mut budget) {
                best = cand;
                improved = true;
            } else {
                i += 1;
            }
        }

        // Pass 3: binary tail truncation.
        while !best.is_empty() && budget > 0 {
            let half = &best[..best.len() / 2];
            if fails(half, &mut budget) {
                best = half.to_vec();
                improved = true;
            } else {
                break;
            }
        }

        // Pass 4: simplify bytes toward the blandest alphabet.
        for i in 0..best.len() {
            if budget == 0 {
                break;
            }
            let b = best[i];
            for &to in &[b'a', b'0'] {
                if b == to || b == b'\n' || b == b'\t' {
                    continue;
                }
                let mut cand = best.clone();
                cand[i] = to;
                if fails(&cand, &mut budget) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }

        if !improved || budget == 0 {
            return best;
        }
    }
}

/// Splits into newline-terminated chunks (terminator kept with its
/// line; an unterminated tail is its own chunk).
fn split_lines(bytes: &[u8]) -> Vec<&[u8]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out.push(&bytes[start..=i]);
            start = i + 1;
        }
    }
    if start < bytes.len() {
        out.push(&bytes[start..]);
    }
    out
}

/// One corpus case's replay outcome.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Target the case belongs to.
    pub target: String,
    /// Corpus file name.
    pub case: String,
    /// The oracle's verdict on the exact stored bytes.
    pub result: Result<(), String>,
}

/// Replays every stored corpus case through its target's oracle.
pub fn replay(targets: &[Box<dyn Target>], corpus_dir: &Path) -> std::io::Result<Vec<ReplayOutcome>> {
    let mut outcomes = Vec::new();
    for target in targets {
        for (name, bytes) in corpus::load_cases(corpus_dir, target.name())? {
            outcomes.push(ReplayOutcome {
                target: target.name().to_string(),
                case: name,
                result: exec(target.as_ref(), &bytes),
            });
        }
    }
    Ok(outcomes)
}

/// Minimization and replay evaluate candidates that are *expected* to
/// panic; the default hook would print a backtrace per candidate. The
/// replacement stays quiet while suppression is active (matching the
/// devkit property harness's approach).
static SUPPRESSED: AtomicUsize = AtomicUsize::new(0);
static HOOK: OnceLock<()> = OnceLock::new();

fn install_quiet_hook() {
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SUPPRESSED.load(Ordering::SeqCst) == 0 {
                default(info);
            }
        }));
    });
    // Fuzzing always suppresses: every panic is captured and reported
    // through the failure path, never printed raw.
    SUPPRESSED.store(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy target: fails when the case contains `xy` anywhere.
    struct Toy;

    impl Target for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }

        fn generate(&self, input: &mut FuzzInput) -> Vec<u8> {
            input.token("xyab\n", 0, 40).into_bytes()
        }

        fn run(&self, case: &[u8]) -> Result<(), String> {
            if case.windows(2).any(|w| w == b"xy") {
                Err("contains xy".to_string())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn minimizer_reduces_to_the_essence() {
        let case = b"aaaa\nbbxbb\naxyb\ncccc\n";
        let min = minimize(&Toy, case);
        assert!(Toy.run(&min).is_err(), "minimized case must still fail");
        assert!(min.len() <= 3, "expected ~2 bytes, got {:?}", String::from_utf8_lossy(&min));
    }

    #[test]
    fn run_target_is_deterministic_and_finds_the_bug() {
        let a = run_target(&Toy, 300, 0xC0FFEE, None);
        let b = run_target(&Toy, 300, 0xC0FFEE, None);
        assert!(!a.failures.is_empty(), "toy bug never generated in 300 iters");
        assert_eq!(a.failures[0].iter, b.failures[0].iter);
        assert_eq!(a.failures[0].minimized, b.failures[0].minimized);
    }

    #[test]
    fn exec_captures_panics_as_findings() {
        struct Panicky;
        impl Target for Panicky {
            fn name(&self) -> &'static str {
                "panicky"
            }
            fn generate(&self, _input: &mut FuzzInput) -> Vec<u8> {
                Vec::new()
            }
            fn run(&self, _case: &[u8]) -> Result<(), String> {
                panic!("boom");
            }
        }
        let err = exec(&Panicky, b"").unwrap_err();
        assert!(err.contains("boom"), "{err}");
    }
}
