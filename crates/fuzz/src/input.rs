//! `FuzzInput` — the byte-budget decoder fuzz targets draw structure
//! from.
//!
//! This is the same model as the devkit's property harness
//! ([`hoiho_devkit::prop::Source`], which it wraps): a target does not
//! mutate cases, it *decodes* one from a finite entropy buffer. A
//! drained buffer reads as zeros, so every decoder maps exhaustion to
//! its minimal choice (shortest string, first alternative, zero count)
//! and any buffer — random, truncated, or shrunk — decodes to a valid
//! case.

use hoiho_devkit::prop::Source;

/// A finite entropy budget with decoding helpers for structured case
/// generation.
pub struct FuzzInput<'a> {
    src: Source<'a>,
}

impl<'a> FuzzInput<'a> {
    /// Wraps an entropy buffer; reads past the end yield zeros.
    pub fn new(bytes: &'a [u8]) -> FuzzInput<'a> {
        FuzzInput { src: Source::new(bytes) }
    }

    /// Next raw byte (zero once drained).
    pub fn byte(&mut self) -> u8 {
        self.src.byte()
    }

    /// Uniform draw from `[0, span)`; `0` when drained. `span` ≥ 1.
    pub fn below(&mut self, span: u64) -> u64 {
        self.src.below(span)
    }

    /// Uniform draw from `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent`/100 (false when drained — a
    /// drained draw is 0, so the comparison is arranged to put false
    /// on the zero side).
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) >= 100 - percent.min(100)
    }

    /// Uniform pick from a non-empty slice (first item when drained).
    pub fn pick<'t, T>(&mut self, items: &'t [T]) -> &'t T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// A string of `lo..=hi` characters drawn from `set`.
    pub fn token(&mut self, set: &str, lo: u64, hi: u64) -> String {
        let chars: Vec<char> = set.chars().collect();
        let n = self.range(lo, hi);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drained_input_decodes_to_minimal_choices() {
        let mut input = FuzzInput::new(&[]);
        assert_eq!(input.byte(), 0);
        assert_eq!(input.below(10), 0);
        assert_eq!(input.range(3, 9), 3);
        assert!(!input.chance(99));
        assert_eq!(*input.pick(&["first", "second"]), "first");
        assert_eq!(input.token("xyz", 2, 5), "xx");
    }

    #[test]
    fn same_bytes_decode_to_same_case() {
        let buf: Vec<u8> = (0..200u8).collect();
        let decode = |bytes: &[u8]| {
            let mut input = FuzzInput::new(bytes);
            (input.token("abc123.-", 0, 20), input.range(1, 1000), input.chance(50))
        };
        assert_eq!(decode(&buf), decode(&buf));
    }
}
