//! Model-artifact surface: `Model::parse` and the serving tiers built
//! on top of a parsed model.
//!
//! Case layout: a whole artifact text. Oracle, for parse-accepted
//! artifacts:
//!
//! 1. render→parse→render fixpoint — `render(m)` reparses and renders
//!    to the same bytes;
//! 2. sharded-vs-single differential: a [`ShardRouter`] over 1–3
//!    shards of the model must answer byte-identically to a single
//!    [`EngineBackend`] for hostnames derived from the model's own
//!    suffixes (plus misses), both singly and batched — the
//!    cluster-tier invariant the whole deployment story rests on.

use super::{Target, HOSTCHARS};
use crate::corpus::case_hash;
use crate::input::FuzzInput;
use hoiho_cluster::ShardRouter;
use hoiho_serve::server::Backend;
use hoiho_serve::{Engine, EngineBackend, Model};
use std::sync::Arc;

/// Suffix pool: PSL-real and PSL-weird shapes both.
const SUFFIXES: &[&str] = &["example.com", "other.net", "isp.example", "a.b", "x", "net"];

/// Regexes that parse in the dialect (R records must hold valid
/// patterns for the artifact to be accepted).
const REGEXES: &[&str] = &[
    "^as(\\d+)\\.example\\.com$",
    "(\\d+)",
    "^[^\\.]+-(\\d+)\\.",
    "(?:eth|gig)(\\d+)$",
    "\\d+-(\\d+)",
];

const CLASSES: &[&str] = &["good", "promising", "poor", "junk", ""];
const TAXONOMIES: &[&str] = &["start", "end", "bare", "none", "x"];

pub struct ArtifactTarget;

impl Target for ArtifactTarget {
    fn name(&self) -> &'static str {
        "artifact"
    }

    fn generate(&self, input: &mut FuzzInput) -> Vec<u8> {
        let mut lines: Vec<String> = Vec::new();
        lines.push("hoiho-model\t1".to_string());
        let entries = input.range(0, 3);
        let mut n_regexes = 0u64;
        for i in 0..entries {
            // Mostly distinct pool suffixes (parse requires sorted
            // unique); sometimes random ones to probe the order checks.
            let suffix = if input.chance(75) && (i as usize) < SUFFIXES.len() {
                SUFFIXES[i as usize].to_string()
            } else {
                input.token(HOSTCHARS, 0, 12)
            };
            lines.push(format!(
                "S\t{}\t{}\t{}\t{}\t{}",
                suffix,
                input.pick(CLASSES),
                input.range(0, 2),
                input.pick(TAXONOMIES),
                input.below(1000),
            ));
            lines.push(format!(
                "C\t{}\t{}\t{}\t{}\t{}\t{}",
                input.below(100),
                input.below(100),
                input.below(100),
                input.below(100),
                input.below(100),
                input.below(100),
            ));
            for _ in 0..input.range(1, 3) {
                lines.push(format!("R\t{}", input.pick(REGEXES)));
                n_regexes += 1;
            }
        }
        lines.push(format!("E\t{entries}\t{n_regexes}"));
        // Structural mutations: drop/duplicate/swap lines, corrupt one
        // line's bytes, append trailing junk.
        for _ in 0..input.range(0, 3) {
            if lines.is_empty() {
                break;
            }
            let at = input.below(lines.len() as u64) as usize;
            match input.below(5) {
                0 => {
                    lines.remove(at);
                }
                1 => {
                    let dup = lines[at].clone();
                    lines.insert(at, dup);
                }
                2 => {
                    let bt = input.below(lines.len() as u64) as usize;
                    lines.swap(at, bt);
                }
                3 => {
                    let junk = input.token("\tS CRE09x", 1, 4);
                    let pos = input.below(lines[at].len() as u64 + 1) as usize;
                    lines[at].insert_str(pos, &junk);
                }
                _ => lines.push(input.token("ESCR\t 0123xyz", 0, 10)),
            }
        }
        let mut case = lines.join("\n");
        if input.chance(80) {
            case.push('\n');
        }
        case.into_bytes()
    }

    fn run(&self, case: &[u8]) -> Result<(), String> {
        let Ok(text) = std::str::from_utf8(case) else {
            return Ok(());
        };
        let Ok(model) = Model::parse(text) else {
            return Ok(());
        };
        let rendered = model.render();
        let reparsed = Model::parse(&rendered)
            .map_err(|e| format!("render of accepted artifact fails to reparse: {e}"))?;
        if reparsed.render() != rendered {
            return Err("render→parse→render is not a fixpoint".to_string());
        }

        // Sharded vs single. Shard count derives from the case bytes so
        // replays are exact.
        let single = EngineBackend::new(Arc::new(Engine::new(&model)));
        let shards = 1 + (case_hash(case) % 3) as u32;
        let router = ShardRouter::from_model(&model, shards, 64)
            .map_err(|e| format!("split({shards}) failed on a valid model: {e}"))?;
        let mut hosts: Vec<String> = vec!["unrelated.example.org".into(), String::new()];
        for e in &model.entries {
            hosts.push(format!("as64500.{}", e.suffix));
            hosts.push(format!("xe-0-1.{}", e.suffix));
            hosts.push(e.suffix.clone());
        }
        let off = hoiho_obs::TraceCtx::off();
        for h in &hosts {
            let a = single.query(h, &off);
            let b = router.lookup(h);
            if a != b {
                return Err(format!(
                    "sharded({shards}) diverges from single engine on {h:?}: {a:?} vs {b:?}"
                ));
            }
        }
        let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let a = single.query_batch(&refs, &off);
        let b = router.lookup_batch(&refs);
        if a != b {
            return Err(format!("sharded({shards}) batch diverges from single engine"));
        }
        Ok(())
    }
}
