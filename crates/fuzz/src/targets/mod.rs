//! The fuzz target registry: one target per strict surface, each
//! pairing a structured case generator with a differential oracle.
//!
//! | target   | surface                       | oracle                                            |
//! |----------|-------------------------------|---------------------------------------------------|
//! | regex    | `Regex::parse` + compile      | compiled vs interpreted `find`/`find_trace`, display→parse fixpoint |
//! | multimatch | `MultiMatcher` pool dispatch | automaton dispatch vs per-regex compiled scans (superset-exact, mask/scratch agreement) |
//! | artifact | `Model::parse`                | render fixpoint + sharded(N) vs single engine answers |
//! | shardmap | `ShardMap::parse`             | render fixpoint + value equality                  |
//! | scenario | `Scenario::parse`             | canonical render fixpoint                         |
//! | framing  | server line/`BATCH` framing   | live server vs a framing reference simulation over RNG-fragmented streams |
//!
//! A target's `run` takes the *case bytes themselves* (not entropy), so
//! corpus files are exact-input regressions. Rejection of a malformed
//! case is a pass — the oracles hunt panics, divergence between
//! redundant implementations, and broken fixpoints, not strictness.

mod artifact;
mod framing;
mod multimatch;
mod regex;
mod scenario;
mod shardmap;

use crate::input::FuzzInput;

/// One fuzzable surface: a case decoder plus its oracle.
pub trait Target {
    /// Registry (and corpus directory) name.
    fn name(&self) -> &'static str;

    /// Decodes one case from the entropy budget. The returned bytes are
    /// the canonical case — what `run` consumes, what the minimizer
    /// shrinks, and what the corpus stores.
    fn generate(&self, input: &mut FuzzInput) -> Vec<u8>;

    /// Runs the oracle on exact case bytes. `Err` is a finding; panics
    /// are caught by the runner and treated the same.
    fn run(&self, case: &[u8]) -> Result<(), String>;
}

/// All registered targets, in a stable order.
pub fn all_targets() -> Vec<Box<dyn Target>> {
    vec![
        Box::new(regex::RegexTarget),
        Box::new(multimatch::MultiMatchTarget),
        Box::new(artifact::ArtifactTarget),
        Box::new(shardmap::ShardMapTarget),
        Box::new(scenario::ScenarioTarget),
        Box::new(framing::FramingTarget::new()),
    ]
}

/// Looks a target up by name.
pub fn target_by_name(name: &str) -> Option<Box<dyn Target>> {
    all_targets().into_iter().find(|t| t.name() == name)
}

/// The hostname-ish alphabet case text is built from. Lowercase only:
/// fuzz traffic reaching a live loopback server must never be able to
/// spell an admin verb (`SHUTDOWN`, `RELOAD`).
pub(crate) const HOSTCHARS: &str = "abcdefghijklmnopqrstuvwxyz0123456789.-";
