//! Regex surface: `Regex::parse`, the display form, and the
//! compiled-vs-interpreted matchers.
//!
//! Case layout: line 1 is the pattern, every following line is a
//! haystack. Oracle, for parse-accepted patterns:
//!
//! 1. `parse(display(re))` succeeds and equals `re` (the display form
//!    is a faithful serialization of the parsed AST);
//! 2. on every haystack, the compiled program ([`Regex::find`],
//!    [`Regex::find_trace`]) and the tree-walking interpreter
//!    ([`Regex::find_interpreted`], [`Regex::find_trace_interpreted`])
//!    return identical answers — the redundancy the paper's pipeline
//!    depends on (PAPER §3: extraction semantics must be identical in
//!    every tier).

use super::{Target, HOSTCHARS};
use crate::input::FuzzInput;
use hoiho::regex::Regex;

/// Grammar pieces a syntactically-plausible pattern is assembled from.
const PIECES: &[&str] = &[
    "as",
    "core",
    "xe-",
    "\\.",
    "-",
    "(\\d+)",
    "\\d+",
    "[^\\.]+",
    "[^\\.-]+",
    "[a-z]+",
    "[a-z\\d]+",
    "[a-z\\d-]+",
    ".+",
    "(?:eth|gig|ae)",
    "(?:sea|nyc)?",
];

/// Corruption alphabet: dialect metacharacters and a few plain chars,
/// spliced in to probe the parser's rejection paths.
const META: &str = "^$()[]\\|?+.ad19:-";

pub struct RegexTarget;

impl Target for RegexTarget {
    fn name(&self) -> &'static str {
        "regex"
    }

    fn generate(&self, input: &mut FuzzInput) -> Vec<u8> {
        let mut pattern = String::new();
        if input.chance(60) {
            pattern.push('^');
        }
        for _ in 0..input.range(1, 6) {
            pattern.push_str(input.pick(PIECES) as &str);
        }
        if input.chance(60) {
            pattern.push('$');
        }
        // A third of cases get corrupted: random metacharacter splices
        // that mostly produce parse rejections (which must be clean).
        if input.chance(33) {
            for _ in 0..input.range(1, 4) {
                // The pattern is pure ASCII, so any index is a char
                // boundary.
                let at = input.below(pattern.len() as u64 + 1) as usize;
                let junk = input.token(META, 1, 3);
                pattern.insert_str(at, &junk);
            }
        }
        let mut case = pattern.clone();
        case.push('\n');
        // Haystacks: random hostname-ish text, plus a stripped form of
        // the pattern itself (high odds of partial matches).
        for _ in 0..input.range(1, 5) {
            case.push_str(&input.token(HOSTCHARS, 0, 24));
            case.push('\n');
        }
        if input.chance(50) {
            let stripped: String = pattern
                .chars()
                .map(|c| match c {
                    '^' | '$' | '(' | ')' | '[' | ']' | '\\' | '|' | '?' | '+' | ':' => '1',
                    c => c,
                })
                .collect();
            case.push_str(&stripped);
            case.push('\n');
        }
        case.into_bytes()
    }

    fn run(&self, case: &[u8]) -> Result<(), String> {
        let Ok(text) = std::str::from_utf8(case) else {
            return Ok(()); // foreign bytes: nothing to feed a &str parser
        };
        let mut lines = text.lines();
        let pattern = lines.next().unwrap_or("");
        let Ok(re) = Regex::parse(pattern) else {
            return Ok(()); // clean rejection is a pass
        };
        let rendered = re.to_string();
        let reparsed = Regex::parse(&rendered).map_err(|e| {
            format!("display {rendered:?} of accepted pattern {pattern:?} fails to reparse: {e}")
        })?;
        if reparsed != re {
            return Err(format!(
                "display round-trip changed the regex: {pattern:?} -> {rendered:?} -> {reparsed:?}"
            ));
        }
        for hay in lines {
            let compiled = re.find(hay);
            let interpreted = re.find_interpreted(hay);
            if compiled != interpreted {
                return Err(format!(
                    "find divergence on {pattern:?} / {hay:?}: compiled {compiled:?} vs interpreted {interpreted:?}"
                ));
            }
            let compiled = re.find_trace(hay);
            let interpreted = re.find_trace_interpreted(hay);
            if compiled != interpreted {
                return Err(format!(
                    "find_trace divergence on {pattern:?} / {hay:?}: compiled {compiled:?} vs interpreted {interpreted:?}"
                ));
            }
        }
        Ok(())
    }
}
