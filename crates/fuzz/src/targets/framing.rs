//! Server framing surface: line framing and the `BATCH` protocol of
//! the epoll server, under RNG-fragmented byte streams.
//!
//! Case layout: the first line is a fragmentation plan
//! (`splits\t<len>,<len>,...` — how many bytes each client write
//! carries); everything after the first newline is the raw payload.
//! The oracle replays the payload through a live server (started once
//! per target instance, on a fixed model) in exactly those fragments,
//! half-closes, drains to EOF, and compares against a reference
//! simulation of the documented framing semantics:
//!
//! * lines are framed at `\n`, trimmed, blank lines answer nothing;
//! * `BATCH n` arms collection of `n` hostname lines, answered as an
//!   `ok\tbatch\tn` header plus one answer line per item; degenerate
//!   headers answer the documented error strings;
//! * EOF completes an unterminated final line, then fails an open
//!   batch with `err\tbatch truncated by eof`;
//! * an oversized or non-UTF-8 line drops the connection, so the bytes
//!   received must be a prefix of the expected stream.
//!
//! Fragmentation must be invisible: any split of the same payload
//! yields the same response stream. The payload alphabet is lowercase
//! (plus `BATCH`), so a fuzz case can never spell a loopback admin
//! verb — see `HOSTCHARS`.

use super::{Target, HOSTCHARS};
use crate::input::FuzzInput;
use hoiho::classify::NcClass;
use hoiho::regex::Regex;
use hoiho::taxonomy::Taxonomy;
use hoiho_serve::server::Backend;
use hoiho_serve::{
    Engine, EngineBackend, EvalCounts, Model, ModelEntry, ServerHandle, MAX_BATCH, MAX_LINE,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Hostname vocabulary: hits, misses, whitespace shapes, and things
/// that look almost like batch headers.
const HOSTS: &[&str] = &[
    "as1.example.com",
    "as64500.example.com",
    "core1.example.com",
    "nope.example.org",
    "  as2.example.com  ",
    "",
    "   ",
    "batch 2",
    "batchx",
];

/// `BATCH` header arguments to probe, valid and degenerate.
const BATCH_ARGS: &[&str] = &["0", "1", "2", "3", "", "-1", "5000", "two", "1 2", "0x1"];

fn fixed_model() -> Model {
    Model {
        entries: vec![ModelEntry {
            suffix: "example.com".to_string(),
            class: NcClass::Good,
            single: false,
            taxonomy: Taxonomy::Start,
            hostnames: 4,
            counts: EvalCounts::default(),
            regexes: vec![Regex::parse(r"^as(\d+)\.example\.com$").unwrap()],
        }],
    }
}

pub struct FramingTarget {
    server: OnceLock<ServerHandle>,
    /// The simulation's answer source — the same backend type the
    /// server queries, over the same model.
    backend: EngineBackend,
}

impl FramingTarget {
    pub fn new() -> FramingTarget {
        FramingTarget {
            server: OnceLock::new(),
            backend: EngineBackend::new(Arc::new(Engine::new(&fixed_model()))),
        }
    }

    fn server(&self) -> &ServerHandle {
        self.server.get_or_init(|| {
            ServerHandle::start("127.0.0.1:0", Arc::new(Engine::new(&fixed_model())), 1)
                .expect("fuzz server start")
        })
    }

    /// The documented framing semantics, as plain sequential code.
    /// Returns the expected response bytes and whether the connection
    /// is dropped mid-stream (protocol violation).
    fn simulate(&self, payload: &[u8]) -> (Vec<u8>, bool) {
        let mut out: Vec<u8> = Vec::new();
        let mut batch: Option<(usize, Vec<String>)> = None;
        let mut serve = |line: &[u8], out: &mut Vec<u8>| -> bool {
            if line.len() > MAX_LINE {
                return false;
            }
            let Ok(text) = std::str::from_utf8(line) else {
                return false;
            };
            if let Some((expected, hosts)) = batch.as_mut() {
                hosts.push(text.trim().to_string());
                if hosts.len() == *expected {
                    let (_, hosts) = batch.take().expect("batch state just observed");
                    out.extend_from_slice(
                        format!("ok\tbatch\t{}\n", hosts.len()).as_bytes(),
                    );
                    let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
                    let off = hoiho_obs::TraceCtx::off();
                    for (h, a) in hosts.iter().zip(self.backend.query_batch(&refs, &off)) {
                        a.render_line_into(h, out);
                    }
                }
                return true;
            }
            let request = text.trim();
            if request == "BATCH" || request.starts_with("BATCH ") {
                let arg = request.strip_prefix("BATCH").unwrap_or_default().trim();
                match arg.parse::<usize>() {
                    Ok(0) => out.extend_from_slice(b"ok\tbatch\t0\n"),
                    Ok(n) if n <= MAX_BATCH => batch = Some((n, Vec::new())),
                    Ok(n) => out.extend_from_slice(
                        format!("err\tBATCH count {n} exceeds the cap of {MAX_BATCH}\n")
                            .as_bytes(),
                    ),
                    Err(_) => out.extend_from_slice(
                        format!("err\tBATCH takes a hostname count, got {arg:?}\n").as_bytes(),
                    ),
                }
                return true;
            }
            if request.is_empty() {
                return true;
            }
            let answer = self.backend.query(request, &hoiho_obs::TraceCtx::off());
            out.extend_from_slice(
                format!("{request}\t{}\n", answer.render_fields()).as_bytes(),
            );
            true
        };

        let mut start = 0usize;
        while let Some(rel) = payload[start..].iter().position(|&b| b == b'\n') {
            let end = start + rel;
            if !serve(&payload[start..end], &mut out) {
                return (out, true);
            }
            start = end + 1;
        }
        // EOF: an unterminated final line is completed and served, then
        // an open batch fails.
        if start < payload.len() && !serve(&payload[start..], &mut out) {
            return (out, true);
        }
        if batch.is_some() {
            out.extend_from_slice(b"err\tbatch truncated by eof\n");
        }
        (out, false)
    }
}

impl Target for FramingTarget {
    fn name(&self) -> &'static str {
        "framing"
    }

    fn generate(&self, input: &mut FuzzInput) -> Vec<u8> {
        let mut payload = String::new();
        for _ in 0..input.range(1, 8) {
            match input.below(100) {
                0..=49 => {
                    if input.chance(60) {
                        payload.push_str(input.pick(HOSTS) as &str);
                    } else {
                        payload.push_str(&input.token(HOSTCHARS, 0, 20));
                    }
                    payload.push('\n');
                }
                50..=79 => {
                    let arg = input.pick(BATCH_ARGS);
                    payload.push_str(&format!("BATCH {arg}\n"));
                    // Usually the promised number of items; sometimes
                    // fewer, leaving the batch to absorb later ops or
                    // get truncated by EOF.
                    let promised: u64 = arg.parse().unwrap_or(0);
                    let items =
                        if input.chance(70) { promised } else { input.below(promised + 1) };
                    for _ in 0..items.min(8) {
                        payload.push_str(input.pick(HOSTS) as &str);
                        payload.push('\n');
                    }
                }
                _ => {
                    payload.push_str(&input.token("abcz019.- \t", 0, 12));
                    payload.push('\n');
                }
            }
        }
        if input.chance(20) {
            // Leave the last line unterminated (EOF completes it).
            payload.push_str(input.pick(HOSTS) as &str);
        }
        // Fragmentation plan: cut points drawn over the payload.
        let bytes = payload.into_bytes();
        let mut cuts: Vec<usize> = (0..input.range(0, 6))
            .map(|_| input.below(bytes.len() as u64 + 1) as usize)
            .collect();
        cuts.push(bytes.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut lens: Vec<String> = Vec::new();
        let mut prev = 0usize;
        for c in cuts {
            if c > prev {
                lens.push((c - prev).to_string());
                prev = c;
            }
        }
        let mut case = format!("splits\t{}\n", lens.join(",")).into_bytes();
        case.extend_from_slice(&bytes);
        case
    }

    fn run(&self, case: &[u8]) -> Result<(), String> {
        // Decode the plan line; a case without one (foreign or heavily
        // minimized) is a single whole-payload write.
        let (splits, payload): (Vec<usize>, &[u8]) = match case
            .iter()
            .position(|&b| b == b'\n')
            .map(|nl| (&case[..nl], &case[nl + 1..]))
        {
            Some((first, rest)) if first.starts_with(b"splits\t") => {
                let plan = String::from_utf8_lossy(&first[b"splits\t".len()..]);
                (plan.split(',').filter_map(|f| f.parse().ok()).collect(), rest)
            }
            _ => (vec![case.len()], case),
        };

        let (expected, violated) = self.simulate(payload);

        let addr = self.server().local_addr();
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        let mut sent = 0usize;
        for len in splits {
            if sent >= payload.len() {
                break;
            }
            let end = (sent + len).min(payload.len());
            if stream.write_all(&payload[sent..end]).is_err() {
                // The server may legitimately drop us mid-write on a
                // protocol violation.
                break;
            }
            sent = end;
        }
        if sent < payload.len() {
            let _ = stream.write_all(&payload[sent..]);
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);

        let mut received = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => received.extend_from_slice(&buf[..n]),
                Err(_) => {
                    // Timeout or reset. A reset after a violation is
                    // expected; a timeout means the server hung.
                    break;
                }
            }
        }

        if violated {
            if !expected.starts_with(&received) {
                return Err(format!(
                    "after a protocol violation, received bytes are not a prefix of the \
                     expected stream\nexpected {:?}\nreceived {:?}",
                    String::from_utf8_lossy(&expected),
                    String::from_utf8_lossy(&received),
                ));
            }
        } else if received != expected {
            return Err(format!(
                "response stream diverges from the framing reference\npayload {:?}\n\
                 expected {:?}\nreceived {:?}",
                String::from_utf8_lossy(payload),
                String::from_utf8_lossy(&expected),
                String::from_utf8_lossy(&received),
            ));
        }
        Ok(())
    }
}
