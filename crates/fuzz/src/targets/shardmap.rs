//! Shard-map surface: `ShardMap::parse`.
//!
//! Case layout: a whole manifest text. Oracle for parse-accepted
//! manifests: `render(m)` reparses to an equal value and renders to
//! the same bytes (render→parse fixpoint, plus value equality — the
//! manifest is the cluster's source of routing truth, so a lossy
//! round-trip would silently re-route suffixes).

use super::{Target, HOSTCHARS};
use crate::input::FuzzInput;
use hoiho_cluster::ShardMap;

pub struct ShardMapTarget;

impl Target for ShardMapTarget {
    fn name(&self) -> &'static str {
        "shardmap"
    }

    fn generate(&self, input: &mut FuzzInput) -> Vec<u8> {
        let shards = input.range(0, 5);
        let mut lines: Vec<String> =
            vec![format!("hoiho-shardmap\t1\t{shards}")];
        let n = input.range(0, 5);
        let mut suffixes: Vec<String> = (0..n)
            .map(|_| input.token(HOSTCHARS, 1, 10))
            .collect();
        // Parse requires sorted unique suffixes; keep most cases valid
        // and let the mutation pass below probe the order checks.
        suffixes.sort();
        suffixes.dedup();
        let mut total = 0u64;
        for s in &suffixes {
            let shard = input.below(shards.max(1) + 1); // sometimes out of range
            let weight = input.below(10_000);
            total += weight;
            lines.push(format!("A\t{s}\t{shard}\t{weight}"));
        }
        let trailer_total = if input.chance(85) { total } else { input.below(10_000) };
        lines.push(format!("E\t{}\t{}", suffixes.len(), trailer_total));
        for _ in 0..input.range(0, 2) {
            if lines.is_empty() {
                break;
            }
            let at = input.below(lines.len() as u64) as usize;
            match input.below(4) {
                0 => {
                    lines.remove(at);
                }
                1 => {
                    let bt = input.below(lines.len() as u64) as usize;
                    lines.swap(at, bt);
                }
                2 => {
                    let junk = input.token("\tAE 0z.", 1, 3);
                    let pos = input.below(lines[at].len() as u64 + 1) as usize;
                    lines[at].insert_str(pos, &junk);
                }
                _ => lines.push(input.token("AE\t 019a.-", 0, 12)),
            }
        }
        let mut case = lines.join("\n");
        case.push('\n');
        case.into_bytes()
    }

    fn run(&self, case: &[u8]) -> Result<(), String> {
        let Ok(text) = std::str::from_utf8(case) else {
            return Ok(());
        };
        let Ok(map) = ShardMap::parse(text) else {
            return Ok(());
        };
        let rendered = map.render();
        let reparsed = ShardMap::parse(&rendered)
            .map_err(|e| format!("render of accepted shard map fails to reparse: {e}"))?;
        if reparsed != map {
            return Err("render→parse round-trip changed the shard map".to_string());
        }
        if reparsed.render() != rendered {
            return Err("render→parse→render is not a fixpoint".to_string());
        }
        Ok(())
    }
}
