//! Multi-pattern dispatch: [`MultiMatcher`] over a pool of compiled
//! regexes vs per-regex scans.
//!
//! Case layout: pattern lines, then a blank separator line, then host
//! lines. Oracle, over the parse-accepted patterns:
//!
//! 1. dispatch is superset-exact — every program that matches a host
//!    must be dispatched for it (a skipped program must not match);
//! 2. dispatch never repeats or invents a program index;
//! 3. when the pool fits the bitmask fast path
//!    ([`MultiMatcher::supports_mask`]), the mask agrees bit-for-bit
//!    with the scratch-dispatch path.

use super::{Target, HOSTCHARS};
use crate::input::FuzzInput;
use hoiho::regex::{CompiledRegex, MultiMatcher, Regex};

/// Grammar pieces for pool patterns — literal-heavy (dispatch lives on
/// literals), plus classes and a capture so programs stay realistic.
const PIECES: &[&str] = &[
    "as",
    "ix",
    "core",
    "xe-",
    "\\.net",
    "\\.",
    "-",
    "(\\d+)",
    "\\d+",
    "[^\\.]+",
    "[a-z]+",
    "[a-z\\d]+",
    "(?:eth|gig|ae)",
    "(?:sea|nyc)?",
];

pub struct MultiMatchTarget;

impl Target for MultiMatchTarget {
    fn name(&self) -> &'static str {
        "multimatch"
    }

    fn generate(&self, input: &mut FuzzInput) -> Vec<u8> {
        let mut case = String::new();
        for _ in 0..input.range(0, 8) {
            let mut pattern = String::new();
            if input.chance(50) {
                pattern.push('^');
            }
            for _ in 0..input.range(1, 5) {
                pattern.push_str(input.pick(PIECES) as &str);
            }
            if input.chance(50) {
                pattern.push('$');
            }
            case.push_str(&pattern);
            case.push('\n');
        }
        case.push('\n'); // blank separator: patterns above, hosts below
        for _ in 0..input.range(1, 8) {
            // Host text reuses the literal pieces half the time so the
            // automaton actually fires, plus random hostname-ish noise.
            let mut host = String::new();
            for _ in 0..input.range(0, 4) {
                if input.chance(50) {
                    let piece = input.pick(PIECES) as &str;
                    host.extend(piece.chars().filter(|c| HOSTCHARS.contains(*c)));
                } else {
                    host.push_str(&input.token(HOSTCHARS, 0, 12));
                }
            }
            case.push_str(&host);
            case.push('\n');
        }
        case.into_bytes()
    }

    fn run(&self, case: &[u8]) -> Result<(), String> {
        let Ok(text) = std::str::from_utf8(case) else {
            return Ok(()); // foreign bytes: nothing to feed a &str parser
        };
        let mut lines = text.lines();
        let pool: Vec<Regex> = lines
            .by_ref()
            .take_while(|l| !l.is_empty())
            .filter_map(|l| Regex::parse(l).ok()) // rejection is a pass
            .collect();
        let programs: Vec<CompiledRegex> = pool.iter().map(CompiledRegex::compile).collect();
        let matcher = MultiMatcher::build(&programs);
        let mut scratch = matcher.scratch();
        for host in lines {
            let dispatched = matcher.dispatch(host.as_bytes(), &mut scratch).to_vec();
            let mut sorted = dispatched.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != dispatched.len() {
                return Err(format!("duplicate dispatch on {host:?}: {dispatched:?}"));
            }
            if sorted.last().is_some_and(|&ri| ri as usize >= programs.len()) {
                return Err(format!("dispatch index out of range on {host:?}: {dispatched:?}"));
            }
            for (ri, p) in programs.iter().enumerate() {
                if p.is_match(host) && !dispatched.contains(&(ri as u32)) {
                    return Err(format!(
                        "false negative: {} matches {host:?} but was not dispatched",
                        pool[ri]
                    ));
                }
            }
            if matcher.supports_mask() {
                let mask = matcher.dispatch_mask(host.as_bytes());
                let from_mask: Vec<u32> = (0..64).filter(|&b| mask >> b & 1 == 1).collect();
                if from_mask != sorted {
                    return Err(format!(
                        "mask/scratch divergence on {host:?}: mask {from_mask:?} vs {sorted:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}
