//! Scenario-format surface: `Scenario::parse`.
//!
//! Case layout: a whole scenario text. The generator starts from the
//! canonical rendering of a default scenario — which guarantees a
//! large accepted fraction without duplicating the grammar here — and
//! applies structural mutations (line drop/swap/dup, splices, value
//! rewrites). Oracle for parse-accepted text: the canonical render
//! reparses and renders to the same bytes (the fixpoint the format
//! module documents, under adversarial rather than generated-valid
//! input).

use super::Target;
use crate::input::FuzzInput;
use hoiho_scenario::Scenario;
use std::sync::OnceLock;

/// Canonical base document lines, rendered once from a default
/// scenario.
fn base_lines() -> &'static [String] {
    static BASE: OnceLock<Vec<String>> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut sc = Scenario::default();
        sc.name = "fuzz-base".to_string();
        sc.render().lines().map(str::to_string).collect()
    })
}

pub struct ScenarioTarget;

impl Target for ScenarioTarget {
    fn name(&self) -> &'static str {
        "scenario"
    }

    fn generate(&self, input: &mut FuzzInput) -> Vec<u8> {
        let mut lines: Vec<String> = base_lines().to_vec();
        for _ in 0..input.range(0, 5) {
            if lines.is_empty() {
                break;
            }
            let at = input.below(lines.len() as u64) as usize;
            match input.below(6) {
                0 => {
                    lines.remove(at);
                }
                1 => {
                    let dup = lines[at].clone();
                    lines.insert(at, dup);
                }
                2 => {
                    let bt = input.below(lines.len() as u64) as usize;
                    lines.swap(at, bt);
                }
                3 => {
                    // Rewrite a value: numbers near validation edges.
                    if let Some((key, _)) = lines[at].split_once('=') {
                        let v = input.pick(&[
                            "0", "1", "-1", "1e400", "nan", "0.5", "9999999", "zipf 1.1", "",
                        ]);
                        lines[at] = format!("{key}= {v}");
                    }
                }
                4 => {
                    let junk = input.token("[]=. _abz019\t", 1, 5);
                    // The base rendering may contain non-ASCII (e.g. in
                    // comments) — snap the splice point to a boundary.
                    let mut pos = input.below(lines[at].len() as u64 + 1) as usize;
                    while pos > 0 && !lines[at].is_char_boundary(pos) {
                        pos -= 1;
                    }
                    lines[at].insert_str(pos, &junk);
                }
                _ => {
                    let junk = input.token("[]=. _abz019\t#", 0, 16);
                    lines.insert(at, junk);
                }
            }
        }
        let mut case = lines.join("\n");
        case.push('\n');
        case.into_bytes()
    }

    fn run(&self, case: &[u8]) -> Result<(), String> {
        let Ok(text) = std::str::from_utf8(case) else {
            return Ok(());
        };
        let Ok(sc) = Scenario::parse(text) else {
            return Ok(());
        };
        let rendered = sc.render();
        let reparsed = Scenario::parse(&rendered)
            .map_err(|e| format!("render of accepted scenario fails to reparse: {e}"))?;
        if reparsed.render() != rendered {
            return Err("render→parse→render is not a fixpoint".to_string());
        }
        Ok(())
    }
}
