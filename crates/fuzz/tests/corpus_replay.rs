//! Replays the committed `fuzz/corpus/` through every target's oracle.
//!
//! Each `.case` file is an exact input: either a hand-planted hard
//! case (`seed-*`) or a minimized counterexample committed alongside
//! its fix (`crash-*`). Both must pass forever after — this is the
//! crash-regression suite the fuzz tier feeds.

use hoiho_fuzz::{all_targets, replay};

#[test]
fn committed_corpus_replays_green() {
    let dir = hoiho_fuzz::corpus::default_dir();
    assert!(
        dir.is_dir(),
        "corpus directory {} is missing — it must be checked in (seeded even when empty of crashes)",
        dir.display()
    );
    let targets = all_targets();
    let outcomes = replay(&targets, &dir).expect("corpus read");
    assert!(
        !outcomes.is_empty(),
        "corpus is empty — the seed cases must be checked in"
    );
    let failures: Vec<String> = outcomes
        .iter()
        .filter_map(|o| {
            o.result
                .as_ref()
                .err()
                .map(|e| format!("{}/{}: {}", o.target, o.case, e))
        })
        .collect();
    assert!(failures.is_empty(), "corpus regressions:\n{}", failures.join("\n"));
}
