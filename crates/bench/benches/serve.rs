//! Benchmarks for the serving subsystem: model artifact round trips,
//! single-hostname and batch extraction through the suffix-indexed
//! engine, and full lookups over a live TCP server.
//!
//! Runs on the devkit micro-benchmark harness; results land in
//! `BENCH_serve.json` at the workspace root.

use hoiho::learner::{learn_all, LearnConfig};
use hoiho_devkit::bench::{Harness, Throughput};
use hoiho_itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_netsim::SimConfig;
use hoiho_obs::Obs;
use hoiho_psl::PublicSuffixList;
use hoiho_serve::server::Client;
use hoiho_serve::{Engine, Model, ServerHandle, MIN_BATCH_CHUNK};
use std::hint::black_box;
use std::sync::Arc;

/// A learned model plus every training hostname, the serving workload.
fn workload() -> (Model, Vec<String>) {
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: "bench-serve".into(),
        method: Method::BdrmapIt,
        cfg: SimConfig::tiny(2020),
        alias_split: 0.3,
    });
    let training = snap.training_set();
    let groups = training.by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    let hostnames: Vec<String> =
        training.observations().iter().map(|o| o.hostname.clone()).collect();
    (Model::from_learned(&learned), hostnames)
}

fn bench_artifact(h: &mut Harness, model: &Model) {
    let text = model.render();
    let mut g = h.benchmark_group("serve/artifact");
    g.throughput(Throughput::Elements(model.len() as u64));
    g.bench_function("render", |b| b.iter(|| black_box(black_box(model).render())));
    g.bench_function("parse", |b| {
        b.iter(|| black_box(Model::parse(black_box(&text)).expect("parse")))
    });
    g.bench_function("compile_engine", |b| {
        b.iter(|| black_box(Engine::new(black_box(model))))
    });
    g.finish();
}

fn bench_extraction(h: &mut Harness, model: &Model, hostnames: &[String]) {
    let engine = Engine::new(model);
    let mut g = h.benchmark_group("serve/extract");
    g.throughput(Throughput::Elements(hostnames.len() as u64));
    g.bench_function("single_loop", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for hn in hostnames {
                hits += usize::from(engine.extract(black_box(hn)).asn.is_some());
            }
            black_box(hits)
        })
    });
    g.bench_function("batch_1_thread", |b| {
        b.iter(|| black_box(engine.extract_all(black_box(hostnames), 1)))
    });
    g.bench_function("batch_4_threads", |b| {
        b.iter(|| black_box(engine.extract_all(black_box(hostnames), 4)))
    });
    g.finish();

    // The sim workload is a few hundred names — under the per-thread
    // chunk floor, so the batch above runs single-threaded by design
    // (that floor is what fixed the old 0.6x batch_4_threads
    // regression: tiny batches no longer pay thread-spawn costs).
    // This batch is big enough (8 chunks) that four threads each get
    // real work — on multi-core hardware the parallel path must beat
    // single-threaded here; on a single core the bar is parity within
    // scheduling overhead.
    let large: Vec<String> =
        (0..8 * MIN_BATCH_CHUNK).map(|i| hostnames[i % hostnames.len()].clone()).collect();
    let mut g = h.benchmark_group("serve/extract_large");
    g.throughput(Throughput::Elements(large.len() as u64));
    g.sample_size(10);
    g.bench_function("batch_1_thread", |b| {
        b.iter(|| black_box(engine.extract_all(black_box(&large), 1)))
    });
    g.bench_function("batch_4_threads", |b| {
        b.iter(|| black_box(engine.extract_all(black_box(&large), 4)))
    });
    g.finish();
}

fn bench_tcp(h: &mut Harness, model: &Model, hostnames: &[String]) {
    let engine = Arc::new(Engine::new(model));
    let srv = ServerHandle::start("127.0.0.1:0", engine, 2).expect("bind bench server");
    let mut client = Client::connect(srv.local_addr()).expect("connect");
    let batch: Vec<&String> = hostnames.iter().take(256).collect();
    let mut g = h.benchmark_group("serve/tcp");
    g.sample_size(20);
    g.throughput(Throughput::Elements(batch.len() as u64));
    g.bench_function("query_roundtrip", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for hn in &batch {
                hits += usize::from(client.query(black_box(hn)).expect("query").is_some());
            }
            black_box(hits)
        })
    });
    g.finish();

    // One framed BATCH request amortizes the socket round trip over the
    // whole batch instead of paying it per lookup. 1024 names (the
    // workload cycled) keeps the pipe full well past the server's
    // per-event read chunk, so the cost converges on raw extraction.
    let bulk: Vec<&String> =
        (0..1024).map(|i| &hostnames[i % hostnames.len()]).collect();
    let mut g = h.benchmark_group("serve");
    g.sample_size(20);
    g.throughput(Throughput::Elements(bulk.len() as u64));
    g.bench_function("socket_batch", |b| {
        b.iter(|| black_box(client.batch(black_box(&bulk)).expect("batch")))
    });
    g.finish();

    drop(client);
    srv.shutdown();

    // The same bulk batch against a server tracing 1 in 64 requests —
    // the sampled-tracing overhead row the --slo bench diff pairs with
    // socket_batch (DESIGN §7i budgets it at <5%). A fresh server so
    // the untraced run above never shares a sampler branch.
    let obs = Arc::new(Obs::new());
    obs.sampler().configure(64, 2020);
    let engine = Arc::new(Engine::new(model));
    let srv = ServerHandle::start_obs("127.0.0.1:0", engine, 2, obs)
        .expect("bind traced bench server");
    let mut client = Client::connect(srv.local_addr()).expect("connect");
    // Warmup: the untraced server above entered its socket_batch
    // rounds with regexes already compiled by the earlier roundtrip
    // bench; give this fresh server the same head start so the pair
    // measures tracing, not lazy compilation.
    for _ in 0..4 {
        client.batch(&bulk).expect("warmup batch");
    }
    let mut g = h.benchmark_group("serve");
    g.sample_size(20);
    g.throughput(Throughput::Elements(bulk.len() as u64));
    g.bench_function("socket_batch_traced", |b| {
        b.iter(|| black_box(client.batch(black_box(&bulk)).expect("batch")))
    });
    g.finish();

    drop(client);
    srv.shutdown();
}

fn main() {
    let (model, hostnames) = workload();
    let mut h = Harness::new("serve");
    bench_artifact(&mut h, &model);
    bench_extraction(&mut h, &model, &hostnames);
    bench_tcp(&mut h, &model, &hostnames);
    h.finish();
}
