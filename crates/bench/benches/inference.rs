//! Benchmarks for the inference substrate: longest-prefix matching,
//! public-suffix lookups, router-graph construction, RTAA election,
//! bdrmapIT refinement, and the §5 integration.
//!
//! Runs on the devkit micro-benchmark harness; results land in
//! `BENCH_inference.json` at the workspace root.

use hoiho::learner::{learn_all, LearnConfig};
use hoiho_bdrmap::graph::RouterGraph;
use hoiho_bdrmap::integrate::{integrate, ConventionSet};
use hoiho_bdrmap::refine::{self, RefineConfig};
use hoiho_bdrmap::rtaa;
use hoiho_devkit::bench::{Harness, Throughput};
use hoiho_itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_netsim::SimConfig;
use hoiho_psl::PublicSuffixList;
use std::collections::BTreeMap;
use std::hint::black_box;

fn spec() -> SnapshotSpec {
    SnapshotSpec {
        label: "bench".into(),
        method: Method::BdrmapIt,
        cfg: SimConfig::tiny(2020),
        alias_split: 0.3,
    }
}

fn bench_trie(h: &mut Harness) {
    let snap = BuiltSnapshot::build(&spec());
    let bgp = &snap.input.bgp;
    let addrs: Vec<u32> = snap.graph.by_addr.keys().copied().collect();
    let mut g = h.benchmark_group("substrate/trie_lpm");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("lookup_observed_addrs", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for &a in &addrs {
                if bgp.lookup_value(black_box(a)).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_psl(h: &mut Harness) {
    let psl = PublicSuffixList::builtin();
    let snap = BuiltSnapshot::build(&spec());
    let names: Vec<String> = snap
        .internet
        .interfaces
        .iter()
        .filter_map(|i| i.hostname.clone())
        .collect();
    let mut g = h.benchmark_group("substrate/psl");
    g.throughput(Throughput::Elements(names.len() as u64));
    g.bench_function("registrable_domain", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for h in &names {
                if psl.registrable_domain(black_box(h)).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_graph_build(h: &mut Harness) {
    let snap = BuiltSnapshot::build(&spec());
    let mut g = h.benchmark_group("inference/graph_build");
    g.sample_size(20);
    g.throughput(Throughput::Elements(snap.input.traces.len() as u64));
    g.bench_function("router_graph_from_traces", |b| {
        b.iter(|| black_box(RouterGraph::build(black_box(&snap.input))))
    });
    g.finish();
}

fn bench_inference(h: &mut Harness) {
    let snap = BuiltSnapshot::build(&spec());
    let graph = RouterGraph::build(&snap.input);
    let mut g = h.benchmark_group("inference/ownership");
    g.sample_size(20);
    g.throughput(Throughput::Elements(graph.len() as u64));
    g.bench_function("rtaa_election", |b| {
        b.iter(|| black_box(rtaa::infer(black_box(&graph), &snap.input)))
    });
    g.bench_function("bdrmapit_refine", |b| {
        b.iter(|| black_box(refine::infer(black_box(&graph), &snap.input, &RefineConfig::default())))
    });
    g.finish();
}

fn bench_integration(h: &mut Harness) {
    let snap = BuiltSnapshot::build(&spec());
    let psl = PublicSuffixList::builtin();
    let training = snap.training_set();
    let groups = training.by_suffix(&psl);
    let learned = learn_all(&groups, &LearnConfig::default());
    let conventions = ConventionSet::new(
        learned.iter().filter(|l| !l.single).map(|l| (l.convention.clone(), l.class)),
    );
    let mut hostnames = BTreeMap::new();
    for &addr in snap.graph.by_addr.keys() {
        if let Some(iface) = snap.internet.iface_at(addr) {
            if let Some(h) = iface.hostname.as_deref() {
                hostnames.insert(addr, h.to_string());
            }
        }
    }
    let mut g = h.benchmark_group("inference/integration");
    g.sample_size(20);
    g.throughput(Throughput::Elements(hostnames.len() as u64));
    g.bench_function("sec5_integrate", |b| {
        b.iter(|| {
            black_box(integrate(
                black_box(&snap.graph),
                &snap.input,
                &snap.owners,
                &hostnames,
                &conventions,
            ))
        })
    });
    g.finish();
}

fn bench_end_to_end(h: &mut Harness) {
    // The full snapshot build (topology, traceroute, aliases,
    // inference) — the unit Figure 5/6 iterate 19 times.
    let mut g = h.benchmark_group("pipeline/snapshot_build");
    g.sample_size(10);
    g.bench_function("tiny_internet", |b| {
        b.iter(|| black_box(BuiltSnapshot::build(black_box(&spec()))))
    });
    g.finish();
}

fn main() {
    let mut h = Harness::new("inference");
    bench_trie(&mut h);
    bench_psl(&mut h);
    bench_graph_build(&mut h);
    bench_inference(&mut h);
    bench_integration(&mut h);
    bench_end_to_end(&mut h);
    h.finish();
}
