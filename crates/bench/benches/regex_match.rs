//! Microbenchmarks for the regex dialect engine: parsing, matching, and
//! extraction over a hostname corpus shaped like the paper's data.
//!
//! Runs on the devkit micro-benchmark harness; results land in
//! `BENCH_regex_match.json` at the workspace root.

use hoiho::regex::CompiledRegex;
use hoiho::Regex;
use hoiho_devkit::bench::{BatchSize, Harness, Throughput};
use std::hint::black_box;

/// The paper's own regexes (Figures 2 and 4 plus Table 1 shapes).
const REGEXES: &[&str] = &[
    r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$",
    r"^(\d+)-.+\.equinix\.com$",
    r"as(\d+)\.nts\.ch$",
    r"^as(\d+)\.example\.com$",
    r"[a-z\d]+\.as(\d+)\.example\.com$",
    r"^(\d+)\.[a-z]+\d+\.example\.com$",
    r"^(\d+)-[^-]+-[^-]+\.equinix\.com$",
];

/// A corpus mixing matching and non-matching hostnames.
fn corpus() -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..200u32 {
        out.push(format!("p{}.sg{}.equinix.com", 64500 + i, i % 9));
        out.push(format!("{}-fr{}-ix.equinix.com", 20000 + i, i % 7));
        out.push(format!("ge0-{}.01.p.ost.ch.as15576.nts.ch", i % 4));
        out.push(format!("as{}.example.com", 3000 + i));
        out.push(format!("te0-{}.cr2.fra.tele-nova.net", i % 5));
        out.push(format!("netflix.zh{}.corp.eu.equinix.com", i % 3));
    }
    out
}

fn bench_parse(h: &mut Harness) {
    h.bench_function("regex/parse_paper_set", |b| {
        b.iter(|| {
            for s in REGEXES {
                black_box(Regex::parse(black_box(s)).unwrap());
            }
        })
    });
    // One-time lowering cost the compiled hot paths amortise.
    let regexes: Vec<Regex> = REGEXES.iter().map(|s| Regex::parse(s).unwrap()).collect();
    h.bench_function("regex/compile_paper_set", |b| {
        b.iter(|| {
            for r in &regexes {
                black_box(CompiledRegex::compile(black_box(r)));
            }
        })
    });
}

fn bench_match(h: &mut Harness) {
    let regexes: Vec<Regex> = REGEXES.iter().map(|s| Regex::parse(s).unwrap()).collect();
    let hosts = corpus();
    let mut g = h.benchmark_group("regex/match");
    g.throughput(Throughput::Elements((regexes.len() * hosts.len()) as u64));
    g.bench_function("find_all_pairs", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for r in &regexes {
                for h in &hosts {
                    if r.find(black_box(h)).is_some() {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    let programs: Vec<CompiledRegex> = regexes.iter().map(CompiledRegex::compile).collect();
    g.bench_function("find_all_pairs_compiled", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &programs {
                for h in &hosts {
                    if p.find(black_box(h)).is_some() {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_extract(h: &mut Harness) {
    let r = Regex::parse(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$").unwrap();
    let hosts = corpus();
    let mut g = h.benchmark_group("regex/extract");
    g.throughput(Throughput::Elements(hosts.len() as u64));
    g.bench_function("single_regex_corpus", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for h in &hosts {
                if let Some(d) = r.extract(black_box(h)) {
                    sum += d.len() as u64;
                }
            }
            black_box(sum)
        })
    });
    let p = CompiledRegex::compile(&r);
    g.bench_function("single_regex_corpus_compiled", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for h in &hosts {
                if let Some(d) = p.extract(black_box(h)) {
                    sum += d.len() as u64;
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_trace(h: &mut Harness) {
    // find_trace powers the char-class phase; measure its overhead.
    let r = Regex::parse(r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$").unwrap();
    let hosts = corpus();
    h.bench_function("regex/find_trace_corpus", |b| {
        b.iter_batched(
            || hosts.clone(),
            |hosts| {
                let mut n = 0usize;
                for h in &hosts {
                    if r.find_trace(h).is_some() {
                        n += 1;
                    }
                }
                black_box(n)
            },
            BatchSize::LargeInput,
        )
    });
}

fn main() {
    let mut h = Harness::new("regex_match");
    bench_parse(&mut h);
    bench_match(&mut h);
    bench_extract(&mut h);
    bench_trace(&mut h);
    h.finish();
}
