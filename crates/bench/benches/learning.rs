//! Benchmarks for the learning pipeline: base-regex generation, the
//! merge/class phases, per-suffix learning, and snapshot-scale learning
//! (one bar per pipeline stage of the paper's §3).
//!
//! Runs on the devkit micro-benchmark harness; results land in
//! `BENCH_learning.json` at the workspace root.

use hoiho::learner::{learn_all, learn_suffix, LearnConfig};
use hoiho::phases::base::{self, BaseConfig};
use hoiho::phases::sets::{build_sets, SetsConfig};
use hoiho::phases::{classes, merge};
use hoiho::regex::{CompiledRegex, MultiMatcher, Regex};
use hoiho::training::{Observation, SuffixTraining, TrainingSet};
use hoiho_devkit::bench::{Harness, Throughput};
use hoiho_psl::PublicSuffixList;
use std::hint::black_box;

/// The Figure 4 Equinix training data.
fn figure4() -> SuffixTraining {
    let rows: &[(u32, &str)] = &[
        (109, "109.sgw.equinix.com"),
        (714, "714.os.equinix.com"),
        (714, "714.me1.equinix.com"),
        (714, "p714.sgw.equinix.com"),
        (714, "s714.sgw.equinix.com"),
        (24115, "p24115.mel.equinix.com"),
        (24115, "s24115.tyo.equinix.com"),
        (22282, "22822-2.tyo.equinix.com"),
        (24482, "24482-fr5-ix.equinix.com"),
        (54827, "54827-dc5-ix2.equinix.com"),
        (55247, "55247-ch3-ix.equinix.com"),
        (2906, "netflix.zh2.corp.eu.equinix.com"),
        (19324, "ipv4.dosarrest.eqix.equinix.com"),
        (8075, "8069.tyo.equinix.com"),
        (8075, "8074.hkg.equinix.com"),
        (55923, "45437-sy1-ix.equinix.com"),
    ];
    let obs: Vec<Observation> =
        rows.iter().map(|&(a, h)| Observation::new(h, [198, 51, 100, 9], a)).collect();
    SuffixTraining::build("equinix.com", &obs)
}

/// A larger synthetic suffix: `as<asn>-<iface>.<pop>.bigco.net`.
fn big_suffix(hostnames: usize) -> SuffixTraining {
    let pops = ["fra", "lhr", "ams", "nyc", "sin"];
    let ifaces = ["ae1", "xe-0-0-1", "te0-7", "ge2-0"];
    let obs: Vec<Observation> = (0..hostnames)
        .map(|i| {
            let asn = 60000 + (i as u32 % 700);
            let h = format!(
                "as{asn}-{}.{}{}.bigco.net",
                ifaces[i % ifaces.len()],
                pops[i % pops.len()],
                i % 3
            );
            Observation::new(&h, [192, 0, 2, (i % 250) as u8], asn)
        })
        .collect();
    SuffixTraining::build("bigco.net", &obs)
}

fn bench_base_generation(h: &mut Harness) {
    let st = figure4();
    h.bench_function("learn/base_generate_figure4", |b| {
        b.iter(|| black_box(base::generate(black_box(&st), &BaseConfig::default())))
    });
}

fn bench_phases(h: &mut Harness) {
    let st = figure4();
    let pool = base::generate(&st, &BaseConfig::default());
    h.bench_function("learn/merge_figure4", |b| {
        b.iter(|| black_box(merge::merge(black_box(&pool))))
    });
    h.bench_function("learn/classes_figure4", |b| {
        b.iter(|| black_box(classes::embed_classes(black_box(&pool), &st.hosts)))
    });
}

fn bench_sets(h: &mut Harness) {
    // The sets phase in isolation, on the pool the real pipeline would
    // hand it (generate + merge + classes, deduped).
    let st = figure4();
    let mut pool = base::generate(&st, &BaseConfig::default());
    pool.extend(merge::merge(&pool));
    pool.extend(classes::embed_classes(&pool, &st.hosts));
    let mut seen = std::collections::BTreeSet::new();
    pool.retain(|r| seen.insert(r.to_string()));
    h.bench_function("learn/sets_figure4", |b| {
        b.iter(|| black_box(build_sets(black_box(&pool), &st.hosts, &SetsConfig::default())))
    });
}

fn bench_learn_suffix(h: &mut Harness) {
    let fig4 = figure4();
    h.bench_function("learn/suffix_figure4", |b| {
        b.iter(|| black_box(learn_suffix(black_box(&fig4), &LearnConfig::default())))
    });
    for n in [100usize, 400, 800] {
        let st = big_suffix(n);
        let mut g = h.benchmark_group("learn/suffix_scale");
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("{n}_hostnames"), |b| {
            b.iter(|| black_box(learn_suffix(black_box(&st), &LearnConfig::default())))
        });
        g.finish();
    }
}

fn bench_pool_match(h: &mut Harness) {
    // The core O(H·P) question in isolation: evaluate a pool of P
    // candidate regexes against every hostname — one Aho–Corasick scan
    // per host with dispatch (the sets-phase default) vs P independent
    // compiled scans (the PR 5 baseline).
    let st = big_suffix(400);
    for pool_size in [50usize, 200] {
        let pool: Vec<Regex> = (0..pool_size)
            .map(|i| {
                // Realistic candidate shapes over distinct literals so
                // the automaton has real dispatch work: most can never
                // match the corpus, which is exactly the learner's pool.
                let text = match i % 4 {
                    0 => format!(r"^as(\d+)-v{i}\.[a-z]+\d+\.bigco\.net$"),
                    1 => format!(r"^pop{i}-(\d+)\.bigco\.net$"),
                    2 => format!(r"(\d+)-ix{i}\.bigco\.net$"),
                    _ => format!(r"^as(\d+)-[a-z\d-]+\.[a-z]+{}\.bigco\.net$", i % 3),
                };
                Regex::parse(&text).expect("bench patterns are well-formed")
            })
            .collect();
        let programs: Vec<CompiledRegex> = pool.iter().map(CompiledRegex::compile).collect();
        let matcher = MultiMatcher::build(&programs);
        let mut g = h.benchmark_group("learn/pool_match");
        g.throughput(Throughput::Elements(st.hosts.len() as u64));
        g.bench_function(format!("{pool_size}_patterns"), |b| {
            let mut scratch = matcher.scratch();
            b.iter(|| {
                let mut hits = 0usize;
                for host in &st.hosts {
                    for &ri in matcher.dispatch(host.hostname.as_bytes(), &mut scratch) {
                        hits += usize::from(programs[ri as usize].is_match(&host.hostname));
                    }
                }
                black_box(hits)
            })
        });
        g.bench_function(format!("{pool_size}_patterns_scan"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for host in &st.hosts {
                    for p in &programs {
                        hits += usize::from(p.is_match(&host.hostname));
                    }
                }
                black_box(hits)
            })
        });
        g.finish();
    }
}

fn bench_learn_snapshot(h: &mut Harness) {
    // Whole-snapshot learning across suffixes (threaded).
    let psl = PublicSuffixList::builtin();
    let mut ts = TrainingSet::new();
    for d in 0..40u32 {
        for i in 0..25u32 {
            let asn = 40000 + d * 100 + i;
            ts.push(Observation::new(
                &format!("as{asn}.pop{}.domain{d}-example.net", i % 6),
                [192, 0, 2, (i % 250) as u8],
                asn,
            ));
        }
    }
    let groups = ts.by_suffix(&psl);
    let mut g = h.benchmark_group("learn/snapshot");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ts.len() as u64));
    g.bench_function("40_suffixes_1000_hostnames", |b| {
        b.iter(|| black_box(learn_all(black_box(&groups), &LearnConfig::default())))
    });
    g.finish();
}

fn main() {
    let mut h = Harness::new("learning");
    bench_base_generation(&mut h);
    bench_phases(&mut h);
    bench_sets(&mut h);
    bench_learn_suffix(&mut h);
    bench_pool_match(&mut h);
    bench_learn_snapshot(&mut h);
    h.finish();
}
