//! Benchmarks for the suffix-sharded serving tier: cached vs uncached
//! lookup latency on a Zipf-skewed hostname stream (the shape of real
//! rDNS query traffic — a small hot set dominates), hot-key repeat
//! latency, and plan/split cost.
//!
//! Results land in `BENCH_cluster.json`; alongside the timings the
//! file records a `cluster/hit_rate_pct` metric — the response-cache
//! hit rate observed on the skewed stream, which the acceptance check
//! in `scripts/tier1.sh`'s bench pass expects at 50% or better.

use hoiho::learner::{learn_all, LearnConfig};
use hoiho_cluster::{split, ShardRouter};
use hoiho_devkit::bench::{Harness, Throughput};
use hoiho_devkit::rng::StdRng;
use hoiho_devkit::SeedableRng;
use hoiho_itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_netsim::SimConfig;
use hoiho_psl::PublicSuffixList;
use hoiho_serve::{Engine, Model};
use std::hint::black_box;

/// Hostname universe size (distinct keys the stream draws from).
const UNIVERSE: usize = 8192;
/// Lookup stream length per timed iteration.
const STREAM: usize = 16384;
/// Response-cache capacity for the cached configurations: a quarter of
/// the universe, so the cache only wins through the Zipf skew.
const CACHE_CAPACITY: usize = 2048;
/// Shards for the routed configurations.
const SHARDS: u32 = 4;

/// A learned model plus the universe of lookup keys: every training
/// hostname, then synthetic siblings under the same suffixes (same
/// dispatch work, mostly regex misses — the realistic cold tail).
fn workload() -> (Model, Vec<String>) {
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: "bench-cluster".into(),
        method: Method::BdrmapIt,
        cfg: SimConfig::tiny(2020),
        alias_split: 0.3,
    });
    let training = snap.training_set();
    let groups = training.by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    let base: Vec<String> = training.observations().iter().map(|o| o.hostname.clone()).collect();
    let mut universe = base.clone();
    let mut j = 0usize;
    while universe.len() < UNIVERSE {
        universe.push(format!("h{j}.{}", base[j % base.len()]));
        j += 1;
    }
    universe.truncate(UNIVERSE);
    (Model::from_learned(&learned), universe)
}

/// A Zipf(s=1) stream of universe indices, drawn by inverse CDF over
/// the precomputed cumulative harmonic weights.
fn zipf_stream(n_items: usize, len: usize, seed: u64) -> Vec<usize> {
    let mut cdf: Vec<f64> = Vec::with_capacity(n_items);
    let mut acc = 0.0f64;
    for rank in 1..=n_items {
        acc += 1.0 / rank as f64;
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
            cdf.partition_point(|&c| c < u).min(n_items - 1)
        })
        .collect()
}

/// Sum of extracted ASNs over one pass of the stream, to keep the
/// optimizer honest across configurations.
fn drain<F: FnMut(&str) -> Option<u32>>(universe: &[String], stream: &[usize], mut f: F) -> u64 {
    let mut acc = 0u64;
    for &i in stream {
        acc = acc.wrapping_add(f(&universe[i]).unwrap_or(0) as u64);
    }
    acc
}

fn main() {
    let (model, universe) = workload();
    let stream = zipf_stream(universe.len(), STREAM, 77);
    let single = Engine::new(&model);
    let uncached = ShardRouter::from_model(&model, SHARDS, 0).expect("build uncached router");
    let cached =
        ShardRouter::from_model(&model, SHARDS, CACHE_CAPACITY).expect("build cached router");

    let mut h = Harness::new("cluster");

    let mut g = h.benchmark_group("cluster/lookup");
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.sample_size(10);
    g.bench_function("single_engine_zipf", |b| {
        b.iter(|| black_box(drain(&universe, &stream, |hn| single.extract(hn).asn)))
    });
    g.bench_function("uncached_zipf", |b| {
        b.iter(|| black_box(drain(&universe, &stream, |hn| uncached.lookup(hn).asn)))
    });
    g.bench_function("cached_zipf", |b| {
        b.iter(|| black_box(drain(&universe, &stream, |hn| cached.lookup(hn).asn)))
    });
    g.finish();

    // The steady-state hit rate on the skewed stream (counters span
    // every warmup and timed pass above — all steady-state after the
    // first pass warms the cache).
    let s = cached.cache_stats();
    let hit_rate = 100.0 * s.hits as f64 / (s.hits + s.misses).max(1) as f64;
    h.metric("cluster/hit_rate_pct", (hit_rate * 10.0).round() / 10.0, "percent");

    // Hot-key repeat: the cache's best case against the full regex
    // path. The key is a training hostname, so the uncached path does
    // real extraction work every time.
    let hot = universe
        .iter()
        .find(|h| single.extract(h).asn.is_some())
        .expect("some training hostname must extract");
    let mut g = h.benchmark_group("cluster/hot");
    g.throughput(Throughput::Elements(1));
    g.bench_function("uncached_repeat", |b| {
        b.iter(|| black_box(uncached.lookup(black_box(hot)).asn))
    });
    g.bench_function("cached_repeat", |b| {
        b.iter(|| black_box(cached.lookup(black_box(hot)).asn))
    });
    g.finish();

    let mut g = h.benchmark_group("cluster/plan");
    g.throughput(Throughput::Elements(model.len() as u64));
    g.bench_function("split_4", |b| {
        b.iter(|| black_box(split(black_box(&model), SHARDS).expect("split")))
    });
    g.finish();

    h.finish();
}
