//! Per-snapshot pipeline statistics (Figures 5 and 6).
//!
//! For each training-set snapshot: build the Internet and measurement,
//! derive training data, learn conventions, and classify them. Figure 5
//! plots the good/promising/poor counts per snapshot; Figure 6 plots the
//! PPV of the usable NCs, with a variant counting sibling matches as
//! agreement (the paper reports a ≈1% RTAA / ≈2% bdrmapIT sibling
//! bonus).

use hoiho::classify::NcClass;
use hoiho::eval::{classify_host, Outcome};
use hoiho::learner::{learn_all, LearnConfig, LearnedConvention};
use hoiho::training::SuffixTraining;
use hoiho_itdk::{BuiltSnapshot, SnapshotSpec};
use hoiho_psl::PublicSuffixList;

/// Everything the figure experiments need from one snapshot.
pub struct SnapshotStats {
    /// The spec the snapshot was built from.
    pub spec: SnapshotSpec,
    /// Training observations (hostnames with training ASNs).
    pub observations: usize,
    /// Suffix groups the observations split into.
    pub suffixes: usize,
    /// Learned conventions (one per suffix that yielded one).
    pub learned: Vec<LearnedConvention>,
    /// Training-ASN accuracy against simulator ground truth.
    pub training_accuracy: f64,
    /// PPV over usable NCs.
    pub ppv_usable: f64,
    /// PPV over usable NCs counting sibling matches as true positives.
    pub ppv_usable_siblings: f64,
    /// The built snapshot (kept for downstream experiments).
    pub snapshot: BuiltSnapshot,
    /// The per-suffix training groups.
    pub groups: Vec<SuffixTraining>,
}

impl SnapshotStats {
    /// Count of NCs in a class.
    pub fn count(&self, class: NcClass) -> usize {
        self.learned.iter().filter(|l| l.class == class).count()
    }

    /// Count of single-ASN NCs (Figure 2 style).
    pub fn singles(&self) -> usize {
        self.learned.iter().filter(|l| l.single).count()
    }

    /// Usable (good + promising) NCs.
    pub fn usable(&self) -> impl Iterator<Item = &LearnedConvention> {
        self.learned.iter().filter(|l| l.class.usable())
    }
}

/// Builds a snapshot and computes its statistics.
pub fn snapshot_stats(spec: &SnapshotSpec, learn_cfg: &LearnConfig) -> SnapshotStats {
    let psl = PublicSuffixList::builtin();
    let snapshot = BuiltSnapshot::build(spec);
    let training = snapshot.training_set();
    let groups = training.by_suffix(&psl);
    let learned = learn_all(&groups, learn_cfg);
    let training_accuracy = snapshot.training_accuracy();

    // PPV over usable NCs, re-evaluated per hostname so sibling matches
    // can be detected (the Counts TP rule is sibling-blind by design).
    let org = &snapshot.input.org;
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fp_sibling = 0usize;
    for lc in learned.iter().filter(|l| l.class.usable()) {
        let Some(group) = groups.iter().find(|g| g.suffix == lc.convention.suffix) else {
            continue;
        };
        for host in &group.hosts {
            match classify_host(&lc.convention.regexes, host) {
                Outcome::TruePositive(_) => tp += 1,
                Outcome::FalsePositive(v) => {
                    if org.siblings(v, host.training_asn) {
                        fp_sibling += 1;
                    } else {
                        fp += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let ppv = |t: usize, f: usize| {
        if t + f == 0 {
            0.0
        } else {
            t as f64 / (t + f) as f64
        }
    };
    SnapshotStats {
        spec: spec.clone(),
        observations: training.len(),
        suffixes: groups.len(),
        ppv_usable: ppv(tp, fp + fp_sibling),
        ppv_usable_siblings: ppv(tp + fp_sibling, fp),
        training_accuracy,
        learned,
        snapshot,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoiho_itdk::Method;
    use hoiho_netsim::SimConfig;

    fn tiny(method: Method, seed: u64) -> SnapshotStats {
        let spec = SnapshotSpec {
            label: "test".into(),
            method,
            cfg: SimConfig::tiny(seed),
            alias_split: 0.3,
        };
        snapshot_stats(&spec, &LearnConfig::default())
    }

    #[test]
    fn stats_populate() {
        let s = tiny(Method::BdrmapIt, 81);
        assert!(s.observations > 0);
        assert!(s.suffixes > 0);
        assert!(!s.learned.is_empty());
        assert!(s.training_accuracy > 0.5);
        assert!(s.ppv_usable > 0.0 && s.ppv_usable <= 1.0);
        assert!(s.ppv_usable_siblings >= s.ppv_usable);
        let total = s.count(NcClass::Good) + s.count(NcClass::Promising) + s.count(NcClass::Poor);
        assert_eq!(total, s.learned.len());
    }

    #[test]
    fn peeringdb_ppv_highest() {
        let b = tiny(Method::BdrmapIt, 82);
        let p = tiny(Method::PeeringDb, 82);
        assert!(
            p.ppv_usable >= b.ppv_usable - 0.05,
            "PeeringDB PPV {} unexpectedly below bdrmapIT {}",
            p.ppv_usable,
            b.ppv_usable
        );
    }
}
