//! §5 and Table 2: integrating extracted ASNs into bdrmapIT and
//! validating the decisions.
//!
//! [`run_sec5`] supplies every learned NC (good, promising, and poor,
//! as the paper does) to the modified bdrmapIT and measures the
//! agreement gain and ground-truth error-rate reduction over annotated
//! interfaces, plus the adoption rate per NC class.
//!
//! [`run_table2`] replays the paper's validation protocol: ground truth
//! from five operators (a transit provider, two ISPs, two IXPs —
//! selected from the simulation by role) plus PeeringDB
//! cross-validation, classifying each incongruent-hostname decision as
//! TP (correct ASN, used), FN (correct, not used), FP (incorrect,
//! used), or TN (incorrect, not used). Interfaces where the training
//! ASN, extracted ASN, and PeeringDB ASN are all different are excluded
//! exactly as in the paper.

use crate::pipeline::SnapshotStats;
use hoiho::classify::NcClass;
use hoiho_asdb::{Addr, Asn};
use hoiho_bdrmap::integrate::{integrate, ConventionSet, Decision, IntegrationResult};
use hoiho_netsim::asgen::Tier;
use hoiho_pdb::{synthesize, PdbConfig, PeeringDbSnapshot};
use std::collections::BTreeMap;

/// §5 headline numbers.
pub struct Sec5Report {
    /// Interfaces whose hostnames yielded an extracted ASN.
    pub annotated: usize,
    /// Agreement rate before integration.
    pub agree_before: f64,
    /// Agreement rate after integration.
    pub agree_after: f64,
    /// (wrong, total) vs ground truth before integration.
    pub err_before: (usize, usize),
    /// (wrong, total) vs ground truth after integration.
    pub err_after: (usize, usize),
    /// Adoption per class: (class, used, total decisions).
    pub by_class: Vec<(NcClass, usize, usize)>,
    /// The integration outcome (decisions included).
    pub result: IntegrationResult,
    /// addr → hostname map used for integration.
    pub hostnames: BTreeMap<Addr, String>,
}

/// Runs the §5 experiment on a built snapshot's statistics.
pub fn run_sec5(stats: &SnapshotStats) -> Sec5Report {
    let snap = &stats.snapshot;
    // Good, promising and poor NCs are all supplied (as in the paper),
    // but single-ASN NCs are not: a convention that extracts the same
    // ASN for every hostname in the suffix annotates the *supplier*
    // (Figure 2), so its extraction carries no signal about who
    // operates a router and the provider branch of the reasonableness
    // test would wrongly adopt it.
    let conventions = ConventionSet::new(
        stats
            .learned
            .iter()
            .filter(|l| !l.single)
            .map(|l| (l.convention.clone(), l.class)),
    );
    let mut hostnames: BTreeMap<Addr, String> = BTreeMap::new();
    for &addr in snap.graph.by_addr.keys() {
        if let Some(iface) = snap.internet.iface_at(addr) {
            if let Some(h) = iface.hostname.as_deref() {
                hostnames.insert(addr, h.to_string());
            }
        }
    }
    let result = integrate(&snap.graph, &snap.input, &snap.owners, &hostnames, &conventions);

    // Ground-truth error rate over annotated interfaces.
    let score = |owners: &[Option<Asn>]| -> (usize, usize) {
        let mut wrong = 0;
        let mut total = 0;
        for (&addr, hostname) in &hostnames {
            if conventions.extract(hostname).is_none() {
                continue;
            }
            let Some(&ridx) = snap.graph.by_addr.get(&addr) else { continue };
            let Some(truth) = snap.internet.owner_of_addr(addr) else { continue };
            let Some(inf) = owners[ridx] else { continue };
            total += 1;
            if inf != truth && !snap.input.org.siblings(inf, truth) {
                wrong += 1;
            }
        }
        (wrong, total)
    };
    let err_before = score(&snap.owners);
    let err_after = score(&result.owners);

    let mut by_class = Vec::new();
    for class in [NcClass::Good, NcClass::Promising, NcClass::Poor] {
        let total = result.decisions.iter().filter(|d| d.class == class).count();
        let used = result.decisions.iter().filter(|d| d.class == class && d.used).count();
        by_class.push((class, used, total));
    }

    Sec5Report {
        annotated: result.annotated,
        agree_before: result.initial_rate(),
        agree_after: result.final_rate(),
        err_before,
        err_after,
        by_class,
        result,
        hostnames,
    }
}

/// One validation row of Table 2.
#[derive(Debug, Clone, Default)]
pub struct ValidationRow {
    /// Display name mirroring the paper's rows.
    pub name: String,
    /// Correct ASN, used.
    pub tp: usize,
    /// Correct ASN, not used.
    pub fnn: usize,
    /// Incorrect ASN, used.
    pub fp: usize,
    /// Incorrect ASN, not used.
    pub tn: usize,
}

impl ValidationRow {
    /// Total validated decisions in the row.
    pub fn total(&self) -> usize {
        self.tp + self.fnn + self.fp + self.tn
    }

    /// Correct decisions (used-correct + rejected-incorrect).
    pub fn correct_decisions(&self) -> usize {
        self.tp + self.tn
    }

    fn add(&mut self, correct: bool, used: bool) {
        match (correct, used) {
            (true, true) => self.tp += 1,
            (true, false) => self.fnn += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }
}

/// The Table 2 result.
pub struct Table2 {
    /// Rows in the paper's order (5 operators + PeeringDB).
    pub rows: Vec<ValidationRow>,
    /// Interfaces excluded (training, extracted, PeeringDB all differ).
    pub excluded: usize,
    /// Distinct suffixes covered by the PeeringDB row.
    pub pdb_suffixes: usize,
    /// Decisions covered by any validation source.
    pub covered: usize,
    /// All decisions (incongruent hostnames).
    pub total_decisions: usize,
}

impl Table2 {
    /// Totals across rows.
    pub fn totals(&self) -> ValidationRow {
        let mut t = ValidationRow { name: "Total".into(), ..Default::default() };
        for r in &self.rows {
            t.tp += r.tp;
            t.fnn += r.fnn;
            t.fp += r.fp;
            t.tn += r.tn;
        }
        t
    }
}

/// Replays the paper's validation protocol on the §5 decisions.
pub fn run_table2(stats: &SnapshotStats, sec5: &Sec5Report) -> Table2 {
    let snap = &stats.snapshot;
    let net = &snap.internet;
    let pdb = synthesize(net, &PdbConfig { seed: snap.spec.cfg.seed, ..Default::default() });

    // Pick the five ground-truth operators by role, preferring those
    // whose hostnames appear most among the decisions.
    let mut namer_decisions: BTreeMap<Asn, usize> = BTreeMap::new();
    let mut ixp_decisions: BTreeMap<u32, usize> = BTreeMap::new();
    for d in &sec5.result.decisions {
        if let Some(ix) = net.aslevel.ixps.ixp_for_addr(d.addr) {
            *ixp_decisions.entry(ix.id).or_insert(0) += 1;
        } else if let Some(iface) = net.iface_at(d.addr) {
            if let Some(namer) = iface.namer {
                *namer_decisions.entry(namer).or_insert(0) += 1;
            }
        }
    }
    let pick = |tier: Tier, skip: &[Asn]| -> Option<Asn> {
        namer_decisions
            .iter()
            .filter(|(asn, _)| {
                !skip.contains(asn)
                    && net.aslevel.by_asn(**asn).is_some_and(|a| a.tier == tier)
            })
            .max_by_key(|(_, &c)| c)
            .map(|(&a, _)| a)
    };
    let transit = pick(Tier::Tier1, &[]);
    let euro = pick(Tier::Tier2, &transit.into_iter().collect::<Vec<_>>());
    let skip: Vec<Asn> = transit.iter().chain(euro.iter()).copied().collect();
    let large = pick(Tier::Tier2, &skip);
    let mut ixps_ranked: Vec<u32> = ixp_decisions.keys().copied().collect();
    ixps_ranked.sort_by_key(|id| std::cmp::Reverse(ixp_decisions[id]));
    let ixp_a = ixps_ranked.first().copied();
    let ixp_b = ixps_ranked.get(1).copied();

    let mut rows = vec![
        ValidationRow { name: "Transit Provider".into(), ..Default::default() },
        ValidationRow { name: "European ISP".into(), ..Default::default() },
        ValidationRow { name: "Large ISP".into(), ..Default::default() },
        ValidationRow { name: "Regional IXP".into(), ..Default::default() },
        ValidationRow { name: "Asia-Pacific IXP".into(), ..Default::default() },
        ValidationRow { name: "PeeringDB".into(), ..Default::default() },
    ];
    let mut excluded = 0usize;
    let mut covered = 0usize;
    let mut pdb_suffixes: std::collections::BTreeSet<String> = Default::default();

    for d in &sec5.result.decisions {
        let Some(truth) = net.owner_of_addr(d.addr) else { continue };
        let correct =
            d.extracted == truth || snap.input.org.siblings(d.extracted, truth);
        let row_idx = classify_source(
            net,
            &pdb,
            d,
            (transit, euro, large, ixp_a, ixp_b),
        );
        match row_idx {
            Some(5) => {
                // PeeringDB cross-validation: truth is the recorded ASN;
                // exclude three-way disagreements like the paper.
                let rec = pdb.by_addr(d.addr).expect("pdb record");
                let pdb_asn = rec.recorded_asn;
                let all_differ = d.initial.is_some_and(|i| i != d.extracted && i != pdb_asn)
                    && d.extracted != pdb_asn
                    && !snap.input.org.siblings(d.extracted, pdb_asn);
                if all_differ {
                    excluded += 1;
                    continue;
                }
                let pdb_correct = d.extracted == pdb_asn
                    || snap.input.org.siblings(d.extracted, pdb_asn);
                covered += 1;
                if let Some(suffix) = suffix_of(&d.hostname) {
                    pdb_suffixes.insert(suffix);
                }
                rows[5].add(pdb_correct, d.used);
            }
            Some(i) => {
                covered += 1;
                rows[i].add(correct, d.used);
            }
            None => {}
        }
    }

    Table2 {
        rows,
        excluded,
        pdb_suffixes: pdb_suffixes.len(),
        covered,
        total_decisions: sec5.result.decisions.len(),
    }
}

/// The five selected ground-truth operators: three ASes and two IXPs.
type Validators = (Option<Asn>, Option<Asn>, Option<Asn>, Option<u32>, Option<u32>);

/// Maps a decision to its validation source row, if any.
fn classify_source(
    net: &hoiho_netsim::Internet,
    pdb: &PeeringDbSnapshot,
    d: &Decision,
    (transit, euro, large, ixp_a, ixp_b): Validators,
) -> Option<usize> {
    if let Some(ix) = net.aslevel.ixps.ixp_for_addr(d.addr) {
        if Some(ix.id) == ixp_a {
            return Some(3);
        }
        if Some(ix.id) == ixp_b {
            return Some(4);
        }
        if pdb.by_addr(d.addr).is_some() {
            return Some(5);
        }
        return None;
    }
    let namer = net.iface_at(d.addr).and_then(|i| i.namer);
    match namer {
        n if n == transit && n.is_some() => Some(0),
        n if n == euro && n.is_some() => Some(1),
        n if n == large && n.is_some() => Some(2),
        _ => None,
    }
}

/// Registrable-suffix approximation for grouping PeeringDB hostnames
/// (last two labels — IXP suffixes in the simulation are two labels).
fn suffix_of(hostname: &str) -> Option<String> {
    let labels: Vec<&str> = hostname.split('.').collect();
    if labels.len() < 2 {
        return None;
    }
    Some(labels[labels.len() - 2..].join("."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::snapshot_stats;
    use hoiho::learner::LearnConfig;
    use hoiho_itdk::{Method, SnapshotSpec};
    use hoiho_netsim::SimConfig;

    fn stats() -> SnapshotStats {
        let spec = SnapshotSpec {
            label: "test".into(),
            method: Method::BdrmapIt,
            cfg: SimConfig::tiny(91),
            alias_split: 0.3,
        };
        snapshot_stats(&spec, &LearnConfig::default())
    }

    #[test]
    fn sec5_improves_agreement_and_error() {
        let st = stats();
        let rep = run_sec5(&st);
        assert!(rep.annotated > 0);
        assert!(rep.agree_after >= rep.agree_before);
        let err = |w: usize, t: usize| if t == 0 { 0.0 } else { w as f64 / t as f64 };
        assert!(
            err(rep.err_after.0, rep.err_after.1) <= err(rep.err_before.0, rep.err_before.1),
            "integration made ground-truth accuracy worse"
        );
    }

    #[test]
    fn adoption_ordered_by_class() {
        // Good NCs should be adopted at least as often as poor ones
        // (paper: 82.5% vs 18.2%). With tiny data allow equality.
        let st = stats();
        let rep = run_sec5(&st);
        let rate = |c: NcClass| {
            rep.by_class
                .iter()
                .find(|(cl, _, _)| *cl == c)
                .map(|&(_, used, total)| {
                    if total == 0 {
                        None
                    } else {
                        Some(used as f64 / total as f64)
                    }
                })
                .unwrap()
        };
        if let (Some(g), Some(p)) = (rate(NcClass::Good), rate(NcClass::Poor)) {
            assert!(g + 1e-9 >= p);
        }
    }

    #[test]
    fn table2_rows_consistent() {
        let st = stats();
        let rep = run_sec5(&st);
        let t2 = run_table2(&st, &rep);
        assert_eq!(t2.rows.len(), 6);
        let totals = t2.totals();
        assert_eq!(totals.total(), t2.covered);
        assert!(t2.covered <= t2.total_decisions);
    }
}
