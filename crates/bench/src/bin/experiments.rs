//! Regenerates every table and figure in the paper's evaluation.
//!
//! Usage: `experiments [fig5|fig6|table1|table2|sec5|overlap|all]`
//!
//! Each experiment prints the measured series/rows next to the paper's
//! reported values; absolute counts differ (the substrate is a synthetic
//! Internet, not the authors' testbed) but the shapes are the claim.

use hoiho::classify::NcClass;
use hoiho::learner::LearnConfig;
use hoiho_bench::futurework::{ablation, asname_census, ptr_sweep};
use hoiho_bench::overlap::overlap;
use hoiho_bench::pipeline::{snapshot_stats, SnapshotStats};
use hoiho_bench::taxonomy::table1;
use hoiho_bench::validation::{run_sec5, run_table2};
use hoiho_bench::{error_rate, pct};
use hoiho_itdk::{timeline, Method};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let run_all = arg == "all";

    // Figures 5 and 6 share the 19 timeline builds; Table 1, Table 2,
    // §5 and the overlap reuse the two 2020 snapshots.
    println!("building the 19 training-set snapshots (this is the whole pipeline:");
    println!("synthetic Internet -> traceroute -> alias resolution -> ownership");
    println!("inference -> Hoiho learning) ...\n");
    let t0 = std::time::Instant::now();
    let stats: Vec<SnapshotStats> = timeline()
        .iter()
        .map(|spec| snapshot_stats(spec, &LearnConfig::default()))
        .collect();
    println!("built in {:.1?}\n", t0.elapsed());

    if run_all || arg == "fig5" {
        fig5(&stats);
    }
    if run_all || arg == "fig6" {
        fig6(&stats);
    }
    if run_all || arg == "table1" {
        table1_exp(&stats);
    }
    if run_all || arg == "sec5" || arg == "table2" {
        sec5_and_table2(&stats, run_all || arg == "sec5", run_all || arg == "table2");
    }
    if run_all || arg == "overlap" {
        overlap_exp(&stats);
    }
    if run_all || arg == "sweep" {
        sweep_exp(&stats);
    }
    if run_all || arg == "asname" {
        asname_exp(&stats);
    }
    if run_all || arg == "ablation" {
        ablation_exp(&stats);
    }
    if run_all || arg == "dump" {
        dump_conventions(&stats);
    }
}

/// Writes the learned conventions of the two 2020 training sets to
/// `data/` — the analogue of the paper's public data supplement.
fn dump_conventions(stats: &[SnapshotStats]) {
    std::fs::create_dir_all("data").expect("create data/");
    for s in [latest_itdk(stats), latest_pdb(stats)] {
        let path = format!("data/conventions-{}.txt", s.spec.label);
        let mut text = String::new();
        text.push_str(&format!(
            "# naming conventions learned from the {} training set\n",
            s.spec.label
        ));
        text.push_str("# (regenerate: cargo run --release -p hoiho-bench --bin experiments dump)\n");
        for lc in &s.learned {
            text.push_str(&format!(
                "# class={} single={} tp={} fp={} fn={} atp={} ppv={:.3}\n",
                lc.class.label(),
                lc.single,
                lc.counts.tp,
                lc.counts.fp,
                lc.counts.fnn,
                lc.counts.atp(),
                lc.counts.ppv(),
            ));
            text.push_str(&lc.convention.to_string());
        }
        std::fs::write(&path, &text).expect("write conventions");
        // The dump must survive a round-trip through the public parser.
        let parsed = hoiho::convention::parse_conventions(&text).expect("reparse dump");
        assert_eq!(parsed.len(), s.learned.len());
        println!("wrote {} conventions to {path}", s.learned.len());
    }
    println!();
}

fn sweep_exp(stats: &[SnapshotStats]) {
    println!("== §7 PTR sweep (OpenINTEL analogue) ==");
    println!("paper: applying learned regexes to all delegated PTR space grew");
    println!("matching hostnames 5.4K -> 22.5K, hinting at unseen interconnections\n");
    let latest = latest_itdk(stats);
    let r = ptr_sweep(latest);
    println!("hostnames matched, traceroute-observed corpus: {}", r.matched_observed);
    println!("hostnames matched, full PTR corpus:            {}", r.matched_full);
    println!(
        "newly revealed: {} ({} carry correct operator evidence, {})\n",
        r.new_total,
        r.new_correct,
        pct(r.new_correct, r.new_total)
    );
}

fn asname_exp(stats: &[SnapshotStats]) {
    println!("== §7 AS-name census ==");
    println!("paper: at least 3x more suffixes embed AS names than AS numbers;");
    println!("(here the ratio is set by the simulator's style mixture — the");
    println!("measurement of interest is the dictionary matcher's accuracy)\n");
    let latest = latest_itdk(stats);
    let c = asname_census(latest);
    println!("suffixes embedding AS numbers: {}", c.number_suffixes);
    println!("suffixes embedding AS names:   {}", c.name_suffixes);
    println!(
        "dictionary attribution on name-embedding hostnames: {}/{} ({})\n",
        c.dict_correct,
        c.dict_total,
        pct(c.dict_correct, c.dict_total)
    );
}

fn ablation_exp(stats: &[SnapshotStats]) {
    println!("== ablation: which learning phase earns its keep ==");
    println!("(latest ITDK snapshot, re-learned with one phase disabled)\n");
    let latest = latest_itdk(stats);
    println!("{:<20} {:>8} {:>10}", "configuration", "usable", "total ATP");
    for row in ablation(latest) {
        println!("{:<20} {:>8} {:>10}", row.name, row.usable, row.total_atp);
    }
    println!();
}

/// The latest ITDK-style snapshot (January 2020 analogue).
fn latest_itdk(stats: &[SnapshotStats]) -> &SnapshotStats {
    stats
        .iter().rfind(|s| s.spec.method == Method::BdrmapIt)
        .expect("timeline has bdrmapIT snapshots")
}

/// The latest PeeringDB snapshot (February 2020 analogue).
fn latest_pdb(stats: &[SnapshotStats]) -> &SnapshotStats {
    stats
        .iter().rfind(|s| s.spec.method == Method::PeeringDb)
        .expect("timeline has PeeringDB snapshots")
}

fn fig5(stats: &[SnapshotStats]) {
    println!("== Figure 5: classification of NCs per training set ==");
    println!("paper: 12-55 good NCs per ITDK, growing over time; 55 good for PeeringDB\n");
    println!(
        "{:<20} {:>9} {:>6} {:>10} {:>6} {:>7} {:>8}",
        "snapshot", "method", "good", "promising", "poor", "single", "suffixes"
    );
    for s in stats {
        println!(
            "{:<20} {:>9} {:>6} {:>10} {:>6} {:>7} {:>8}",
            s.spec.label,
            s.spec.method.label(),
            s.count(NcClass::Good),
            s.count(NcClass::Promising),
            s.count(NcClass::Poor),
            s.singles(),
            s.suffixes,
        );
    }
    let first_good = stats.first().map(|s| s.count(NcClass::Good)).unwrap_or(0);
    let last_good = latest_itdk(stats).count(NcClass::Good);
    println!("\nshape check: good NCs grew {first_good} -> {last_good} across the ITDK era\n");
}

fn fig6(stats: &[SnapshotStats]) {
    println!("== Figure 6: PPV of usable NCs on training data ==");
    println!("paper: RTAA 74.8-80.7%, bdrmapIT 83.7-87.4%, PeeringDB 96.0%;");
    println!("siblings add ~1% (RTAA) / ~2% (bdrmapIT)\n");
    println!(
        "{:<20} {:>9} {:>8} {:>12} {:>10}",
        "snapshot", "method", "PPV", "PPV+siblings", "train-acc"
    );
    for s in stats {
        println!(
            "{:<20} {:>9} {:>7.1}% {:>11.1}% {:>9.1}%",
            s.spec.label,
            s.spec.method.label(),
            s.ppv_usable * 100.0,
            s.ppv_usable_siblings * 100.0,
            s.training_accuracy * 100.0,
        );
    }
    let band = |m: Method| {
        let vals: Vec<f64> = stats
            .iter()
            .filter(|s| s.spec.method == m && s.ppv_usable > 0.0)
            .map(|s| s.ppv_usable * 100.0)
            .collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(0.0, f64::max);
        (lo, hi)
    };
    let (rl, rh) = band(Method::Rtaa);
    let (bl, bh) = band(Method::BdrmapIt);
    let (pl, ph) = band(Method::PeeringDb);
    println!(
        "\nshape check: RTAA {rl:.1}-{rh:.1}% < bdrmapIT {bl:.1}-{bh:.1}% < PeeringDB {pl:.1}-{ph:.1}%\n"
    );
}

fn table1_exp(stats: &[SnapshotStats]) {
    println!("== Table 1: taxonomy of ASN placement in hostnames ==");
    println!("paper (usable): simple 17.7% start 50.8% end 10.8% bare 5.4% complex 15.4%");
    println!("paper (single): simple  4.6% start 23.1% end 43.1% bare 7.7% complex 21.5%\n");
    // The paper characterises the union of the latest ITDK and
    // PeeringDB training sets.
    let (usable, single) = table1([latest_itdk(stats), latest_pdb(stats)]);
    println!("{:<10} {:>12} {:>12}", "shape", "usable", "single");
    for (name, u, s) in [
        ("simple", usable.simple, single.simple),
        ("start", usable.start, single.start),
        ("end", usable.end, single.end),
        ("bare", usable.bare, single.bare),
        ("complex", usable.complex, single.complex),
    ] {
        println!(
            "{:<10} {:>6.1}% ({u:>2}) {:>6.1}% ({s:>2})",
            name,
            usable.share(u),
            single.share(s)
        );
    }
    println!(
        "\nshape check: 'start' dominates usable NCs; own-ASN (single) NCs favour 'end'\n"
    );
}

fn sec5_and_table2(stats: &[SnapshotStats], print_sec5: bool, print_table2: bool) {
    let latest = latest_itdk(stats);
    let rep = run_sec5(latest);
    if print_sec5 {
        println!("== §5: using conventions in bdrmapIT ==");
        println!("paper: agreement 87.4% -> 97.1%; error rate 1/7.9 -> 1/34.5;");
        println!("adoption: good 82.5%, promising 44.0%, poor 18.2%\n");
        println!(
            "annotated interfaces: {}  (snapshot {})",
            rep.annotated, latest.spec.label
        );
        println!(
            "agreement: {:.1}% -> {:.1}%",
            rep.agree_before * 100.0,
            rep.agree_after * 100.0
        );
        println!(
            "ground-truth error rate: {} -> {}",
            error_rate(rep.err_before.0, rep.err_before.1),
            error_rate(rep.err_after.0, rep.err_after.1)
        );
        println!(
            "incongruent hostnames: {}; adopted {}",
            rep.result.decisions.len(),
            rep.result.decisions.iter().filter(|d| d.used).count()
        );
        for (class, used, total) in &rep.by_class {
            println!(
                "  {:<10} adopted {:>3}/{:<3} ({})",
                class.label(),
                used,
                total,
                pct(*used, *total)
            );
        }
        println!();
    }
    if print_table2 {
        println!("== Table 2: validation of the modified bdrmapIT ==");
        println!("paper: 432/467 (92.5%) correct decisions\n");
        let t2 = run_table2(latest, &rep);
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>8}",
            "", "TP(used)", "FN", "FP(used)", "TN"
        );
        for r in &t2.rows {
            println!("{:<18} {:>8} {:>8} {:>8} {:>8}", r.name, r.tp, r.fnn, r.fp, r.tn);
        }
        let tot = t2.totals();
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>8}",
            "Total", tot.tp, tot.fnn, tot.fp, tot.tn
        );
        println!(
            "\ncorrect decisions: {}/{} ({}); excluded (3-way disagreement): {}",
            tot.correct_decisions(),
            tot.total(),
            pct(tot.correct_decisions(), tot.total()),
            t2.excluded
        );
        println!(
            "coverage: {}/{} incongruent hostnames validated; PeeringDB row spans {} suffixes\n",
            t2.covered, t2.total_decisions, t2.pdb_suffixes
        );
    }
}

fn overlap_exp(stats: &[SnapshotStats]) {
    println!("== §4 overlap: latest ITDK vs PeeringDB ==");
    println!("paper: 130 usable total, 34 common (24 identical regexes),");
    println!("56 unique to ITDK, 40 unique to PeeringDB\n");
    let o = overlap(latest_itdk(stats), latest_pdb(stats));
    println!("ITDK usable:      {}", o.a_usable);
    println!("PeeringDB usable: {}", o.b_usable);
    println!("common suffixes:  {} (identical regexes: {})", o.common, o.identical);
    println!("ITDK-only:        {}", o.only_a);
    println!("PeeringDB-only:   {}\n", o.only_b);
}
