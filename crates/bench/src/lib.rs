//! # hoiho-bench — experiment harness
//!
//! Regenerates every table and figure in the paper's evaluation on the
//! synthetic Internet. The modules mirror the per-experiment index in
//! `DESIGN.md`:
//!
//! * [`pipeline`] — per-snapshot statistics feeding Figure 5 (NC
//!   classification over the 19 training sets) and Figure 6 (PPV of
//!   usable NCs per training method, with and without siblings).
//! * [`taxonomy`] — Table 1 (how and where operators embed ASNs).
//! * [`validation`] — §5 and Table 2: integrating extracted ASNs into
//!   bdrmapIT, scoring decisions against operator ground truth and
//!   PeeringDB cross-validation.
//! * [`overlap`] — the §4 ITDK/PeeringDB suffix-overlap analysis.
//! * [`futurework`] — the §7 future directions made concrete (PTR sweep,
//!   AS-name census) plus phase ablations.
//!
//! The `experiments` binary prints each experiment in the paper's
//! row/series format; `cargo bench` drives the microbenchmarks.

pub mod futurework;
pub mod overlap;
pub mod pipeline;
pub mod taxonomy;
pub mod validation;

/// Formats a ratio as the paper writes error rates: `1/x`.
pub fn error_rate(wrong: usize, total: usize) -> String {
    if wrong == 0 {
        "0".to_string()
    } else {
        format!("1/{:.1}", total as f64 / wrong as f64)
    }
}

/// Percentage with one decimal.
pub fn pct(num: usize, denom: usize) -> String {
    if denom == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / denom as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(error_rate(0, 100), "0");
        assert_eq!(error_rate(10, 79), "1/7.9");
        assert_eq!(pct(925, 1000), "92.5%");
        assert_eq!(pct(1, 0), "-");
    }
}
