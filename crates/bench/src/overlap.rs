//! §4 suffix-overlap analysis between the latest ITDK and PeeringDB
//! training sets.
//!
//! The paper found the two sources complementary: 130 usable NCs in
//! total, 34 suffixes in common (IXPs visible in both), 56 ISP suffixes
//! unique to the ITDK, 40 IXP suffixes unique to PeeringDB; 24 of the
//! common suffixes yielded exactly the same regexes.

use crate::pipeline::SnapshotStats;
use std::collections::BTreeMap;

/// Overlap statistics between two training sources.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Overlap {
    /// Usable suffixes in the first source.
    pub a_usable: usize,
    /// Usable suffixes in the second source.
    pub b_usable: usize,
    /// Suffixes usable in both.
    pub common: usize,
    /// Of the common suffixes, how many learned identical regex sets.
    pub identical: usize,
    /// Usable suffixes only in the first source.
    pub only_a: usize,
    /// Usable suffixes only in the second source.
    pub only_b: usize,
}

/// Computes the overlap between two snapshots' usable conventions.
pub fn overlap(a: &SnapshotStats, b: &SnapshotStats) -> Overlap {
    let regexes = |s: &SnapshotStats| -> BTreeMap<String, String> {
        s.usable()
            .map(|lc| {
                let body: Vec<String> =
                    lc.convention.regexes.iter().map(|r| r.to_string()).collect();
                (lc.convention.suffix.clone(), body.join("\n"))
            })
            .collect()
    };
    let ma = regexes(a);
    let mb = regexes(b);
    let mut out = Overlap { a_usable: ma.len(), b_usable: mb.len(), ..Default::default() };
    for (suffix, ra) in &ma {
        match mb.get(suffix) {
            Some(rb) => {
                out.common += 1;
                if ra == rb {
                    out.identical += 1;
                }
            }
            None => out.only_a += 1,
        }
    }
    out.only_b = mb.len() - out.common;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::snapshot_stats;
    use hoiho::learner::LearnConfig;
    use hoiho_itdk::{Method, SnapshotSpec};
    use hoiho_netsim::SimConfig;

    #[test]
    fn overlap_consistency() {
        // Same underlying Internet (same cfg) seen through ITDK
        // inference vs PeeringDB records.
        let cfg = SimConfig::tiny(95);
        let a = snapshot_stats(
            &SnapshotSpec {
                label: "itdk".into(),
                method: Method::BdrmapIt,
                cfg: cfg.clone(),
                alias_split: 0.3,
            },
            &LearnConfig::default(),
        );
        let b = snapshot_stats(
            &SnapshotSpec {
                label: "pdb".into(),
                method: Method::PeeringDb,
                cfg,
                alias_split: 0.3,
            },
            &LearnConfig::default(),
        );
        let o = overlap(&a, &b);
        assert_eq!(o.a_usable, o.common + o.only_a);
        assert_eq!(o.b_usable, o.common + o.only_b);
        assert!(o.identical <= o.common);
        // PeeringDB sees only IXP ports; the ITDK also sees ISP
        // interconnects, so it should have unique suffixes.
        assert!(o.only_a > 0);
    }
}
