//! Table 1: taxonomy of how and where operators embed ASNs.
//!
//! The paper characterises the 130 usable NCs (ITDK January 2020 ∪
//! PeeringDB February 2020) and, separately, the single-ASN NCs, over
//! five shapes: simple, start, end, bare, complex. Most
//! neighbor-annotating operators put the ASN at the start; operators
//! embedding their own ASN favour the end.

use crate::pipeline::SnapshotStats;
use hoiho::taxonomy::Taxonomy;

/// Counts per taxonomy bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaxonomyCounts {
    /// `^as(\d+)\.suffix$` only.
    pub simple: usize,
    /// `as`-annotated ASN at the hostname start.
    pub start: usize,
    /// `as`-annotated ASN at the hostname end.
    pub end: usize,
    /// No alphabetic annotation.
    pub bare: usize,
    /// Everything else.
    pub complex: usize,
}

impl TaxonomyCounts {
    /// Total NCs counted.
    pub fn total(&self) -> usize {
        self.simple + self.start + self.end + self.bare + self.complex
    }

    fn bump(&mut self, t: Taxonomy) {
        match t {
            Taxonomy::Simple => self.simple += 1,
            Taxonomy::Start => self.start += 1,
            Taxonomy::End => self.end += 1,
            Taxonomy::Bare => self.bare += 1,
            Taxonomy::Complex => self.complex += 1,
        }
    }

    /// Percentage for one bucket.
    pub fn share(&self, n: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.total() as f64
        }
    }
}

/// The two Table 1 columns: usable (multi-ASN) and single NCs. An NC
/// appearing in several snapshots counts once per distinct suffix.
pub fn table1<'a>(
    stats: impl IntoIterator<Item = &'a SnapshotStats>,
) -> (TaxonomyCounts, TaxonomyCounts) {
    let mut usable = TaxonomyCounts::default();
    let mut single = TaxonomyCounts::default();
    let mut seen_usable = std::collections::BTreeSet::new();
    let mut seen_single = std::collections::BTreeSet::new();
    for s in stats {
        for lc in &s.learned {
            if lc.class.usable() && !lc.single {
                if seen_usable.insert(lc.convention.suffix.clone()) {
                    usable.bump(lc.taxonomy);
                }
            } else if lc.single
                && seen_single.insert(lc.convention.suffix.clone()) {
                    single.bump(lc.taxonomy);
                }
        }
    }
    (usable, single)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoiho::taxonomy::Taxonomy;

    #[test]
    fn counts_and_shares() {
        let mut c = TaxonomyCounts::default();
        c.bump(Taxonomy::Start);
        c.bump(Taxonomy::Start);
        c.bump(Taxonomy::End);
        c.bump(Taxonomy::Simple);
        assert_eq!(c.total(), 4);
        assert!((c.share(c.start) - 50.0).abs() < 1e-9);
        assert!((c.share(c.end) - 25.0).abs() < 1e-9);
        assert_eq!(TaxonomyCounts::default().share(0), 0.0);
    }
}
