//! §7 future directions, made concrete:
//!
//! * [`ptr_sweep`] — the paper's OpenINTEL experiment: applying the
//!   regexes learned from traceroute-observed hostnames to the PTR
//!   records of *all* delegated address space multiplied matching
//!   hostnames 5.4K → 22.5K, revealing interconnections measurement
//!   never saw. The simulator's full interface table plays the role of
//!   the OpenINTEL PTR corpus.
//! * [`asname_census`] — the paper's preliminary observation that more
//!   suffixes embed AS *names* than AS numbers. With the organization
//!   dictionary (the as2org names), count the suffixes of each kind and
//!   measure how well a dictionary matcher attributes name-embedding
//!   hostnames.
//! * [`ablation`] — which learning phase earns its keep: re-learn the
//!   latest snapshot with merge (§3.3), character classes (§3.4), or
//!   sets (§3.5) disabled and compare usable-NC counts and aggregate
//!   ATP.

use crate::pipeline::SnapshotStats;
use hoiho::learner::{learn_all, LearnConfig};
use hoiho_asdb::Asn;
use hoiho_netsim::internet::IfaceKind;
use std::collections::BTreeSet;

/// Result of the OpenINTEL-style sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepResult {
    /// Hostnames matched within the traceroute-observed training data.
    pub matched_observed: usize,
    /// Hostnames matched across the full PTR corpus (every named
    /// interface in the simulation).
    pub matched_full: usize,
    /// Of the newly matched hostnames, how many extract the true
    /// operator (or a sibling) — new, correct interconnection evidence.
    pub new_correct: usize,
    /// Newly matched hostnames total.
    pub new_total: usize,
}

/// Applies the snapshot's learned conventions to every named interface.
pub fn ptr_sweep(stats: &SnapshotStats) -> SweepResult {
    let snap = &stats.snapshot;
    let mut out = SweepResult::default();
    let observed: BTreeSet<u32> = snap.graph.by_addr.keys().copied().collect();
    for lc in stats.usable() {
        for (iface, owner) in snap.internet.named_interfaces() {
            let hostname = iface.hostname.as_deref().expect("named");
            let Some(extracted) = lc.convention.extract(hostname) else { continue };
            let seen = observed.contains(&iface.addr);
            out.matched_full += 1;
            if seen {
                out.matched_observed += 1;
            } else {
                out.new_total += 1;
                if extracted == owner || snap.input.org.siblings(extracted, owner) {
                    out.new_correct += 1;
                }
            }
        }
    }
    out
}

/// Result of the AS-name census.
#[derive(Debug, Clone, Default)]
pub struct AsNameCensus {
    /// Suffixes whose hostnames embed AS *numbers* (ground truth).
    pub number_suffixes: usize,
    /// Suffixes whose hostnames embed AS *names* (ground truth).
    pub name_suffixes: usize,
    /// Name-embedding hostnames where the dictionary matcher recovered
    /// the right organization.
    pub dict_correct: usize,
    /// Name-embedding hostnames examined.
    pub dict_total: usize,
}

/// Counts ASN- vs AS-name-embedding suffixes and scores a dictionary
/// matcher (organization brand slugs from as2org) on the latter.
pub fn asname_census(stats: &SnapshotStats) -> AsNameCensus {
    let snap = &stats.snapshot;
    let net = &snap.internet;
    let mut number_suffixes: BTreeSet<String> = BTreeSet::new();
    let mut name_suffixes: BTreeSet<String> = BTreeSet::new();
    let mut out = AsNameCensus::default();

    // Dictionary: brand slug → ASNs of the organization.
    let mut dict: Vec<(String, Vec<Asn>)> = Vec::new();
    for a in &net.aslevel.ases {
        if let Some(org) = net.aslevel.org.org_of(a.asn) {
            if let Some(name) = net.aslevel.org.org_name(org) {
                if !dict.iter().any(|(n, _)| n == name) {
                    dict.push((name.to_string(), net.aslevel.org.members(org).to_vec()));
                }
            }
        }
    }
    // Longer names first, so `fib-west` is not shadowed by `fib`.
    dict.sort_by_key(|(n, _)| std::cmp::Reverse(n.len()));

    let psl = hoiho_psl::PublicSuffixList::builtin();
    for iface in &net.interfaces {
        let Some(hostname) = iface.hostname.as_deref() else { continue };
        // Group by the registrable domain, and search only the local
        // part — the suffix itself contains the *operator's* brand.
        let Some(suffix) = psl.registrable_domain(hostname) else { continue };
        let Some(local) = hoiho::label::local_part(hostname, &suffix) else { continue };
        let owner = net.routers[iface.router as usize].owner;
        match &iface.embedded {
            hoiho_netsim::internet::EmbeddedInfo::NeighborAsn { .. }
            | hoiho_netsim::internet::EmbeddedInfo::OwnAsn { .. } => {
                number_suffixes.insert(suffix);
            }
            hoiho_netsim::internet::EmbeddedInfo::NoAsn => {
                // Only AsName-style interconnect hostnames embed the
                // neighbor's brand; detect via the dictionary.
                if iface.kind != IfaceKind::InterconnectFar
                    && iface.kind != IfaceKind::IxpLan
                {
                    continue;
                }
                if let Some((_, asns)) = dict
                    .iter()
                    .find(|(name, _)| name.len() >= 4 && local.contains(name.as_str()))
                {
                    name_suffixes.insert(suffix);
                    out.dict_total += 1;
                    if asns.contains(&owner) {
                        out.dict_correct += 1;
                    }
                }
            }
        }
    }
    out.number_suffixes = number_suffixes.len();
    out.name_suffixes = name_suffixes.len();
    out
}

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which configuration.
    pub name: &'static str,
    /// Usable NCs learned.
    pub usable: usize,
    /// Aggregate ATP across learned conventions.
    pub total_atp: i64,
}

/// Re-learns the snapshot with each phase disabled in turn.
pub fn ablation(stats: &SnapshotStats) -> Vec<AblationRow> {
    let configs: [(&'static str, LearnConfig); 4] = [
        ("full pipeline", LearnConfig::default()),
        ("no merge (§3.3)", LearnConfig { enable_merge: false, ..LearnConfig::default() }),
        ("no classes (§3.4)", LearnConfig { enable_classes: false, ..LearnConfig::default() }),
        ("no sets (§3.5)", LearnConfig { enable_sets: false, ..LearnConfig::default() }),
    ];
    configs
        .into_iter()
        .map(|(name, cfg)| {
            let learned = learn_all(&stats.groups, &cfg);
            AblationRow {
                name,
                usable: learned.iter().filter(|l| l.class.usable()).count(),
                total_atp: learned.iter().map(|l| l.counts.atp()).sum(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::snapshot_stats;
    use hoiho_itdk::{Method, SnapshotSpec};
    use hoiho_netsim::SimConfig;

    fn stats() -> SnapshotStats {
        snapshot_stats(
            &SnapshotSpec {
                label: "fw".into(),
                method: Method::BdrmapIt,
                cfg: SimConfig::tiny(1234),
                alias_split: 0.3,
            },
            &LearnConfig::default(),
        )
    }

    #[test]
    fn sweep_expands_coverage() {
        let s = stats();
        let r = ptr_sweep(&s);
        assert!(r.matched_full >= r.matched_observed);
        assert!(r.new_total > 0, "sweep found no unobserved hostnames");
        assert_eq!(r.matched_full, r.matched_observed + r.new_total);
        // Most newly matched hostnames carry correct evidence.
        assert!(r.new_correct * 2 > r.new_total, "{r:?}");
    }

    #[test]
    fn asname_census_finds_both_kinds() {
        let s = stats();
        let c = asname_census(&s);
        assert!(c.number_suffixes > 0);
        assert!(c.name_suffixes > 0);
        if c.dict_total > 0 {
            assert!(c.dict_correct * 2 > c.dict_total, "{c:?}");
        }
    }

    #[test]
    fn ablation_full_pipeline_wins_on_atp() {
        let s = stats();
        let rows = ablation(&s);
        assert_eq!(rows.len(), 4);
        let full = rows[0].total_atp;
        for r in &rows[1..] {
            assert!(r.total_atp <= full, "{} beat the full pipeline", r.name);
        }
    }
}
