//! Property-based tests for the model artifact format, on the devkit
//! harness: render→parse→render is a fixpoint over arbitrary learned
//! models, and truncated or corrupted artifacts are rejected with
//! line-numbered errors instead of panics.

use hoiho::classify::NcClass;
use hoiho::regex::Regex;
use hoiho::taxonomy::Taxonomy;
use hoiho_devkit::prop::{any, string_of, vec_of, Gen};
use hoiho_devkit::{prop_assert, prop_assert_eq, props};
use hoiho_serve::model::{EvalCounts, Model, ModelEntry};
use std::collections::BTreeSet;

/// A registrable-domain-shaped suffix: `name.tld`.
fn suffix() -> impl Gen<Value = String> {
    (string_of("abcdefghijklmnopqrstuvwxyz", 1..=8usize), 0usize..5).prop_map(|(name, tld)| {
        format!("{name}.{}", ["com", "net", "org", "ch", "nz"][tld])
    })
}

/// One regex over `suffix`, drawn from templates covering the dialect's
/// surface: anchors, literals, the capture, alternations, negated sets,
/// character classes, `.+`, and `\d+`.
fn template_regex(template: usize, suffix: &str) -> Regex {
    let esc = suffix.replace('.', "\\.");
    let src = match template % 7 {
        0 => format!("^as(\\d+)\\.{esc}$"),
        1 => format!("^as(\\d+)\\.[a-z]+\\.{esc}$"),
        2 => format!("(\\d+)-.+\\.{esc}$"),
        3 => format!("^[^\\.]+\\.as(\\d+)\\.{esc}$"),
        4 => format!("^(?:p|s)?(\\d+)\\.[a-z\\d]+\\.{esc}$"),
        5 => format!("^gw-as(\\d+)-[a-z-]+\\.{esc}$"),
        _ => format!("^\\d+\\.as(\\d+)\\.{esc}$"),
    };
    Regex::parse(&src).expect("template regex parses")
}

fn entry() -> impl Gen<Value = ModelEntry> {
    (
        suffix(),
        (0usize..3, any::<bool>(), 0usize..5, 0u64..100_000),
        vec_of(0usize..7, 1..=3usize),
        (0u32..100_000, 0u32..100_000, 0u32..100_000, 0u32..100_000, 0u32..5_000, 0u32..5_000),
    )
        .prop_map(|(suffix, (ci, single, ti, hostnames), templates, (tp, fp, fnn, tn, uta, ue))| {
            ModelEntry {
                regexes: templates.iter().map(|&t| template_regex(t, &suffix)).collect(),
                suffix,
                class: [NcClass::Good, NcClass::Promising, NcClass::Poor][ci],
                single,
                taxonomy: [
                    Taxonomy::Simple,
                    Taxonomy::Start,
                    Taxonomy::End,
                    Taxonomy::Bare,
                    Taxonomy::Complex,
                ][ti],
                hostnames,
                counts: EvalCounts {
                    tp,
                    fp,
                    fnn,
                    tn,
                    unique_tp_asns: uta,
                    unique_extracted: ue,
                },
            }
        })
}

/// An arbitrary model: up to six conventions, suffixes deduplicated
/// (the format rejects duplicates by design).
fn model() -> impl Gen<Value = Model> {
    vec_of(entry(), 0usize..6).prop_map(|mut entries| {
        let mut seen = BTreeSet::new();
        entries.retain(|e| seen.insert(e.suffix.clone()));
        Model { entries }
    })
}

props! {
    cases = 96;

    /// The core artifact guarantee: render → parse gives back the same
    /// model, and rendering again gives byte-identical text.
    fn render_parse_render_fixpoint(m in model()) {
        let text = m.render();
        let parsed = match Model::parse(&text) {
            Ok(p) => p,
            Err(e) => return Err(format!("rendered model failed to parse: {e}")),
        };
        prop_assert_eq!(&parsed, &m);
        prop_assert_eq!(parsed.render(), text);
    }

    /// Every strict line-prefix of a valid artifact is rejected — the
    /// trailer makes truncation detectable at any cut point — and the
    /// error names a line inside the file rather than panicking.
    fn truncation_always_rejected(m in model(), cut in 0usize..10_000) {
        let text = m.render();
        let lines: Vec<&str> = text.lines().collect();
        let cut = cut % lines.len();
        let prefix = lines[..cut].join("\n");
        let err = match Model::parse(&prefix) {
            Err(e) => e,
            Ok(_) => return Err(format!("prefix of {cut}/{} lines parsed", lines.len())),
        };
        prop_assert!(err.line <= lines.len(), "error line {} out of range", err.line);
    }

    /// Replacing any single line with garbage is rejected with a
    /// 1-based line number no larger than the file.
    fn corrupt_line_rejected_with_line_number(m in model(), which in 0usize..10_000) {
        let text = m.render();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let i = which % lines.len();
        lines[i] = "Z\tgarbage".to_string();
        let corrupted = lines.join("\n");
        let err = match Model::parse(&corrupted) {
            Err(e) => e,
            Ok(_) => return Err(format!("corruption of line {} accepted", i + 1)),
        };
        prop_assert!(
            err.line >= 1 && err.line <= lines.len(),
            "error line {} out of range 1..={}", err.line, lines.len()
        );
    }

    /// Dropping a field from a record line is rejected too (short
    /// records must not silently default).
    fn short_records_rejected(m in model(), which in 0usize..10_000) {
        let text = m.render();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Pick a record line with at least three fields and drop the last.
        let candidates: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.split('\t').count() >= 3 && !l.starts_with('#'))
            .map(|(i, _)| i)
            .collect();
        let i = candidates[which % candidates.len()];
        let cut = lines[i].rsplit_once('\t').expect("record has tabs").0.to_string();
        lines[i] = cut;
        let corrupted = lines.join("\n");
        prop_assert!(Model::parse(&corrupted).is_err(), "short record on line {} accepted", i + 1);
    }
}
