//! A concurrent TCP line-protocol server over an [`Engine`].
//!
//! ## Protocol
//!
//! One request per line, one response line per request (tab-separated):
//!
//! * `<hostname>` → `<hostname>\t<asn|->\t<suffix|->\t<class|->` — the
//!   extraction, the dispatched suffix, and its §4 class; `-` marks the
//!   missing parts.
//! * `STATS` → `stats\thits=N\tmisses=N\terrors=N\tconns=N\tmodel=K`
//!   — lifetime totals plus the live model's convention count.
//! * `STATS SUFFIX` → one `suffix\tqueries` line per convention of the
//!   live model, terminated by a lone `.` line.
//! * `STATS CLUSTER` → per-shard and response-cache counters when the
//!   server runs the cluster backend (`.`-terminated), `err` otherwise.
//! * `METRICS` → the full metrics registry in Prometheus-style text
//!   exposition (see `hoiho-obs`), terminated by a lone `.` line:
//!   request counts by verb and outcome, the request latency
//!   histogram, connection and protocol-error totals, plus whatever
//!   the backend registered (engine dispatch outcomes, per-shard cache
//!   counters). The rendered counters reflect traffic *before* the
//!   `METRICS` request itself.
//! * `EVENTS [n]` → the last `n` (default: all buffered) structured
//!   events as JSONL, `.`-terminated: slow queries over the
//!   configurable threshold, reloads, admin refusals.
//! * `RELOAD <path>` → `ok\treloaded\t<n>` after atomically installing
//!   the model at `<path>`, or `err\t<message>` (the old model keeps
//!   serving on failure). The cluster backend takes
//!   `RELOAD SHARD <k> <path>` instead.
//! * `SHUTDOWN` → `ok\tbye`, then the whole server drains and stops.
//!   Requests already received on the same connection when the
//!   `SHUTDOWN` line is processed are answered before the close.
//! * `BATCH <n>` followed by `n` hostname lines → `ok\tbatch\t<n>`
//!   followed by `n` answer lines in the single-query format, so one
//!   socket round-trip carries hundreds of lookups. Every batch line
//!   is treated strictly as a hostname query (verbs cannot be smuggled
//!   through a batch), `n` is capped at [`MAX_BATCH`], and each line
//!   is subject to [`MAX_LINE`] like any other. Items count into the
//!   query hit/miss totals; the batch itself counts once under
//!   `verb="batch"` and observes the latency histogram once.
//!
//! The protocol loop is backend-agnostic: extraction, reload, and the
//! stats listings go through the [`Backend`] trait, so the same server
//! fronts a single hot-swappable engine ([`EngineBackend`]) or the
//! suffix-sharded router in `hoiho-cluster`.
//!
//! ## Trust model
//!
//! The protocol is unauthenticated. Query lines are safe to expose, but
//! `RELOAD` (which reads server-side filesystem paths and whose error
//! messages reveal whether a path exists and parses), `SHUTDOWN`
//! (which terminates the server), and `EVENTS` (whose slow-query log
//! echoes other clients' request lines) are **admin verbs**: they are
//! honoured only when the client's peer address is loopback, and answer
//! `err\tadmin commands require a loopback peer` otherwise (each
//! refusal is itself recorded as an `admin_refused` event). `METRICS`
//! exposes only aggregates and stays open, like `STATS`. Bind the
//! server to `127.0.0.1` unless every host on the bound network is
//! trusted with the query surface.
//!
//! ## Concurrency
//!
//! The server runs `workers` **readiness event loops** (0 = one per
//! core), each owning a private epoll instance (raw in-tree FFI, see
//! [`crate::sys`]) with the shared nonblocking listener registered in
//! every loop. A connection lives entirely on the loop that accepted
//! it: per-connection read/write buffers, level-triggered `EPOLLIN`
//! interest, and `EPOLLOUT` armed only while a response remains
//! unflushed. Each readable event drains *every* complete line in the
//! buffer and coalesces all responses into one write, so pipelined
//! clients pay one syscall round-trip per burst instead of one per
//! request. No thread is ever pinned by a connection — thousands of
//! idle keep-alives cost one epoll registration each — but a
//! connection that completes no request for [`IDLE_DISCONNECT`] is
//! still closed. Line length is enforced against *each framed line*
//! before it is served (and against the residual unterminated buffer),
//! so [`MAX_LINE`] cannot be exceeded regardless of how reads chunk.
//! A connection whose unread responses exceed [`MAX_PENDING_OUT`]
//! (a pipelining client that never reads) is counted as a protocol
//! error and dropped, bounding per-connection memory.
//!
//! In the default backend the live engine sits behind
//! `RwLock<Arc<Generation>>`: each request clones the `Arc` under a
//! read lock (nanoseconds), so a hot reload
//! ([`ServerHandle::install`] or `RELOAD`) swaps the model without
//! dropping or stalling open connections — in-flight requests finish on
//! the engine they started with. Per-suffix counters are allocated per
//! engine generation and travel with it, so a reload resets them while
//! the lifetime totals keep counting.
//!
//! Shutdown is graceful: each loop answers every request already
//! buffered on its connections (including requests pipelined behind
//! the `SHUTDOWN` line itself), flushes pending responses for a short
//! grace period, closes, and joins. A per-loop eventfd wakes sleeping
//! `epoll_wait`s so shutdown is prompt from any thread.

use crate::engine::{Engine, EngineObs};
use crate::model::Model;
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use hoiho::classify::NcClass;
use hoiho_obs::span::{detail, Layer, TraceCtx};
use hoiho_obs::{slo, span, Counter, Histogram, Obs, Phase, PhaseCell, Registry};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on one `epoll_wait` sleep, so idle-disconnect sweeps
/// and the shutdown flag are checked regularly even without traffic.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// A connection that completes no request for this long is closed, so
/// idle keep-alive clients cannot hold registrations forever.
pub const IDLE_DISCONNECT: Duration = Duration::from_secs(60);

/// Hard cap on one request line, enforced per framed line *before*
/// serving it and against the residual unterminated buffer. A client
/// that exceeds it is counted as a protocol error and disconnected —
/// the stream cannot be resynchronised without trusting the oversized
/// line's framing.
pub const MAX_LINE: usize = 64 * 1024;

/// Hard cap on the item count of one `BATCH` request.
pub const MAX_BATCH: usize = 4096;

/// Hard cap on a connection's pending (unwritten) response bytes. A
/// client that pipelines requests but never reads its responses would
/// otherwise grow `out` without bound; past this the connection is
/// counted as a protocol error and dropped. 4 MiB comfortably holds
/// dozens of maximal `BATCH` responses for a well-behaved pipeliner.
pub const MAX_PENDING_OUT: usize = 4 * 1024 * 1024;

/// How many events one `epoll_wait` call can report.
const EVENT_BATCH: usize = 256;

/// Read size per `read` call on a readable connection.
const READ_CHUNK: usize = 64 * 1024;

/// After shutdown, how long loops keep trying to flush pending
/// responses before closing connections regardless.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// How often the watcher thread samples the phase cells (DESIGN §7i).
const PROFILE_INTERVAL: Duration = Duration::from_millis(5);

/// The watcher snapshots the registry for the SLO engine once per this
/// many profile rounds (~every 320 ms at the 5 ms sample interval) —
/// comfortably finer than the smallest burn-rate window (10 s).
const SLO_TICK_ROUNDS: u64 = 64;

/// One engine generation: the compiled model plus its per-suffix
/// query counters (index-aligned with [`Engine::conventions`]).
pub struct Generation {
    /// The compiled model.
    pub engine: Arc<Engine>,
    /// Queries dispatched to each convention since this generation was
    /// installed.
    pub per_suffix: Vec<AtomicU64>,
}

impl Generation {
    /// Wraps an engine with fresh per-suffix counters. Public because
    /// the cluster router reuses generations as its per-shard unit.
    pub fn new(engine: Arc<Engine>) -> Arc<Generation> {
        let per_suffix = (0..engine.len()).map(|_| AtomicU64::new(0)).collect();
        Arc::new(Generation { engine, per_suffix })
    }

    /// Runs one extraction, bumping the dispatched suffix's counter.
    pub fn query(&self, hostname: &str) -> QueryAnswer {
        let x = self.engine.extract(hostname);
        self.answer_of(x)
    }

    /// Converts an engine extraction into the protocol-level answer,
    /// counting the dispatch.
    pub fn answer_of(&self, x: crate::engine::Extraction) -> QueryAnswer {
        let (suffix, class) = match x.nc {
            Some(i) => {
                self.per_suffix[i].fetch_add(1, Ordering::Relaxed);
                let nc = &self.engine.conventions()[i];
                (Some(nc.suffix.clone()), Some(nc.class))
            }
            None => (None, None),
        };
        QueryAnswer { asn: x.asn, suffix, class }
    }
}

/// One extraction answer as the protocol reports it: ASN, dispatched
/// suffix, and the suffix's §4 class (`None` marks the `-` fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnswer {
    /// The extracted ASN, when a regex matched.
    pub asn: Option<u32>,
    /// The suffix whose convention served the query.
    pub suffix: Option<String>,
    /// That convention's quality class.
    pub class: Option<NcClass>,
}

impl QueryAnswer {
    /// The answer for a hostname no convention covers.
    pub const MISS: QueryAnswer = QueryAnswer { asn: None, suffix: None, class: None };

    /// Renders the tab-separated response fields after the echoed
    /// hostname: `<asn|->\t<suffix|->\t<class|->`.
    pub fn render_fields(&self) -> String {
        format!(
            "{}\t{}\t{}",
            self.asn.map_or_else(|| "-".to_string(), |a| a.to_string()),
            self.suffix.as_deref().unwrap_or("-"),
            self.class.map_or("-", |c| c.label()),
        )
    }

    /// Appends the full answer line `<hostname>\t<fields>\n` to `out`
    /// without intermediate `String`s — the `BATCH` hot path renders
    /// hundreds of answers per request.
    pub fn render_line_into(&self, hostname: &str, out: &mut Vec<u8>) {
        out.extend_from_slice(hostname.as_bytes());
        out.push(b'\t');
        match self.asn {
            Some(a) => {
                let mut digits = [0u8; 10];
                let mut i = digits.len();
                let mut v = a;
                loop {
                    i -= 1;
                    digits[i] = b'0' + (v % 10) as u8;
                    v /= 10;
                    if v == 0 {
                        break;
                    }
                }
                out.extend_from_slice(&digits[i..]);
            }
            None => out.push(b'-'),
        }
        out.push(b'\t');
        out.extend_from_slice(self.suffix.as_deref().unwrap_or("-").as_bytes());
        out.push(b'\t');
        out.extend_from_slice(self.class.map_or("-", |c| c.label()).as_bytes());
        out.push(b'\n');
    }
}

/// What the TCP server needs from an extraction backend. The default
/// backend is a single hot-swappable engine ([`EngineBackend`]); the
/// cluster crate plugs a suffix-sharded router with a response cache in
/// through the same seam, so the protocol loop is written once.
pub trait Backend: Send + Sync + 'static {
    /// Answers one hostname query. `ctx` is the request's tracing
    /// context — [`TraceCtx::off`] for the unsampled common case (one
    /// branch per layer); a sampled context records per-layer spans
    /// into the shared ring (DESIGN §7i).
    fn query(&self, hostname: &str, ctx: &TraceCtx) -> QueryAnswer;
    /// Convention count reported by `STATS` as `model=`.
    fn model_len(&self) -> usize;
    /// Per-suffix query counts for `STATS SUFFIX`, in index order.
    fn per_suffix(&self) -> Vec<(String, u64)>;
    /// Handles the argument text of a `RELOAD` request. Returns the
    /// response payload after `ok\t` (e.g. `reloaded\t12`), or the
    /// error message after `err\t`. Must leave the old state serving on
    /// failure.
    fn reload(&self, args: &str) -> Result<String, String>;
    /// The full multi-line `STATS CLUSTER` response body including the
    /// terminating `.\n`, or `None` when the backend is not a cluster.
    fn cluster_stats(&self) -> Option<String> {
        None
    }
    /// Answers a `BATCH` of hostnames, one answer per input in order.
    /// The default maps [`Backend::query`]; backends override it to
    /// amortise per-query setup across the batch (the engine backend
    /// resolves its live generation once).
    fn query_batch(&self, hostnames: &[&str], ctx: &TraceCtx) -> Vec<QueryAnswer> {
        hostnames.iter().map(|h| self.query(h, ctx)).collect()
    }
}

/// The default backend: one engine behind `RwLock<Arc<Generation>>`,
/// hot-swappable as a whole.
pub struct EngineBackend {
    live: RwLock<Arc<Generation>>,
    /// Dispatch-outcome counters re-attached to every engine a
    /// `RELOAD` builds, so the counters survive reloads.
    engine_obs: Option<EngineObs>,
}

impl EngineBackend {
    /// Wraps an engine as generation zero.
    pub fn new(engine: Arc<Engine>) -> EngineBackend {
        EngineBackend { live: RwLock::new(Generation::new(engine)), engine_obs: None }
    }

    /// Wraps an engine as generation zero and remembers `obs` so
    /// engines built by [`Backend::reload`] keep counting into the
    /// same dispatch-outcome series. The caller usually attaches the
    /// same `obs` to `engine` itself first.
    pub fn with_engine_obs(engine: Arc<Engine>, obs: EngineObs) -> EngineBackend {
        EngineBackend { live: RwLock::new(Generation::new(engine)), engine_obs: Some(obs) }
    }

    /// Atomically installs a new engine: per-suffix counters restart,
    /// in-flight requests finish on the generation they started with.
    pub fn install(&self, engine: Arc<Engine>) {
        *self.live.write().expect("generation lock poisoned") = Generation::new(engine);
    }

    /// The live generation.
    pub fn generation(&self) -> Arc<Generation> {
        self.live.read().expect("generation lock poisoned").clone()
    }
}

impl Backend for EngineBackend {
    fn query(&self, hostname: &str, ctx: &TraceCtx) -> QueryAnswer {
        let gen = self.generation();
        let mut sp = ctx.span(Layer::Engine);
        let answer = gen.query(hostname);
        sp.detail(if answer.asn.is_some() { detail::EXTRACT_HIT } else { detail::EXTRACT_MISS });
        answer
    }

    fn model_len(&self) -> usize {
        self.generation().engine.len()
    }

    fn per_suffix(&self) -> Vec<(String, u64)> {
        let gen = self.generation();
        gen.engine
            .conventions()
            .iter()
            .zip(&gen.per_suffix)
            .map(|(nc, n)| (nc.suffix.clone(), n.load(Ordering::Relaxed)))
            .collect()
    }

    fn reload(&self, args: &str) -> Result<String, String> {
        let model = Model::load(args.trim()).map_err(|e| e.to_string())?;
        let mut engine = Engine::new(&model);
        if let Some(obs) = &self.engine_obs {
            engine.attach_obs(obs.clone());
        }
        let engine = Arc::new(engine);
        let n = engine.len();
        self.install(engine);
        Ok(format!("reloaded\t{n}"))
    }

    fn query_batch(&self, hostnames: &[&str], ctx: &TraceCtx) -> Vec<QueryAnswer> {
        // One generation resolution (read lock + Arc clone) per batch
        // instead of per item; in-flight batches finish on the
        // generation they started with, like single queries. One engine
        // span covers the whole batch — per-item spans would exhaust
        // the trace budget on a single large batch.
        let gen = self.generation();
        let mut sp = ctx.span(Layer::Engine);
        let answers: Vec<QueryAnswer> = hostnames.iter().map(|h| gen.query(h)).collect();
        sp.detail(if answers.iter().any(|a| a.asn.is_some()) {
            detail::EXTRACT_HIT
        } else {
            detail::EXTRACT_MISS
        });
        answers
    }
}

/// Counters shared by all workers for the server's lifetime.
#[derive(Default)]
struct Totals {
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    conns: AtomicU64,
}

/// A point-in-time view of the server's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries that extracted an ASN.
    pub hits: u64,
    /// Queries that did not (unknown suffix, or no regex matched).
    pub misses: u64,
    /// Protocol errors (bad input, failed reloads).
    pub errors: u64,
    /// Connections accepted.
    pub conns: u64,
    /// Per-suffix query counts for the live generation, as
    /// `(suffix, queries)` in engine index order.
    pub per_suffix: Vec<(String, u64)>,
}

/// Pre-registered hot-path metric handles (rare verbs register their
/// counters on demand — a mutex-taking path, acceptable off the query
/// fast path).
struct ServerMetrics {
    query_hit: Counter,
    query_miss: Counter,
    batch_ok: Counter,
    batch_err: Counter,
    latency: Histogram,
    connections: Counter,
    protocol_errors: Counter,
}

impl ServerMetrics {
    fn register(r: &Registry) -> ServerMetrics {
        ServerMetrics {
            query_hit: r.counter("hoiho_requests_total", &[("verb", "query"), ("outcome", "hit")]),
            query_miss: r
                .counter("hoiho_requests_total", &[("verb", "query"), ("outcome", "miss")]),
            batch_ok: r.counter("hoiho_requests_total", &[("verb", "batch"), ("outcome", "ok")]),
            batch_err: r.counter("hoiho_requests_total", &[("verb", "batch"), ("outcome", "err")]),
            latency: r.histogram("hoiho_request_latency_ns", &[]),
            connections: r.counter("hoiho_connections_total", &[]),
            protocol_errors: r.counter("hoiho_protocol_errors_total", &[]),
        }
    }
}

/// Shared server state: the extraction backend, lifetime totals, and
/// the observability context.
struct Shared {
    backend: Arc<dyn Backend>,
    totals: Totals,
    shutdown: AtomicBool,
    obs: Arc<Obs>,
    metrics: ServerMetrics,
    /// One wake eventfd per event loop, so a shutdown requested from
    /// any thread (a client's `SHUTDOWN`, or the handle) interrupts
    /// every sleeping `epoll_wait` immediately.
    wakes: Mutex<Vec<Arc<EventFd>>>,
}

impl Shared {
    fn new(backend: Arc<dyn Backend>, obs: Arc<Obs>) -> Shared {
        let metrics = ServerMetrics::register(obs.registry());
        Shared {
            backend,
            totals: Totals::default(),
            shutdown: AtomicBool::new(false),
            obs,
            metrics,
            wakes: Mutex::new(Vec::new()),
        }
    }

    /// Counts one protocol error in both the legacy totals and the
    /// metrics registry.
    fn count_error(&self) {
        self.totals.errors.fetch_add(1, Ordering::Relaxed);
        self.metrics.protocol_errors.inc();
    }

    /// Sets the shutdown flag and wakes every event loop.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for w in self.wakes.lock().expect("wake list poisoned").iter() {
            w.signal();
        }
    }
}

/// The protocol verb a request line is, for metric labels and the
/// slow-query log.
fn verb_of(request: &str) -> &'static str {
    match request {
        "STATS" => "stats",
        "STATS SUFFIX" => "stats_suffix",
        "STATS CLUSTER" => "stats_cluster",
        "METRICS" => "metrics",
        "PROFILE" => "profile",
        "SLO" => "slo",
        "SHUTDOWN" => "shutdown",
        r if r.starts_with("RELOAD ") => "reload",
        r if r == "EVENTS" || r.starts_with("EVENTS ") => "events",
        r if r == "TRACES" || r.starts_with("TRACES ") => "traces",
        r if r == "BATCH" || r.starts_with("BATCH ") => "batch",
        _ => "query",
    }
}

/// Rolls the sampler for one request: a sampled request gets a live
/// context recording into the shared span ring, everything else the
/// free [`TraceCtx::off`].
fn trace_ctx(shared: &Shared) -> TraceCtx<'_> {
    match shared.obs.sampler().sample() {
        Some(trace) => TraceCtx::sampled(shared.obs.spans(), trace),
        None => TraceCtx::off(),
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Present when the server was started over a single engine;
    /// [`ServerHandle::install`] needs it.
    engine_backend: Option<Arc<EngineBackend>>,
    loops: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts `workers` readiness event loops (0 = one per core) over
    /// a single hot-swappable engine. Metrics and events go to a fresh
    /// private [`Obs`] reachable through [`ServerHandle::obs`].
    pub fn start(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        workers: usize,
    ) -> std::io::Result<ServerHandle> {
        Self::start_obs(addr, engine, workers, Arc::new(Obs::new()))
    }

    /// [`ServerHandle::start`] with a caller-provided observability
    /// context (to share one `METRICS` document with other components,
    /// or to let a test account for traffic exactly). The engine gets
    /// dispatch-outcome counters registered in `obs` attached — to a
    /// private clone, so the caller's `engine` is not mutated.
    pub fn start_obs(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        workers: usize,
        obs: Arc<Obs>,
    ) -> std::io::Result<ServerHandle> {
        let engine_obs = EngineObs::register(obs.registry());
        let mut counted = (*engine).clone();
        counted.attach_obs(engine_obs.clone());
        let backend =
            Arc::new(EngineBackend::with_engine_obs(Arc::new(counted), engine_obs));
        Self::start_inner(addr, backend.clone(), Some(backend), workers, obs)
    }

    /// Like [`ServerHandle::start`], but over a caller-provided backend
    /// (e.g. the cluster router). [`ServerHandle::install`] is not
    /// available on such a server — reloads go through
    /// [`Backend::reload`].
    pub fn start_with_backend(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        workers: usize,
    ) -> std::io::Result<ServerHandle> {
        Self::start_inner(addr, backend, None, workers, Arc::new(Obs::new()))
    }

    /// [`ServerHandle::start_with_backend`] with a caller-provided
    /// observability context. Pass the same `Arc<Obs>` the backend
    /// registered its own metrics in (as the cluster router does) and
    /// `METRICS` reports both layers in one document.
    pub fn start_with_backend_obs(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        workers: usize,
        obs: Arc<Obs>,
    ) -> std::io::Result<ServerHandle> {
        Self::start_inner(addr, backend, None, workers, obs)
    }

    fn start_inner(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        engine_backend: Option<Arc<EngineBackend>>,
        workers: usize,
        obs: Arc<Obs>,
    ) -> std::io::Result<ServerHandle> {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            workers
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(backend, obs));

        // Every loop gets a dup of the listener fd (accept is atomic
        // across dups — a wakeup lost to a sibling resolves as
        // `WouldBlock`) and a wake eventfd registered with `Shared` so
        // shutdown can interrupt its `epoll_wait`.
        let mut loop_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let listener = listener.try_clone()?;
            let wake = Arc::new(EventFd::new()?);
            shared.wakes.lock().expect("wake list poisoned").push(Arc::clone(&wake));
            let shared = Arc::clone(&shared);
            loop_handles.push(std::thread::spawn(move || event_loop(&listener, &wake, &shared)));
        }

        // The watcher thread: drives the sampling profiler over the
        // event loops' phase cells and, every SLO_TICK_ROUNDS rounds,
        // snapshots the registry into the SLO engine's burn-rate
        // history. It polls the shutdown flag each round, so it joins
        // within one sample interval of shutdown.
        {
            let shared = Arc::clone(&shared);
            loop_handles.push(std::thread::spawn(move || {
                let mut rounds = 0u64;
                while !shared.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(PROFILE_INTERVAL);
                    shared.obs.profiler().sample_once();
                    rounds += 1;
                    if rounds % SLO_TICK_ROUNDS == 0 {
                        let now = shared.obs.spans().now_ns();
                        shared.obs.slo().tick(slo::snapshot_registry(shared.obs.registry(), now));
                    }
                }
            }));
        }

        Ok(ServerHandle { addr, shared, engine_backend, loops: loop_handles })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The observability context the server records into (what
    /// `METRICS` renders and `EVENTS` dumps).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.shared.obs
    }

    /// Atomically installs a new engine. Requests already dispatched
    /// finish on the old generation; every later request sees the new
    /// one. Per-suffix counters restart; lifetime totals continue.
    ///
    /// # Panics
    ///
    /// If the server was started with [`ServerHandle::start_with_backend`]
    /// — custom backends reload through [`Backend::reload`].
    pub fn install(&self, engine: Arc<Engine>) {
        self.engine_backend
            .as_ref()
            .expect("install() requires the single-engine backend")
            .install(engine);
    }

    /// Snapshots the lifetime totals and the backend's per-suffix
    /// counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.shared.totals.hits.load(Ordering::Relaxed),
            misses: self.shared.totals.misses.load(Ordering::Relaxed),
            errors: self.shared.totals.errors.load(Ordering::Relaxed),
            conns: self.shared.totals.conns.load(Ordering::Relaxed),
            per_suffix: self.shared.backend.per_suffix(),
        }
    }

    /// True once a shutdown has been requested (e.g. by a client's
    /// `SHUTDOWN` command).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested (a client's `SHUTDOWN`
    /// command, or [`ServerHandle::shutdown`] called from another
    /// thread on a clone of the shared state), then drains and joins
    /// every thread.
    pub fn join(mut self) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(IDLE_POLL);
        }
        self.join_inner();
    }

    /// Requests a graceful stop and waits: requests already received
    /// are answered, pending responses flush (within a grace period),
    /// and all loops join.
    pub fn shutdown(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.shared.request_shutdown();
        for l in self.loops.drain(..) {
            let _ = l.join();
        }
    }
}

/// Token reported for the shared listener in every loop's epoll.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token reported for a loop's wake eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// How often a loop sweeps its connections for [`IDLE_DISCONNECT`].
const SWEEP_EVERY: Duration = Duration::from_secs(1);

/// Reads per readable event before yielding back to the loop, so one
/// fast client cannot starve its loop's other connections (the
/// level-triggered registration re-reports whatever remains).
const READS_PER_EVENT: usize = 4;

/// An in-progress `BATCH <n>`: collected hostnames until `expected`.
struct BatchState {
    expected: usize,
    hosts: Vec<String>,
}

/// One connection's state on its event loop.
struct Conn {
    stream: TcpStream,
    /// Peer is loopback: admin verbs honoured (module docs).
    admin: bool,
    /// Received-but-unframed bytes (at most one partial line after a
    /// drain).
    buf: Vec<u8>,
    /// Coalesced responses not yet written, from `out_pos` on.
    out: Vec<u8>,
    out_pos: usize,
    last_request: Instant,
    /// Close once `out` drains; no further reads.
    closing: bool,
    /// Peer closed its write half (EOF seen).
    eof: bool,
    /// Interest mask currently armed in the epoll.
    interest: u32,
    batch: Option<BatchState>,
}

impl Conn {
    fn new(stream: TcpStream, admin: bool) -> Conn {
        Conn {
            stream,
            admin,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            last_request: Instant::now(),
            closing: false,
            eof: false,
            interest: EPOLLIN | EPOLLRDHUP,
            batch: None,
        }
    }

    fn out_flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    /// Reacts to one readiness report. Returns `false` when the
    /// connection must close now (error, or done and fully flushed).
    fn handle_event(&mut self, readiness: u32, shared: &Shared, phase: &PhaseCell) -> bool {
        if readiness & EPOLLERR != 0 {
            return false;
        }
        if readiness & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 && !self.closing && !self.eof {
            if !self.read_ready(shared, phase) {
                return false;
            }
        }
        if !self.out_flushed() {
            phase.set(Phase::Flush);
            if self.flush().is_err() {
                return false;
            }
        }
        // A finished connection lingers only while a response drains.
        !((self.closing || self.eof) && self.out_flushed())
    }

    /// Reads available bytes (bounded per event), frames and serves
    /// every complete line, and handles EOF. Returns `false` on a
    /// protocol or I/O error that must drop the connection.
    fn read_ready(&mut self, shared: &Shared, phase: &PhaseCell) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        phase.set(Phase::Read);
        for _ in 0..READS_PER_EVENT {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if !self.drain_lines(shared, phase) {
            return false;
        }
        if self.eof {
            // Serve a final unterminated line by completing its frame —
            // this also lets it finish an in-progress batch.
            if !self.buf.is_empty() {
                self.buf.push(b'\n');
                if !self.drain_lines(shared, phase) {
                    return false;
                }
            }
            if self.batch.take().is_some() {
                shared.count_error();
                shared.metrics.batch_err.inc();
                self.out.extend_from_slice(b"err\tbatch truncated by eof\n");
            }
            self.closing = true;
        }
        true
    }

    /// Frames and serves every complete line in `buf`, enforcing
    /// [`MAX_LINE`] against each line *before* serving it and against
    /// the residual partial line after the drain. All responses are
    /// coalesced into `out`; the caller flushes once.
    fn drain_lines(&mut self, shared: &Shared, phase: &PhaseCell) -> bool {
        // The buffer is taken out of `self` so served line slices and
        // `self.out` can be borrowed simultaneously.
        let mut buf = std::mem::take(&mut self.buf);
        let mut start = 0usize;
        while let Some(rel) = buf[start..].iter().position(|&b| b == b'\n') {
            phase.set(Phase::Parse);
            let end = start + rel;
            let line = &buf[start..end];
            start = end + 1;
            if line.len() > MAX_LINE {
                // The framing bug this rewrite fixes: the cap must bind
                // even when the newline arrives in the same read chunk
                // that pushed the buffer past it.
                shared.count_error();
                return false;
            }
            self.last_request = Instant::now();
            let Ok(text) = std::str::from_utf8(line) else {
                // Non-UTF-8 input: count it and drop the connection (we
                // cannot resynchronise a stream we cannot decode).
                shared.count_error();
                return false;
            };
            self.serve_text(text, shared, phase);
            if self.out.len() - self.out_pos > MAX_PENDING_OUT {
                // The peer pipelines requests but is not draining the
                // responses; cut it off before it balloons memory.
                shared.count_error();
                return false;
            }
        }
        if buf.len() - start > MAX_LINE {
            shared.count_error();
            return false;
        }
        buf.drain(..start);
        self.buf = buf;
        true
    }

    /// Routes one framed line: a batch item, a `BATCH` header, or an
    /// ordinary request.
    fn serve_text(&mut self, text: &str, shared: &Shared, phase: &PhaseCell) {
        if let Some(b) = self.batch.as_mut() {
            b.hosts.push(text.trim().to_string());
            if b.hosts.len() == b.expected {
                let b = self.batch.take().expect("batch state just observed");
                serve_batch(&b.hosts, &mut self.out, shared, phase);
            }
            return;
        }
        let request = text.trim();
        if request == "BATCH" || request.starts_with("BATCH ") {
            self.serve_batch_header(request, shared);
            return;
        }
        serve_line(text, self.admin, &mut self.out, shared, phase);
    }

    /// Parses a `BATCH <n>` header: arms collection, or answers the
    /// degenerate/invalid forms immediately. Needs no admin privilege —
    /// batch lines are strictly hostname queries, so a batch can smuggle
    /// no verb.
    fn serve_batch_header(&mut self, request: &str, shared: &Shared) {
        let t0 = Instant::now();
        let arg = request.strip_prefix("BATCH").unwrap_or_default().trim();
        let response = match arg.parse::<usize>() {
            Ok(0) => Some("ok\tbatch\t0\n".to_string()),
            Ok(n) if n <= MAX_BATCH => {
                self.batch = Some(BatchState { expected: n, hosts: Vec::with_capacity(n) });
                None
            }
            Ok(n) => {
                shared.count_error();
                Some(format!("err\tBATCH count {n} exceeds the cap of {MAX_BATCH}\n"))
            }
            Err(_) => {
                shared.count_error();
                Some(format!("err\tBATCH takes a hostname count, got {arg:?}\n"))
            }
        };
        if let Some(resp) = response {
            shared.metrics.latency.observe(t0.elapsed().as_nanos() as u64);
            if resp.starts_with("err\t") {
                shared.metrics.batch_err.inc();
            } else {
                shared.metrics.batch_ok.inc();
            }
            self.out.extend_from_slice(resp.as_bytes());
        }
    }

    /// Writes as much pending output as the socket accepts.
    fn flush(&mut self) -> std::io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_flushed() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(())
    }

    /// Re-arms epoll interest to match the connection's state: readable
    /// while the request side is open, writable only while responses
    /// remain unflushed. No-op (no syscall) when nothing changed.
    fn rearm(&mut self, epoll: &Epoll, token: u64) -> std::io::Result<()> {
        let mut want = 0u32;
        if !self.closing && !self.eof {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if !self.out_flushed() {
            want |= EPOLLOUT;
        }
        if want != self.interest {
            epoll.modify(self.stream.as_raw_fd(), want, token)?;
            self.interest = want;
        }
        Ok(())
    }
}

/// One readiness event loop: accepts from the shared listener, serves
/// its own connections, and drains gracefully on shutdown.
fn event_loop(listener: &TcpListener, wake: &EventFd, shared: &Shared) {
    // This loop's phase marker: one relaxed byte store per transition,
    // sampled asynchronously by the watcher thread (DESIGN §7i).
    let phase = shared.obs.profiler().register();
    let Ok(epoll) = Epoll::new() else { return };
    if epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER).is_err()
        || epoll.add(wake.fd(), EPOLLIN, TOKEN_WAKE).is_err()
    {
        return;
    }
    // Connection slab: the epoll token is the slot index. Freed slots
    // are reused only after the event batch that freed them, so a stale
    // event can never reach a different connection.
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = vec![EpollEvent::EMPTY; EVENT_BATCH];
    let mut last_sweep = Instant::now();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        phase.set(Phase::Idle);
        let n = match epoll.wait(&mut events, IDLE_POLL.as_millis() as i32) {
            Ok(n) => n,
            Err(_) => return,
        };
        let mut freed: Vec<usize> = Vec::new();
        for ev in &events[..n] {
            match ev.token() {
                TOKEN_LISTENER => {
                    if drain_deadline.is_none() {
                        phase.set(Phase::Accept);
                        accept_ready(listener, &epoll, &mut conns, &mut free, shared);
                        phase.set(Phase::Idle);
                    }
                }
                TOKEN_WAKE => wake.drain(),
                token => {
                    let slot = token as usize;
                    // Stale event for a slot freed earlier in this batch.
                    let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                        continue;
                    };
                    let keep = conn.handle_event(ev.readiness(), shared, &phase)
                        && conn.rearm(&epoll, token).is_ok();
                    if !keep {
                        close_slot(&epoll, &mut conns, slot);
                        freed.push(slot);
                    }
                }
            }
        }
        free.extend(freed);

        if shared.shutdown.load(Ordering::SeqCst) {
            if drain_deadline.is_none() {
                // Entering drain mode: stop accepting, stop reading, and
                // keep only connections with responses still in flight.
                drain_deadline = Some(Instant::now() + SHUTDOWN_GRACE);
                let _ = epoll.delete(listener.as_raw_fd());
                for slot in 0..conns.len() {
                    let Some(conn) = conns[slot].as_mut() else { continue };
                    conn.closing = true;
                    let gone = conn.flush().is_err() || conn.out_flushed();
                    if gone {
                        close_slot(&epoll, &mut conns, slot);
                        free.push(slot);
                    } else {
                        let _ = conn.rearm(&epoll, slot as u64);
                    }
                }
            }
            let deadline = drain_deadline.expect("set above");
            if conns.iter().all(Option::is_none) || Instant::now() >= deadline {
                return;
            }
            continue;
        }

        if last_sweep.elapsed() >= SWEEP_EVERY {
            last_sweep = Instant::now();
            for slot in 0..conns.len() {
                let idle = conns[slot]
                    .as_ref()
                    .is_some_and(|c| c.last_request.elapsed() >= IDLE_DISCONNECT);
                if idle {
                    close_slot(&epoll, &mut conns, slot);
                    free.push(slot);
                }
            }
        }
    }
}

/// Drops the connection in `slot` (closing its socket, which also
/// removes it from the epoll; the explicit delete keeps the interest
/// table exact even with the fd dup'd elsewhere).
fn close_slot(epoll: &Epoll, conns: &mut [Option<Conn>], slot: usize) {
    if let Some(conn) = conns[slot].take() {
        let _ = epoll.delete(conn.stream.as_raw_fd());
    }
}

/// Accepts until `WouldBlock`, registering each connection in this
/// loop's epoll. Sibling loops share the listener; a wakeup raced away
/// by another loop simply accepts nothing here.
fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    shared: &Shared,
) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                shared.totals.conns.fetch_add(1, Ordering::Relaxed);
                shared.metrics.connections.inc();
                let conn = Conn::new(stream, peer.ip().is_loopback());
                let slot = free.pop().unwrap_or_else(|| {
                    conns.push(None);
                    conns.len() - 1
                });
                if epoll.add(conn.stream.as_raw_fd(), conn.interest, slot as u64).is_ok() {
                    conns[slot] = Some(conn);
                } else {
                    free.push(slot);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Serves one framed request line into `out`.
///
/// This is where per-request observability happens: every request is
/// timed into the latency histogram, non-query verbs are counted by
/// verb and ok/err outcome (queries count themselves by hit/miss
/// inside [`respond`], where the answer is known), and anything slower
/// than the configured threshold lands in the event log with its
/// request line. The counting runs *after* `respond`, so a `METRICS`
/// response reflects the traffic before the request itself.
fn serve_line(text: &str, admin: bool, out: &mut Vec<u8>, shared: &Shared, phase: &PhaseCell) {
    let request = text.trim();
    if request.is_empty() {
        return;
    }
    let t0 = Instant::now();
    let verb = verb_of(request);
    let ctx = trace_ctx(shared);
    let response = {
        // The request's root span: the whole server-side handling,
        // closed (and recorded) before the accounting below so a
        // TRACES dump in a later pipelined request sees it complete.
        let mut root = ctx.span(Layer::Server);
        root.detail(detail::code(verb).unwrap_or(detail::OTHER));
        phase.set(Phase::Backend);
        let r = respond(request, admin, shared, &ctx);
        phase.set(Phase::Write);
        r
    };
    let dur_ns = t0.elapsed().as_nanos() as u64;
    shared.metrics.latency.observe(dur_ns);
    if verb != "query" {
        let outcome = if response.starts_with("err\t") { "err" } else { "ok" };
        shared
            .obs
            .registry()
            .counter("hoiho_requests_total", &[("verb", verb), ("outcome", outcome)])
            .inc();
    }
    if dur_ns >= shared.obs.slow_threshold_ns() {
        shared.obs.events().record(
            "slow_query",
            &[("verb", verb), ("request", request), ("dur_ns", &dur_ns.to_string())],
        );
    }
    out.extend_from_slice(response.as_bytes());
}

/// Executes a completed `BATCH`: answers every collected hostname in
/// order, rendering straight into the connection's output buffer.
///
/// Accounting: each item counts into the query hit/miss totals (bulk
/// adds — exact, just cheaper), the batch itself counts once under
/// `verb="batch"`, and the latency histogram observes the batch once.
/// All of it is observed *before* the response is rendered into `out`
/// — the same compute → count → write order as [`serve_line`] — so the
/// registry is never caught mid-batch: by the time any later pipelined
/// `METRICS` runs, the batch is either fully counted or not started.
fn serve_batch(hosts: &[String], out: &mut Vec<u8>, shared: &Shared, phase: &PhaseCell) {
    let t0 = Instant::now();
    let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
    let ctx = trace_ctx(shared);
    let answers = {
        let mut root = ctx.span(Layer::Server);
        root.detail(detail::BATCH);
        phase.set(Phase::Backend);
        shared.backend.query_batch(&refs, &ctx)
    };
    phase.set(Phase::Write);
    debug_assert_eq!(answers.len(), hosts.len(), "backend must answer every batch item");
    let mut hits = 0u64;
    for a in &answers {
        hits += u64::from(a.asn.is_some());
    }
    let misses = hosts.len() as u64 - hits;
    shared.totals.hits.fetch_add(hits, Ordering::Relaxed);
    shared.totals.misses.fetch_add(misses, Ordering::Relaxed);
    shared.metrics.query_hit.add(hits);
    shared.metrics.query_miss.add(misses);
    let dur_ns = t0.elapsed().as_nanos() as u64;
    shared.metrics.latency.observe(dur_ns);
    shared.metrics.batch_ok.inc();
    if dur_ns >= shared.obs.slow_threshold_ns() {
        shared.obs.events().record(
            "slow_query",
            &[
                ("verb", "batch"),
                ("items", &hosts.len().to_string()),
                ("dur_ns", &dur_ns.to_string()),
            ],
        );
    }
    // ~48 bytes per answer line in practice; one reservation, no
    // per-answer allocations.
    out.reserve(hosts.len() * 48 + 16);
    out.extend_from_slice(b"ok\tbatch\t");
    out.extend_from_slice(hosts.len().to_string().as_bytes());
    out.push(b'\n');
    for (h, a) in hosts.iter().zip(&answers) {
        a.render_line_into(h, out);
    }
}

/// Refusal sent to non-loopback peers issuing admin verbs.
const ERR_NOT_ADMIN: &str = "err\tadmin commands require a loopback peer\n";

/// Computes the response (including trailing newline) for one request.
/// `admin` is true when the peer may issue `RELOAD`/`SHUTDOWN` (and
/// the other loopback-gated verbs: `EVENTS`, `TRACES`).
fn respond(request: &str, admin: bool, shared: &Shared, ctx: &TraceCtx) -> String {
    match request {
        "STATS" => {
            let t = &shared.totals;
            format!(
                "stats\thits={}\tmisses={}\terrors={}\tconns={}\tmodel={}\n",
                t.hits.load(Ordering::Relaxed),
                t.misses.load(Ordering::Relaxed),
                t.errors.load(Ordering::Relaxed),
                t.conns.load(Ordering::Relaxed),
                shared.backend.model_len(),
            )
        }
        "STATS SUFFIX" => {
            let mut out = String::new();
            for (suffix, n) in shared.backend.per_suffix() {
                out.push_str(&format!("{suffix}\t{n}\n"));
            }
            out.push_str(".\n");
            out
        }
        "STATS CLUSTER" => match shared.backend.cluster_stats() {
            Some(body) => body,
            None => {
                shared.count_error();
                "err\tnot a cluster backend\n".to_string()
            }
        },
        "METRICS" => {
            let mut out = shared.obs.registry().render();
            out.push_str(".\n");
            out
        }
        "PROFILE" => {
            // The profiler's phase buckets, plus per-layer span
            // self-time attributed from whatever the span ring holds.
            let mut out = shared.obs.profiler().render();
            let spans = shared.obs.spans().dump(usize::MAX);
            out.push_str("# TYPE hoiho_span_self_time_ns gauge\n");
            for (layer, ns) in span::self_time_by_layer(&spans) {
                out.push_str(&format!(
                    "hoiho_span_self_time_ns{{layer=\"{}\"}} {ns}\n",
                    layer.name()
                ));
            }
            out.push_str(".\n");
            out
        }
        "SLO" => {
            let snap =
                slo::snapshot_registry(shared.obs.registry(), shared.obs.spans().now_ns());
            let statuses = shared.obs.slo().report(&snap);
            let mut out = slo::render_statuses(&statuses);
            out.push_str(".\n");
            out
        }
        "SHUTDOWN" => {
            if !admin {
                return refuse_admin("shutdown", shared);
            }
            shared.request_shutdown();
            "ok\tbye\n".to_string()
        }
        _ if request == "EVENTS" || request.starts_with("EVENTS ") => {
            if !admin {
                return refuse_admin("events", shared);
            }
            let n = match request.strip_prefix("EVENTS").map(str::trim) {
                Some("") => usize::MAX,
                Some(arg) => match arg.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        shared.count_error();
                        return format!("err\tEVENTS takes a count, got {arg:?}\n");
                    }
                },
                None => unreachable!("guarded by the match arm"),
            };
            let mut out = shared.obs.events().render_jsonl(n);
            out.push_str(".\n");
            out
        }
        _ if request == "TRACES" || request.starts_with("TRACES ") => {
            // Loopback-gated like EVENTS: span dumps carry request
            // shapes and timings, which an arbitrary peer has no
            // business reading.
            if !admin {
                return refuse_admin("traces", shared);
            }
            let n = match request.strip_prefix("TRACES").map(str::trim) {
                Some("") => usize::MAX,
                Some(arg) => match arg.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        shared.count_error();
                        return format!("err\tTRACES takes a count, got {arg:?}\n");
                    }
                },
                None => unreachable!("guarded by the match arm"),
            };
            let mut out = shared.obs.spans().render_jsonl(n);
            out.push_str(".\n");
            out
        }
        _ if request.starts_with("RELOAD ") => {
            if !admin {
                return refuse_admin("reload", shared);
            }
            let args = &request["RELOAD ".len()..];
            match shared.backend.reload(args) {
                Ok(msg) => {
                    shared
                        .obs
                        .events()
                        .record("reload", &[("args", args.trim()), ("result", &msg)]);
                    format!("ok\t{msg}\n")
                }
                Err(e) => {
                    shared.count_error();
                    shared
                        .obs
                        .events()
                        .record("reload_failed", &[("args", args.trim()), ("error", &e)]);
                    format!("err\t{e}\n")
                }
            }
        }
        hostname => {
            let answer = shared.backend.query(hostname, ctx);
            match answer.asn {
                Some(_) => {
                    shared.totals.hits.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.query_hit.inc();
                }
                None => {
                    shared.totals.misses.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.query_miss.inc();
                }
            };
            format!("{hostname}\t{}\n", answer.render_fields())
        }
    }
}

/// Counts and logs a refused admin verb, returning the refusal line.
fn refuse_admin(verb: &str, shared: &Shared) -> String {
    shared.count_error();
    shared.obs.events().record("admin_refused", &[("verb", verb)]);
    ERR_NOT_ADMIN.to_string()
}

/// The client's transport: a plain socket, or one wrapped in the
/// seeded fault injector ([`crate::chaos::ChaosConn`]).
enum ClientStream {
    Plain(TcpStream),
    Chaos(crate::chaos::ChaosConn),
}

impl ClientStream {
    fn try_clone(&self) -> std::io::Result<ClientStream> {
        Ok(match self {
            ClientStream::Plain(s) => ClientStream::Plain(s.try_clone()?),
            ClientStream::Chaos(c) => ClientStream::Chaos(c.try_clone()?),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            ClientStream::Plain(s) => s.set_read_timeout(dur),
            ClientStream::Chaos(c) => c.set_read_timeout(dur),
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Plain(s) => s.read(buf),
            ClientStream::Chaos(c) => c.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Plain(s) => s.write(buf),
            ClientStream::Chaos(c) => c.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Plain(s) => s.flush(),
            ClientStream::Chaos(c) => c.flush(),
        }
    }
}

/// A minimal blocking client for the line protocol — used by the
/// `query`/`loadgen` subcommands, the benches, and the smoke tests.
///
/// Every connection carries a read (and connect) timeout — default
/// [`Client::DEFAULT_TIMEOUT`] — so a stalled or chaos-wrapped server
/// can never hang a caller forever: a response that does not arrive in
/// time surfaces as an `io::Error` (`WouldBlock`/`TimedOut`), which
/// `loadgen` counts into its error rate.
pub struct Client {
    reader: BufReader<ClientStream>,
    writer: ClientStream,
}

impl Client {
    /// Default connect/read timeout for [`Client::connect`].
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// Connects to a running server with the default timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Self::connect_opts(addr, Some(Self::DEFAULT_TIMEOUT), None)
    }

    /// Connects with an explicit connect/read timeout (`None` = block
    /// forever) and optional fault injection: with a
    /// [`crate::chaos::ChaosConfig`], all traffic flows through a
    /// [`crate::chaos::ChaosConn`] seeded from the config.
    pub fn connect_opts(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
        chaos: Option<crate::chaos::ChaosConfig>,
    ) -> std::io::Result<Client> {
        let stream = match timeout {
            Some(t) => {
                // connect_timeout needs a resolved address; try each in
                // turn like TcpStream::connect does.
                let mut last = None;
                let mut conn = None;
                for a in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&a, t) {
                        Ok(s) => {
                            conn = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                conn.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to nothing",
                        )
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        let stream = match chaos {
            Some(cfg) => ClientStream::Chaos(crate::chaos::ChaosConn::new(stream, cfg)),
            None => ClientStream::Plain(stream),
        };
        stream.set_read_timeout(timeout)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Changes the read timeout on an open connection (`None` = block
    /// forever).
    pub fn set_timeout(&mut self, dur: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(dur)
    }

    /// Sends one request line and reads one response line (trimmed).
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut resp = String::new();
        if self.reader.read_line(&mut resp)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }

    /// Queries one hostname; returns the extracted ASN, if any.
    pub fn query(&mut self, hostname: &str) -> std::io::Result<Option<u32>> {
        let resp = self.request(hostname)?;
        let mut fields = resp.split('\t');
        let (_echo, asn) = (fields.next(), fields.next());
        Ok(asn.and_then(|a| a.parse::<u32>().ok()))
    }

    /// Sends one `BATCH` request for `hostnames` and returns the answer
    /// lines (one per hostname, in order, `\t`-separated fields, no
    /// echo-line framing beyond the hostname itself).
    pub fn batch<S: AsRef<str>>(&mut self, hostnames: &[S]) -> std::io::Result<Vec<String>> {
        let mut req = String::with_capacity(16 + hostnames.len() * 32);
        req.push_str("BATCH ");
        req.push_str(&hostnames.len().to_string());
        req.push('\n');
        for h in hostnames {
            req.push_str(h.as_ref());
            req.push('\n');
        }
        self.writer.write_all(req.as_bytes())?;
        let mut header = String::new();
        if self.reader.read_line(&mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before the batch header",
            ));
        }
        let header = header.trim_end();
        let n: usize = match header.strip_prefix("ok\tbatch\t").map(str::parse) {
            Some(Ok(n)) => n,
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected batch header: {header:?}"),
                ))
            }
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-batch",
                ));
            }
            out.push(line.trim_end().to_string());
        }
        Ok(out)
    }

    /// Reads the remaining lines of a multi-line response (after
    /// `STATS SUFFIX`) up to and excluding the `.` terminator.
    pub fn read_until_dot(&mut self) -> std::io::Result<Vec<String>> {
        let mut out = Vec::new();
        loop {
            let mut l = String::new();
            if self.reader.read_line(&mut l)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            let l = l.trim_end();
            if l == "." {
                return Ok(out);
            }
            out.push(l.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EvalCounts, Model, ModelEntry};
    use hoiho::classify::NcClass;
    use hoiho::regex::Regex;
    use hoiho::taxonomy::Taxonomy;

    fn model(suffix: &str, rx: &str) -> Model {
        Model {
            entries: vec![ModelEntry {
                suffix: suffix.to_string(),
                class: NcClass::Good,
                single: false,
                taxonomy: Taxonomy::Start,
                hostnames: 4,
                counts: EvalCounts::default(),
                regexes: vec![Regex::parse(rx).unwrap()],
            }],
        }
    }

    fn start(model: &Model, workers: usize) -> ServerHandle {
        ServerHandle::start("127.0.0.1:0", Arc::new(Engine::new(model)), workers).unwrap()
    }

    #[test]
    fn serves_queries_and_stats() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        assert_eq!(c.query("as64500.example.com").unwrap(), Some(64500));
        assert_eq!(c.query("core1.example.com").unwrap(), None);
        assert_eq!(c.query("nothing.example.org").unwrap(), None);
        let resp = c.request("as777.example.com").unwrap();
        assert_eq!(resp, "as777.example.com\t777\texample.com\tgood");
        let stats = c.request("STATS").unwrap();
        assert!(stats.starts_with("stats\thits=2\tmisses=2\t"), "{stats}");
        assert!(stats.contains("model=1"), "{stats}");
        let s = srv.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        assert_eq!(s.per_suffix, vec![("example.com".to_string(), 3)]);
        drop(c);
        srv.shutdown();
    }

    #[test]
    fn concurrent_clients_all_served() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 4);
        let addr = srv.local_addr();
        std::thread::scope(|scope| {
            for t in 0..8 {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for i in 0..50u32 {
                        let asn = 64000 + t * 100 + i;
                        assert_eq!(
                            c.query(&format!("as{asn}.example.com")).unwrap(),
                            Some(asn)
                        );
                    }
                });
            }
        });
        let s = srv.stats();
        assert_eq!(s.hits, 8 * 50);
        assert_eq!(s.conns, 8);
        srv.shutdown();
    }

    #[test]
    fn hot_reload_swaps_without_dropping_connections() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        assert_eq!(c.query("as1.example.com").unwrap(), Some(1));
        assert_eq!(c.query("r2.other.net").unwrap(), None);
        // Install a different model; the same connection sees it.
        srv.install(Arc::new(Engine::new(&model("other.net", r"^r(\d+)\.other\.net$"))));
        assert_eq!(c.query("as1.example.com").unwrap(), None);
        assert_eq!(c.query("r2.other.net").unwrap(), Some(2));
        // Per-suffix counters restarted with the new generation.
        let s = srv.stats();
        assert_eq!(s.per_suffix, vec![("other.net".to_string(), 1)]);
        assert_eq!(s.hits, 2);
        srv.shutdown();
    }

    #[test]
    fn reload_command_over_tcp() {
        let dir = std::env::temp_dir().join(format!("hoiho-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reload.model");
        model("other.net", r"^r(\d+)\.other\.net$").save(&path).unwrap();

        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        // A failed reload keeps the old model serving and counts an error.
        let resp = c.request("RELOAD /no/such/file").unwrap();
        assert!(resp.starts_with("err\t"), "{resp}");
        assert_eq!(c.query("as5.example.com").unwrap(), Some(5));
        let resp = c.request(&format!("RELOAD {}", path.display())).unwrap();
        assert_eq!(resp, "ok\treloaded\t1");
        assert_eq!(c.query("r7.other.net").unwrap(), Some(7));
        assert_eq!(srv.stats().errors, 1);
        srv.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let addr = srv.local_addr();
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.request("SHUTDOWN").unwrap(), "ok\tbye");
        srv.join();
        // The listener is gone: either the connect fails or the
        // accepted socket is never served.
        match Client::connect(addr) {
            Err(_) => {}
            Ok(mut c2) => assert!(c2.request("as1.example.com").is_err()),
        }
    }

    #[test]
    fn join_waits_for_client_shutdown() {
        // Regression: join() must wait for a shutdown request, not
        // issue one — a server blocked in join() keeps serving.
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let addr = srv.local_addr();
        let joiner = std::thread::spawn(move || srv.join());
        let mut c = Client::connect(addr).unwrap();
        for _ in 0..5 {
            assert_eq!(c.query("as64500.example.com").unwrap(), Some(64500));
            std::thread::sleep(IDLE_POLL / 2);
        }
        assert_eq!(c.request("SHUTDOWN").unwrap(), "ok\tbye");
        joiner.join().unwrap();
    }

    #[test]
    fn partial_request_straddling_idle_poll_is_not_truncated() {
        // Regression: a request line arriving in fragments across the
        // worker's 100ms read-timeout polls must be answered whole —
        // the old BufReader::read_line framing dropped the bytes read
        // before the timeout.
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"as64500.exam").unwrap();
        std::thread::sleep(IDLE_POLL * 3); // several server-side timeouts fire
        s.write_all(b"ple.com\n").unwrap();
        let mut resp = String::new();
        BufReader::new(s).read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "as64500.example.com\t64500\texample.com\tgood");
        srv.shutdown();
    }

    #[test]
    fn pipelined_requests_in_one_segment_all_answered() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"as1.example.com\nas2.example.com\n").unwrap();
        let mut r = BufReader::new(s);
        let mut resp = String::new();
        r.read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "as1.example.com\t1\texample.com\tgood");
        resp.clear();
        r.read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "as2.example.com\t2\texample.com\tgood");
        srv.shutdown();
    }

    #[test]
    fn unterminated_final_line_is_served_on_eof() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"as7.example.com").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        BufReader::new(s).read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "as7.example.com\t7\texample.com\tgood");
        srv.shutdown();
    }

    #[test]
    fn admin_verbs_refused_for_non_loopback_peers() {
        let m = model("example.com", r"^as(\d+)\.example\.com$");
        let shared = Shared::new(
            Arc::new(EngineBackend::new(Arc::new(Engine::new(&m)))),
            Arc::new(Obs::new()),
        );
        let off = TraceCtx::off();
        assert_eq!(respond("SHUTDOWN", false, &shared, &off), ERR_NOT_ADMIN);
        assert!(!shared.shutdown.load(Ordering::SeqCst), "non-admin SHUTDOWN must not stop the server");
        assert_eq!(respond("RELOAD /etc/passwd", false, &shared, &off), ERR_NOT_ADMIN);
        assert_eq!(respond("EVENTS 5", false, &shared, &off), ERR_NOT_ADMIN);
        assert_eq!(respond("TRACES 5", false, &shared, &off), ERR_NOT_ADMIN);
        assert_eq!(shared.totals.errors.load(Ordering::Relaxed), 4);
        // Each refusal was recorded as an event.
        let refusals = shared.obs.events().tail(10);
        assert_eq!(refusals.len(), 4);
        assert!(refusals.iter().all(|e| e.kind == "admin_refused"));
        // Plain queries are served regardless of peer.
        let resp = respond("as9.example.com", false, &shared, &off);
        assert_eq!(resp, "as9.example.com\t9\texample.com\tgood\n");
    }

    #[test]
    fn metrics_verb_renders_exposition_over_tcp() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        assert_eq!(c.query("as1.example.com").unwrap(), Some(1));
        assert_eq!(c.query("as2.example.com").unwrap(), Some(2));
        assert_eq!(c.query("nothing.example.org").unwrap(), None);
        let first = c.request("METRICS").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        let text = lines.join("\n");
        assert!(
            text.contains("hoiho_requests_total{outcome=\"hit\",verb=\"query\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("hoiho_requests_total{outcome=\"miss\",verb=\"query\"} 1"),
            "{text}"
        );
        assert!(text.contains("hoiho_connections_total 1"), "{text}");
        assert!(text.contains("hoiho_request_latency_ns_count 3"), "{text}");
        assert!(
            text.contains("hoiho_engine_extractions_total{dispatch=\"exact\"} 2"),
            "{text}"
        );
        // A second METRICS shows the first (counted after rendering).
        let first = c.request("METRICS").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        let text = lines.join("\n");
        assert!(
            text.contains("hoiho_requests_total{outcome=\"ok\",verb=\"metrics\"} 1"),
            "{text}"
        );
        srv.shutdown();
    }

    #[test]
    fn events_verb_dumps_ring_tail() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        // Everything is a "slow query" at a zero threshold.
        srv.obs().set_slow_threshold(Duration::from_nanos(0));
        let mut c = Client::connect(srv.local_addr()).unwrap();
        c.query("as1.example.com").unwrap();
        c.query("as2.example.com").unwrap();
        let first = c.request("EVENTS 1").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("\"kind\":\"slow_query\""), "{}", lines[0]);
        assert!(lines[0].contains("\"request\":\"as2.example.com\""), "{}", lines[0]);
        // Bare EVENTS dumps the whole ring (two queries + the first
        // EVENTS, which was itself slow at threshold zero).
        let first = c.request("EVENTS").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        assert_eq!(lines.len(), 3, "{lines:?}");
        // Malformed count is an error.
        let resp = c.request("EVENTS many").unwrap();
        assert!(resp.starts_with("err\t"), "{resp}");
        srv.shutdown();
    }

    #[test]
    fn oversized_line_is_rejected_even_with_its_newline_buffered() {
        // Regression: the MAX_LINE cap must bind on the *line*, not on
        // the residual bytes left after draining. A line in
        // (MAX_LINE, MAX_LINE + 4096] whose newline arrives in the same
        // read chunk that pushed the buffer past the cap was served by
        // the old framing loop (the residual check never saw it).
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        let mut line = vec![b'a'; MAX_LINE + 1000];
        line.push(b'\n');
        // The server may drop the connection before the write drains.
        let _ = s.write_all(&line);
        let mut resp = String::new();
        let res = BufReader::new(s).read_line(&mut resp);
        assert!(
            matches!(res, Ok(0) | Err(_)),
            "an oversized line must close the connection unanswered, got {resp:?}"
        );
        assert!(resp.is_empty(), "{resp:?}");
        // The protocol violation is counted (poll: the close races us).
        let t0 = Instant::now();
        while srv.stats().errors == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "error never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        srv.shutdown();
    }

    #[test]
    fn pipelined_requests_around_shutdown_are_answered_before_close() {
        // Regression: a client pipelining queries with SHUTDOWN in one
        // segment must get every response; the old worker dropped
        // whatever was buffered behind the SHUTDOWN line.
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"as1.example.com\nSHUTDOWN\nas2.example.com\n").unwrap();
        let mut r = BufReader::new(s);
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut l = String::new();
            r.read_line(&mut l).unwrap();
            lines.push(l.trim_end().to_string());
        }
        assert_eq!(
            lines,
            vec![
                "as1.example.com\t1\texample.com\tgood".to_string(),
                "ok\tbye".to_string(),
                "as2.example.com\t2\texample.com\tgood".to_string(),
            ]
        );
        // Then the server closes the connection and stops.
        let mut l = String::new();
        assert_eq!(r.read_line(&mut l).unwrap(), 0, "expected EOF, got {l:?}");
        srv.join();
    }

    #[test]
    fn batch_answers_match_single_queries() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        let hosts = ["as1.example.com", "core1.example.com", "as2.example.com"];
        let singles: Vec<String> =
            hosts.iter().map(|h| c.request(h).unwrap()).collect();
        let batched = c.batch(&hosts).unwrap();
        assert_eq!(batched, singles);
        // Items count into the query totals; the batch counts once.
        let s = srv.stats();
        assert_eq!((s.hits, s.misses), (4, 2));
        let first = c.request("METRICS").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        let text = lines.join("\n");
        assert!(
            text.contains("hoiho_requests_total{outcome=\"ok\",verb=\"batch\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("hoiho_requests_total{outcome=\"hit\",verb=\"query\"} 4"),
            "{text}"
        );
        srv.shutdown();
    }

    #[test]
    fn batch_header_edge_cases() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        assert_eq!(c.request("BATCH 0").unwrap(), "ok\tbatch\t0");
        let resp = c.request("BATCH nope").unwrap();
        assert!(resp.starts_with("err\tBATCH takes a hostname count"), "{resp}");
        let resp = c.request(&format!("BATCH {}", MAX_BATCH + 1)).unwrap();
        assert!(resp.starts_with("err\tBATCH count"), "{resp}");
        // The connection survives header errors.
        assert_eq!(c.query("as3.example.com").unwrap(), Some(3));
        assert_eq!(srv.stats().errors, 2);
        srv.shutdown();
    }

    #[test]
    fn batch_truncated_by_eof_is_an_error() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"BATCH 3\nas1.example.com\n").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        BufReader::new(s).read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "err\tbatch truncated by eof");
        srv.shutdown();
    }

    #[test]
    fn events_count_edge_cases() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        srv.obs().set_slow_threshold(Duration::from_nanos(0));
        let mut c = Client::connect(srv.local_addr()).unwrap();
        c.query("as1.example.com").unwrap();
        // EVENTS 0 is a valid request for nothing: just the terminator.
        assert_eq!(c.request("EVENTS 0").unwrap(), ".");
        // An overlarge count clamps to "everything buffered" — here the
        // query plus the EVENTS 0 itself (slow at threshold zero).
        let first = c.request(&format!("EVENTS {}", u64::MAX)).unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        assert_eq!(lines.len(), 2, "{lines:?}");
        // Garbage args are protocol errors that keep the connection.
        for bad in ["EVENTS -1", "EVENTS 1 2", "EVENTS 0x10"] {
            let resp = c.request(bad).unwrap();
            assert!(resp.starts_with("err\tEVENTS takes a count"), "{bad} -> {resp}");
        }
        assert_eq!(c.query("as2.example.com").unwrap(), Some(2));
        srv.shutdown();
    }

    #[test]
    fn client_read_timeout_surfaces_instead_of_hanging() {
        // A peer that accepts but never answers must produce a timeout
        // error, not a hang.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut c = Client::connect_opts(addr, Some(Duration::from_millis(200)), None).unwrap();
        let t0 = Instant::now();
        let err = c.request("as1.example.com").unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "{err:?}"
        );
        assert!(t0.elapsed() < Duration::from_secs(5));
        drop(c);
        let _ = hold.join();
    }

    #[test]
    fn non_reading_pipeliner_is_disconnected_at_the_out_cap() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Each ~32 KiB miss echoes back at roughly the same size;
        // pipeline several times MAX_PENDING_OUT without reading a
        // byte. The server must sever the connection at the cap rather
        // than buffer it all.
        let line = format!("{}.example.org\n", "a".repeat(32 * 1024));
        for _ in 0..(3 * MAX_PENDING_OUT / line.len()) {
            if s.write_all(line.as_bytes()).is_err() {
                break; // already cut off — that's the point
            }
        }
        let mut drained = 0usize;
        let mut buf = [0u8; 64 * 1024];
        loop {
            match s.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
        assert!(
            drained < 2 * MAX_PENDING_OUT,
            "server buffered {drained} response bytes for a non-reading client"
        );
        // The violation is counted (poll: the close races us).
        let t0 = Instant::now();
        while srv.stats().errors == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "cap violation never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        srv.shutdown();
    }

    #[test]
    fn stats_suffix_lists_per_suffix_counts() {
        let mut m = model("example.com", r"^as(\d+)\.example\.com$");
        m.entries.extend(model("other.net", r"^r(\d+)\.other\.net$").entries);
        let srv = start(&m, 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        c.query("as1.example.com").unwrap();
        c.query("as2.example.com").unwrap();
        c.query("r9.other.net").unwrap();
        let first = c.request("STATS SUFFIX").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        assert_eq!(lines, vec!["example.com\t2".to_string(), "other.net\t1".to_string()]);
        srv.shutdown();
    }

    #[test]
    fn traces_verb_dumps_sampled_spans() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        srv.obs().sampler().configure(1, 42);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        assert_eq!(c.query("as1.example.com").unwrap(), Some(1));
        assert_eq!(c.query("nope.example.org").unwrap(), None);
        let first = c.request("TRACES").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        let text = lines.join("\n");
        let spans = span::parse_jsonl(&text).unwrap();
        // Two sampled requests, each a server root + an engine child.
        assert_eq!(spans.len(), 4, "{text}");
        let roots: Vec<_> = spans.iter().filter(|s| s.is_root()).collect();
        assert_eq!(roots.len(), 2, "{text}");
        assert!(roots.iter().all(|s| s.layer == Layer::Server && s.detail == detail::QUERY));
        assert_ne!(roots[0].trace, roots[1].trace);
        let engines: Vec<_> = spans.iter().filter(|s| s.layer == Layer::Engine).collect();
        assert_eq!(engines.len(), 2, "{text}");
        for e in &engines {
            let parent =
                spans.iter().find(|s| s.trace == e.trace && s.id == e.parent).unwrap();
            assert_eq!(parent.layer, Layer::Server, "engine span must hang off the root");
        }
        assert_eq!(engines[0].detail, detail::EXTRACT_HIT);
        assert_eq!(engines[1].detail, detail::EXTRACT_MISS);
        // Count arg and error handling mirror EVENTS.
        assert_eq!(c.request("TRACES 0").unwrap(), ".");
        let resp = c.request("TRACES many").unwrap();
        assert!(resp.starts_with("err\tTRACES takes a count"), "{resp}");
        srv.shutdown();
    }

    #[test]
    fn profile_verb_renders_buckets_and_self_time() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        srv.obs().sampler().configure(1, 7);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        c.query("as1.example.com").unwrap();
        let first = c.request("PROFILE").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        let text = lines.join("\n");
        for p in Phase::ALL {
            assert!(
                text.contains(&format!("phase=\"{}\"", p.name())),
                "missing {}: {text}",
                p.name()
            );
        }
        assert!(text.contains("hoiho_profile_cells 1"), "{text}");
        assert!(text.contains("hoiho_span_self_time_ns{layer=\"server\"}"), "{text}");
        assert!(text.contains("hoiho_span_self_time_ns{layer=\"engine\"}"), "{text}");
        srv.shutdown();
    }

    #[test]
    fn slo_verb_reports_default_objectives() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        c.query("as1.example.com").unwrap();
        let first = c.request("SLO").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        assert_eq!(lines.len(), 2, "{lines:?}");
        for l in &lines {
            assert!(l.starts_with("slo\t"), "{l}");
            assert!(l.contains("status=ok"), "{l}");
            assert!(l.contains("burn_10s="), "{l}");
        }
        assert!(lines.iter().any(|l| l.contains("metric=p99_ms")), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("metric=error_rate")), "{lines:?}");
        srv.shutdown();
    }

    #[test]
    fn pipelined_batch_then_metrics_sees_batch_counted() {
        // Regression: BATCH accounting must complete before the batch
        // response is rendered (the same compute → count → write order
        // as single-line verbs), so a METRICS pipelined in the same
        // segment reports the batch fully — never a half-counted one.
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"BATCH 2\nas1.example.com\nnothing.example.org\nMETRICS\n").unwrap();
        let mut r = BufReader::new(s);
        let mut header = String::new();
        r.read_line(&mut header).unwrap();
        assert_eq!(header.trim_end(), "ok\tbatch\t2");
        for _ in 0..2 {
            let mut l = String::new();
            r.read_line(&mut l).unwrap();
        }
        let mut text = String::new();
        loop {
            let mut l = String::new();
            r.read_line(&mut l).unwrap();
            if l.trim_end() == "." {
                break;
            }
            text.push_str(&l);
        }
        assert!(
            text.contains("hoiho_requests_total{outcome=\"ok\",verb=\"batch\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("hoiho_requests_total{outcome=\"hit\",verb=\"query\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("hoiho_requests_total{outcome=\"miss\",verb=\"query\"} 1"),
            "{text}"
        );
        // The latency histogram observed exactly the batch by METRICS
        // time (METRICS counts itself afterwards).
        assert!(text.contains("hoiho_request_latency_ns_count 1"), "{text}");
        srv.shutdown();
    }
}
