//! A concurrent TCP line-protocol server over an [`Engine`].
//!
//! ## Protocol
//!
//! One request per line, one response line per request (tab-separated):
//!
//! * `<hostname>` → `<hostname>\t<asn|->\t<suffix|->\t<class|->` — the
//!   extraction, the dispatched suffix, and its §4 class; `-` marks the
//!   missing parts.
//! * `STATS` → `stats\thits=N\tmisses=N\terrors=N\tconns=N\tmodel=K`
//!   — lifetime totals plus the live model's convention count.
//! * `STATS SUFFIX` → one `suffix\tqueries` line per convention of the
//!   live model, terminated by a lone `.` line.
//! * `STATS CLUSTER` → per-shard and response-cache counters when the
//!   server runs the cluster backend (`.`-terminated), `err` otherwise.
//! * `METRICS` → the full metrics registry in Prometheus-style text
//!   exposition (see `hoiho-obs`), terminated by a lone `.` line:
//!   request counts by verb and outcome, the request latency
//!   histogram, connection and protocol-error totals, plus whatever
//!   the backend registered (engine dispatch outcomes, per-shard cache
//!   counters). The rendered counters reflect traffic *before* the
//!   `METRICS` request itself.
//! * `EVENTS [n]` → the last `n` (default: all buffered) structured
//!   events as JSONL, `.`-terminated: slow queries over the
//!   configurable threshold, reloads, admin refusals.
//! * `RELOAD <path>` → `ok\treloaded\t<n>` after atomically installing
//!   the model at `<path>`, or `err\t<message>` (the old model keeps
//!   serving on failure). The cluster backend takes
//!   `RELOAD SHARD <k> <path>` instead.
//! * `SHUTDOWN` → `ok\tbye`, then the whole server drains and stops.
//!
//! The protocol loop is backend-agnostic: extraction, reload, and the
//! stats listings go through the [`Backend`] trait, so the same server
//! fronts a single hot-swappable engine ([`EngineBackend`]) or the
//! suffix-sharded router in `hoiho-cluster`.
//!
//! ## Trust model
//!
//! The protocol is unauthenticated. Query lines are safe to expose, but
//! `RELOAD` (which reads server-side filesystem paths and whose error
//! messages reveal whether a path exists and parses), `SHUTDOWN`
//! (which terminates the server), and `EVENTS` (whose slow-query log
//! echoes other clients' request lines) are **admin verbs**: they are
//! honoured only when the client's peer address is loopback, and answer
//! `err\tadmin commands require a loopback peer` otherwise (each
//! refusal is itself recorded as an `admin_refused` event). `METRICS`
//! exposes only aggregates and stays open, like `STATS`. Bind the
//! server to `127.0.0.1` unless every host on the bound network is
//! trusted with the query surface.
//!
//! ## Concurrency
//!
//! A fixed worker pool pulls accepted connections from a shared queue,
//! and **each worker serves one connection until it closes**: at most
//! `workers` connections are served concurrently, and further accepted
//! connections wait in the queue until a worker frees up. To keep idle
//! keep-alive clients from pinning workers forever, a connection that
//! completes no request for [`IDLE_DISCONNECT`] is closed. Workloads
//! with many long-lived concurrent clients should raise `workers` (the
//! ROADMAP's readiness-based I/O backend lifts the limit properly).
//!
//! In the default backend the live engine sits behind
//! `RwLock<Arc<Generation>>`: each request clones the `Arc` under a
//! read lock (nanoseconds), so a hot reload
//! ([`ServerHandle::install`] or `RELOAD`) swaps the model without
//! dropping or stalling open connections — in-flight requests finish on
//! the engine they started with. Per-suffix counters are allocated per
//! engine generation and travel with it, so a reload resets them while
//! the lifetime totals keep counting.
//!
//! Shutdown is graceful for connections being served: workers finish
//! the request they are on, then close their connections. Connections
//! still waiting in the accept queue are closed without a response.
//! The acceptor wakes itself with a loopback connection and joins.

use crate::engine::{Engine, EngineObs};
use crate::model::Model;
use hoiho::classify::NcClass;
use hoiho_obs::{Counter, Histogram, Obs, Registry};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker blocks on an idle connection before re-checking
/// the shutdown flag. Small enough that shutdown is prompt, large
/// enough to be invisible in steady state.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// A connection that completes no request for this long is closed, so
/// idle keep-alive clients cannot pin a worker forever (each worker
/// serves one connection at a time — see the module docs).
pub const IDLE_DISCONNECT: Duration = Duration::from_secs(60);

/// Hard cap on one request line. A client that exceeds it is counted
/// as a protocol error and disconnected — the stream cannot be
/// resynchronised without trusting the oversized line's framing.
const MAX_LINE: usize = 64 * 1024;

/// One engine generation: the compiled model plus its per-suffix
/// query counters (index-aligned with [`Engine::conventions`]).
pub struct Generation {
    /// The compiled model.
    pub engine: Arc<Engine>,
    /// Queries dispatched to each convention since this generation was
    /// installed.
    pub per_suffix: Vec<AtomicU64>,
}

impl Generation {
    /// Wraps an engine with fresh per-suffix counters. Public because
    /// the cluster router reuses generations as its per-shard unit.
    pub fn new(engine: Arc<Engine>) -> Arc<Generation> {
        let per_suffix = (0..engine.len()).map(|_| AtomicU64::new(0)).collect();
        Arc::new(Generation { engine, per_suffix })
    }

    /// Runs one extraction, bumping the dispatched suffix's counter.
    pub fn query(&self, hostname: &str) -> QueryAnswer {
        let x = self.engine.extract(hostname);
        self.answer_of(x)
    }

    /// Converts an engine extraction into the protocol-level answer,
    /// counting the dispatch.
    pub fn answer_of(&self, x: crate::engine::Extraction) -> QueryAnswer {
        let (suffix, class) = match x.nc {
            Some(i) => {
                self.per_suffix[i].fetch_add(1, Ordering::Relaxed);
                let nc = &self.engine.conventions()[i];
                (Some(nc.suffix.clone()), Some(nc.class))
            }
            None => (None, None),
        };
        QueryAnswer { asn: x.asn, suffix, class }
    }
}

/// One extraction answer as the protocol reports it: ASN, dispatched
/// suffix, and the suffix's §4 class (`None` marks the `-` fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnswer {
    /// The extracted ASN, when a regex matched.
    pub asn: Option<u32>,
    /// The suffix whose convention served the query.
    pub suffix: Option<String>,
    /// That convention's quality class.
    pub class: Option<NcClass>,
}

impl QueryAnswer {
    /// The answer for a hostname no convention covers.
    pub const MISS: QueryAnswer = QueryAnswer { asn: None, suffix: None, class: None };

    /// Renders the tab-separated response fields after the echoed
    /// hostname: `<asn|->\t<suffix|->\t<class|->`.
    pub fn render_fields(&self) -> String {
        format!(
            "{}\t{}\t{}",
            self.asn.map_or_else(|| "-".to_string(), |a| a.to_string()),
            self.suffix.as_deref().unwrap_or("-"),
            self.class.map_or("-", |c| c.label()),
        )
    }
}

/// What the TCP server needs from an extraction backend. The default
/// backend is a single hot-swappable engine ([`EngineBackend`]); the
/// cluster crate plugs a suffix-sharded router with a response cache in
/// through the same seam, so the protocol loop is written once.
pub trait Backend: Send + Sync + 'static {
    /// Answers one hostname query.
    fn query(&self, hostname: &str) -> QueryAnswer;
    /// Convention count reported by `STATS` as `model=`.
    fn model_len(&self) -> usize;
    /// Per-suffix query counts for `STATS SUFFIX`, in index order.
    fn per_suffix(&self) -> Vec<(String, u64)>;
    /// Handles the argument text of a `RELOAD` request. Returns the
    /// response payload after `ok\t` (e.g. `reloaded\t12`), or the
    /// error message after `err\t`. Must leave the old state serving on
    /// failure.
    fn reload(&self, args: &str) -> Result<String, String>;
    /// The full multi-line `STATS CLUSTER` response body including the
    /// terminating `.\n`, or `None` when the backend is not a cluster.
    fn cluster_stats(&self) -> Option<String> {
        None
    }
}

/// The default backend: one engine behind `RwLock<Arc<Generation>>`,
/// hot-swappable as a whole.
pub struct EngineBackend {
    live: RwLock<Arc<Generation>>,
    /// Dispatch-outcome counters re-attached to every engine a
    /// `RELOAD` builds, so the counters survive reloads.
    engine_obs: Option<EngineObs>,
}

impl EngineBackend {
    /// Wraps an engine as generation zero.
    pub fn new(engine: Arc<Engine>) -> EngineBackend {
        EngineBackend { live: RwLock::new(Generation::new(engine)), engine_obs: None }
    }

    /// Wraps an engine as generation zero and remembers `obs` so
    /// engines built by [`Backend::reload`] keep counting into the
    /// same dispatch-outcome series. The caller usually attaches the
    /// same `obs` to `engine` itself first.
    pub fn with_engine_obs(engine: Arc<Engine>, obs: EngineObs) -> EngineBackend {
        EngineBackend { live: RwLock::new(Generation::new(engine)), engine_obs: Some(obs) }
    }

    /// Atomically installs a new engine: per-suffix counters restart,
    /// in-flight requests finish on the generation they started with.
    pub fn install(&self, engine: Arc<Engine>) {
        *self.live.write().expect("generation lock poisoned") = Generation::new(engine);
    }

    /// The live generation.
    pub fn generation(&self) -> Arc<Generation> {
        self.live.read().expect("generation lock poisoned").clone()
    }
}

impl Backend for EngineBackend {
    fn query(&self, hostname: &str) -> QueryAnswer {
        self.generation().query(hostname)
    }

    fn model_len(&self) -> usize {
        self.generation().engine.len()
    }

    fn per_suffix(&self) -> Vec<(String, u64)> {
        let gen = self.generation();
        gen.engine
            .conventions()
            .iter()
            .zip(&gen.per_suffix)
            .map(|(nc, n)| (nc.suffix.clone(), n.load(Ordering::Relaxed)))
            .collect()
    }

    fn reload(&self, args: &str) -> Result<String, String> {
        let model = Model::load(args.trim()).map_err(|e| e.to_string())?;
        let mut engine = Engine::new(&model);
        if let Some(obs) = &self.engine_obs {
            engine.attach_obs(obs.clone());
        }
        let engine = Arc::new(engine);
        let n = engine.len();
        self.install(engine);
        Ok(format!("reloaded\t{n}"))
    }
}

/// Counters shared by all workers for the server's lifetime.
#[derive(Default)]
struct Totals {
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    conns: AtomicU64,
}

/// A point-in-time view of the server's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries that extracted an ASN.
    pub hits: u64,
    /// Queries that did not (unknown suffix, or no regex matched).
    pub misses: u64,
    /// Protocol errors (bad input, failed reloads).
    pub errors: u64,
    /// Connections accepted.
    pub conns: u64,
    /// Per-suffix query counts for the live generation, as
    /// `(suffix, queries)` in engine index order.
    pub per_suffix: Vec<(String, u64)>,
}

/// Pre-registered hot-path metric handles (rare verbs register their
/// counters on demand — a mutex-taking path, acceptable off the query
/// fast path).
struct ServerMetrics {
    query_hit: Counter,
    query_miss: Counter,
    latency: Histogram,
    connections: Counter,
    protocol_errors: Counter,
}

impl ServerMetrics {
    fn register(r: &Registry) -> ServerMetrics {
        ServerMetrics {
            query_hit: r.counter("hoiho_requests_total", &[("verb", "query"), ("outcome", "hit")]),
            query_miss: r
                .counter("hoiho_requests_total", &[("verb", "query"), ("outcome", "miss")]),
            latency: r.histogram("hoiho_request_latency_ns", &[]),
            connections: r.counter("hoiho_connections_total", &[]),
            protocol_errors: r.counter("hoiho_protocol_errors_total", &[]),
        }
    }
}

/// Shared server state: the extraction backend, lifetime totals, and
/// the observability context.
struct Shared {
    backend: Arc<dyn Backend>,
    totals: Totals,
    shutdown: AtomicBool,
    obs: Arc<Obs>,
    metrics: ServerMetrics,
}

impl Shared {
    fn new(backend: Arc<dyn Backend>, obs: Arc<Obs>) -> Shared {
        let metrics = ServerMetrics::register(obs.registry());
        Shared {
            backend,
            totals: Totals::default(),
            shutdown: AtomicBool::new(false),
            obs,
            metrics,
        }
    }

    /// Counts one protocol error in both the legacy totals and the
    /// metrics registry.
    fn count_error(&self) {
        self.totals.errors.fetch_add(1, Ordering::Relaxed);
        self.metrics.protocol_errors.inc();
    }
}

/// The protocol verb a request line is, for metric labels and the
/// slow-query log.
fn verb_of(request: &str) -> &'static str {
    match request {
        "STATS" => "stats",
        "STATS SUFFIX" => "stats_suffix",
        "STATS CLUSTER" => "stats_cluster",
        "METRICS" => "metrics",
        "SHUTDOWN" => "shutdown",
        r if r.starts_with("RELOAD ") => "reload",
        r if r == "EVENTS" || r.starts_with("EVENTS ") => "events",
        _ => "query",
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Present when the server was started over a single engine;
    /// [`ServerHandle::install`] needs it.
    engine_backend: Option<Arc<EngineBackend>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop plus `workers` request threads
    /// (0 = one per core) over a single hot-swappable engine. Metrics
    /// and events go to a fresh private [`Obs`] reachable through
    /// [`ServerHandle::obs`].
    pub fn start(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        workers: usize,
    ) -> std::io::Result<ServerHandle> {
        Self::start_obs(addr, engine, workers, Arc::new(Obs::new()))
    }

    /// [`ServerHandle::start`] with a caller-provided observability
    /// context (to share one `METRICS` document with other components,
    /// or to let a test account for traffic exactly). The engine gets
    /// dispatch-outcome counters registered in `obs` attached — to a
    /// private clone, so the caller's `engine` is not mutated.
    pub fn start_obs(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        workers: usize,
        obs: Arc<Obs>,
    ) -> std::io::Result<ServerHandle> {
        let engine_obs = EngineObs::register(obs.registry());
        let mut counted = (*engine).clone();
        counted.attach_obs(engine_obs.clone());
        let backend =
            Arc::new(EngineBackend::with_engine_obs(Arc::new(counted), engine_obs));
        Self::start_inner(addr, backend.clone(), Some(backend), workers, obs)
    }

    /// Like [`ServerHandle::start`], but over a caller-provided backend
    /// (e.g. the cluster router). [`ServerHandle::install`] is not
    /// available on such a server — reloads go through
    /// [`Backend::reload`].
    pub fn start_with_backend(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        workers: usize,
    ) -> std::io::Result<ServerHandle> {
        Self::start_inner(addr, backend, None, workers, Arc::new(Obs::new()))
    }

    /// [`ServerHandle::start_with_backend`] with a caller-provided
    /// observability context. Pass the same `Arc<Obs>` the backend
    /// registered its own metrics in (as the cluster router does) and
    /// `METRICS` reports both layers in one document.
    pub fn start_with_backend_obs(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        workers: usize,
        obs: Arc<Obs>,
    ) -> std::io::Result<ServerHandle> {
        Self::start_inner(addr, backend, None, workers, obs)
    }

    fn start_inner(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        engine_backend: Option<Arc<EngineBackend>>,
        workers: usize,
        obs: Arc<Obs>,
    ) -> std::io::Result<ServerHandle> {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            workers
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(backend, obs));

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                // `tx` is moved in and dropped on exit, which closes the
                // queue and lets idle workers finish.
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    shared.totals.conns.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.connections.inc();
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr,
            shared,
            engine_backend,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The observability context the server records into (what
    /// `METRICS` renders and `EVENTS` dumps).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.shared.obs
    }

    /// Atomically installs a new engine. Requests already dispatched
    /// finish on the old generation; every later request sees the new
    /// one. Per-suffix counters restart; lifetime totals continue.
    ///
    /// # Panics
    ///
    /// If the server was started with [`ServerHandle::start_with_backend`]
    /// — custom backends reload through [`Backend::reload`].
    pub fn install(&self, engine: Arc<Engine>) {
        self.engine_backend
            .as_ref()
            .expect("install() requires the single-engine backend")
            .install(engine);
    }

    /// Snapshots the lifetime totals and the backend's per-suffix
    /// counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.shared.totals.hits.load(Ordering::Relaxed),
            misses: self.shared.totals.misses.load(Ordering::Relaxed),
            errors: self.shared.totals.errors.load(Ordering::Relaxed),
            conns: self.shared.totals.conns.load(Ordering::Relaxed),
            per_suffix: self.shared.backend.per_suffix(),
        }
    }

    /// True once a shutdown has been requested (e.g. by a client's
    /// `SHUTDOWN` command).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested (a client's `SHUTDOWN`
    /// command, or [`ServerHandle::shutdown`] called from another
    /// thread on a clone of the shared state), then drains and joins
    /// every thread.
    pub fn join(mut self) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(IDLE_POLL);
        }
        self.join_inner();
    }

    /// Requests a graceful stop and waits: in-flight requests complete,
    /// connections still waiting in the accept queue are closed without
    /// a response, and all threads join.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Pulls connections off the queue until the queue closes.
fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            drain_queue(rx);
            return;
        }
        // Hold the lock only to poll, so workers share the queue fairly
        // and notice shutdown even while idle.
        let next = {
            let guard = rx.lock().expect("queue lock poisoned");
            guard.recv_timeout(IDLE_POLL)
        };
        match next {
            Ok(stream) => handle_conn(stream, shared),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Closes accepted-but-unserved connections on shutdown: dropping the
/// streams sends FIN, so queued clients see EOF promptly instead of
/// hanging on a queue no worker will ever service again.
fn drain_queue(rx: &Mutex<Receiver<TcpStream>>) {
    let guard = rx.lock().expect("queue lock poisoned");
    while guard.try_recv().is_ok() {}
}

/// Serves one connection until the client closes it, an I/O error
/// occurs, the connection idles past [`IDLE_DISCONNECT`], or the
/// server shuts down.
fn handle_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    // Admin verbs are honoured only from loopback peers (module docs).
    let admin = stream.peer_addr().map(|a| a.ip().is_loopback()).unwrap_or(false);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // Framing is by hand rather than `BufReader::read_line`: a read
    // timeout must preserve partially-received bytes (`read_line`
    // consumes them from the reader before reporting the error, so a
    // request straddling the idle poll would be truncated), and a
    // multi-byte UTF-8 character split across TCP segments must not be
    // mistaken for invalid data.
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_request = Instant::now();
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            last_request = Instant::now();
            let Ok(text) = std::str::from_utf8(&line) else {
                // Non-UTF-8 input: count it and drop the connection (we
                // cannot resynchronise a stream we cannot decode).
                shared.count_error();
                return;
            };
            if !serve_line(text, admin, &mut writer, shared) {
                return;
            }
        }
        if buf.len() > MAX_LINE {
            shared.count_error();
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Client closed; serve a final unterminated line, if any.
                if !buf.is_empty() {
                    match std::str::from_utf8(&buf) {
                        Ok(text) => {
                            serve_line(text, admin, &mut writer, shared);
                        }
                        Err(_) => {
                            shared.count_error();
                        }
                    }
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst)
                    || last_request.elapsed() >= IDLE_DISCONNECT
                {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Serves one framed request line; returns `false` when the connection
/// should close (write failure, or the server is shutting down).
///
/// This is where per-request observability happens: every request is
/// timed into the latency histogram, non-query verbs are counted by
/// verb and ok/err outcome (queries count themselves by hit/miss
/// inside [`respond`], where the answer is known), and anything slower
/// than the configured threshold lands in the event log with its
/// request line. The counting runs *after* `respond`, so a `METRICS`
/// response reflects the traffic before the request itself.
fn serve_line(text: &str, admin: bool, writer: &mut TcpStream, shared: &Shared) -> bool {
    let request = text.trim();
    if request.is_empty() {
        return true;
    }
    let t0 = Instant::now();
    let response = respond(request, admin, shared);
    let dur_ns = t0.elapsed().as_nanos() as u64;
    shared.metrics.latency.observe(dur_ns);
    let verb = verb_of(request);
    if verb != "query" {
        let outcome = if response.starts_with("err\t") { "err" } else { "ok" };
        shared
            .obs
            .registry()
            .counter("hoiho_requests_total", &[("verb", verb), ("outcome", outcome)])
            .inc();
    }
    if dur_ns >= shared.obs.slow_threshold_ns() {
        shared.obs.events().record(
            "slow_query",
            &[("verb", verb), ("request", request), ("dur_ns", &dur_ns.to_string())],
        );
    }
    if writer.write_all(response.as_bytes()).is_err() {
        return false;
    }
    !shared.shutdown.load(Ordering::SeqCst)
}

/// Refusal sent to non-loopback peers issuing admin verbs.
const ERR_NOT_ADMIN: &str = "err\tadmin commands require a loopback peer\n";

/// Computes the response (including trailing newline) for one request.
/// `admin` is true when the peer may issue `RELOAD`/`SHUTDOWN`.
fn respond(request: &str, admin: bool, shared: &Shared) -> String {
    match request {
        "STATS" => {
            let t = &shared.totals;
            format!(
                "stats\thits={}\tmisses={}\terrors={}\tconns={}\tmodel={}\n",
                t.hits.load(Ordering::Relaxed),
                t.misses.load(Ordering::Relaxed),
                t.errors.load(Ordering::Relaxed),
                t.conns.load(Ordering::Relaxed),
                shared.backend.model_len(),
            )
        }
        "STATS SUFFIX" => {
            let mut out = String::new();
            for (suffix, n) in shared.backend.per_suffix() {
                out.push_str(&format!("{suffix}\t{n}\n"));
            }
            out.push_str(".\n");
            out
        }
        "STATS CLUSTER" => match shared.backend.cluster_stats() {
            Some(body) => body,
            None => {
                shared.count_error();
                "err\tnot a cluster backend\n".to_string()
            }
        },
        "METRICS" => {
            let mut out = shared.obs.registry().render();
            out.push_str(".\n");
            out
        }
        "SHUTDOWN" => {
            if !admin {
                return refuse_admin("shutdown", shared);
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            "ok\tbye\n".to_string()
        }
        _ if request == "EVENTS" || request.starts_with("EVENTS ") => {
            if !admin {
                return refuse_admin("events", shared);
            }
            let n = match request.strip_prefix("EVENTS").map(str::trim) {
                Some("") => usize::MAX,
                Some(arg) => match arg.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        shared.count_error();
                        return format!("err\tEVENTS takes a count, got {arg:?}\n");
                    }
                },
                None => unreachable!("guarded by the match arm"),
            };
            let mut out = shared.obs.events().render_jsonl(n);
            out.push_str(".\n");
            out
        }
        _ if request.starts_with("RELOAD ") => {
            if !admin {
                return refuse_admin("reload", shared);
            }
            let args = &request["RELOAD ".len()..];
            match shared.backend.reload(args) {
                Ok(msg) => {
                    shared
                        .obs
                        .events()
                        .record("reload", &[("args", args.trim()), ("result", &msg)]);
                    format!("ok\t{msg}\n")
                }
                Err(e) => {
                    shared.count_error();
                    shared
                        .obs
                        .events()
                        .record("reload_failed", &[("args", args.trim()), ("error", &e)]);
                    format!("err\t{e}\n")
                }
            }
        }
        hostname => {
            let answer = shared.backend.query(hostname);
            match answer.asn {
                Some(_) => {
                    shared.totals.hits.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.query_hit.inc();
                }
                None => {
                    shared.totals.misses.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.query_miss.inc();
                }
            };
            format!("{hostname}\t{}\n", answer.render_fields())
        }
    }
}

/// Counts and logs a refused admin verb, returning the refusal line.
fn refuse_admin(verb: &str, shared: &Shared) -> String {
    shared.count_error();
    shared.obs.events().record("admin_refused", &[("verb", verb)]);
    ERR_NOT_ADMIN.to_string()
}

/// A minimal blocking client for the line protocol — used by the
/// `query`/`loadgen` subcommands, the benches, and the smoke tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one request line and reads one response line (trimmed).
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut resp = String::new();
        if self.reader.read_line(&mut resp)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }

    /// Queries one hostname; returns the extracted ASN, if any.
    pub fn query(&mut self, hostname: &str) -> std::io::Result<Option<u32>> {
        let resp = self.request(hostname)?;
        let mut fields = resp.split('\t');
        let (_echo, asn) = (fields.next(), fields.next());
        Ok(asn.and_then(|a| a.parse::<u32>().ok()))
    }

    /// Reads the remaining lines of a multi-line response (after
    /// `STATS SUFFIX`) up to and excluding the `.` terminator.
    pub fn read_until_dot(&mut self) -> std::io::Result<Vec<String>> {
        let mut out = Vec::new();
        loop {
            let mut l = String::new();
            if self.reader.read_line(&mut l)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            let l = l.trim_end();
            if l == "." {
                return Ok(out);
            }
            out.push(l.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EvalCounts, Model, ModelEntry};
    use hoiho::classify::NcClass;
    use hoiho::regex::Regex;
    use hoiho::taxonomy::Taxonomy;

    fn model(suffix: &str, rx: &str) -> Model {
        Model {
            entries: vec![ModelEntry {
                suffix: suffix.to_string(),
                class: NcClass::Good,
                single: false,
                taxonomy: Taxonomy::Start,
                hostnames: 4,
                counts: EvalCounts::default(),
                regexes: vec![Regex::parse(rx).unwrap()],
            }],
        }
    }

    fn start(model: &Model, workers: usize) -> ServerHandle {
        ServerHandle::start("127.0.0.1:0", Arc::new(Engine::new(model)), workers).unwrap()
    }

    #[test]
    fn serves_queries_and_stats() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        assert_eq!(c.query("as64500.example.com").unwrap(), Some(64500));
        assert_eq!(c.query("core1.example.com").unwrap(), None);
        assert_eq!(c.query("nothing.example.org").unwrap(), None);
        let resp = c.request("as777.example.com").unwrap();
        assert_eq!(resp, "as777.example.com\t777\texample.com\tgood");
        let stats = c.request("STATS").unwrap();
        assert!(stats.starts_with("stats\thits=2\tmisses=2\t"), "{stats}");
        assert!(stats.contains("model=1"), "{stats}");
        let s = srv.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        assert_eq!(s.per_suffix, vec![("example.com".to_string(), 3)]);
        drop(c);
        srv.shutdown();
    }

    #[test]
    fn concurrent_clients_all_served() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 4);
        let addr = srv.local_addr();
        std::thread::scope(|scope| {
            for t in 0..8 {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    for i in 0..50u32 {
                        let asn = 64000 + t * 100 + i;
                        assert_eq!(
                            c.query(&format!("as{asn}.example.com")).unwrap(),
                            Some(asn)
                        );
                    }
                });
            }
        });
        let s = srv.stats();
        assert_eq!(s.hits, 8 * 50);
        assert_eq!(s.conns, 8);
        srv.shutdown();
    }

    #[test]
    fn hot_reload_swaps_without_dropping_connections() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        assert_eq!(c.query("as1.example.com").unwrap(), Some(1));
        assert_eq!(c.query("r2.other.net").unwrap(), None);
        // Install a different model; the same connection sees it.
        srv.install(Arc::new(Engine::new(&model("other.net", r"^r(\d+)\.other\.net$"))));
        assert_eq!(c.query("as1.example.com").unwrap(), None);
        assert_eq!(c.query("r2.other.net").unwrap(), Some(2));
        // Per-suffix counters restarted with the new generation.
        let s = srv.stats();
        assert_eq!(s.per_suffix, vec![("other.net".to_string(), 1)]);
        assert_eq!(s.hits, 2);
        srv.shutdown();
    }

    #[test]
    fn reload_command_over_tcp() {
        let dir = std::env::temp_dir().join(format!("hoiho-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reload.model");
        model("other.net", r"^r(\d+)\.other\.net$").save(&path).unwrap();

        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        // A failed reload keeps the old model serving and counts an error.
        let resp = c.request("RELOAD /no/such/file").unwrap();
        assert!(resp.starts_with("err\t"), "{resp}");
        assert_eq!(c.query("as5.example.com").unwrap(), Some(5));
        let resp = c.request(&format!("RELOAD {}", path.display())).unwrap();
        assert_eq!(resp, "ok\treloaded\t1");
        assert_eq!(c.query("r7.other.net").unwrap(), Some(7));
        assert_eq!(srv.stats().errors, 1);
        srv.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let addr = srv.local_addr();
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.request("SHUTDOWN").unwrap(), "ok\tbye");
        srv.join();
        // The listener is gone: either the connect fails or the
        // accepted socket is never served.
        match Client::connect(addr) {
            Err(_) => {}
            Ok(mut c2) => assert!(c2.request("as1.example.com").is_err()),
        }
    }

    #[test]
    fn join_waits_for_client_shutdown() {
        // Regression: join() must wait for a shutdown request, not
        // issue one — a server blocked in join() keeps serving.
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let addr = srv.local_addr();
        let joiner = std::thread::spawn(move || srv.join());
        let mut c = Client::connect(addr).unwrap();
        for _ in 0..5 {
            assert_eq!(c.query("as64500.example.com").unwrap(), Some(64500));
            std::thread::sleep(IDLE_POLL / 2);
        }
        assert_eq!(c.request("SHUTDOWN").unwrap(), "ok\tbye");
        joiner.join().unwrap();
    }

    #[test]
    fn partial_request_straddling_idle_poll_is_not_truncated() {
        // Regression: a request line arriving in fragments across the
        // worker's 100ms read-timeout polls must be answered whole —
        // the old BufReader::read_line framing dropped the bytes read
        // before the timeout.
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"as64500.exam").unwrap();
        std::thread::sleep(IDLE_POLL * 3); // several server-side timeouts fire
        s.write_all(b"ple.com\n").unwrap();
        let mut resp = String::new();
        BufReader::new(s).read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "as64500.example.com\t64500\texample.com\tgood");
        srv.shutdown();
    }

    #[test]
    fn pipelined_requests_in_one_segment_all_answered() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"as1.example.com\nas2.example.com\n").unwrap();
        let mut r = BufReader::new(s);
        let mut resp = String::new();
        r.read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "as1.example.com\t1\texample.com\tgood");
        resp.clear();
        r.read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "as2.example.com\t2\texample.com\tgood");
        srv.shutdown();
    }

    #[test]
    fn unterminated_final_line_is_served_on_eof() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 1);
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        s.write_all(b"as7.example.com").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        BufReader::new(s).read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "as7.example.com\t7\texample.com\tgood");
        srv.shutdown();
    }

    #[test]
    fn admin_verbs_refused_for_non_loopback_peers() {
        let m = model("example.com", r"^as(\d+)\.example\.com$");
        let shared = Shared::new(
            Arc::new(EngineBackend::new(Arc::new(Engine::new(&m)))),
            Arc::new(Obs::new()),
        );
        assert_eq!(respond("SHUTDOWN", false, &shared), ERR_NOT_ADMIN);
        assert!(!shared.shutdown.load(Ordering::SeqCst), "non-admin SHUTDOWN must not stop the server");
        assert_eq!(respond("RELOAD /etc/passwd", false, &shared), ERR_NOT_ADMIN);
        assert_eq!(respond("EVENTS 5", false, &shared), ERR_NOT_ADMIN);
        assert_eq!(shared.totals.errors.load(Ordering::Relaxed), 3);
        // Each refusal was recorded as an event.
        let refusals = shared.obs.events().tail(10);
        assert_eq!(refusals.len(), 3);
        assert!(refusals.iter().all(|e| e.kind == "admin_refused"));
        // Plain queries are served regardless of peer.
        let resp = respond("as9.example.com", false, &shared);
        assert_eq!(resp, "as9.example.com\t9\texample.com\tgood\n");
    }

    #[test]
    fn metrics_verb_renders_exposition_over_tcp() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        assert_eq!(c.query("as1.example.com").unwrap(), Some(1));
        assert_eq!(c.query("as2.example.com").unwrap(), Some(2));
        assert_eq!(c.query("nothing.example.org").unwrap(), None);
        let first = c.request("METRICS").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        let text = lines.join("\n");
        assert!(
            text.contains("hoiho_requests_total{outcome=\"hit\",verb=\"query\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("hoiho_requests_total{outcome=\"miss\",verb=\"query\"} 1"),
            "{text}"
        );
        assert!(text.contains("hoiho_connections_total 1"), "{text}");
        assert!(text.contains("hoiho_request_latency_ns_count 3"), "{text}");
        assert!(
            text.contains("hoiho_engine_extractions_total{dispatch=\"exact\"} 2"),
            "{text}"
        );
        // A second METRICS shows the first (counted after rendering).
        let first = c.request("METRICS").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        let text = lines.join("\n");
        assert!(
            text.contains("hoiho_requests_total{outcome=\"ok\",verb=\"metrics\"} 1"),
            "{text}"
        );
        srv.shutdown();
    }

    #[test]
    fn events_verb_dumps_ring_tail() {
        let srv = start(&model("example.com", r"^as(\d+)\.example\.com$"), 2);
        // Everything is a "slow query" at a zero threshold.
        srv.obs().set_slow_threshold(Duration::from_nanos(0));
        let mut c = Client::connect(srv.local_addr()).unwrap();
        c.query("as1.example.com").unwrap();
        c.query("as2.example.com").unwrap();
        let first = c.request("EVENTS 1").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("\"kind\":\"slow_query\""), "{}", lines[0]);
        assert!(lines[0].contains("\"request\":\"as2.example.com\""), "{}", lines[0]);
        // Bare EVENTS dumps the whole ring (two queries + the first
        // EVENTS, which was itself slow at threshold zero).
        let first = c.request("EVENTS").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        assert_eq!(lines.len(), 3, "{lines:?}");
        // Malformed count is an error.
        let resp = c.request("EVENTS many").unwrap();
        assert!(resp.starts_with("err\t"), "{resp}");
        srv.shutdown();
    }

    #[test]
    fn stats_suffix_lists_per_suffix_counts() {
        let mut m = model("example.com", r"^as(\d+)\.example\.com$");
        m.entries.extend(model("other.net", r"^r(\d+)\.other\.net$").entries);
        let srv = start(&m, 2);
        let mut c = Client::connect(srv.local_addr()).unwrap();
        c.query("as1.example.com").unwrap();
        c.query("as2.example.com").unwrap();
        c.query("r9.other.net").unwrap();
        let first = c.request("STATS SUFFIX").unwrap();
        let mut lines = vec![first];
        lines.extend(c.read_until_dot().unwrap());
        assert_eq!(lines, vec!["example.com\t2".to_string(), "other.net\t1".to_string()]);
        srv.shutdown();
    }
}
