//! # hoiho-serve — model artifacts and extraction serving
//!
//! The learner (`hoiho`) produces naming conventions; this crate makes
//! them *reusable inference artifacts*, the way the paper's authors
//! ship Hoiho's learned regexes with CAIDA's ITDK for others to apply:
//!
//! * [`model`] — a line-based text artifact serializing a full learned
//!   model (per-suffix regexes, §4 class, single flag, taxonomy, eval
//!   counts), with a strict line-numbered parser and a
//!   render→parse→render fixpoint guarantee.
//! * [`engine`] — a read-optimized in-memory index keyed by PSL-derived
//!   suffix that dispatches hostnames to their convention and runs the
//!   compiled regexes; single and thread-scoped batch APIs.
//! * [`server`] — a `std::net` TCP line-protocol server running a small
//!   set of epoll readiness event loops ([`sys`] holds the in-tree
//!   syscall shims), with protocol pipelining, a multi-hostname `BATCH`
//!   verb, hit/miss/error/per-suffix counters, a `STATS` command,
//!   atomic hot model reload, and graceful shutdown.
//! * [`chaos`] — `ChaosConn`, a seeded fault-injecting stream wrapper
//!   (drop / truncate / delay / garbage / fragment) used by
//!   `loadgen --chaos` and the fuzz tier's robustness tests.
//!
//! The `hoiho-serve` binary wires these into the workspace pipeline:
//! `save` (learn → artifact, from a training file or a synthetic
//! snapshot), `inspect`, `query`, `serve`, and `loadgen`.
//!
//! Offline/serving split: learning is minutes-scale and runs offline;
//! lookups are microseconds-scale and run here. Nothing in this crate
//! mutates a model after load, so one [`engine::Engine`] serves any
//! number of threads behind an `Arc`.

pub mod chaos;
pub mod engine;
pub mod model;
pub mod server;
pub mod sys;

pub use chaos::{ChaosConfig, ChaosConn, ChaosStats};
pub use engine::{CompiledNc, Engine, Extraction, MIN_BATCH_CHUNK};
pub use model::{EvalCounts, Model, ModelEntry, ModelError};
pub use server::{
    Backend, Client, EngineBackend, Generation, QueryAnswer, ServerHandle, StatsSnapshot,
    MAX_BATCH, MAX_LINE, MAX_PENDING_OUT,
};
