//! Minimal in-tree Linux readiness syscalls for the event-loop server.
//!
//! The workspace is hermetic (no `libc`/`mio` crates), so the handful
//! of calls the server needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, and `read`/`write`/`close` on the eventfd —
//! are declared here directly against the C library every Rust `std`
//! binary already links. Everything is wrapped in two RAII types:
//!
//! * [`Epoll`] — an epoll instance; level-triggered interest
//!   registration keyed by a caller-chosen `u64` token, and an
//!   `EINTR`-retrying wait.
//! * [`EventFd`] — a nonblocking eventfd used to wake a sleeping
//!   `epoll_wait` from another thread (the shutdown path).
//!
//! The server uses *level-triggered* epoll on purpose: a connection
//! with unread bytes or unflushed responses keeps reporting ready, so
//! interest re-arming mistakes degrade to extra wakeups instead of
//! lost events.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

/// Readable interest/readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable interest/readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (the 12-byte
/// layout); other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, for pre-sizing wait buffers.
    pub const EMPTY: EpollEvent = EpollEvent { events: 0, data: 0 };

    /// The readiness bitmask (copied out of the possibly-packed struct).
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The registered token (copied out of the possibly-packed struct).
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// An epoll instance (closed on drop).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with level-triggered `interest`, reported as `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Re-arms `fd` with a new `interest` mask.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument must be non-null on pre-2.6.9 kernels; pass
        // a dummy unconditionally, it is ignored on DEL.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (−1 = forever) and fills `events`,
    /// returning how many fired. Retries `EINTR` internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd: any thread [`EventFd::signal`]s it, the event
/// loop that registered it wakes from `epoll_wait` and [`EventFd::drain`]s.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the eventfd counter, waking any epoll watching it.
    /// Failure is unreportable from the signalling side and the waiter
    /// also polls on a timeout, so errors are deliberately ignored.
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Resets the counter so the level-triggered readiness clears.
    pub fn drain(&self) {
        let mut v: u64 = 0;
        unsafe { read(self.fd, (&mut v as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

// An `EventFd` is just an fd; writes of 8 bytes are atomic, so
// signalling from any thread while another drains is sound.
unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_roundtrip_through_epoll() {
        let ep = Epoll::new().unwrap();
        let ef = EventFd::new().unwrap();
        ep.add(ef.fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent::EMPTY; 4];
        // Nothing signalled: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ef.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // Level-triggered: still ready until drained.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        ef.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_modify_and_delete() {
        let ep = Epoll::new().unwrap();
        let ef = EventFd::new().unwrap();
        ep.add(ef.fd(), EPOLLIN, 7).unwrap();
        ef.signal();

        // Re-arm with no interest: the ready fd no longer reports.
        ep.modify(ef.fd(), 0, 7).unwrap();
        let mut events = [EpollEvent::EMPTY; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ep.modify(ef.fd(), EPOLLIN, 9).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        assert_eq!(events[0].token(), 9);

        ep.delete(ef.fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn wake_from_another_thread() {
        let ep = Epoll::new().unwrap();
        let ef = std::sync::Arc::new(EventFd::new().unwrap());
        ep.add(ef.fd(), EPOLLIN, 1).unwrap();
        let ef2 = std::sync::Arc::clone(&ef);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            ef2.signal();
        });
        let mut events = [EpollEvent::EMPTY; 1];
        // Generous timeout: the signal must arrive long before it.
        let n = ep.wait(&mut events, 5_000).unwrap();
        assert_eq!(n, 1);
        t.join().unwrap();
    }
}
