//! `hoiho-serve` — learn once, serve forever.
//!
//! ```text
//! hoiho-serve save <training-file> <model-file>    learn → model artifact
//! hoiho-serve save --sim <seed> <model-file>       same, from a synthetic snapshot
//! hoiho-serve inspect <model-file>                 summarise an artifact
//! hoiho-serve query <model-file> [hostname ...]    extract (args or stdin)
//! hoiho-serve serve <model-file> <addr> [workers]  run the TCP server
//! hoiho-serve send <addr> <request...>             one protocol request, print reply
//! hoiho-serve loadgen <addr> <hosts-file> [conns] [requests]
//!                                                  drive a server, report lookups/sec
//! ```
//!
//! The training file is the `hoiho` CLI's format (`asn addr hostname`
//! per line); `--sim` builds a synthetic Internet with `hoiho-netsim`
//! and trains on bdrmapIT-inferred ownership, the workspace's standard
//! netsim→learner pipeline. The server speaks the line protocol
//! documented in `hoiho_serve::server` (hostname per line, plus
//! `STATS`, `STATS SUFFIX`, `RELOAD <path>`, `SHUTDOWN`).

use hoiho::learner::{learn_all, LearnConfig};
use hoiho::training::{Observation, TrainingSet};
use hoiho_itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_netsim::SimConfig;
use hoiho_psl::PublicSuffixList;
use hoiho_serve::server::Client;
use hoiho_serve::{Engine, Model, ServerHandle};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    let result = match strs.as_slice() {
        ["save", "--sim", seed, out] => save_sim(seed, out),
        ["save", training, out] => save_file(training, out),
        ["inspect", model] => inspect(model),
        ["query", model, hosts @ ..] => query(model, hosts),
        ["serve", model, addr] => serve(model, addr, 0),
        ["serve", model, addr, workers] => match workers.parse() {
            Ok(w) => serve(model, addr, w),
            Err(_) => usage(),
        },
        ["send", addr, words @ ..] if !words.is_empty() => send(addr, &words.join(" ")),
        ["loadgen", addr, hosts] => loadgen(addr, hosts, 4, 20_000),
        ["loadgen", addr, hosts, conns] => match conns.parse() {
            Ok(c) => loadgen(addr, hosts, c, 20_000),
            Err(_) => usage(),
        },
        ["loadgen", addr, hosts, conns, reqs] => match (conns.parse(), reqs.parse()) {
            (Ok(c), Ok(r)) => loadgen(addr, hosts, c, r),
            _ => usage(),
        },
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hoiho-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> Result<(), String> {
    eprintln!("usage: hoiho-serve save <training-file> <model-file>");
    eprintln!("       hoiho-serve save --sim <seed> <model-file>");
    eprintln!("       hoiho-serve inspect <model-file>");
    eprintln!("       hoiho-serve query <model-file> [hostname ...]");
    eprintln!("       hoiho-serve serve <model-file> <addr> [workers]");
    eprintln!("       hoiho-serve send <addr> <request...>");
    eprintln!("       hoiho-serve loadgen <addr> <hosts-file> [conns] [requests]");
    Err("bad arguments".into())
}

/// Learns from a training file and writes the model artifact.
fn save_file(training_path: &str, out: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(training_path)
        .map_err(|e| format!("cannot read {training_path}: {e}"))?;
    let ts = parse_training(&text)?;
    save_training(&ts, out)
}

/// Learns from a synthetic snapshot (netsim → bdrmapIT ownership) and
/// writes the model artifact.
fn save_sim(seed: &str, out: &str) -> Result<(), String> {
    let seed: u64 = seed.parse().map_err(|_| format!("bad seed {seed:?}"))?;
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: format!("serve-{seed}"),
        method: Method::BdrmapIt,
        cfg: SimConfig::tiny(seed),
        alias_split: 0.3,
    });
    save_training(&snap.training_set(), out)
}

fn save_training(ts: &TrainingSet, out: &str) -> Result<(), String> {
    let groups = ts.by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    let model = Model::from_learned(&learned);
    model.save(out).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "saved {} conventions ({} regexes) from {} observations to {out}",
        model.len(),
        model.regex_count(),
        ts.len()
    );
    Ok(())
}

fn inspect(path: &str) -> Result<(), String> {
    let model = Model::load(path).map_err(|e| e.to_string())?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "# {} conventions, {} regexes", model.len(), model.regex_count()).ok();
    for e in &model.entries {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\tregexes={}\thosts={}\ttp={}\tfp={}\tfn={}",
            e.suffix,
            e.class.label(),
            if e.single { "single" } else { "multi" },
            e.taxonomy.label(),
            e.regexes.len(),
            e.hostnames,
            e.counts.tp,
            e.counts.fp,
            e.counts.fnn,
        )
        .ok();
    }
    Ok(())
}

fn query(path: &str, hosts: &[&str]) -> Result<(), String> {
    let model = Model::load(path).map_err(|e| e.to_string())?;
    let engine = Engine::new(&model);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut answer = |hostname: &str| {
        let x = engine.extract(hostname);
        let (suffix, class) = match x.nc {
            Some(i) => {
                let nc = &engine.conventions()[i];
                (nc.suffix.as_str(), nc.class.label())
            }
            None => ("-", "-"),
        };
        let asn = x.asn.map_or_else(|| "-".to_string(), |a| a.to_string());
        writeln!(out, "{hostname}\t{asn}\t{suffix}\t{class}").ok();
    };
    if hosts.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| format!("read error: {e}"))?;
            let h = line.trim();
            if !h.is_empty() && !h.starts_with('#') {
                answer(h);
            }
        }
    } else {
        for h in hosts {
            answer(h);
        }
    }
    Ok(())
}

fn serve(path: &str, addr: &str, workers: usize) -> Result<(), String> {
    let model = Model::load(path).map_err(|e| e.to_string())?;
    let engine = Arc::new(Engine::new(&model));
    let srv = ServerHandle::start(addr, engine, workers)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "serving {} conventions on {} (send SHUTDOWN to stop, RELOAD <path> to hot-swap)",
        model.len(),
        srv.local_addr()
    );
    srv.join();
    eprintln!("server stopped");
    Ok(())
}

/// Sends one protocol request line and prints the reply (including the
/// extra lines of a `STATS SUFFIX` listing).
fn send(addr: &str, line: &str) -> Result<(), String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let resp = client.request(line).map_err(|e| format!("request failed: {e}"))?;
    // `STATS SUFFIX` is multi-line: the first line is already part of
    // the listing (or the lone `.` terminator on an empty model).
    if line.trim() == "STATS SUFFIX" {
        if resp == "." {
            return Ok(());
        }
        println!("{resp}");
        for l in client.read_until_dot().map_err(|e| format!("request failed: {e}"))? {
            println!("{l}");
        }
        return Ok(());
    }
    println!("{resp}");
    Ok(())
}

/// Fires `requests` round-robin queries per connection across `conns`
/// parallel connections and reports aggregate lookups/sec.
fn loadgen(addr: &str, hosts_path: &str, conns: usize, requests: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(hosts_path)
        .map_err(|e| format!("cannot read {hosts_path}: {e}"))?;
    let hosts: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if hosts.is_empty() {
        return Err("no hostnames to send".into());
    }
    let conns = conns.max(1);
    let t0 = Instant::now();
    let totals: Result<Vec<(u64, u64)>, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let hosts = &hosts;
                scope.spawn(move || -> Result<(u64, u64), String> {
                    let mut client = Client::connect(addr)
                        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                    let (mut hits, mut misses) = (0u64, 0u64);
                    for i in 0..requests {
                        let h = hosts[(c + i * conns) % hosts.len()];
                        match client.query(h).map_err(|e| format!("query failed: {e}"))? {
                            Some(_) => hits += 1,
                            None => misses += 1,
                        }
                    }
                    Ok((hits, misses))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen thread panicked")).collect()
    });
    let totals = totals?;
    let secs = t0.elapsed().as_secs_f64();
    let hits: u64 = totals.iter().map(|t| t.0).sum();
    let misses: u64 = totals.iter().map(|t| t.1).sum();
    let total = hits + misses;
    println!(
        "{total} lookups over {conns} connections in {secs:.3}s = {:.0} lookups/sec \
         (hits={hits} misses={misses})",
        total as f64 / secs
    );
    Ok(())
}

/// Parses the `hoiho` CLI training format: `asn addr hostname` per line.
fn parse_training(text: &str) -> Result<TrainingSet, String> {
    let mut ts = TrainingSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        let mut it = line.split_whitespace();
        let asn: u32 =
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad ASN"))?;
        let addr =
            it.next().and_then(hoiho::iputil::parse_ipv4).ok_or_else(|| err("bad address"))?;
        let hostname = it.next().ok_or_else(|| err("missing hostname"))?;
        if it.next().is_some() {
            return Err(err("trailing fields"));
        }
        ts.push(Observation::new(hostname, addr, asn));
    }
    Ok(ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_parser_matches_cli_format() {
        let ts = parse_training("# c\n64500 192.0.2.1 as64500.x.example.net\n").unwrap();
        assert_eq!(ts.len(), 1);
        assert!(parse_training("x 1.2.3.4 h").is_err());
        assert!(parse_training("1 bad h").is_err());
        assert!(parse_training("1 1.2.3.4").is_err());
    }
}
