//! The model artifact: a line-based text serialization of a full
//! learned model.
//!
//! A *model* is what an offline learning run produces and a serving
//! process consumes: every learned naming convention with its regexes,
//! §4 quality class, single-ASN flag, Table 1 taxonomy, and evaluation
//! counts. The format is tab-separated records in the spirit of the
//! ITDK text formats the rest of the workspace already reads and
//! writes:
//!
//! ```text
//! # comments and blank lines are ignored anywhere
//! hoiho-model	1
//! S	equinix.com	good	0	complex	16
//! C	10	1	2	3	5	6
//! R	^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$
//! R	^(\d+)-.+\.equinix\.com$
//! E	1	2
//! ```
//!
//! * The header names the format and its version.
//! * `S` starts a convention: suffix, class label, single flag (0/1),
//!   taxonomy label, training hostname count.
//! * `C` carries the evaluation counts: TP, FP, FN, TN, unique
//!   congruent training ASNs, unique extracted values — exactly one per
//!   `S` block, before its regexes.
//! * `R` adds one regex (dialect of `hoiho::regex`) to the open block.
//! * The `E` trailer records the convention and regex totals, so a
//!   truncated file can never parse as a smaller valid model.
//!
//! Parsing is strict: every malformed, out-of-place, or missing record
//! is a [`ModelError`] naming the offending line — never a panic — and
//! [`Model::render`] → [`Model::parse`] → [`Model::render`] is a
//! fixpoint (property-tested in `tests/properties.rs`).

use hoiho::classify::NcClass;
use hoiho::convention::NamingConvention;
use hoiho::learner::LearnedConvention;
use hoiho::regex::Regex;
use hoiho::taxonomy::Taxonomy;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Format version written by [`Model::render`] and the only version
/// [`Model::parse`] accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Scalar evaluation counts carried by the artifact (the set-valued
/// fields of [`hoiho::eval::Counts`] are reduced to their sizes — the
/// classification in §4 only ever consumes the sizes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounts {
    /// True positives.
    pub tp: u32,
    /// False positives.
    pub fp: u32,
    /// False negatives.
    pub fnn: u32,
    /// True negatives.
    pub tn: u32,
    /// Distinct training ASNs among TP hostnames.
    pub unique_tp_asns: u32,
    /// Distinct extracted values across TPs and FPs.
    pub unique_extracted: u32,
}

impl EvalCounts {
    /// Reduces full evaluation counts to the artifact's scalars.
    pub fn from_counts(c: &hoiho::eval::Counts) -> EvalCounts {
        EvalCounts {
            tp: c.tp,
            fp: c.fp,
            fnn: c.fnn,
            tn: c.tn,
            unique_tp_asns: c.unique_tp_asns.len() as u32,
            unique_extracted: c.unique_extracted.len() as u32,
        }
    }
}

/// One serialized naming convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelEntry {
    /// The suffix the convention applies to.
    pub suffix: String,
    /// §4 quality class.
    pub class: NcClass,
    /// True when the convention extracts one unique ASN (Figure 2).
    pub single: bool,
    /// Table 1 shape taxonomy.
    pub taxonomy: Taxonomy,
    /// Number of training hostnames the convention was learned from.
    pub hostnames: u64,
    /// Evaluation counts over the training data.
    pub counts: EvalCounts,
    /// The regexes, in evaluation (rank) order.
    pub regexes: Vec<Regex>,
}

impl ModelEntry {
    /// Converts a freshly learned convention into its artifact form.
    pub fn from_learned(lc: &LearnedConvention) -> ModelEntry {
        ModelEntry {
            suffix: lc.convention.suffix.clone(),
            class: lc.class,
            single: lc.single,
            taxonomy: lc.taxonomy,
            hostnames: lc.hostnames as u64,
            counts: EvalCounts::from_counts(&lc.counts),
            regexes: lc.convention.regexes.clone(),
        }
    }

    /// The entry's convention, ready for extraction.
    pub fn convention(&self) -> NamingConvention {
        NamingConvention::new(&self.suffix, self.regexes.clone())
    }
}

/// A full learned model: the unit of offline→serving handoff.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    /// The conventions, in suffix order.
    pub entries: Vec<ModelEntry>,
}

/// A parse failure, pointing at the offending line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// 1-based line number; 0 when the failure is not tied to a line
    /// (e.g. an empty file).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl ModelError {
    fn at(line: usize, msg: impl Into<String>) -> ModelError {
        ModelError { line, msg: msg.into() }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ModelError {}

impl Model {
    /// Builds a model from learner output, sorted by suffix.
    pub fn from_learned(learned: &[LearnedConvention]) -> Model {
        let mut entries: Vec<ModelEntry> =
            learned.iter().map(ModelEntry::from_learned).collect();
        entries.sort_by(|a, b| a.suffix.cmp(&b.suffix));
        Model { entries }
    }

    /// Number of conventions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the model has no conventions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total regexes across all conventions.
    pub fn regex_count(&self) -> usize {
        self.entries.iter().map(|e| e.regexes.len()).sum()
    }

    /// Renders the artifact text. `parse(render(m)) == m` for every
    /// model whose suffixes are valid (non-empty, no whitespace).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("# hoiho-serve model artifact; format spec in DESIGN.md\n");
        let _ = writeln!(s, "hoiho-model\t{FORMAT_VERSION}");
        for e in &self.entries {
            let _ = writeln!(
                s,
                "S\t{}\t{}\t{}\t{}\t{}",
                e.suffix,
                e.class.label(),
                u8::from(e.single),
                e.taxonomy.label(),
                e.hostnames
            );
            let c = &e.counts;
            let _ = writeln!(
                s,
                "C\t{}\t{}\t{}\t{}\t{}\t{}",
                c.tp, c.fp, c.fnn, c.tn, c.unique_tp_asns, c.unique_extracted
            );
            for r in &e.regexes {
                let _ = writeln!(s, "R\t{r}");
            }
        }
        let _ = writeln!(s, "E\t{}\t{}", self.len(), self.regex_count());
        s
    }

    /// Parses the artifact text, reporting the first problem with its
    /// line number. Strictness guarantees: unknown record tags, short
    /// or overlong records, out-of-order records, duplicate suffixes,
    /// bad regexes, and truncation (missing or mismatched `E` trailer)
    /// are all errors.
    pub fn parse(text: &str) -> Result<Model, ModelError> {
        let mut entries: Vec<ModelEntry> = Vec::new();
        // The entry currently being assembled: set by `S`, completed by
        // its `C` + `R` lines, flushed by the next `S` or the trailer.
        let mut open: Option<(usize, ModelEntry, bool)> = None; // (line, entry, saw_counts)
        let mut saw_header = false;
        let mut trailer: Option<usize> = None;

        let flush = |open: &mut Option<(usize, ModelEntry, bool)>,
                     entries: &mut Vec<ModelEntry>|
         -> Result<(), ModelError> {
            if let Some((line, entry, saw_counts)) = open.take() {
                if !saw_counts {
                    return Err(ModelError::at(
                        line,
                        format!("suffix {} has no C (counts) record", entry.suffix),
                    ));
                }
                if entry.regexes.is_empty() {
                    return Err(ModelError::at(
                        line,
                        format!("suffix {} has no R (regex) records", entry.suffix),
                    ));
                }
                entries.push(entry);
            }
            Ok(())
        };

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim_end_matches('\r');
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            if let Some(tl) = trailer {
                return Err(ModelError::at(
                    lineno,
                    format!("content after the E trailer on line {tl}"),
                ));
            }
            if !saw_header {
                let mut f = line.split('\t');
                if f.next() != Some("hoiho-model") {
                    return Err(ModelError::at(lineno, "missing hoiho-model header"));
                }
                let version: u32 = f
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ModelError::at(lineno, "bad header version"))?;
                if version != FORMAT_VERSION {
                    return Err(ModelError::at(
                        lineno,
                        format!("unsupported model version {version} (expected {FORMAT_VERSION})"),
                    ));
                }
                if f.next().is_some() {
                    return Err(ModelError::at(lineno, "trailing fields in header"));
                }
                saw_header = true;
                continue;
            }
            let (tag, rest) = line.split_once('\t').unwrap_or((line, ""));
            match tag {
                "S" => {
                    flush(&mut open, &mut entries)?;
                    let fields: Vec<&str> = rest.split('\t').collect();
                    if fields.len() != 5 {
                        return Err(ModelError::at(
                            lineno,
                            format!("S record needs 5 fields, got {}", fields.len()),
                        ));
                    }
                    let suffix = fields[0];
                    if suffix.is_empty() || suffix.chars().any(|c| c.is_whitespace()) {
                        return Err(ModelError::at(lineno, "bad suffix"));
                    }
                    if entries.iter().any(|e| e.suffix == suffix) {
                        return Err(ModelError::at(
                            lineno,
                            format!("duplicate suffix {suffix}"),
                        ));
                    }
                    let class = NcClass::parse_label(fields[1]).ok_or_else(|| {
                        ModelError::at(lineno, format!("unknown class {:?}", fields[1]))
                    })?;
                    let single = match fields[2] {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(ModelError::at(
                                lineno,
                                format!("bad single flag {other:?} (want 0 or 1)"),
                            ))
                        }
                    };
                    let taxonomy = Taxonomy::parse_label(fields[3]).ok_or_else(|| {
                        ModelError::at(lineno, format!("unknown taxonomy {:?}", fields[3]))
                    })?;
                    let hostnames: u64 = fields[4].parse().map_err(|_| {
                        ModelError::at(lineno, format!("bad hostname count {:?}", fields[4]))
                    })?;
                    open = Some((
                        lineno,
                        ModelEntry {
                            suffix: suffix.to_string(),
                            class,
                            single,
                            taxonomy,
                            hostnames,
                            counts: EvalCounts::default(),
                            regexes: Vec::new(),
                        },
                        false,
                    ));
                }
                "C" => {
                    let Some((_, entry, saw_counts)) = open.as_mut() else {
                        return Err(ModelError::at(lineno, "C record outside an S block"));
                    };
                    if *saw_counts {
                        return Err(ModelError::at(
                            lineno,
                            format!("duplicate C record for suffix {}", entry.suffix),
                        ));
                    }
                    if !entry.regexes.is_empty() {
                        return Err(ModelError::at(lineno, "C record after R records"));
                    }
                    let nums: Vec<u32> = rest
                        .split('\t')
                        .map(|v| v.parse::<u32>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| ModelError::at(lineno, "bad count field"))?;
                    let [tp, fp, fnn, tn, uta, ue] = nums[..] else {
                        return Err(ModelError::at(
                            lineno,
                            format!("C record needs 6 fields, got {}", nums.len()),
                        ));
                    };
                    entry.counts = EvalCounts {
                        tp,
                        fp,
                        fnn,
                        tn,
                        unique_tp_asns: uta,
                        unique_extracted: ue,
                    };
                    *saw_counts = true;
                }
                "R" => {
                    let Some((_, entry, saw_counts)) = open.as_mut() else {
                        return Err(ModelError::at(lineno, "R record outside an S block"));
                    };
                    if !*saw_counts {
                        return Err(ModelError::at(lineno, "R record before the C record"));
                    }
                    let r = Regex::parse(rest)
                        .map_err(|e| ModelError::at(lineno, format!("bad regex: {e}")))?;
                    entry.regexes.push(r);
                }
                "E" => {
                    flush(&mut open, &mut entries)?;
                    let fields: Vec<&str> = rest.split('\t').collect();
                    let counts: Vec<u64> = fields
                        .iter()
                        .map(|v| v.parse::<u64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| ModelError::at(lineno, "bad trailer field"))?;
                    let [n_entries, n_regexes] = counts[..] else {
                        return Err(ModelError::at(
                            lineno,
                            format!("E trailer needs 2 fields, got {}", counts.len()),
                        ));
                    };
                    let model = Model { entries: std::mem::take(&mut entries) };
                    if n_entries != model.len() as u64 || n_regexes != model.regex_count() as u64
                    {
                        return Err(ModelError::at(
                            lineno,
                            format!(
                                "trailer mismatch: file says {n_entries} conventions / \
                                 {n_regexes} regexes, parsed {} / {}",
                                model.len(),
                                model.regex_count()
                            ),
                        ));
                    }
                    entries = model.entries;
                    trailer = Some(lineno);
                }
                other => {
                    return Err(ModelError::at(
                        lineno,
                        format!("unknown record tag {other:?}"),
                    ));
                }
            }
        }
        if !saw_header {
            return Err(ModelError::at(0, "empty model file (no header)"));
        }
        if trailer.is_none() {
            // Covers both an open S block and a clean cut between
            // blocks: without the trailer the file is truncated.
            return Err(ModelError::at(
                text.lines().count(),
                "truncated model: missing E trailer",
            ));
        }
        Ok(Model { entries })
    }

    /// Writes the rendered artifact to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Reads and parses an artifact file.
    pub fn load(path: impl AsRef<Path>) -> Result<Model, ModelError> {
        let text = std::fs::read_to_string(&path).map_err(|e| {
            ModelError::at(0, format!("cannot read {}: {e}", path.as_ref().display()))
        })?;
        Model::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(suffix: &str, rx: &[&str]) -> ModelEntry {
        ModelEntry {
            suffix: suffix.to_string(),
            class: NcClass::Good,
            single: false,
            taxonomy: Taxonomy::Start,
            hostnames: 12,
            counts: EvalCounts {
                tp: 9,
                fp: 1,
                fnn: 2,
                tn: 0,
                unique_tp_asns: 4,
                unique_extracted: 5,
            },
            regexes: rx.iter().map(|s| Regex::parse(s).unwrap()).collect(),
        }
    }

    fn model() -> Model {
        Model {
            entries: vec![
                entry("equinix.com", &[r"^(\d+)-.+\.equinix\.com$", r"^as(\d+)\.equinix\.com$"]),
                entry("nts.ch", &[r"as(\d+)\.nts\.ch$"]),
            ],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let m = model();
        let text = m.render();
        let parsed = Model::parse(&text).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn empty_model_round_trips() {
        let m = Model::default();
        assert_eq!(Model::parse(&m.render()).unwrap(), m);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!("# leading\n\n{}\n# trailing comment\n\n", model().render());
        assert_eq!(Model::parse(&text).unwrap(), model());
    }

    #[test]
    fn truncation_is_detected() {
        let text = model().render();
        let lines: Vec<&str> = text.lines().collect();
        // Every strict prefix that drops at least the trailer must fail.
        for cut in 0..lines.len() {
            let prefix = lines[..cut].join("\n");
            assert!(
                Model::parse(&prefix).is_err(),
                "prefix of {cut} lines parsed as a valid model"
            );
        }
    }

    #[test]
    fn trailer_counts_enforced() {
        let good = model().render();
        let bad = good.replace("E\t2\t3", "E\t1\t3");
        let err = Model::parse(&bad).unwrap_err();
        assert!(err.msg.contains("trailer mismatch"), "{err}");
        let bad = good.replace("E\t2\t3", "E\t2\t2");
        assert!(Model::parse(&bad).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Model::parse("hoiho-model\t1\nX\twhat\nE\t0\t0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("line 2:"), "{err}");

        let err = Model::parse("hoiho-model\t1\nR\t^(\\d+)$\nE\t0\t0\n").unwrap_err();
        assert_eq!((err.line, err.msg.contains("outside an S block")), (2, true));

        let err =
            Model::parse("hoiho-model\t1\nS\tx.com\tgood\t0\tstart\t3\nC\t1\t0\t0\t0\t1\t1\nR\t((\nE\t1\t1\n")
                .unwrap_err();
        assert_eq!((err.line, err.msg.starts_with("bad regex")), (4, true));
    }

    #[test]
    fn structural_errors_rejected() {
        // Duplicate suffix.
        let mut m = model();
        m.entries[1].suffix = "equinix.com".into();
        assert!(Model::parse(&m.render()).unwrap_err().msg.contains("duplicate suffix"));
        // Wrong version.
        assert!(Model::parse("hoiho-model\t9\nE\t0\t0\n")
            .unwrap_err()
            .msg
            .contains("unsupported model version"));
        // Missing header.
        assert!(Model::parse("S\tx.com\tgood\t0\tstart\t1\n").is_err());
        // No regexes in a block.
        assert!(Model::parse(
            "hoiho-model\t1\nS\tx.com\tgood\t0\tstart\t1\nC\t1\t0\t0\t0\t1\t1\nE\t1\t0\n"
        )
        .unwrap_err()
        .msg
        .contains("no R"));
        // Regexes before counts.
        assert!(Model::parse(
            "hoiho-model\t1\nS\tx.com\tgood\t0\tstart\t1\nR\t^as(\\d+)\\.x\\.com$\nE\t1\t1\n"
        )
        .unwrap_err()
        .msg
        .contains("before the C record"));
        // Content after the trailer.
        let text = format!("{}S\ty.com\tgood\t0\tstart\t1\n", model().render());
        assert!(Model::parse(&text).unwrap_err().msg.contains("after the E trailer"));
    }

    #[test]
    fn from_learned_sorts_by_suffix() {
        use hoiho::learner::{learn_all, LearnConfig};
        use hoiho::training::{Observation, TrainingSet};
        let mut ts = TrainingSet::new();
        for (h, a) in [
            ("as1000.a.zzz-example.net", 1000u32),
            ("as2000.b.zzz-example.net", 2000),
            ("as3000.c.zzz-example.net", 3000),
            ("as64500.border1.example.com", 64500),
            ("as64501.border2.example.com", 64501),
            ("as64502.core3.example.com", 64502),
        ] {
            ts.push(Observation::new(h, [192, 0, 2, 1], a));
        }
        let learned =
            learn_all(&ts.by_suffix(&hoiho_psl::PublicSuffixList::builtin()), &LearnConfig::default());
        let m = Model::from_learned(&learned);
        assert_eq!(m.len(), 2);
        assert_eq!(m.entries[0].suffix, "example.com");
        assert_eq!(m.entries[1].suffix, "zzz-example.net");
        assert!(m.entries.iter().all(|e| !e.regexes.is_empty()));
        assert_eq!(Model::parse(&m.render()).unwrap(), m);
    }
}
