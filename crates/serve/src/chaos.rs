//! `ChaosConn` — a seeded fault-injecting wrapper around a
//! [`TcpStream`], for proving the serving tier degrades gracefully
//! under the failures a real deployment sees (modeled on rift_rust's
//! `ChaosSocket`).
//!
//! Faults are injected on the *client* side of a connection, so the
//! decision stream is fully determined by [`ChaosConfig::seed`] and
//! independent of server timing: a given (seed, rate) always drops,
//! delays, garbles, truncates, and fragments at the same points in the
//! byte stream. The wrapper implements [`Read`] + [`Write`] and clones
//! like a `TcpStream` (both halves share one fault core), so it slots
//! in wherever a split reader/writer pair is used — `Client`
//! (`connect_opts`), `loadgen --chaos`, and the fuzz targets.
//!
//! ## Fault model
//!
//! Each `write` (and, for delays/early-EOF, each `read`) rolls one
//! Bernoulli trial at [`ChaosConfig::rate`]. On success one fault is
//! drawn uniformly:
//!
//! * **Fragment** — write exactly one byte and report a short write, so
//!   a `write_all` caller splits the request at every byte boundary.
//! * **Delay** — sleep 1–10 ms, then write normally (reordering
//!   pressure for pipelined peers; bounded so runs terminate).
//! * **Garbage** — inject 1–8 junk bytes (lowercase/punctuation only —
//!   never an admin verb) *before* the real payload, corrupting the
//!   current protocol line or appending a bogus request.
//! * **Truncate+drop** — write only a prefix of the payload, then shut
//!   the socket down both ways; every later I/O on either half fails
//!   (`BrokenPipe`) and reads report EOF.
//! * **Early EOF** (read side) — shut the connection down instead of
//!   reading, so the peer's response is lost mid-flight.
//!
//! A dropped connection stays dropped — the caller is expected to
//! observe the error, count it, and reconnect. [`ChaosConn::stats`]
//! reports how many faults of each kind fired, so tests can assert the
//! chaos actually happened.

use hoiho_devkit::rng::{RngExt, SeedableRng, StdRng};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fault-injection parameters for one connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Per-operation fault probability in `[0, 1]`.
    pub rate: f64,
    /// Seed for the fault decision stream; equal seeds replay equal
    /// fault sequences.
    pub seed: u64,
}

impl ChaosConfig {
    /// A config that injects faults on roughly `rate` of operations.
    pub fn new(rate: f64, seed: u64) -> ChaosConfig {
        ChaosConfig { rate: rate.clamp(0.0, 1.0), seed }
    }
}

/// Counts of faults injected so far, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Single-byte short writes.
    pub fragments: u64,
    /// Sleeps injected before an operation.
    pub delays: u64,
    /// Junk-byte injections.
    pub garbage: u64,
    /// Truncated writes that also dropped the connection.
    pub truncations: u64,
    /// Connections shut down (truncate+drop or early EOF).
    pub drops: u64,
}

impl ChaosStats {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.fragments + self.delays + self.garbage + self.truncations + self.drops
    }
}

/// Shared fault state: both halves of a cloned connection draw from the
/// same decision stream, like two handles on one flaky NIC.
struct ChaosCore {
    rng: StdRng,
    rate: f64,
    dropped: bool,
    stats: ChaosStats,
}

/// Junk alphabet for garbage injection. Deliberately excludes uppercase
/// (no accidental `SHUTDOWN`/`RELOAD` from a loopback peer) but
/// includes `\n` and `\t` so injections can both corrupt the current
/// line and forge whole bogus requests.
const GARBAGE: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.-_#\t\n";

/// The write-side faults a trial can draw.
const WRITE_FAULTS: usize = 4; // fragment, delay, garbage, truncate+drop

/// A seeded fault-injecting `TcpStream` wrapper; see the module docs.
pub struct ChaosConn {
    stream: TcpStream,
    core: Arc<Mutex<ChaosCore>>,
}

impl ChaosConn {
    /// Wraps `stream` with fault injection per `cfg`.
    pub fn new(stream: TcpStream, cfg: ChaosConfig) -> ChaosConn {
        ChaosConn {
            stream,
            core: Arc::new(Mutex::new(ChaosCore {
                rng: StdRng::seed_from_u64(cfg.seed),
                rate: cfg.rate.clamp(0.0, 1.0),
                dropped: false,
                stats: ChaosStats::default(),
            })),
        }
    }

    /// Clones the handle; both clones share one fault core, so the
    /// combined decision stream stays deterministic.
    pub fn try_clone(&self) -> std::io::Result<ChaosConn> {
        Ok(ChaosConn { stream: self.stream.try_clone()?, core: Arc::clone(&self.core) })
    }

    /// Fault counts so far.
    pub fn stats(&self) -> ChaosStats {
        self.core.lock().expect("chaos core poisoned").stats
    }

    /// True once a drop fault has severed the connection.
    pub fn dropped(&self) -> bool {
        self.core.lock().expect("chaos core poisoned").dropped
    }

    /// Passes a read timeout through to the underlying socket.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Severs the connection now (the drop fault, on demand).
    fn sever(&self, core: &mut ChaosCore) {
        core.dropped = true;
        core.stats.drops += 1;
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

impl Write for ChaosConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut core = self.core.lock().expect("chaos core poisoned");
        if core.dropped {
            return Err(std::io::ErrorKind::BrokenPipe.into());
        }
        let rate = core.rate;
        if buf.is_empty() || !core.rng.random_bool(rate) {
            drop(core);
            return self.stream.write(buf);
        }
        match core.rng.random_range(0..WRITE_FAULTS as u32) {
            // Fragment: one byte per write_all iteration.
            0 => {
                core.stats.fragments += 1;
                drop(core);
                self.stream.write(&buf[..1])
            }
            // Delay, then write normally.
            1 => {
                core.stats.delays += 1;
                let ms = core.rng.random_range(1..=10u64);
                drop(core);
                std::thread::sleep(Duration::from_millis(ms));
                self.stream.write(buf)
            }
            // Garbage before the payload.
            2 => {
                core.stats.garbage += 1;
                let n = core.rng.random_range(1..=8usize);
                let junk: Vec<u8> = (0..n)
                    .map(|_| GARBAGE[core.rng.random_range(0..GARBAGE.len())])
                    .collect();
                drop(core);
                self.stream.write_all(&junk)?;
                self.stream.write(buf)
            }
            // Truncate the write and drop the connection.
            _ => {
                core.stats.truncations += 1;
                let keep = (buf.len() / 2).max(1);
                let n = self.stream.write(&buf[..keep]).unwrap_or(0);
                self.sever(&mut core);
                if n == 0 {
                    Err(std::io::ErrorKind::BrokenPipe.into())
                } else {
                    Ok(n)
                }
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

impl Read for ChaosConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut core = self.core.lock().expect("chaos core poisoned");
        if core.dropped {
            return Ok(0); // EOF: the connection is gone.
        }
        let rate = core.rate;
        if core.rng.random_bool(rate) {
            // Read-side trial: mostly delay, occasionally early EOF.
            if core.rng.random_bool(0.25) {
                self.sever(&mut core);
                return Ok(0);
            }
            core.stats.delays += 1;
            let ms = core.rng.random_range(1..=10u64);
            drop(core);
            std::thread::sleep(Duration::from_millis(ms));
            return self.stream.read(buf);
        }
        drop(core);
        self.stream.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// An echo peer: loops received bytes straight back.
    fn echo_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 4096];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
                // One connection per test; stop after it closes.
                break;
            }
        });
        (addr, h)
    }

    #[test]
    fn zero_rate_is_a_transparent_pipe() {
        let (addr, h) = echo_server();
        let mut c = ChaosConn::new(TcpStream::connect(addr).unwrap(), ChaosConfig::new(0.0, 7));
        let payload = b"as64500.example.com\n";
        c.write_all(payload).unwrap();
        let mut got = vec![0u8; payload.len()];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, payload);
        assert_eq!(c.stats().total(), 0);
        drop(c);
        h.join().unwrap();
    }

    #[test]
    fn fault_sequence_is_deterministic_in_the_seed() {
        // Drive two identically-seeded conns against echo servers and
        // compare the stats after the same operation sequence.
        let mut all_stats = Vec::new();
        for _ in 0..2 {
            let (addr, h) = echo_server();
            let mut c =
                ChaosConn::new(TcpStream::connect(addr).unwrap(), ChaosConfig::new(0.5, 42));
            for i in 0..50u32 {
                let line = format!("as{i}.example.com\n");
                if c.write_all(line.as_bytes()).is_err() {
                    break;
                }
            }
            all_stats.push(c.stats());
            drop(c);
            h.join().unwrap();
        }
        assert_eq!(all_stats[0], all_stats[1]);
        assert!(all_stats[0].total() > 0, "rate 0.5 over 50 writes injected nothing");
    }

    #[test]
    fn drop_fault_stays_dropped() {
        let (addr, h) = echo_server();
        let c = ChaosConn::new(TcpStream::connect(addr).unwrap(), ChaosConfig::new(1.0, 1));
        let mut w = c.try_clone().unwrap();
        // At rate 1.0 every write rolls a fault; the truncate+drop arm
        // must fire within a bounded number of writes.
        let mut severed = false;
        for _ in 0..200 {
            if w.write_all(b"x.example.com\n").is_err() || c.dropped() {
                severed = true;
                break;
            }
        }
        assert!(severed, "rate-1.0 chaos never dropped the connection");
        assert!(w.write_all(b"more\n").is_err(), "writes after a drop must fail");
        let mut r = c.try_clone().unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap_or(0), 0, "reads after a drop report EOF");
        assert!(c.stats().drops >= 1);
        drop((c, w, r));
        h.join().unwrap();
    }
}
