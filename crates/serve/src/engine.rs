//! The extraction engine: a read-optimized in-memory index over a
//! loaded [`Model`](crate::model::Model).
//!
//! Dispatch is keyed by suffix: a query hostname is mapped to its
//! PSL-derived registrable domain (reusing `hoiho-psl`, the same
//! grouping the learner used), and that suffix's naming convention runs
//! its compiled regexes in rank order — identical semantics to
//! [`NamingConvention::extract`], minus the per-call allocation churn.
//! When the registrable domain is not in the index (a model keyed under
//! a deeper suffix, or a PSL snapshot drift between trainer and
//! server), dispatch falls back to probing every label-boundary suffix
//! of the hostname, longest first.
//!
//! Batch extraction ([`Engine::extract_all`]) fans out over scoped
//! threads with each worker writing disjoint output slots, so results
//! are positionally deterministic regardless of thread count.

use crate::model::Model;
use hoiho::classify::NcClass;
use hoiho::regex::{CompiledRegex, MultiMatcher, Regex};
use hoiho_obs::{Counter, Registry};
use hoiho_psl::PublicSuffixList;
use std::collections::HashMap;

/// Minimum number of hostnames a batch worker must own before
/// [`Engine::extract_all`] spawns it. Extraction costs on the order of
/// a microsecond per hostname while a thread spawn costs tens of
/// microseconds, so fanning out a small batch is a net loss — the
/// `serve/extract/batch_4_threads` bench regressed to ~0.6x
/// single-threaded on a 213-hostname batch before this floor existed.
pub const MIN_BATCH_CHUNK: usize = 1024;

/// One compiled convention, ready to serve lookups. The regex ASTs are
/// kept for introspection; queries run the matcher programs, lowered
/// once at engine construction (model load).
#[derive(Debug, Clone)]
pub struct CompiledNc {
    /// The suffix the convention is keyed under.
    pub suffix: String,
    /// §4 quality class.
    pub class: NcClass,
    /// True when the convention labels a single ASN (Figure 2).
    pub single: bool,
    /// The regexes, in rank order.
    pub regexes: Vec<Regex>,
    /// The compiled form of `regexes`, same order.
    programs: Vec<CompiledRegex>,
    /// Literal dispatch over `programs`, when the pool is small enough
    /// for the bitmask fast path (`MultiMatcher::supports_mask`) —
    /// always true for real models, whose conventions carry a handful
    /// of regexes. One automaton scan of the hostname rules out the
    /// programs whose required literal never occurs.
    matcher: Option<MultiMatcher>,
}

impl CompiledNc {
    fn new(suffix: String, class: NcClass, single: bool, regexes: Vec<Regex>) -> CompiledNc {
        let programs: Vec<CompiledRegex> = regexes.iter().map(CompiledRegex::compile).collect();
        let matcher = Some(MultiMatcher::build(programs.iter())).filter(MultiMatcher::supports_mask);
        CompiledNc { suffix, class, single, regexes, programs, matcher }
    }

    /// Runs the convention on an already-lowercased hostname —
    /// first-match-wins, mirroring [`hoiho::NamingConvention::extract`]:
    /// the first matching regex provides the digits, and digits that
    /// overflow the 32-bit ASN space yield `None` without trying later
    /// regexes.
    pub fn extract_lower(&self, lower: &str) -> Option<u32> {
        if let Some(m) = &self.matcher {
            // Ascending bit order is pool order is rank order, so the
            // masked walk preserves first-match-wins exactly; skipped
            // programs are missing a required literal and cannot match.
            let mut mask = m.dispatch_mask(lower.as_bytes());
            while mask != 0 {
                let ri = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if let Some(digits) = self.programs[ri].extract(lower) {
                    return digits.parse::<u32>().ok();
                }
            }
            return None;
        }
        for p in &self.programs {
            if let Some(digits) = p.extract(lower) {
                return digits.parse::<u32>().ok();
            }
        }
        None
    }
}

/// The outcome of one lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extraction {
    /// Index into [`Engine::conventions`] of the dispatched NC, when
    /// some suffix in the index covered the hostname.
    pub nc: Option<usize>,
    /// The extracted ASN, when a regex matched.
    pub asn: Option<u32>,
}

impl Extraction {
    /// A lookup that found no convention to run.
    pub const MISS: Extraction = Extraction { nc: None, asn: None };
}

/// Pre-registered dispatch-outcome counters for an engine
/// (`hoiho_engine_extractions_total{dispatch=...}`): `exact` when the
/// PSL registrable domain hit the index directly, `fallback` when a
/// label-boundary suffix probe found the convention instead, `miss`
/// when no suffix covered the hostname. Cloning shares the underlying
/// counters.
#[derive(Debug, Clone)]
pub struct EngineObs {
    exact: Counter,
    fallback: Counter,
    miss: Counter,
}

impl EngineObs {
    /// Registers the three outcome series in `registry`. Engines
    /// attached to the same registry (e.g. across hot reloads)
    /// accumulate into the same counters.
    pub fn register(registry: &Registry) -> EngineObs {
        let c = |d| registry.counter("hoiho_engine_extractions_total", &[("dispatch", d)]);
        EngineObs { exact: c("exact"), fallback: c("fallback"), miss: c("miss") }
    }
}

/// A suffix-indexed, read-only extraction engine.
///
/// Construction compiles the model once; lookups never mutate, so one
/// engine can be shared across server workers behind an `Arc` and
/// hot-swapped atomically (see [`crate::server`]).
///
/// Counting is opt-in via [`Engine::attach_obs`]: an unattached engine
/// (the default, and what the benches measure) pays only a dead
/// `Option` check per lookup; an attached one adds a single relaxed
/// atomic increment.
#[derive(Debug, Clone)]
pub struct Engine {
    psl: PublicSuffixList,
    ncs: Vec<CompiledNc>,
    by_suffix: HashMap<String, usize>,
    obs: Option<EngineObs>,
}

impl Engine {
    /// Compiles a model into an engine using the built-in PSL snapshot.
    pub fn new(model: &Model) -> Engine {
        Engine::with_psl(model, PublicSuffixList::builtin())
    }

    /// Compiles a model with a caller-provided PSL (e.g. a full Mozilla
    /// list loaded at deploy time).
    pub fn with_psl(model: &Model, psl: PublicSuffixList) -> Engine {
        let ncs: Vec<CompiledNc> = model
            .entries
            .iter()
            .map(|e| CompiledNc::new(e.suffix.clone(), e.class, e.single, e.regexes.clone()))
            .collect();
        let by_suffix =
            ncs.iter().enumerate().map(|(i, nc)| (nc.suffix.clone(), i)).collect();
        Engine { psl, ncs, by_suffix, obs: None }
    }

    /// Attaches dispatch-outcome counters; every subsequent lookup
    /// increments exactly one of them.
    pub fn attach_obs(&mut self, obs: EngineObs) {
        self.obs = Some(obs);
    }

    /// The compiled conventions, index-addressable (the indices appear
    /// in [`Extraction::nc`] and the server's per-suffix stats).
    pub fn conventions(&self) -> &[CompiledNc] {
        &self.ncs
    }

    /// Number of conventions in the index.
    pub fn len(&self) -> usize {
        self.ncs.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ncs.is_empty()
    }

    /// Finds the convention index responsible for `lower` (an
    /// already-lowercased hostname), if any: the PSL registrable domain
    /// first, then every label-boundary suffix longest-first — the same
    /// probe order as [`PublicSuffixList::dispatch_keys`] (shared with
    /// the cluster router so both layers pick the same suffix), spelled
    /// out in two steps here so the dispatch-outcome counters can tell
    /// an exact registrable-domain hit from a fallback probe.
    fn dispatch(&self, lower: &str) -> Option<usize> {
        // The uninstrumented path stays the single shared-probe-order
        // iterator — measurably (~3%) cheaper than the spelled-out
        // version below, and what the extraction benches measure.
        let Some(obs) = &self.obs else {
            return self
                .psl
                .dispatch_keys(lower)
                .find_map(|k| self.by_suffix.get(k.as_ref()).copied());
        };
        if let Some(rd) = self.psl.registrable_domain(lower) {
            if let Some(&i) = self.by_suffix.get(rd.as_str()) {
                obs.exact.inc();
                return Some(i);
            }
        }
        for s in hoiho_psl::label_suffixes(lower) {
            if let Some(&i) = self.by_suffix.get(s) {
                obs.fallback.inc();
                return Some(i);
            }
        }
        obs.miss.inc();
        None
    }

    /// Looks up one hostname: dispatch to its suffix's NC, then run the
    /// regexes. Matching is case-insensitive (one lowercase pass here).
    pub fn extract(&self, hostname: &str) -> Extraction {
        self.extract_lower(&hostname.to_ascii_lowercase())
    }

    /// [`Engine::extract`] for a hostname the caller has already
    /// lowercased — the cluster router lowercases once for routing and
    /// must not pay for it again per shard.
    pub fn extract_lower(&self, lower: &str) -> Extraction {
        match self.dispatch(lower) {
            Some(i) => Extraction { nc: Some(i), asn: self.ncs[i].extract_lower(lower) },
            None => Extraction::MISS,
        }
    }

    /// Batch lookup over `threads` scoped workers (0 = one per core).
    ///
    /// Output slot `i` always holds the extraction for `hostnames[i]`,
    /// and each worker owns a disjoint contiguous chunk of the output,
    /// so the result is byte-identical for every thread count. Chunks
    /// never shrink below [`MIN_BATCH_CHUNK`] hostnames: a batch too
    /// small to amortize thread spawns runs on fewer workers (down to
    /// the calling thread alone), which changes nothing positionally.
    pub fn extract_all(&self, hostnames: &[String], threads: usize) -> Vec<Extraction> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        let threads = threads.max(1).min(hostnames.len().max(1));
        let mut out = vec![Extraction::MISS; hostnames.len()];
        let chunk = hostnames.len().div_ceil(threads).max(MIN_BATCH_CHUNK);
        if threads <= 1 || chunk >= hostnames.len() {
            for (slot, h) in out.iter_mut().zip(hostnames) {
                *slot = self.extract(h);
            }
            return out;
        }
        std::thread::scope(|scope| {
            for (inputs, slots) in hostnames.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (slot, h) in slots.iter_mut().zip(inputs) {
                        *slot = self.extract(h);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EvalCounts, Model, ModelEntry};
    use hoiho::taxonomy::Taxonomy;

    fn entry(suffix: &str, rx: &[&str]) -> ModelEntry {
        ModelEntry {
            suffix: suffix.to_string(),
            class: NcClass::Good,
            single: false,
            taxonomy: Taxonomy::Complex,
            hostnames: 10,
            counts: EvalCounts::default(),
            regexes: rx.iter().map(|s| Regex::parse(s).unwrap()).collect(),
        }
    }

    fn engine() -> Engine {
        Engine::new(&Model {
            entries: vec![
                entry(
                    "equinix.com",
                    &[r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$", r"^(\d+)-.+\.equinix\.com$"],
                ),
                entry("nts.ch", &[r"as(\d+)\.nts\.ch$"]),
            ],
        })
    }

    #[test]
    fn dispatch_and_extract() {
        let e = engine();
        let x = e.extract("p714.sgw.equinix.com");
        assert_eq!(x.asn, Some(714));
        assert_eq!(x.nc.map(|i| e.conventions()[i].suffix.as_str()), Some("equinix.com"));
        // Second regex in rank order.
        assert_eq!(e.extract("24482-fr5-ix.equinix.com").asn, Some(24482));
        // Covered suffix, no match: dispatched but no ASN.
        let x = e.extract("netflix.zh2.corp.eu.equinix.com");
        assert_eq!((x.nc.is_some(), x.asn), (true, None));
        // Unknown suffix: full miss.
        assert_eq!(e.extract("core1.example.org"), Extraction::MISS);
        assert_eq!(e.extract(""), Extraction::MISS);
    }

    #[test]
    fn case_insensitive() {
        let e = engine();
        assert_eq!(e.extract("GE0-2.01.P.AS15576.NTS.CH").asn, Some(15576));
    }

    #[test]
    fn deeper_than_registrable_suffix_reachable_via_fallback() {
        // A model keyed under a third-level suffix the PSL reduces past.
        let e = Engine::new(&Model {
            entries: vec![entry("net.example.com", &[r"^as(\d+)\.net\.example\.com$"])],
        });
        assert_eq!(e.extract("as100.net.example.com").asn, Some(100));
    }

    #[test]
    fn extraction_matches_convention_semantics() {
        // First matching regex wins even when its digits overflow u32 —
        // mirroring NamingConvention::extract exactly, which never falls
        // through to a later regex once one has matched.
        let e = Engine::new(&Model {
            entries: vec![entry(
                "x.com",
                &[r"-(\d+)\.x\.com$", r"^(\d+)-"],
            )],
        });
        assert_eq!(e.extract("123-99999999999.x.com").asn, None);
    }

    #[test]
    fn batch_is_positional_and_thread_invariant() {
        let e = engine();
        // Larger than MIN_BATCH_CHUNK so the threaded path actually
        // engages, and not a multiple of any chunk size.
        let hosts: Vec<String> = (0..(3 * MIN_BATCH_CHUNK + 17))
            .map(|i| match i % 4 {
                0 => format!("p{i}.sgw.equinix.com"),
                1 => format!("{i}-fr5-ix.equinix.com"),
                2 => format!("as{i}.nts.ch"),
                _ => format!("host{i}.example.org"),
            })
            .collect();
        let baseline = e.extract_all(&hosts, 1);
        assert_eq!(baseline.len(), hosts.len());
        for (i, h) in hosts.iter().enumerate() {
            assert_eq!(baseline[i], e.extract(h));
        }
        for threads in [2, 3, 8, 64, 0] {
            assert_eq!(e.extract_all(&hosts, threads), baseline, "threads={threads}");
        }
        assert!(e.extract_all(&[], 4).is_empty());
        // A batch below the chunk floor must stay identical too (it
        // runs on the calling thread regardless of `threads`).
        let small = &hosts[..MIN_BATCH_CHUNK / 2];
        assert_eq!(e.extract_all(small, 8), baseline[..small.len()]);
    }

    #[test]
    fn dispatch_outcome_counters_account_exactly() {
        let registry = Registry::new();
        let mut e = engine();
        e.attach_obs(EngineObs::register(&registry));
        e.extract("p714.sgw.equinix.com"); // registrable domain hit
        e.extract("as100.nts.ch"); // registrable domain hit
        e.extract("core1.example.org"); // no covering suffix
        let deep = Engine::with_psl(
            &Model {
                entries: vec![entry("net.example.com", &[r"^as(\d+)\.net\.example\.com$"])],
            },
            PublicSuffixList::builtin(),
        );
        let mut deep = deep;
        deep.attach_obs(EngineObs::register(&registry));
        deep.extract("as100.net.example.com"); // deeper than the PSL rd: fallback
        let text = registry.render();
        assert!(
            text.contains("hoiho_engine_extractions_total{dispatch=\"exact\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("hoiho_engine_extractions_total{dispatch=\"fallback\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("hoiho_engine_extractions_total{dispatch=\"miss\"} 1"),
            "{text}"
        );
    }

    /// A pool past the 64-regex bitmask limit drops to the plain
    /// rank-order loop and answers identically to a masked engine
    /// holding the same effective convention.
    #[test]
    fn oversized_pool_falls_back_to_rank_order_loop() {
        let real = [r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$", r"^(\d+)-.+\.equinix\.com$"];
        // 70 never-matching decoys ahead of the real regexes keep rank
        // order observable: the decoys must all be tried (and fail)
        // before the real ones win.
        let mut pool: Vec<String> =
            (0..70).map(|i| format!(r"^decoy{i}x(\d+)\.equinix\.com$")).collect();
        pool.extend(real.iter().map(|s| s.to_string()));
        let refs: Vec<&str> = pool.iter().map(String::as_str).collect();
        let big = Engine::new(&Model { entries: vec![entry("equinix.com", &refs)] });
        let small = Engine::new(&Model { entries: vec![entry("equinix.com", &real)] });
        for h in ["p714.sgw.equinix.com", "24482-fr5-ix.equinix.com", "www.equinix.com"] {
            assert_eq!(big.extract(h).asn, small.extract(h).asn, "{h}");
        }
    }

    #[test]
    fn prelowered_extraction_matches() {
        let e = engine();
        for h in ["GE0-2.01.P.AS15576.NTS.CH", "p714.sgw.equinix.com", "x.example.org"] {
            assert_eq!(e.extract_lower(&h.to_ascii_lowercase()), e.extract(h));
        }
    }
}
