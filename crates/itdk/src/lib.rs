//! # hoiho-itdk — ITDK-style snapshots and the 2010–2020 timeline
//!
//! CAIDA's Internet Topology Data Kits bundle traceroute-derived router
//! graphs with per-router AS annotations. The paper trains Hoiho on 17
//! ITDKs (July 2010 – January 2020; RouterToAsAssignment annotations
//! through February 2017, bdrmapIT afterwards) plus two PeeringDB
//! snapshots — 19 training sets in all.
//!
//! This crate reproduces that pipeline on the synthetic Internet:
//!
//! * [`alias`] — the MIDAR-style alias resolution model: only addresses
//!   observed in traceroutes are known, and resolution is incomplete
//!   (a per-snapshot fraction of interfaces stay singletons).
//! * [`mod@format`] — the ITDK text formats (`nodes`, `nodes.as`,
//!   `hostnames` files) for storing snapshots.
//! * [`timeline`](timeline()) — 19 [`SnapshotSpec`]s whose parameters
//!   evolve the way §4 describes: more operators embed ASNs over time,
//!   more vantage points observe them, and the annotation method
//!   improves.
//! * [`BuiltSnapshot`] — a fully built snapshot: the Internet, the
//!   traceroute corpus, the router graph, per-router training ASNs, and
//!   the Hoiho training set derived from them.

pub mod alias;
pub mod format;

use hoiho::training::{Observation, TrainingSet};
use hoiho_asdb::Asn;
use hoiho_bdrmap::graph::RouterGraph;
use hoiho_bdrmap::refine::RefineConfig;
use hoiho_bdrmap::{refine, rtaa, InferenceInput, Trace};
use hoiho_netsim::config::StyleMix;
use hoiho_netsim::traceroute::run_traceroutes;
use hoiho_netsim::{Internet, SimConfig};
use hoiho_pdb::{synthesize, PdbConfig, PeeringDbSnapshot};

/// How training ASNs are produced for a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// RouterToAsAssignment (election + degree), 2010–2017 ITDKs.
    Rtaa,
    /// bdrmapIT graph refinement, 2017–2020 ITDKs.
    BdrmapIt,
    /// Operator-recorded ASNs from PeeringDB.
    PeeringDb,
}

impl Method {
    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Method::Rtaa => "RTAA",
            Method::BdrmapIt => "bdrmapIT",
            Method::PeeringDb => "PeeringDB",
        }
    }
}

/// Parameters of one training-set snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotSpec {
    /// Label, e.g. `2020-01`.
    pub label: String,
    /// Annotation method.
    pub method: Method,
    /// Simulation config (already year-scaled).
    pub cfg: SimConfig,
    /// Fraction of observed interfaces alias resolution fails to place.
    pub alias_split: f64,
}

/// The canonical 19-set timeline mirroring the paper's training data:
/// 12 RTAA ITDKs, 5 bdrmapIT ITDKs, 2 PeeringDB snapshots.
pub fn timeline() -> Vec<SnapshotSpec> {
    let itdk_labels = [
        "2010-07", "2011-01", "2011-10", "2012-07", "2013-04", "2013-07", "2014-04", "2014-12",
        "2015-08", "2016-03", "2016-09", "2017-02", // RTAA era
        "2017-08", "2018-03", "2018-10", "2019-04", "2020-01", // bdrmapIT era
    ];
    let mut specs: Vec<SnapshotSpec> = itdk_labels
        .iter()
        .enumerate()
        .map(|(i, label)| {
            let method = if i < 12 { Method::Rtaa } else { Method::BdrmapIt };
            SnapshotSpec {
                label: label.to_string(),
                method,
                cfg: year_config(i, 17),
                alias_split: 0.5 - 0.015 * i as f64,
            }
        })
        .collect();
    // Two PeeringDB snapshots share the late-era Internet parameters.
    for (j, label) in ["2019-08-peeringdb", "2020-02-peeringdb"].iter().enumerate() {
        specs.push(SnapshotSpec {
            label: label.to_string(),
            method: Method::PeeringDb,
            cfg: year_config(15 + j, 17),
            alias_split: 0.3,
        });
    }
    specs
}

/// Scales the default config for snapshot `i` of `n`: ASN-embedding
/// conventions, vantage points, and topology size all grow over the
/// decade (§4 names the first two as the growth factors behind Figure
/// 5; ITDK topology growth supplies the third).
fn year_config(i: usize, n: usize) -> SimConfig {
    let t = i as f64 / (n - 1) as f64; // 0.0 (2010) → 1.0 (2020)
    let base = SimConfig::default();
    let grow = 0.45 + 0.8 * t; // scale on ASN-embedding style weights
    SimConfig {
        seed: 0x17D0 + 37 * i as u64,
        vantage_points: (12.0 + 36.0 * t) as usize,
        tier2: (48.0 + 44.0 * t) as usize,
        edge: (320.0 + 380.0 * t) as usize,
        styles: StyleMix {
            simple: base.styles.simple * grow,
            start: base.styles.start * grow,
            end: base.styles.end * grow,
            bare: base.styles.bare * grow,
            complex: base.styles.complex * grow,
            own_asn: base.styles.own_asn * (0.7 + 0.5 * t),
            ..base.styles
        },
        ..base
    }
}

/// A fully built snapshot.
pub struct BuiltSnapshot {
    /// The spec it was built from.
    pub spec: SnapshotSpec,
    /// The synthetic Internet (ground truth included).
    pub internet: Internet,
    /// Inference input (BGP, relationships, aliases, traces).
    pub input: InferenceInput,
    /// The traceroute-derived router graph.
    pub graph: RouterGraph,
    /// Per-router training ASNs (indexed like `graph.routers`). Empty
    /// for PeeringDB snapshots.
    pub owners: Vec<Option<Asn>>,
    /// The PeeringDB snapshot (only for [`Method::PeeringDb`]).
    pub peeringdb: Option<PeeringDbSnapshot>,
}

impl BuiltSnapshot {
    /// Builds a snapshot from its spec.
    pub fn build(spec: &SnapshotSpec) -> BuiltSnapshot {
        let internet = Internet::generate(&spec.cfg);
        let ts = run_traceroutes(&internet);
        let traces: Vec<Trace> = ts
            .paths
            .iter()
            .map(|p| Trace { vp_asn: p.vp_asn, dst: p.dst, hops: p.hops.clone() })
            .collect();
        let aliases = alias::resolve(&internet, &traces, spec.alias_split, spec.cfg.seed);
        let input = InferenceInput {
            bgp: internet.aslevel.bgp.clone(),
            rel: internet.aslevel.rel.clone(),
            org: internet.aslevel.org.clone(),
            ixps: internet.aslevel.ixps.clone(),
            aliases,
            traces,
        };
        let graph = RouterGraph::build(&input);
        let (owners, peeringdb) = match spec.method {
            Method::Rtaa => (rtaa::infer(&graph, &input), None),
            Method::BdrmapIt => {
                (refine::infer(&graph, &input, &RefineConfig::default()), None)
            }
            Method::PeeringDb => {
                let snap = synthesize(&internet, &PdbConfig { seed: spec.cfg.seed, ..Default::default() });
                (Vec::new(), Some(snap))
            }
        };
        BuiltSnapshot { spec: spec.clone(), internet, input, graph, owners, peeringdb }
    }

    /// The Hoiho training set: one observation per *observed* interface
    /// with a hostname, annotated with the training ASN of its inferred
    /// router (or the PeeringDB-recorded ASN).
    pub fn training_set(&self) -> TrainingSet {
        let mut ts = TrainingSet::new();
        if let Some(pdb) = &self.peeringdb {
            for o in hoiho_pdb::training_observations(&self.internet, pdb) {
                ts.push(o);
            }
            return ts;
        }
        for (&addr, &ridx) in &self.graph.by_addr {
            let Some(iface) = self.internet.iface_at(addr) else { continue };
            let Some(hostname) = iface.hostname.as_deref() else { continue };
            let Some(asn) = self.owners[ridx] else { continue };
            ts.push(Observation::new(hostname, hoiho_asdb::addr_octets(addr), asn));
        }
        ts
    }

    /// Ground-truth accuracy of the training ASNs over observed routers
    /// (routers whose true operator is known and inference produced an
    /// ASN). PeeringDB snapshots score their records instead.
    pub fn training_accuracy(&self) -> f64 {
        if let Some(pdb) = &self.peeringdb {
            if pdb.is_empty() {
                return 0.0;
            }
            let ok = pdb.records.iter().filter(|r| r.correct()).count();
            return ok as f64 / pdb.len() as f64;
        }
        let mut ok = 0usize;
        let mut all = 0usize;
        for (&addr, &ridx) in &self.graph.by_addr {
            let Some(truth) = self.internet.owner_of_addr(addr) else { continue };
            let Some(inferred) = self.owners[ridx] else { continue };
            all += 1;
            if truth == inferred || self.input.org.siblings(truth, inferred) {
                ok += 1;
            }
        }
        if all == 0 {
            0.0
        } else {
            ok as f64 / all as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(method: Method) -> SnapshotSpec {
        SnapshotSpec {
            label: "test".into(),
            method,
            cfg: SimConfig::tiny(51),
            alias_split: 0.3,
        }
    }

    #[test]
    fn timeline_matches_paper_structure() {
        let tl = timeline();
        assert_eq!(tl.len(), 19);
        assert_eq!(tl.iter().filter(|s| s.method == Method::Rtaa).count(), 12);
        assert_eq!(tl.iter().filter(|s| s.method == Method::BdrmapIt).count(), 5);
        assert_eq!(tl.iter().filter(|s| s.method == Method::PeeringDb).count(), 2);
        // Growth: later snapshots see more VPs and bigger style weights.
        assert!(tl[16].cfg.vantage_points > tl[0].cfg.vantage_points);
        assert!(tl[16].cfg.styles.start > tl[0].cfg.styles.start);
        assert!(tl[0].alias_split > tl[11].alias_split);
    }

    #[test]
    fn build_rtaa_snapshot() {
        let snap = BuiltSnapshot::build(&tiny_spec(Method::Rtaa));
        assert!(!snap.graph.is_empty());
        assert_eq!(snap.owners.len(), snap.graph.len());
        let ts = snap.training_set();
        assert!(!ts.is_empty(), "no training observations");
        let acc = snap.training_accuracy();
        assert!(acc > 0.5 && acc <= 1.0, "implausible RTAA accuracy {acc}");
    }

    #[test]
    fn bdrmapit_more_accurate_than_rtaa() {
        let r = BuiltSnapshot::build(&tiny_spec(Method::Rtaa));
        let b = BuiltSnapshot::build(&tiny_spec(Method::BdrmapIt));
        assert!(
            b.training_accuracy() >= r.training_accuracy(),
            "bdrmapIT {} < RTAA {}",
            b.training_accuracy(),
            r.training_accuracy()
        );
    }

    #[test]
    fn peeringdb_snapshot() {
        let snap = BuiltSnapshot::build(&tiny_spec(Method::PeeringDb));
        assert!(snap.peeringdb.is_some());
        let ts = snap.training_set();
        assert!(!ts.is_empty());
        assert!(snap.training_accuracy() > 0.9);
    }

    #[test]
    fn training_observations_use_observed_interfaces_only() {
        let snap = BuiltSnapshot::build(&tiny_spec(Method::Rtaa));
        for o in snap.training_set().observations() {
            let addr = hoiho_asdb::addr_from_octets(o.addr);
            assert!(snap.graph.by_addr.contains_key(&addr));
        }
    }
}
