//! ITDK text formats.
//!
//! The real kits ship routers and annotations as line-based text files;
//! the same formats here let snapshots be stored and diffed:
//!
//! * `nodes`    — `node N<i>:  <addr> <addr> ...`
//! * `nodes.as` — `node.AS N<i> <asn> <method>`
//! * `hostnames` — `<addr> <hostname>`

use hoiho_asdb::{addr_parse, addr_to_string, Addr, Asn};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A stored snapshot: routers, annotations, hostnames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ItdkFiles {
    /// Router id → interface addresses.
    pub nodes: BTreeMap<u32, Vec<Addr>>,
    /// Router id → (ASN, method tag).
    pub node_as: BTreeMap<u32, (Asn, String)>,
    /// Address → hostname.
    pub hostnames: BTreeMap<Addr, String>,
}

impl ItdkFiles {
    /// Renders the `nodes` file.
    pub fn nodes_file(&self) -> String {
        let mut out = String::new();
        for (id, addrs) in &self.nodes {
            let list: Vec<String> = addrs.iter().map(|&a| addr_to_string(a)).collect();
            let _ = writeln!(out, "node N{}:  {}", id, list.join(" "));
        }
        out
    }

    /// Renders the `nodes.as` file.
    pub fn node_as_file(&self) -> String {
        let mut out = String::new();
        for (id, (asn, method)) in &self.node_as {
            let _ = writeln!(out, "node.AS N{id} {asn} {method}");
        }
        out
    }

    /// Renders the `hostnames` file.
    pub fn hostnames_file(&self) -> String {
        let mut out = String::new();
        for (addr, name) in &self.hostnames {
            let _ = writeln!(out, "{} {}", addr_to_string(*addr), name);
        }
        out
    }

    /// Parses all three files (any may be empty).
    pub fn parse(nodes: &str, node_as: &str, hostnames: &str) -> Result<ItdkFiles, String> {
        let mut out = ItdkFiles::default();
        for (lineno, raw) in nodes.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("nodes line {}: {m}: {line}", lineno + 1);
            let rest = line.strip_prefix("node N").ok_or_else(|| err("bad prefix"))?;
            let (id_s, addrs_s) = rest.split_once(':').ok_or_else(|| err("missing colon"))?;
            let id: u32 = id_s.trim().parse().map_err(|_| err("bad id"))?;
            let mut addrs = Vec::new();
            for tok in addrs_s.split_whitespace() {
                addrs.push(addr_parse(tok).ok_or_else(|| err("bad address"))?);
            }
            out.nodes.insert(id, addrs);
        }
        for (lineno, raw) in node_as.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("nodes.as line {}: {m}: {line}", lineno + 1);
            let rest = line.strip_prefix("node.AS N").ok_or_else(|| err("bad prefix"))?;
            let mut it = rest.split_whitespace();
            let id: u32 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad id"))?;
            let asn: Asn = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad asn"))?;
            let method = it.next().unwrap_or("unknown").to_string();
            out.node_as.insert(id, (asn, method));
        }
        for (lineno, raw) in hostnames.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("hostnames line {}: {m}: {line}", lineno + 1);
            let (addr_s, name) = line.split_once(' ').ok_or_else(|| err("missing space"))?;
            let addr = addr_parse(addr_s).ok_or_else(|| err("bad address"))?;
            out.hostnames.insert(addr, name.trim().to_string());
        }
        Ok(out)
    }
}

/// Extracts the stored-file view of a built snapshot.
pub fn files_of(snap: &crate::BuiltSnapshot) -> ItdkFiles {
    let mut out = ItdkFiles::default();
    for (idx, node) in snap.graph.routers.iter().enumerate() {
        let id = idx as u32;
        out.nodes.insert(id, node.interfaces.clone());
        if let Some(asn) = snap.owners.get(idx).copied().flatten() {
            out.node_as.insert(id, (asn, snap.spec.method.label().to_string()));
        }
        for &addr in &node.interfaces {
            if let Some(iface) = snap.internet.iface_at(addr) {
                if let Some(h) = iface.hostname.as_deref() {
                    out.hostnames.insert(addr, h.to_string());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ItdkFiles {
        let mut f = ItdkFiles::default();
        f.nodes.insert(1, vec![addr_parse("10.0.0.1").unwrap(), addr_parse("20.0.0.1").unwrap()]);
        f.nodes.insert(2, vec![addr_parse("30.0.0.1").unwrap()]);
        f.node_as.insert(1, (64500, "bdrmapIT".to_string()));
        f.hostnames
            .insert(addr_parse("10.0.0.1").unwrap(), "as64500.x.example.com".to_string());
        f
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let parsed =
            ItdkFiles::parse(&f.nodes_file(), &f.node_as_file(), &f.hostnames_file()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn file_shapes() {
        let f = sample();
        assert!(f.nodes_file().starts_with("node N1:  10.0.0.1 20.0.0.1"));
        assert_eq!(f.node_as_file().trim(), "node.AS N1 64500 bdrmapIT");
        assert_eq!(f.hostnames_file().trim(), "10.0.0.1 as64500.x.example.com");
    }

    #[test]
    fn parse_errors() {
        assert!(ItdkFiles::parse("garbage", "", "").is_err());
        assert!(ItdkFiles::parse("node Nx: 1.2.3.4", "", "").is_err());
        assert!(ItdkFiles::parse("", "node.AS N1 x", "").is_err());
        assert!(ItdkFiles::parse("", "", "1.2.3.4").is_err());
        assert!(ItdkFiles::parse("", "", "bad.addr host").is_err());
    }

    #[test]
    fn comments_skipped() {
        let f = ItdkFiles::parse("# hi\n", "# hi\n", "# hi\n").unwrap();
        assert!(f.nodes.is_empty());
    }

    #[test]
    fn files_of_built_snapshot() {
        let spec = crate::SnapshotSpec {
            label: "t".into(),
            method: crate::Method::BdrmapIt,
            cfg: hoiho_netsim::SimConfig::tiny(71),
            alias_split: 0.3,
        };
        let snap = crate::BuiltSnapshot::build(&spec);
        let files = files_of(&snap);
        assert_eq!(files.nodes.len(), snap.graph.len());
        assert!(!files.hostnames.is_empty());
        assert!(!files.node_as.is_empty());
        // Round-trips through text.
        let parsed = ItdkFiles::parse(
            &files.nodes_file(),
            &files.node_as_file(),
            &files.hostnames_file(),
        )
        .unwrap();
        assert_eq!(parsed, files);
    }
}
