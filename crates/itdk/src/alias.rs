//! MIDAR-style alias resolution model.
//!
//! ITDK routers come from alias resolution over the addresses observed
//! in traceroutes. The model here is deliberately conservative, like the
//! real tooling: only observed addresses participate, and a per-snapshot
//! fraction of interfaces cannot be placed and remain singletons (the
//! paper's early ITDKs resolved far fewer aliases than recent ones).

use hoiho_asdb::Addr;
use hoiho_bdrmap::Trace;
use hoiho_netsim::Internet;
use hoiho_devkit::rngs::StdRng;
use hoiho_devkit::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Groups interface addresses into alias sets by ground-truth router.
///
/// A router participates once any of its addresses was observed in a
/// trace; alias probing (MIDAR-style) then discovers the router's other
/// interfaces too, so the set covers all of the router's addresses —
/// except that resolution is incomplete: each interface fails to be
/// placed with probability `split_rate` (observed ones become singleton
/// routers downstream; unobserved ones vanish). Returns only sets with
/// at least two members — singletons need no alias set.
pub fn resolve(
    net: &Internet,
    traces: &[Trace],
    split_rate: f64,
    seed: u64,
) -> Vec<Vec<Addr>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A_5E75);
    // Observed addresses that belong to interfaces (destinations that
    // responded are hosts, not router interfaces).
    let mut observed: BTreeSet<Addr> = BTreeSet::new();
    for t in traces {
        for h in t.hops.iter().flatten() {
            if net.iface_at(*h).is_some() {
                observed.insert(*h);
            }
        }
    }
    // Routers with at least one observed interface.
    let probed: BTreeSet<u32> =
        observed.iter().map(|&a| net.iface_at(a).expect("observed iface").router).collect();
    let mut by_router: BTreeMap<u32, Vec<Addr>> = BTreeMap::new();
    for iface in &net.interfaces {
        if !probed.contains(&iface.router) {
            continue;
        }
        // IXP LAN addresses respond poorly to alias probing (shared
        // media, filtered), so MIDAR only places the ones traceroute
        // itself observed.
        if iface.kind == hoiho_netsim::internet::IfaceKind::IxpLan
            && !observed.contains(&iface.addr)
        {
            continue;
        }
        if rng.random_bool(split_rate) {
            continue; // resolution failed for this interface
        }
        by_router.entry(iface.router).or_default().push(iface.addr);
    }
    by_router.into_values().filter(|v| v.len() >= 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoiho_netsim::traceroute::run_traceroutes;
    use hoiho_netsim::SimConfig;

    fn setup() -> (Internet, Vec<Trace>) {
        let net = Internet::generate(&SimConfig::tiny(61));
        let ts = run_traceroutes(&net);
        let traces = ts
            .paths
            .iter()
            .map(|p| Trace { vp_asn: p.vp_asn, dst: p.dst, hops: p.hops.clone() })
            .collect();
        (net, traces)
    }

    #[test]
    fn sets_group_same_router_only() {
        let (net, traces) = setup();
        let sets = resolve(&net, &traces, 0.0, 1);
        assert!(!sets.is_empty());
        for set in &sets {
            assert!(set.len() >= 2);
            let r = net.iface_at(set[0]).unwrap().router;
            for &a in set {
                assert_eq!(net.iface_at(a).unwrap().router, r);
            }
        }
    }

    #[test]
    fn split_rate_shrinks_sets() {
        let (net, traces) = setup();
        let full: usize = resolve(&net, &traces, 0.0, 1).iter().map(|s| s.len()).sum();
        let half: usize = resolve(&net, &traces, 0.5, 1).iter().map(|s| s.len()).sum();
        assert!(half < full, "split rate had no effect ({half} vs {full})");
        let none: usize = resolve(&net, &traces, 1.0, 1).iter().map(|s| s.len()).sum();
        assert_eq!(none, 0);
    }

    #[test]
    fn only_probed_routers_included() {
        let (net, traces) = setup();
        let mut probed = BTreeSet::new();
        for t in &traces {
            for h in t.hops.iter().flatten() {
                if let Some(i) = net.iface_at(*h) {
                    probed.insert(i.router);
                }
            }
        }
        let sets = resolve(&net, &traces, 0.0, 1);
        let mut unobserved_included = 0usize;
        let mut observed_addrs = BTreeSet::new();
        for t in &traces {
            for h in t.hops.iter().flatten() {
                observed_addrs.insert(*h);
            }
        }
        for set in &sets {
            for &a in set {
                assert!(probed.contains(&net.iface_at(a).unwrap().router));
                if !observed_addrs.contains(&a) {
                    unobserved_included += 1;
                }
            }
        }
        // Alias probing discovers interfaces traceroute never saw.
        assert!(unobserved_included > 0);
    }

    #[test]
    fn deterministic() {
        let (net, traces) = setup();
        assert_eq!(resolve(&net, &traces, 0.3, 9), resolve(&net, &traces, 0.3, 9));
    }
}
