//! `hoiho-serve` — learn once, serve forever.
//!
//! ```text
//! hoiho-serve save <training-file> <model-file>    learn → model artifact
//! hoiho-serve save --sim <seed> <model-file>       same, from a synthetic snapshot
//! hoiho-serve inspect <model-file>                 summarise an artifact
//! hoiho-serve query <model-file> [hostname ...]    extract (args or stdin)
//! hoiho-serve shard <model-file> <N> <out-dir>     split into N shard artifacts + manifest
//! hoiho-serve serve <model-file> <addr> [workers]  run the TCP server
//!       [--shards N] [--cache-capacity K]          ... as an N-shard cluster with a
//!                                                  bounded response cache
//!       [--trace-sample N] [--trace-seed S]        ... tracing every Nth request with
//!                                                  ids seeded by S (default seed 0)
//!       [--slo FILE]                               ... objectives from FILE instead of
//!                                                  the built-in defaults
//! hoiho-serve trace <addr> [n] [--chrome F] [--collapsed F]
//!                                                  dump up to n sampled traces from a
//!                                                  running server (loopback only);
//!                                                  write Chrome trace JSON and/or
//!                                                  collapsed flamegraph stacks, or
//!                                                  print Chrome JSON to stdout
//! hoiho-serve send <addr> <request...>             one protocol request, print reply
//! hoiho-serve batch <addr> [hostname ...]          one pipelined BATCH (args or stdin),
//!                                                  print the answer lines
//! hoiho-serve loadgen <addr> <hosts-file> [conns] [requests] [--batch N]
//!                                                  drive a server, report lookups/sec,
//!                                                  p50/p90/p99/max latency, error rate;
//!                                                  --batch sends N hostnames per BATCH
//!                                                  request instead of one per line;
//!                                                  --slo FILE evaluates the objectives
//!                                                  against the client-side tallies and
//!                                                  exits nonzero on a breach
//! hoiho-serve loadgen <addr> --scenario <file> [conns] [requests]
//!                                                  same, but the hostname stream is the
//!                                                  scenario's world under its declared
//!                                                  traffic skew and batch shape
//! hoiho-serve scenario run [--out F] <file...>     sim → learn → score each scenario
//!                                                  against ground truth; write the
//!                                                  quality matrix (default SCENARIOS.json)
//! hoiho-serve scenario save <file> <model-file>    learn on a scenario's world, write
//!                                                  the model artifact
//! ```
//!
//! The training file is the `hoiho` CLI's format (`asn addr hostname`
//! per line); `--sim` builds a synthetic Internet with `hoiho-netsim`
//! and trains on bdrmapIT-inferred ownership, the workspace's standard
//! netsim→learner pipeline. The server speaks the line protocol
//! documented in `hoiho_serve::server` (hostname per line, plus
//! `BATCH <n>`, `STATS`, `STATS SUFFIX`, `METRICS`, `EVENTS [n]`,
//! `SHUTDOWN`; single-engine servers take `RELOAD <path>`, cluster servers
//! `RELOAD SHARD <k> <path>` and `STATS CLUSTER`). A clustered server
//! shares one observability context between the protocol layer and the
//! shard router, so `METRICS` reports request counters, latency
//! histograms, and per-shard cache traffic in one document. `shard`
//! materializes the same partition the clustered server builds in
//! memory, for inspection or distribution.

use hoiho::learner::{learn_all, LearnConfig};
use hoiho::quality::QualityCounts;
use hoiho::training::{Observation, TrainingSet};
use hoiho_cluster::{shard_file_name, split, ClusterBackend, ShardRouter, SHARDMAP_FILE_NAME};
use hoiho_itdk::{BuiltSnapshot, Method, SnapshotSpec};
use hoiho_netsim::SimConfig;
use hoiho_obs::{slo, span, Histogram, Obs};
use hoiho_psl::PublicSuffixList;
use hoiho_scenario::compile::{ground_truth_rows, truth_suffixes};
use hoiho_scenario::matrix::render_scenarios_json;
use hoiho_scenario::{Scenario, ScenarioQuality};
use hoiho_serve::server::Client;
use hoiho_serve::{Engine, Model, ServerHandle};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Flags extracted before the positional match so they may appear
/// anywhere after the subcommand: `--shards`/`--cache-capacity`/
/// `--trace-sample`/`--trace-seed` for `serve`, `--batch`/`--scenario`/
/// `--chaos` for `loadgen`, `--slo` for both `serve` and `loadgen`,
/// `--out` for `scenario run`, `--chrome`/`--collapsed` for `trace`.
#[derive(Default)]
struct ClusterFlags {
    shards: Option<u32>,
    cache_capacity: Option<usize>,
    batch: Option<usize>,
    scenario: Option<String>,
    out: Option<String>,
    chaos: Option<f64>,
    trace_sample: Option<u64>,
    trace_seed: Option<u64>,
    slo: Option<String>,
    chrome: Option<String>,
    collapsed: Option<String>,
}

/// Splits `--shards N` / `--cache-capacity K` / `--batch N` /
/// `--scenario F` / `--out F` / `--chaos RATE` / `--trace-sample N` /
/// `--trace-seed S` / `--slo F` / `--chrome F` / `--collapsed F` out
/// of the argument list.
fn take_cluster_flags(args: &[String]) -> Result<(Vec<&str>, ClusterFlags), String> {
    let mut flags = ClusterFlags::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = |name: &str| {
            it.clone()
                .next()
                .ok_or_else(|| format!("{name} needs a value"))
                .map(|v| v.as_str())
        };
        match a.as_str() {
            "--shards" => {
                let v = value("--shards")?;
                it.next();
                flags.shards =
                    Some(v.parse().map_err(|_| format!("bad --shards value {v:?}"))?);
            }
            "--cache-capacity" => {
                let v = value("--cache-capacity")?;
                it.next();
                flags.cache_capacity =
                    Some(v.parse().map_err(|_| format!("bad --cache-capacity value {v:?}"))?);
            }
            "--batch" => {
                let v = value("--batch")?;
                it.next();
                let n: usize =
                    v.parse().map_err(|_| format!("bad --batch value {v:?}"))?;
                if n == 0 || n > hoiho_serve::MAX_BATCH {
                    return Err(format!(
                        "--batch must be in 1..={}",
                        hoiho_serve::MAX_BATCH
                    ));
                }
                flags.batch = Some(n);
            }
            "--scenario" => {
                let v = value("--scenario")?;
                it.next();
                flags.scenario = Some(v.to_string());
            }
            "--out" => {
                let v = value("--out")?;
                it.next();
                flags.out = Some(v.to_string());
            }
            "--chaos" => {
                let v = value("--chaos")?;
                it.next();
                let rate: f64 =
                    v.parse().map_err(|_| format!("bad --chaos value {v:?}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--chaos must be in 0.0..=1.0".into());
                }
                flags.chaos = Some(rate);
            }
            "--trace-sample" => {
                let v = value("--trace-sample")?;
                it.next();
                flags.trace_sample =
                    Some(v.parse().map_err(|_| format!("bad --trace-sample value {v:?}"))?);
            }
            "--trace-seed" => {
                let v = value("--trace-seed")?;
                it.next();
                flags.trace_seed =
                    Some(v.parse().map_err(|_| format!("bad --trace-seed value {v:?}"))?);
            }
            "--slo" => {
                let v = value("--slo")?;
                it.next();
                flags.slo = Some(v.to_string());
            }
            "--chrome" => {
                let v = value("--chrome")?;
                it.next();
                flags.chrome = Some(v.to_string());
            }
            "--collapsed" => {
                let v = value("--collapsed")?;
                it.next();
                flags.collapsed = Some(v.to_string());
            }
            other => rest.push(other),
        }
    }
    Ok((rest, flags))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = run(&args);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hoiho-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (strs, flags) = take_cluster_flags(args)?;
    let clustered = flags.shards.is_some() || flags.cache_capacity.is_some();
    if clustered && strs.first() != Some(&"serve") {
        return Err("--shards/--cache-capacity only apply to serve".into());
    }
    if flags.batch.is_some() && strs.first() != Some(&"loadgen") {
        return Err("--batch only applies to loadgen".into());
    }
    if flags.scenario.is_some() && strs.first() != Some(&"loadgen") {
        return Err("--scenario only applies to loadgen".into());
    }
    if flags.chaos.is_some() && strs.first() != Some(&"loadgen") {
        return Err("--chaos only applies to loadgen".into());
    }
    if flags.out.is_some() && strs.get(..2) != Some(&["scenario", "run"]) {
        return Err("--out only applies to scenario run".into());
    }
    if (flags.trace_sample.is_some() || flags.trace_seed.is_some())
        && strs.first() != Some(&"serve")
    {
        return Err("--trace-sample/--trace-seed only apply to serve".into());
    }
    if flags.slo.is_some() && !matches!(strs.first(), Some(&"serve") | Some(&"loadgen")) {
        return Err("--slo only applies to serve and loadgen".into());
    }
    if (flags.chrome.is_some() || flags.collapsed.is_some())
        && strs.first() != Some(&"trace")
    {
        return Err("--chrome/--collapsed only apply to trace".into());
    }
    match strs.as_slice() {
        ["save", "--sim", seed, out] => save_sim(seed, out),
        ["save", training, out] => save_file(training, out),
        ["inspect", model] => inspect(model),
        ["query", model, hosts @ ..] => query(model, hosts),
        ["shard", model, n, outdir] => match n.parse() {
            Ok(n) => shard(model, n, outdir),
            Err(_) => usage(),
        },
        ["serve", model, addr] => serve(model, addr, 0, &flags),
        ["serve", model, addr, workers] => match workers.parse() {
            Ok(w) => serve(model, addr, w, &flags),
            Err(_) => usage(),
        },
        ["trace", addr] => trace_cmd(addr, None, &flags),
        ["trace", addr, n] => match n.parse() {
            Ok(n) => trace_cmd(addr, Some(n), &flags),
            Err(_) => usage(),
        },
        ["send", addr, words @ ..] if !words.is_empty() => send(addr, &words.join(" ")),
        ["batch", addr, hosts @ ..] => batch_cmd(addr, hosts),
        ["scenario", "run", files @ ..] if !files.is_empty() => {
            scenario_run(files, flags.out.as_deref().unwrap_or("SCENARIOS.json"))
        }
        ["scenario", "save", file, out] => scenario_save(file, out),
        ["loadgen", addr] if flags.scenario.is_some() => {
            loadgen_scenario(addr, flags.scenario.as_deref().unwrap(), None, None, &flags)
        }
        ["loadgen", addr, conns] if flags.scenario.is_some() => match conns.parse() {
            Ok(c) => {
                loadgen_scenario(addr, flags.scenario.as_deref().unwrap(), Some(c), None, &flags)
            }
            Err(_) => usage(),
        },
        ["loadgen", addr, conns, reqs] if flags.scenario.is_some() => {
            match (conns.parse(), reqs.parse()) {
                (Ok(c), Ok(r)) => loadgen_scenario(
                    addr,
                    flags.scenario.as_deref().unwrap(),
                    Some(c),
                    Some(r),
                    &flags,
                ),
                _ => usage(),
            }
        }
        ["loadgen", addr, hosts] => loadgen(addr, hosts, 4, 20_000, &flags),
        ["loadgen", addr, hosts, conns] => match conns.parse() {
            Ok(c) => loadgen(addr, hosts, c, 20_000, &flags),
            Err(_) => usage(),
        },
        ["loadgen", addr, hosts, conns, reqs] => match (conns.parse(), reqs.parse()) {
            (Ok(c), Ok(r)) => loadgen(addr, hosts, c, r, &flags),
            _ => usage(),
        },
        _ => usage(),
    }
}

fn usage() -> Result<(), String> {
    eprintln!("usage: hoiho-serve save <training-file> <model-file>");
    eprintln!("       hoiho-serve save --sim <seed> <model-file>");
    eprintln!("       hoiho-serve inspect <model-file>");
    eprintln!("       hoiho-serve query <model-file> [hostname ...]");
    eprintln!("       hoiho-serve shard <model-file> <N> <out-dir>");
    eprintln!("       hoiho-serve serve <model-file> <addr> [workers]");
    eprintln!("                         [--shards N] [--cache-capacity K]");
    eprintln!("                         [--trace-sample N] [--trace-seed S] [--slo FILE]");
    eprintln!("       hoiho-serve trace <addr> [n] [--chrome FILE] [--collapsed FILE]");
    eprintln!("       hoiho-serve send <addr> <request...>");
    eprintln!("       hoiho-serve batch <addr> [hostname ...]");
    eprintln!("       hoiho-serve loadgen <addr> <hosts-file> [conns] [requests]");
    eprintln!("                           [--batch N] [--chaos RATE] [--slo FILE]");
    eprintln!("       hoiho-serve loadgen <addr> --scenario <file> [conns] [requests]");
    eprintln!("       hoiho-serve scenario run [--out F] <file...>");
    eprintln!("       hoiho-serve scenario save <file> <model-file>");
    Err("bad arguments".into())
}

/// Learns from a training file and writes the model artifact.
fn save_file(training_path: &str, out: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(training_path)
        .map_err(|e| format!("cannot read {training_path}: {e}"))?;
    let ts = parse_training(&text)?;
    save_training(&ts, out)
}

/// Learns from a synthetic snapshot (netsim → bdrmapIT ownership) and
/// writes the model artifact.
fn save_sim(seed: &str, out: &str) -> Result<(), String> {
    let seed: u64 = seed.parse().map_err(|_| format!("bad seed {seed:?}"))?;
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: format!("serve-{seed}"),
        method: Method::BdrmapIt,
        cfg: SimConfig::tiny(seed),
        alias_split: 0.3,
    });
    save_training(&snap.training_set(), out)
}

fn save_training(ts: &TrainingSet, out: &str) -> Result<(), String> {
    let groups = ts.by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    let model = Model::from_learned(&learned);
    model.save(out).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "saved {} conventions ({} regexes) from {} observations to {out}",
        model.len(),
        model.regex_count(),
        ts.len()
    );
    Ok(())
}

/// Learns a model on a scenario's world, returning the snapshot too
/// (its `internet` is the ground truth the quality matrix scores
/// against — the *same* world the training set came from).
fn scenario_model(sc: &Scenario) -> Result<(Model, hoiho_itdk::BuiltSnapshot), String> {
    let cfg = sc.compile().map_err(|e| e.to_string())?;
    let snap = BuiltSnapshot::build(&SnapshotSpec {
        label: format!("scenario-{}", sc.name),
        method: Method::BdrmapIt,
        cfg,
        alias_split: 0.3,
    });
    let ts = snap.training_set();
    let groups = ts.by_suffix(&PublicSuffixList::builtin());
    let learned = learn_all(&groups, &LearnConfig::default());
    Ok((Model::from_learned(&learned), snap))
}

/// `scenario save`: learn on the scenario's world, write the artifact.
fn scenario_save(file: &str, out: &str) -> Result<(), String> {
    let sc = Scenario::load(file).map_err(|e| e.to_string())?;
    let (model, snap) = scenario_model(&sc)?;
    model.save(out).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "scenario {}: saved {} conventions ({} regexes) from {} named interfaces to {out}",
        sc.name,
        model.len(),
        model.regex_count(),
        snap.internet.named_interfaces().count()
    );
    Ok(())
}

/// `scenario run`: for each scenario, sim → learn → score the learned
/// model against the world's ground truth, then write the quality
/// matrix (bench-schema JSON) to `out`.
fn scenario_run(files: &[&str], out: &str) -> Result<(), String> {
    let mut items: Vec<ScenarioQuality> = Vec::with_capacity(files.len());
    for file in files {
        let sc = Scenario::load(file).map_err(|e| format!("{file}: {e}"))?;
        if items.iter().any(|q| q.name == sc.name) {
            return Err(format!("{file}: duplicate scenario name {}", sc.name));
        }
        let (model, snap) = scenario_model(&sc)?;
        let engine = Engine::new(&model);
        let rows = ground_truth_rows(&snap.internet);
        // Warmup pass: regex programs compile lazily on first match,
        // and that one-time cost would otherwise land in the timed
        // pass's p99 and jitter the matrix between runs.
        for (hostname, _) in &rows {
            std::hint::black_box(engine.extract(hostname));
        }
        let mut counts = QualityCounts::default();
        let lat = Histogram::unregistered();
        // Each hostname's latency is the best of a few trials: one-shot
        // sub-microsecond timings are dominated by scheduler noise, and
        // even a per-hostname mean leaves the committed matrix's tail
        // quantiles flapping between identical runs. The minimum is the
        // intrinsic cost, so the p99 across hostnames measures the
        // genuinely expensive names (many regex attempts), not
        // interrupt luck.
        const TIMING_TRIALS: usize = 5;
        for (hostname, expected) in &rows {
            let best = (0..TIMING_TRIALS)
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(engine.extract(hostname));
                    t.elapsed().as_nanos() as u64
                })
                .min()
                .expect("at least one trial");
            lat.observe(best);
            counts.observe(*expected, engine.extract(hostname).asn);
        }
        let truth = truth_suffixes(&snap.internet);
        let q = ScenarioQuality {
            name: sc.name.clone(),
            precision: counts.precision(),
            recall: counts.recall(),
            conventions_learned: model.len(),
            conventions_truth: truth.len(),
            rows: rows.len(),
            extract_p50_ns: lat.quantile(0.5) as f64,
            extract_p99_ns: lat.quantile(0.99) as f64,
        };
        eprintln!(
            "scenario {}: precision {:.1}% recall {:.1}% conventions {}/{} \
             ({} rows, extract p50 {}ns p99 {}ns)",
            q.name,
            q.precision * 100.0,
            q.recall * 100.0,
            q.conventions_learned,
            q.conventions_truth,
            q.rows,
            q.extract_p50_ns,
            q.extract_p99_ns,
        );
        items.push(q);
    }
    // Sorted by name so the committed matrix is order-independent of
    // the command line.
    items.sort_by(|a, b| a.name.cmp(&b.name));
    std::fs::write(out, render_scenarios_json(&items))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("wrote {out} ({} scenarios)", items.len());
    Ok(())
}

fn inspect(path: &str) -> Result<(), String> {
    let model = Model::load(path).map_err(|e| e.to_string())?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "# {} conventions, {} regexes", model.len(), model.regex_count()).ok();
    for e in &model.entries {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\tregexes={}\thosts={}\ttp={}\tfp={}\tfn={}",
            e.suffix,
            e.class.label(),
            if e.single { "single" } else { "multi" },
            e.taxonomy.label(),
            e.regexes.len(),
            e.hostnames,
            e.counts.tp,
            e.counts.fp,
            e.counts.fnn,
        )
        .ok();
    }
    Ok(())
}

fn query(path: &str, hosts: &[&str]) -> Result<(), String> {
    let model = Model::load(path).map_err(|e| e.to_string())?;
    let engine = Engine::new(&model);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut answer = |hostname: &str| {
        let x = engine.extract(hostname);
        let (suffix, class) = match x.nc {
            Some(i) => {
                let nc = &engine.conventions()[i];
                (nc.suffix.as_str(), nc.class.label())
            }
            None => ("-", "-"),
        };
        let asn = x.asn.map_or_else(|| "-".to_string(), |a| a.to_string());
        writeln!(out, "{hostname}\t{asn}\t{suffix}\t{class}").ok();
    };
    if hosts.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| format!("read error: {e}"))?;
            let h = line.trim();
            if !h.is_empty() && !h.starts_with('#') {
                answer(h);
            }
        }
    } else {
        for h in hosts {
            answer(h);
        }
    }
    Ok(())
}

/// Splits a model artifact into `n` shard artifacts plus the shard-map
/// manifest, under `outdir` (created if missing).
fn shard(path: &str, n: u32, outdir: &str) -> Result<(), String> {
    let model = Model::load(path).map_err(|e| e.to_string())?;
    let (shards, map) = split(&model, n).map_err(|e| e.to_string())?;
    let dir = std::path::Path::new(outdir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {outdir}: {e}"))?;
    for (k, m) in shards.iter().enumerate() {
        let file = dir.join(shard_file_name(k as u32));
        m.save(&file).map_err(|e| format!("cannot write {}: {e}", file.display()))?;
    }
    let manifest = dir.join(SHARDMAP_FILE_NAME);
    map.save(&manifest).map_err(|e| format!("cannot write {}: {e}", manifest.display()))?;
    let loads = map.shard_weights();
    eprintln!(
        "sharded {} conventions into {n} shards under {outdir} (weights {loads:?}, manifest {})",
        model.len(),
        manifest.display()
    );
    Ok(())
}

/// Builds the server's observability context from the command line:
/// the trace sampler (off unless `--trace-sample` is given) and the
/// SLO objectives (`--slo FILE`, else the built-in defaults already
/// installed by `Obs::new`).
fn configured_obs(flags: &ClusterFlags) -> Result<Arc<Obs>, String> {
    let obs = Arc::new(Obs::new());
    if let Some(every) = flags.trace_sample {
        obs.sampler().configure(every, flags.trace_seed.unwrap_or(0));
    }
    if let Some(path) = flags.slo.as_deref() {
        obs.slo().set_objectives(load_objectives(path)?);
    }
    Ok(obs)
}

/// Reads and parses an SLO objective file.
fn load_objectives(path: &str) -> Result<Vec<slo::Objective>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    slo::parse_objectives(&text).map_err(|e| format!("{path}: {e}"))
}

fn serve(path: &str, addr: &str, workers: usize, flags: &ClusterFlags) -> Result<(), String> {
    let model = Model::load(path).map_err(|e| e.to_string())?;
    // One observability context for all layers: the router's
    // per-shard/cache series, the server's request series, and the
    // trace/profile/SLO state land in the same verbs.
    let obs = configured_obs(flags)?;
    let tracing = match obs.sampler().every() {
        0 => String::new(),
        every => format!(", tracing 1 in {every}"),
    };
    let srv = if flags.shards.is_some() || flags.cache_capacity.is_some() {
        let shards = flags.shards.unwrap_or(1);
        let capacity = flags.cache_capacity.unwrap_or(0);
        let router = Arc::new(
            ShardRouter::from_model_obs(&model, shards, capacity, Arc::clone(&obs))
                .map_err(|e| e.to_string())?,
        );
        let backend = Arc::new(ClusterBackend::new(router));
        let srv = ServerHandle::start_with_backend_obs(addr, backend, workers, obs)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        eprintln!(
            "serving {} conventions across {shards} shards (cache capacity {capacity}) on {}{tracing} \
             (send SHUTDOWN to stop, RELOAD SHARD <k> <path> to hot-swap one shard)",
            model.len(),
            srv.local_addr()
        );
        srv
    } else {
        let engine = Arc::new(Engine::new(&model));
        let srv = ServerHandle::start_obs(addr, engine, workers, obs)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        eprintln!(
            "serving {} conventions on {}{tracing} (send SHUTDOWN to stop, RELOAD <path> to hot-swap)",
            model.len(),
            srv.local_addr()
        );
        srv
    };
    srv.join();
    eprintln!("server stopped");
    Ok(())
}

/// `trace`: pulls up to `n` sampled traces (default: all retained)
/// from a running server's span ring and converts them for tooling —
/// Chrome trace JSON (`--chrome`, or stdout when no output flag is
/// given) and collapsed flamegraph stacks (`--collapsed`).
fn trace_cmd(addr: &str, n: Option<usize>, flags: &ClusterFlags) -> Result<(), String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let req = match n {
        Some(n) => format!("TRACES {n}"),
        None => "TRACES".to_string(),
    };
    let first = client.request(&req).map_err(|e| format!("request failed: {e}"))?;
    if let Some(msg) = first.strip_prefix("err\t") {
        return Err(format!("server refused: {msg}"));
    }
    let mut jsonl = String::new();
    if first != "." {
        jsonl.push_str(&first);
        jsonl.push('\n');
        for l in client.read_until_dot().map_err(|e| format!("request failed: {e}"))? {
            jsonl.push_str(&l);
            jsonl.push('\n');
        }
    }
    let spans = span::parse_jsonl(&jsonl).map_err(|e| format!("bad TRACES payload: {e}"))?;
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.trace).collect();
    eprintln!("{} spans across {} traces from {addr}", spans.len(), traces.len());
    if let Some(path) = flags.chrome.as_deref() {
        std::fs::write(path, span::to_chrome_json(&spans))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote Chrome trace JSON to {path} (load via chrome://tracing or Perfetto)");
    }
    if let Some(path) = flags.collapsed.as_deref() {
        std::fs::write(path, span::to_collapsed(&spans))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote collapsed stacks to {path} (feed to flamegraph.pl)");
    }
    if flags.chrome.is_none() && flags.collapsed.is_none() {
        println!("{}", span::to_chrome_json(&spans));
    }
    Ok(())
}

/// Sends one protocol request line and prints the reply (including the
/// extra lines of a multi-line `STATS SUFFIX` / `STATS CLUSTER` /
/// `METRICS` / `EVENTS` listing).
fn send(addr: &str, line: &str) -> Result<(), String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let resp = client.request(line).map_err(|e| format!("request failed: {e}"))?;
    // Multi-line responses: the first line is already part of the
    // listing (or the lone `.` terminator on an empty listing).
    let trimmed = line.trim();
    let multiline = matches!(
        trimmed,
        "STATS SUFFIX" | "STATS CLUSTER" | "METRICS" | "EVENTS" | "TRACES" | "PROFILE" | "SLO"
    ) || trimmed.strip_prefix("EVENTS ").is_some()
        || trimmed.strip_prefix("TRACES ").is_some();
    if multiline && !resp.starts_with("err\t") {
        if resp == "." {
            return Ok(());
        }
        println!("{resp}");
        for l in client.read_until_dot().map_err(|e| format!("request failed: {e}"))? {
            println!("{l}");
        }
        return Ok(());
    }
    println!("{resp}");
    Ok(())
}

/// Sends the hostnames (args, or stdin when none) to a running server
/// as pipelined `BATCH` requests and prints the answer lines. Inputs
/// larger than the protocol's per-request cap are split into several
/// `BATCH` requests transparently.
fn batch_cmd(addr: &str, hosts: &[&str]) -> Result<(), String> {
    let stdin_hosts: Vec<String>;
    let hosts: Vec<&str> = if hosts.is_empty() {
        let mut collected = Vec::new();
        for line in std::io::stdin().lock().lines() {
            let line = line.map_err(|e| format!("read error: {e}"))?;
            let h = line.trim();
            if !h.is_empty() && !h.starts_with('#') {
                collected.push(h.to_string());
            }
        }
        stdin_hosts = collected;
        stdin_hosts.iter().map(String::as_str).collect()
    } else {
        hosts.to_vec()
    };
    if hosts.is_empty() {
        return Err("no hostnames to send".into());
    }
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for chunk in hosts.chunks(hoiho_serve::MAX_BATCH) {
        let lines = client.batch(chunk).map_err(|e| format!("batch failed: {e}"))?;
        for l in lines {
            writeln!(out, "{l}").ok();
        }
    }
    Ok(())
}

/// Per-connection loadgen tallies: answer outcomes plus a mergeable
/// latency histogram (`hoiho_obs`'s log-scale buckets — exactly what
/// the server's own `hoiho_request_latency_ns` uses, so loadgen-side
/// and server-side quantiles are directly comparable).
struct ConnTally {
    hits: u64,
    misses: u64,
    errors: u64,
    lat: Histogram,
}

/// Fires `requests` round-robin queries per connection across `conns`
/// parallel connections and reports aggregate lookups/sec,
/// p50/p90/p99/max latency, and the protocol-error rate. With
/// `batch = Some(n)`, hostnames go `n` per `BATCH` request instead of
/// one per line (lookups/sec still counts individual hostnames; the
/// latency histogram then observes whole batches, so its quantiles are
/// per-batch, not per-hostname).
fn loadgen(
    addr: &str,
    hosts_path: &str,
    conns: usize,
    requests: usize,
    flags: &ClusterFlags,
) -> Result<(), String> {
    let text = std::fs::read_to_string(hosts_path)
        .map_err(|e| format!("cannot read {hosts_path}: {e}"))?;
    let hosts: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    drive(addr, &hosts, conns, requests, flags.batch, flags.chaos, flags.slo.as_deref())
}

/// Replays a scenario's declared workload against a running server:
/// the hostname universe of the scenario's world, drawn under its
/// `[traffic]` skew, with connection count / request total / batch
/// shape from the scenario unless overridden on the command line.
fn loadgen_scenario(
    addr: &str,
    file: &str,
    conns: Option<usize>,
    requests: Option<usize>,
    flags: &ClusterFlags,
) -> Result<(), String> {
    let batch = flags.batch;
    let sc = Scenario::load(file).map_err(|e| e.to_string())?;
    let net = sc.build().map_err(|e| e.to_string())?;
    let uni = hoiho_scenario::traffic::universe(&net);
    if uni.is_empty() {
        return Err(format!("scenario {} generates a world with no hostnames", sc.name));
    }
    let conns = conns.unwrap_or(sc.traffic.connections).max(1);
    let total = requests.unwrap_or(sc.traffic.requests).max(1);
    // The stream is materialized up front (total rounded up to a
    // multiple of conns) so connection c replays exactly the indices
    // c, c+conns, ... — the same interleaving `drive` uses.
    let per_conn = (total + conns - 1) / conns;
    let idx = sc.traffic.sample_indices(uni.len(), sc.seed, per_conn * conns);
    let stream: Vec<&str> = idx.iter().map(|&i| uni[i].as_str()).collect();
    let batch = batch
        .or_else(|| (sc.traffic.batch > 0).then_some(sc.traffic.batch))
        .map(|b| b.min(hoiho_serve::MAX_BATCH));
    eprintln!(
        "scenario {}: universe {} hostnames, skew {}, {} requests over {conns} connections{}",
        sc.name,
        uni.len(),
        sc.traffic.skew.render(),
        per_conn * conns,
        batch.map_or(String::new(), |b| format!(", batch {b}")),
    );
    drive(addr, &stream, conns, per_conn, batch, flags.chaos, flags.slo.as_deref())
}

/// Read timeout for chaos-mode connections: short enough that a
/// fault-severed connection surfaces as a counted timeout instead of a
/// half-minute stall per incident.
const CHAOS_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);

/// Bound on back-to-back failed reconnect attempts before a connection
/// thread gives up (the server is gone, not merely faulty).
const MAX_CONSECUTIVE_CONNECT_FAILURES: u32 = 100;

/// The loadgen engine: `requests` queries per connection over `conns`
/// connections; connection `c` sends `hosts[(c + i*conns) % len]`.
///
/// Failures — I/O errors, read timeouts, and responses that echo a
/// different hostname than was asked (a desynchronised stream) — count
/// into the error rate and trigger a reconnect; they never abort the
/// run. With `chaos = Some(rate)`, every connection's traffic flows
/// through a seeded [`hoiho_serve::ChaosConn`] (seed derived from the
/// connection index, so runs are reproducible) and reads time out
/// after [`CHAOS_TIMEOUT`] instead of the client default. With
/// `slo_path = Some(file)`, the run's own tallies are evaluated
/// against the file's objectives after the summary line and a breach
/// fails the command.
fn drive(
    addr: &str,
    hosts: &[&str],
    conns: usize,
    requests: usize,
    batch: Option<usize>,
    chaos: Option<f64>,
    slo_path: Option<&str>,
) -> Result<(), String> {
    // Parse the objective file before spending minutes driving load.
    let objectives = slo_path.map(load_objectives).transpose()?;
    if hosts.is_empty() {
        return Err("no hostnames to send".into());
    }
    let conns = conns.max(1);
    let t0 = Instant::now();
    let totals: Result<Vec<ConnTally>, String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let hosts = &hosts;
                scope.spawn(move || -> Result<ConnTally, String> {
                    let connect = |attempt: u64| match chaos {
                        Some(rate) => Client::connect_opts(
                            addr,
                            Some(CHAOS_TIMEOUT),
                            Some(hoiho_serve::ChaosConfig {
                                rate,
                                seed: 0xC0FF_EE00 ^ c as u64 ^ (attempt << 32),
                            }),
                        ),
                        None => Client::connect(addr),
                    };
                    let mut attempt = 0u64;
                    let mut client: Option<Client> = None;
                    let mut tally = ConnTally {
                        hits: 0,
                        misses: 0,
                        errors: 0,
                        lat: Histogram::unregistered(),
                    };
                    let score = |tally: &mut ConnTally, resp: &str| {
                        if resp.starts_with("err\t") {
                            tally.errors += 1;
                        } else if resp
                            .split('\t')
                            .nth(1)
                            .and_then(|a| a.parse::<u32>().ok())
                            .is_some()
                        {
                            tally.hits += 1;
                        } else {
                            tally.misses += 1;
                        }
                    };
                    // One unit is a single request or one whole batch;
                    // `Err(n)` reports n hostnames lost to a failure.
                    let unit = |client: &mut Client,
                                    tally: &mut ConnTally,
                                    sent: usize|
                     -> Result<usize, usize> {
                        match batch {
                            Some(size) => {
                                let n = size.min(requests - sent);
                                let req: Vec<&str> = (0..n)
                                    .map(|j| hosts[(c + (sent + j) * conns) % hosts.len()])
                                    .collect();
                                let t = Instant::now();
                                let lines = client.batch(&req).map_err(|_| n)?;
                                tally.lat.observe(t.elapsed().as_nanos() as u64);
                                let aligned = lines
                                    .iter()
                                    .zip(&req)
                                    .all(|(l, h)| l.split('\t').next() == Some(h));
                                if !aligned {
                                    return Err(n);
                                }
                                for l in &lines {
                                    score(tally, l);
                                }
                                Ok(n)
                            }
                            None => {
                                let h = hosts[(c + sent * conns) % hosts.len()];
                                let t = Instant::now();
                                let resp = client.request(h).map_err(|_| 1usize)?;
                                tally.lat.observe(t.elapsed().as_nanos() as u64);
                                if resp.split('\t').next() != Some(h) {
                                    return Err(1);
                                }
                                score(tally, &resp);
                                Ok(1)
                            }
                        }
                    };
                    let mut sent = 0usize;
                    let mut connect_failures = 0u32;
                    while sent < requests {
                        let cl = match client.as_mut() {
                            Some(cl) => cl,
                            None => match connect(attempt) {
                                Ok(cl) => {
                                    connect_failures = 0;
                                    client.insert(cl)
                                }
                                Err(e) => {
                                    connect_failures += 1;
                                    attempt += 1;
                                    if connect_failures > MAX_CONSECUTIVE_CONNECT_FAILURES {
                                        return Err(format!(
                                            "cannot connect to {addr}: {e}"
                                        ));
                                    }
                                    continue;
                                }
                            },
                        };
                        match unit(cl, &mut tally, sent) {
                            Ok(n) => sent += n,
                            Err(n) => {
                                // A faulted or desynchronised stream:
                                // charge the lost hostnames and resync
                                // on a fresh connection.
                                tally.errors += n as u64;
                                sent += n;
                                attempt += 1;
                                client = None;
                            }
                        }
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen thread panicked")).collect()
    });
    let totals = totals?;
    let secs = t0.elapsed().as_secs_f64();
    let hits: u64 = totals.iter().map(|t| t.hits).sum();
    let misses: u64 = totals.iter().map(|t| t.misses).sum();
    let errors: u64 = totals.iter().map(|t| t.errors).sum();
    let total = hits + misses + errors;
    let lat = Histogram::unregistered();
    for t in &totals {
        lat.merge_from(&t.lat);
    }
    let us = |ns: u64| ns as f64 / 1_000.0;
    println!(
        "{total} lookups over {conns} connections in {secs:.3}s = {:.0} lookups/sec \
         (hits={hits} misses={misses} errors={errors} error-rate={:.2}% \
         p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us)",
        total as f64 / secs,
        if total == 0 { 0.0 } else { errors as f64 * 100.0 / total as f64 },
        us(lat.quantile(0.5)),
        us(lat.quantile(0.9)),
        us(lat.quantile(0.99)),
        us(lat.max()),
    );
    if let Some(objectives) = objectives {
        // Client-side evaluation over this run's own tallies: the
        // whole run is the window, so there are no burn-rate windows
        // and cache_hit_rate objectives report n/a (the client cannot
        // see the server's cache).
        let overall = slo::SloWindowData {
            latency_counts: lat.bucket_counts(),
            latency_max_ns: lat.max(),
            errors,
            requests: hits + misses,
            cache_hits: 0,
            cache_misses: 0,
        };
        let statuses = slo::evaluate(&objectives, &overall, &[]);
        print!("{}", slo::render_statuses(&statuses));
        let breached: Vec<&str> =
            statuses.iter().filter(|s| s.breach).map(|s| s.objective.name.as_str()).collect();
        if !breached.is_empty() {
            return Err(format!("SLO breach: {}", breached.join(", ")));
        }
    }
    Ok(())
}

/// Parses the `hoiho` CLI training format: `asn addr hostname` per line.
fn parse_training(text: &str) -> Result<TrainingSet, String> {
    let mut ts = TrainingSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        let mut it = line.split_whitespace();
        let asn: u32 =
            it.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad ASN"))?;
        let addr =
            it.next().and_then(hoiho::iputil::parse_ipv4).ok_or_else(|| err("bad address"))?;
        let hostname = it.next().ok_or_else(|| err("missing hostname"))?;
        if it.next().is_some() {
            return Err(err("trailing fields"));
        }
        ts.push(Observation::new(hostname, addr, asn));
    }
    Ok(ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_parser_matches_cli_format() {
        let ts = parse_training("# c\n64500 192.0.2.1 as64500.x.example.net\n").unwrap();
        assert_eq!(ts.len(), 1);
        assert!(parse_training("x 1.2.3.4 h").is_err());
        assert!(parse_training("1 bad h").is_err());
        assert!(parse_training("1 1.2.3.4").is_err());
    }

    #[test]
    fn cluster_flags_extracted_anywhere() {
        let args: Vec<String> = ["serve", "m", "a", "--shards", "4", "--cache-capacity", "512"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, flags) = take_cluster_flags(&args).unwrap();
        assert_eq!(rest, ["serve", "m", "a"]);
        assert_eq!(flags.shards, Some(4));
        assert_eq!(flags.cache_capacity, Some(512));

        let args: Vec<String> =
            ["serve", "--shards", "2", "m", "a"].iter().map(|s| s.to_string()).collect();
        let (rest, flags) = take_cluster_flags(&args).unwrap();
        assert_eq!(rest, ["serve", "m", "a"]);
        assert_eq!(flags.shards, Some(2));
        assert_eq!(flags.cache_capacity, None);

        assert!(take_cluster_flags(&["--shards".to_string()]).is_err());
        assert!(take_cluster_flags(&["--shards".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn conn_tallies_merge_into_one_histogram() {
        let a = ConnTally { hits: 2, misses: 1, errors: 0, lat: Histogram::unregistered() };
        let b = ConnTally { hits: 0, misses: 0, errors: 1, lat: Histogram::unregistered() };
        for ns in [100u64, 200, 300] {
            a.lat.observe(ns);
        }
        b.lat.observe(40_000);
        let merged = Histogram::unregistered();
        merged.merge_from(&a.lat);
        merged.merge_from(&b.lat);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.max(), 40_000);
        assert_eq!(merged.quantile(1.0), 40_000);
        assert!(merged.quantile(0.5) >= 200, "p50 bucket bound covers the sample");
    }
}
