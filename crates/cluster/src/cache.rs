//! A bounded, sharded LRU response cache.
//!
//! Std-only: the map is striped across mutex-guarded segments selected
//! by an FNV-1a hash of the key, so concurrent lookups on different
//! keys rarely contend. Each segment is an independent LRU of capacity
//! `ceil(capacity / segments)` backed by a slab (`Vec<Option<Node>>` +
//! free list) with intrusive prev/next indices — no per-entry
//! allocation churn and no unsafe.
//!
//! Values are validated at read time: [`ShardedLru::get_valid`] takes
//! a predicate and treats a failing entry as a miss, removing it. The
//! router uses this to reject entries whose recorded shard generation
//! or routing epoch no longer matches, which is what makes the cache
//! safe across hot reloads (see `router` module docs for the full
//! protocol).
//!
//! Capacity 0 disables the cache entirely: `get*` always misses and
//! `insert` is a no-op, so the serving path needs no special casing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel slab index meaning "no node".
const NIL: usize = usize::MAX;

/// Default number of mutex stripes.
const DEFAULT_SEGMENTS: usize = 8;

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups not answered (absent or failed validation).
    pub misses: u64,
    /// Entries written.
    pub inserts: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries removed by validation failure or [`ShardedLru::invalidate`].
    pub invalidations: u64,
}

struct Node<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// One mutex stripe: an LRU list threaded through a slab.
struct Segment<V> {
    /// Per-segment capacity; 0 disables the segment.
    capacity: usize,
    map: HashMap<String, usize>,
    slab: Vec<Option<Node<V>>>,
    free: Vec<usize>,
    /// Most-recently-used node, `NIL` when empty.
    head: usize,
    /// Least-recently-used node, `NIL` when empty.
    tail: usize,
}

impl<V> Segment<V> {
    fn new(capacity: usize) -> Segment<V> {
        Segment {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn node(&self, i: usize) -> &Node<V> {
        self.slab[i].as_ref().expect("live slab index")
    }

    fn node_mut(&mut self, i: usize) -> &mut Node<V> {
        self.slab[i].as_mut().expect("live slab index")
    }

    /// Unlinks node `i` from the LRU list (leaves the slab slot live).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let n = self.node(i);
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.node_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.node_mut(next).prev = prev;
        }
    }

    /// Links node `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        let old = self.head;
        {
            let n = self.node_mut(i);
            n.prev = NIL;
            n.next = old;
        }
        if old != NIL {
            self.node_mut(old).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Removes node `i` entirely, returning its slot to the free list
    /// and its value to the caller.
    fn remove(&mut self, i: usize) -> V {
        self.unlink(i);
        let node = self.slab[i].take().expect("live slab index");
        self.map.remove(&node.key);
        self.free.push(i);
        node.value
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
    }

    /// Inserts or overwrites; returns the value displaced by capacity
    /// pressure, if any (so the caller can attribute the eviction).
    fn insert(&mut self, key: &str, value: V) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(key) {
            self.node_mut(i).value = value;
            self.touch(i);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            evicted = Some(self.remove(lru));
        }
        let node = Node { key: key.to_string(), value, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.map.insert(key.to_string(), i);
        self.link_front(i);
        evicted
    }
}

/// A bounded LRU map striped across mutex-guarded segments.
pub struct ShardedLru<V> {
    segments: Vec<Mutex<Segment<V>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

/// FNV-1a, the same cheap stable hash the engine's benchmarks use for
/// key spreading; segment choice only needs decent low-bit diffusion.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl<V: Clone> ShardedLru<V> {
    /// A cache holding at most `capacity` entries total, striped over
    /// the default segment count. Capacity 0 disables caching.
    pub fn new(capacity: usize) -> ShardedLru<V> {
        ShardedLru::with_segments(capacity, DEFAULT_SEGMENTS)
    }

    /// As [`ShardedLru::new`] with an explicit stripe count (rounded up
    /// to a power of two so segment selection is a mask).
    pub fn with_segments(capacity: usize, segments: usize) -> ShardedLru<V> {
        let nsegs = segments.max(1).next_power_of_two();
        let per_seg = if capacity == 0 { 0 } else { capacity.div_ceil(nsegs) };
        ShardedLru {
            segments: (0..nsegs).map(|_| Mutex::new(Segment::new(per_seg))).collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn segment(&self, key: &str) -> &Mutex<Segment<V>> {
        &self.segments[(fnv1a(key) as usize) & (self.segments.len() - 1)]
    }

    /// Total configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// False when the cache was built with capacity 0.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Current number of cached entries across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&self, key: &str) -> Option<V> {
        self.get_valid(key, |_| true)
    }

    /// Looks up `key`, but only counts the entry as a hit when `valid`
    /// accepts it; a stale entry is removed and recorded as both an
    /// invalidation and a miss.
    pub fn get_valid(&self, key: &str, valid: impl FnOnce(&V) -> bool) -> Option<V> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut seg = self.segment(key).lock().unwrap();
        let Some(&i) = seg.map.get(key) else {
            drop(seg);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        if !valid(&seg.node(i).value) {
            seg.remove(i);
            drop(seg);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        seg.touch(i);
        let value = seg.node(i).value.clone();
        drop(seg);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the segment's LRU entry
    /// if it is full. Returns the evicted value, if any, so the caller
    /// can attribute the eviction (the router charges it to the
    /// evicted answer's shard). No-op (and `None`) at capacity 0.
    pub fn insert(&self, key: &str, value: V) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let evicted = self.segment(key).lock().unwrap().insert(key, value);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted.is_some() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        evicted
    }

    /// Removes every entry whose value matches `stale`, returning how
    /// many were dropped.
    pub fn invalidate(&self, stale: impl Fn(&V) -> bool) -> u64 {
        let mut dropped = 0u64;
        for seg in &self.segments {
            let mut seg = seg.lock().unwrap();
            let stale_idx: Vec<usize> =
                seg.map.values().copied().filter(|&i| stale(&seg.node(i).value)).collect();
            for i in stale_idx {
                seg.remove(i);
                dropped += 1;
            }
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) -> u64 {
        self.invalidate(|_| true)
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One segment so eviction order is observable.
    fn lru(capacity: usize) -> ShardedLru<u32> {
        ShardedLru::with_segments(capacity, 1)
    }

    #[test]
    fn eviction_follows_recency_not_insertion() {
        let c = lru(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        // Touch a so b becomes the LRU entry.
        assert_eq!(c.get("a"), Some(1));
        c.insert("d", 4);
        assert_eq!(c.get("b"), None, "b was least recently used");
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.get("d"), Some(4));
        assert_eq!(c.len(), 3);
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.inserts, 4);
    }

    #[test]
    fn overwrite_refreshes_without_evicting() {
        let c = lru(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh, not a new entry
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        c.insert("c", 3); // b is now LRU
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a"), Some(10));
    }

    #[test]
    fn insert_returns_the_evicted_value() {
        let c = lru(2);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("b", 2), None);
        assert_eq!(c.insert("a", 10), None, "refresh displaces nothing");
        assert_eq!(c.insert("c", 3), Some(2), "b was least recently used");
    }

    #[test]
    fn capacity_zero_disables_everything() {
        let c = lru(0);
        assert!(!c.is_enabled());
        c.insert("a", 1);
        assert_eq!(c.get("a"), None);
        assert_eq!(c.len(), 0);
        let s = c.stats();
        assert_eq!(s.inserts, 0);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn get_valid_drops_stale_entries() {
        let c = lru(4);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get_valid("a", |&v| v > 1), None, "failed validation is a miss");
        assert_eq!(c.get("a"), None, "stale entry was removed");
        assert_eq!(c.get_valid("b", |&v| v == 2), Some(2));
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn invalidate_by_predicate_and_clear() {
        let c = ShardedLru::with_segments(100, 4);
        for i in 0..20u32 {
            c.insert(&format!("k{i}"), i);
        }
        assert_eq!(c.invalidate(|&v| v % 2 == 0), 10);
        assert_eq!(c.len(), 10);
        assert_eq!(c.clear(), 10);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 20);
    }

    #[test]
    fn slab_slots_are_reused() {
        let c = lru(2);
        for i in 0..100u32 {
            c.insert(&format!("k{i}"), i);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 98);
        // The slab never grew past capacity: evicted slots were reused.
        let seg = c.segments[0].lock().unwrap();
        assert!(seg.slab.len() <= 2);
    }

    #[test]
    fn keys_spread_across_segments() {
        let c: ShardedLru<u32> = ShardedLru::with_segments(1024, 8);
        for i in 0..256u32 {
            c.insert(&format!("host{i}.example.com"), i);
        }
        let occupied = c.segments.iter().filter(|s| !s.lock().unwrap().map.is_empty()).count();
        assert!(occupied >= 4, "FNV spread only reached {occupied}/8 segments");
        for i in 0..256u32 {
            assert_eq!(c.get(&format!("host{i}.example.com")), Some(i));
        }
    }
}
