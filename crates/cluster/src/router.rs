//! The shard router: N independently reloadable engines behind one
//! lookup API, fronted by the bounded response cache.
//!
//! # Dispatch
//!
//! A global routing table maps every model suffix to its owning shard.
//! A lookup lowercases the hostname once, then routes exactly the way
//! a single engine dispatches: first by PSL registrable domain, then
//! by longest-first label suffix. Because the routing table is the
//! union of all shard indexes, the longest matching suffix globally is
//! found even when registrable-domain routing misses — fallback
//! semantics are preserved across shard boundaries, and the shard's own
//! engine then re-dispatches internally to the same convention (the
//! longest suffix it holds is the longest in the union, since a longer
//! one in this shard would also be in the union).
//!
//! # Cache safety across reloads
//!
//! Cached answers are tagged with a [`Route`]: the shard and its
//! generation for registrable-domain (exact) routes, or the global
//! routing epoch for fallback and miss routes. A read revalidates the
//! tag against the live counters, so a stale answer is never served:
//!
//! * Reloading shard *k* bumps *k*'s generation — every cached answer
//!   computed by *k*'s old engine fails validation.
//! * Any reload bumps the epoch — every fallback/miss answer is
//!   dropped, because a reload can add or remove suffixes anywhere in
//!   the fallback search order.
//! * Exact-route answers of *other* shards stay valid: a reload may
//!   not move a suffix between shards (cross-shard conflicts are
//!   rejected), so another shard's registrable-domain dispatch cannot
//!   be affected.
//!
//! The compute path samples `epoch → routing → generation → engine`,
//! in that order, while a reload installs `engine → routing → bump
//! generation+epoch → invalidate`. A lookup racing a reload may
//! compute on the new engine but always carries the *old* tag, so the
//! racing insert can never validate after the bump — at worst it
//! lingers unservable until evicted. Eager invalidation after the bump
//! just reclaims space early.

use crate::cache::{CacheStats, ShardedLru};
use crate::plan::split;
use hoiho_obs::span::{detail, Layer, TraceCtx};
use hoiho_obs::{Counter, Gauge, Obs, SpanHandle};
use hoiho_psl::{label_suffixes, PublicSuffixList};
use hoiho_serve::model::Model;
use hoiho_serve::server::{Backend, Generation, QueryAnswer};
use hoiho_serve::Engine;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A router construction or reload failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterError(pub String);

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RouterError {}

/// How a cached answer was routed — the validation tag that makes the
/// cache reload-safe (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Registrable-domain dispatch to `shard` while it was at
    /// `generation`.
    Exact { shard: u32, generation: u64 },
    /// Label-suffix fallback dispatch to `shard` under routing `epoch`.
    Fallback { shard: u32, epoch: u64 },
    /// No suffix covered the hostname under routing `epoch`.
    Miss { epoch: u64 },
}

/// A cached response: the answer plus the route tag it must revalidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// Validation tag.
    pub route: Route,
    /// The answer served on a hit.
    pub answer: QueryAnswer,
}

/// One shard: a hot-swappable engine generation plus its counters.
struct ShardSlot {
    /// The live generation (engine + per-suffix counters).
    gen: RwLock<Arc<Generation>>,
    /// Bumped on every reload of this shard; cached exact routes record
    /// the value they were computed under.
    generation_no: AtomicU64,
    /// Queries dispatched to this shard (cache hits not included).
    queries: AtomicU64,
}

/// Point-in-time view of one shard for `STATS CLUSTER`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u32,
    /// Reload count (0 = as constructed).
    pub generation: u64,
    /// Conventions currently owned.
    pub suffixes: usize,
    /// Queries dispatched here since start (cache hits excluded).
    pub queries: u64,
}

/// Pre-registered per-shard metric handles. Series are labelled
/// `shard="<k>"`, with `shard="none"` collecting cache traffic for
/// miss-route entries (hostnames no shard covers — they are cached
/// too, as negative answers).
struct ShardMetrics {
    queries: Counter,
    reloads: Counter,
    generation: Gauge,
    suffixes: Gauge,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    cache_stale: Counter,
}

/// The router's observability handles: one [`ShardMetrics`] per shard
/// plus the `shard="none"` cache series, and the shared context for
/// the `shard_reload` event stream.
struct RouterObs {
    obs: Arc<Obs>,
    shards: Vec<ShardMetrics>,
    /// Cache counters for miss-route (uncovered-hostname) entries.
    none: ShardMetrics,
}

impl RouterObs {
    fn register(obs: Arc<Obs>, nshards: usize, suffix_counts: &[usize]) -> RouterObs {
        let series = |label: &str| {
            let r = obs.registry();
            let l = &[("shard", label)];
            ShardMetrics {
                queries: r.counter("hoiho_shard_queries_total", l),
                reloads: r.counter("hoiho_shard_reloads_total", l),
                generation: r.gauge("hoiho_shard_generation", l),
                suffixes: r.gauge("hoiho_shard_suffixes", l),
                cache_hits: r.counter("hoiho_cache_hits_total", l),
                cache_misses: r.counter("hoiho_cache_misses_total", l),
                cache_evictions: r.counter("hoiho_cache_evictions_total", l),
                cache_stale: r.counter("hoiho_cache_stale_total", l),
            }
        };
        let shards: Vec<ShardMetrics> =
            (0..nshards).map(|k| series(&k.to_string())).collect();
        for (m, &n) in shards.iter().zip(suffix_counts) {
            m.suffixes.set(n as i64);
        }
        let none = series("none");
        RouterObs { obs, shards, none }
    }

    /// The metrics bucket a route charges cache traffic to.
    fn of_route(&self, route: &Route) -> &ShardMetrics {
        match *route {
            Route::Exact { shard, .. } | Route::Fallback { shard, .. } => {
                &self.shards[shard as usize]
            }
            Route::Miss { .. } => &self.none,
        }
    }
}

/// The suffix-sharded serving tier: shard engines, the routing table,
/// and the response cache.
pub struct ShardRouter {
    psl: PublicSuffixList,
    slots: Vec<ShardSlot>,
    /// suffix → owning shard; swapped wholesale on reload.
    routing: RwLock<Arc<HashMap<String, u32>>>,
    /// Bumped on every reload of any shard; fallback/miss cache tags
    /// record it.
    epoch: AtomicU64,
    cache: ShardedLru<CachedAnswer>,
    /// Serializes reloads so routing rebuilds never interleave.
    reload_lock: Mutex<()>,
    /// Per-shard metrics and the shard-reload event stream, when the
    /// router was built with an observability context. `None` keeps
    /// the hot path free of even the relaxed counter increments.
    obs: Option<RouterObs>,
}

impl ShardRouter {
    /// Builds a router over pre-split shard models. Fails if the same
    /// suffix appears in more than one shard.
    pub fn new(shard_models: &[Model], cache_capacity: usize) -> Result<ShardRouter, RouterError> {
        ShardRouter::build(shard_models, cache_capacity, None)
    }

    /// Like [`ShardRouter::new`], but registers per-shard metrics in
    /// `obs` and records `shard_reload` events to its event log.
    pub fn new_obs(
        shard_models: &[Model],
        cache_capacity: usize,
        obs: Arc<Obs>,
    ) -> Result<ShardRouter, RouterError> {
        ShardRouter::build(shard_models, cache_capacity, Some(obs))
    }

    fn build(
        shard_models: &[Model],
        cache_capacity: usize,
        obs: Option<Arc<Obs>>,
    ) -> Result<ShardRouter, RouterError> {
        if shard_models.is_empty() {
            return Err(RouterError("a cluster needs at least one shard".into()));
        }
        let mut routing: HashMap<String, u32> = HashMap::new();
        for (k, m) in shard_models.iter().enumerate() {
            for e in &m.entries {
                if let Some(prev) = routing.insert(e.suffix.clone(), k as u32) {
                    return Err(RouterError(format!(
                        "suffix {} owned by both shard {prev} and shard {k}",
                        e.suffix
                    )));
                }
            }
        }
        let slots = shard_models
            .iter()
            .map(|m| ShardSlot {
                gen: RwLock::new(Generation::new(Arc::new(Engine::new(m)))),
                generation_no: AtomicU64::new(0),
                queries: AtomicU64::new(0),
            })
            .collect();
        let suffix_counts: Vec<usize> =
            shard_models.iter().map(|m| m.entries.len()).collect();
        let obs = obs.map(|o| RouterObs::register(o, shard_models.len(), &suffix_counts));
        Ok(ShardRouter {
            psl: PublicSuffixList::builtin(),
            slots,
            routing: RwLock::new(Arc::new(routing)),
            epoch: AtomicU64::new(0),
            cache: ShardedLru::new(cache_capacity),
            reload_lock: Mutex::new(()),
            obs,
        })
    }

    /// Plans, splits, and builds in one step.
    pub fn from_model(
        model: &Model,
        shards: u32,
        cache_capacity: usize,
    ) -> Result<ShardRouter, RouterError> {
        let (models, _) = split(model, shards).map_err(|e| RouterError(e.to_string()))?;
        ShardRouter::new(&models, cache_capacity)
    }

    /// Plans, splits, and builds in one step, with observability (see
    /// [`ShardRouter::new_obs`]).
    pub fn from_model_obs(
        model: &Model,
        shards: u32,
        cache_capacity: usize,
        obs: Arc<Obs>,
    ) -> Result<ShardRouter, RouterError> {
        let (models, _) = split(model, shards).map_err(|e| RouterError(e.to_string()))?;
        ShardRouter::new_obs(&models, cache_capacity, obs)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The response cache (for stats and tests).
    pub fn cache(&self) -> &ShardedLru<CachedAnswer> {
        &self.cache
    }

    /// True when `route`'s tag still matches the live counters.
    fn route_current(&self, route: &Route) -> bool {
        match *route {
            Route::Exact { shard, generation } => {
                self.slots[shard as usize].generation_no.load(Ordering::Acquire) == generation
            }
            Route::Fallback { epoch, .. } | Route::Miss { epoch } => {
                self.epoch.load(Ordering::Acquire) == epoch
            }
        }
    }

    /// Answers one hostname, through the cache.
    ///
    /// Cache accounting when observability is attached: a hit is
    /// charged to the cached route's shard, a miss to the shard that
    /// ends up computing the answer, a stale-generation rejection to
    /// the rejected entry's shard (stale lookups then recompute, so
    /// they also count as misses — per shard, `hits + misses` over all
    /// series equals total lookups), and an eviction to the shard of
    /// the answer that was pushed out.
    pub fn lookup(&self, hostname: &str) -> QueryAnswer {
        self.lookup_traced(hostname, &TraceCtx::off())
    }

    /// [`ShardRouter::lookup`] under a request tracing context: a
    /// sampled request records a router span tagged with the route
    /// outcome (exact/fallback/route_miss), shard, and generation (or
    /// epoch), a cache span tagged hit/miss/stale, and — on a cache
    /// miss — an engine span from the shard dispatch (DESIGN §7i). An
    /// off context costs one branch per span site.
    pub fn lookup_traced(&self, hostname: &str, ctx: &TraceCtx) -> QueryAnswer {
        let lower = hostname.to_ascii_lowercase();
        let mut rsp = ctx.span(Layer::Router);
        let mut saw_stale = false;
        let cached = {
            let mut csp = ctx.span(Layer::Cache);
            let hit = self.cache.get_valid(&lower, |v| {
                let current = self.route_current(&v.route);
                if !current {
                    saw_stale = true;
                    if let Some(o) = &self.obs {
                        o.of_route(&v.route).cache_stale.inc();
                    }
                }
                current
            });
            match &hit {
                Some(h) => {
                    // Route tag first: it also writes a dispatch
                    // detail, which the cache outcome overrides.
                    tag_route(&mut csp, &h.route);
                    csp.detail(detail::HIT);
                }
                // A stale rejection recomputes, so it also reads as a
                // miss downstream; the distinct detail says why.
                None => csp.detail(if saw_stale { detail::STALE } else { detail::MISS }),
            }
            hit
        };
        if let Some(hit) = cached {
            if let Some(o) = &self.obs {
                o.of_route(&hit.route).cache_hits.inc();
            }
            tag_route(&mut rsp, &hit.route);
            return hit.answer;
        }
        let (route, answer) = self.compute(&lower, ctx);
        tag_route(&mut rsp, &route);
        if let Some(o) = &self.obs {
            o.of_route(&route).cache_misses.inc();
        }
        let evicted = self.cache.insert(&lower, CachedAnswer { route, answer: answer.clone() });
        if let (Some(o), Some(ev)) = (&self.obs, evicted) {
            o.of_route(&ev.route).cache_evictions.inc();
        }
        answer
    }

    /// Answers one hostname, bypassing the cache (no insert either).
    pub fn lookup_uncached(&self, hostname: &str) -> QueryAnswer {
        self.compute(&hostname.to_ascii_lowercase(), &TraceCtx::off()).1
    }

    /// Answers a `BATCH` of hostnames in order. Each item goes through
    /// the same cached [`ShardRouter::lookup`] path as a single query,
    /// so cache accounting, route tags, and reload safety are identical
    /// item for item.
    pub fn lookup_batch(&self, hostnames: &[&str]) -> Vec<QueryAnswer> {
        self.lookup_batch_traced(hostnames, &TraceCtx::off())
    }

    /// [`ShardRouter::lookup_batch`] under a tracing context; each item
    /// records its own router/cache/engine spans until the context's
    /// span budget is spent.
    pub fn lookup_batch_traced(&self, hostnames: &[&str], ctx: &TraceCtx) -> Vec<QueryAnswer> {
        hostnames.iter().map(|h| self.lookup_traced(h, ctx)).collect()
    }

    /// The routed compute path. Sampling order matters (module docs):
    /// epoch, then routing, then the shard's generation, then its
    /// engine — a racing reload leaves the tag stale, never the answer
    /// newer than the tag claims.
    fn compute(&self, lower: &str, ctx: &TraceCtx) -> (Route, QueryAnswer) {
        let epoch = self.epoch.load(Ordering::Acquire);
        let routing = Arc::clone(&self.routing.read().unwrap());
        // Exact: route by registrable domain, as the engine does first.
        if let Some(rd) = self.psl.registrable_domain(lower) {
            if let Some(&shard) = routing.get(&rd) {
                let generation =
                    self.slots[shard as usize].generation_no.load(Ordering::Acquire);
                let answer = self.query_shard(shard, lower, ctx);
                return (Route::Exact { shard, generation }, answer);
            }
        }
        // Fallback: longest label suffix anywhere in the union.
        for s in label_suffixes(lower) {
            if let Some(&shard) = routing.get(s) {
                let answer = self.query_shard(shard, lower, ctx);
                return (Route::Fallback { shard, epoch }, answer);
            }
        }
        (Route::Miss { epoch }, QueryAnswer::MISS)
    }

    /// Dispatches a pre-lowercased hostname to shard `k`'s engine.
    fn query_shard(&self, k: u32, lower: &str, ctx: &TraceCtx) -> QueryAnswer {
        let slot = &self.slots[k as usize];
        slot.queries.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.obs {
            o.shards[k as usize].queries.inc();
        }
        let mut esp = ctx.span(Layer::Engine);
        esp.shard(k);
        esp.generation(slot.generation_no.load(Ordering::Acquire));
        let gen = Arc::clone(&slot.gen.read().unwrap());
        let x = gen.engine.extract_lower(lower);
        let answer = gen.answer_of(x);
        esp.detail(if answer.asn.is_some() { detail::EXTRACT_HIT } else { detail::EXTRACT_MISS });
        answer
    }

    /// Hot-reloads shard `k` with a new model. The new model may add
    /// or drop suffixes, but may not claim a suffix another shard owns.
    /// On success the shard's generation and the global epoch advance
    /// and stale cache entries are dropped; on failure nothing changes.
    pub fn reload_shard(&self, k: u32, model: &Model) -> Result<usize, RouterError> {
        let Some(slot) = self.slots.get(k as usize) else {
            return Err(RouterError(format!(
                "shard {k} out of range (cluster has {})",
                self.slots.len()
            )));
        };
        let _serialize = self.reload_lock.lock().unwrap();
        let current = Arc::clone(&self.routing.read().unwrap());
        for e in &model.entries {
            if let Some(&owner) = current.get(&e.suffix) {
                if owner != k {
                    return Err(RouterError(format!(
                        "suffix {} is owned by shard {owner}; reload of shard {k} may not \
                         claim it",
                        e.suffix
                    )));
                }
            }
        }
        let engine = Arc::new(Engine::new(model));
        let n = engine.len();
        // Install order per module docs: engine, routing, counters,
        // then eager invalidation.
        *slot.gen.write().unwrap() = Generation::new(engine);
        let mut next: HashMap<String, u32> =
            current.iter().filter(|&(_, &s)| s != k).map(|(s, &o)| (s.clone(), o)).collect();
        for e in &model.entries {
            next.insert(e.suffix.clone(), k);
        }
        *self.routing.write().unwrap() = Arc::new(next);
        slot.generation_no.fetch_add(1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
        self.cache.invalidate(|v| !self.route_current(&v.route));
        if let Some(o) = &self.obs {
            let m = &o.shards[k as usize];
            m.reloads.inc();
            let generation = slot.generation_no.load(Ordering::Acquire);
            m.generation.set(generation as i64);
            m.suffixes.set(n as i64);
            o.obs.events().record(
                "shard_reload",
                &[
                    ("shard", &k.to_string()),
                    ("generation", &generation.to_string()),
                    ("conventions", &n.to_string()),
                ],
            );
        }
        Ok(n)
    }

    /// Total conventions across all shards.
    pub fn model_len(&self) -> usize {
        self.slots.iter().map(|s| s.gen.read().unwrap().engine.len()).sum()
    }

    /// Per-suffix query counts, shard by shard in index order (the
    /// cluster analogue of the single engine's `STATS SUFFIX`). Cache
    /// hits do not reach an engine and are not counted here.
    pub fn per_suffix(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let gen = Arc::clone(&slot.gen.read().unwrap());
            for (nc, n) in gen.engine.conventions().iter().zip(&gen.per_suffix) {
                out.push((nc.suffix.clone(), n.load(Ordering::Relaxed)));
            }
        }
        out
    }

    /// Per-shard stats snapshot.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.slots
            .iter()
            .enumerate()
            .map(|(k, slot)| ShardStats {
                shard: k as u32,
                generation: slot.generation_no.load(Ordering::Acquire),
                suffixes: slot.gen.read().unwrap().engine.len(),
                queries: slot.queries.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Cache counters snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Tags a span with a route outcome: the dispatch detail plus the
/// shard index and its validation counter (generation for exact
/// routes, routing epoch for fallback/miss).
fn tag_route(sp: &mut SpanHandle<'_>, route: &Route) {
    match *route {
        Route::Exact { shard, generation } => {
            sp.detail(detail::EXACT);
            sp.shard(shard);
            sp.generation(generation);
        }
        Route::Fallback { shard, epoch } => {
            sp.detail(detail::FALLBACK);
            sp.shard(shard);
            sp.generation(epoch);
        }
        Route::Miss { epoch } => {
            sp.detail(detail::ROUTE_MISS);
            sp.generation(epoch);
        }
    }
}

/// [`Backend`] adapter plugging a [`ShardRouter`] into the serve
/// protocol loop: queries go through the cache, `RELOAD SHARD <k>
/// <path>` reloads one shard, and `STATS CLUSTER` reports shard and
/// cache counters.
pub struct ClusterBackend {
    router: Arc<ShardRouter>,
}

impl ClusterBackend {
    /// Wraps a router.
    pub fn new(router: Arc<ShardRouter>) -> ClusterBackend {
        ClusterBackend { router }
    }

    /// The wrapped router.
    pub fn router(&self) -> &Arc<ShardRouter> {
        &self.router
    }
}

impl Backend for ClusterBackend {
    fn query(&self, hostname: &str, ctx: &TraceCtx) -> QueryAnswer {
        self.router.lookup_traced(hostname, ctx)
    }

    fn query_batch(&self, hostnames: &[&str], ctx: &TraceCtx) -> Vec<QueryAnswer> {
        self.router.lookup_batch_traced(hostnames, ctx)
    }

    fn model_len(&self) -> usize {
        self.router.model_len()
    }

    fn per_suffix(&self) -> Vec<(String, u64)> {
        self.router.per_suffix()
    }

    fn reload(&self, args: &str) -> Result<String, String> {
        // Cluster reloads are per shard: RELOAD SHARD <k> <path>.
        let mut parts = args.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some("SHARD"), Some(k), Some(path), None) => {
                let k: u32 = k.parse().map_err(|_| format!("bad shard index {k:?}"))?;
                let model = Model::load(path).map_err(|e| e.to_string())?;
                let n = self.router.reload_shard(k, &model).map_err(|e| e.to_string())?;
                Ok(format!("reloaded\tshard={k}\tconventions={n}"))
            }
            _ => Err("cluster reload usage: RELOAD SHARD <k> <path>".into()),
        }
    }

    fn cluster_stats(&self) -> Option<String> {
        let mut body = String::new();
        for s in self.router.shard_stats() {
            let _ = writeln!(
                body,
                "shard\t{}\tgeneration={}\tsuffixes={}\tqueries={}",
                s.shard, s.generation, s.suffixes, s.queries
            );
        }
        let c = self.router.cache_stats();
        let _ = writeln!(
            body,
            "cache\tcapacity={}\tlen={}\thits={}\tmisses={}\tinserts={}\tevictions={}\tinvalidations={}",
            self.router.cache().capacity(),
            self.router.cache().len(),
            c.hits,
            c.misses,
            c.inserts,
            c.evictions,
            c.invalidations
        );
        body.push_str(".\n");
        Some(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoiho::classify::NcClass;
    use hoiho::regex::Regex;
    use hoiho::taxonomy::Taxonomy;
    use hoiho_serve::model::{EvalCounts, ModelEntry};

    fn entry(suffix: &str, rx: &[&str]) -> ModelEntry {
        ModelEntry {
            suffix: suffix.to_string(),
            class: NcClass::Good,
            single: false,
            taxonomy: Taxonomy::Start,
            hostnames: 5,
            counts: EvalCounts::default(),
            regexes: rx.iter().map(|s| Regex::parse(s).unwrap()).collect(),
        }
    }

    fn model() -> Model {
        Model {
            entries: vec![
                entry("equinix.com", &[r"^[^\.]+\.[^\.]+\.as(\d+)\.equinix\.com$"]),
                entry("nts.ch", &[r"^[^\.]+\.\d+\.[a-z]+\.as(\d+)\.nts\.ch$"]),
                // A deeper suffix under the same registrable domain as
                // another entry, to exercise fallback precedence.
                entry("sgw.equinix.com", &[r"^p(\d+)\.sgw\.equinix\.com$"]),
                entry("example.net", &[r"^as(\d+)\.example\.net$"]),
            ],
        }
    }

    const HOSTS: &[&str] = &[
        "ge0-2.01.p.as15576.nts.ch",
        "a.b.as64500.equinix.com",
        "p714.sgw.equinix.com",
        "as3356.example.net",
        "AS3356.EXAMPLE.NET",
        "nothing.example.org",
        "example.net",
        "com",
        "",
    ];

    #[test]
    fn router_matches_single_engine_for_all_shard_counts() {
        let m = model();
        let single = Engine::new(&m);
        for shards in [1u32, 2, 3, 4] {
            let router = ShardRouter::from_model(&m, shards, 64).unwrap();
            for h in HOSTS {
                let direct = single.extract(h);
                let routed = router.lookup(h);
                assert_eq!(routed.asn, direct.asn, "shards={shards} host={h}");
                let expect_suffix = direct.nc.map(|i| single.conventions()[i].suffix.clone());
                assert_eq!(routed.suffix, expect_suffix, "shards={shards} host={h}");
                // And the cached second read agrees.
                assert_eq!(router.lookup(h), routed, "shards={shards} host={h} cached");
            }
        }
    }

    #[test]
    fn cache_hits_counted_and_engine_not_retouched() {
        let router = ShardRouter::from_model(&model(), 2, 64).unwrap();
        let h = "a.b.as64500.equinix.com";
        assert_eq!(router.lookup(h).asn, Some(64500));
        let queries_after_first: u64 = router.shard_stats().iter().map(|s| s.queries).sum();
        for _ in 0..5 {
            assert_eq!(router.lookup(h).asn, Some(64500));
        }
        let stats = router.cache_stats();
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.misses, 1);
        let queries_now: u64 = router.shard_stats().iter().map(|s| s.queries).sum();
        assert_eq!(queries_now, queries_after_first, "cache hits must not reach engines");
        // Mixed case maps to the same cache entry.
        assert_eq!(router.lookup("A.B.AS64500.Equinix.COM").asn, Some(64500));
        assert_eq!(router.cache_stats().hits, 6);
    }

    #[test]
    fn reload_invalidates_only_what_it_must() {
        let m = model();
        let router = ShardRouter::from_model(&m, 2, 64).unwrap();
        let routing = Arc::clone(&router.routing.read().unwrap());
        let nts_shard = routing["nts.ch"];
        // Prime: one exact answer per shard, one miss.
        for h in HOSTS {
            router.lookup(h);
        }
        let primed = router.cache().len();
        assert!(primed >= 4);

        // Reload the nts.ch shard with that same single entry dropped
        // to an always-miss regex set (still owns nts.ch).
        let new_model = Model {
            entries: m
                .entries
                .iter()
                .filter(|e| routing[&e.suffix] == nts_shard)
                .map(|e| {
                    let mut e = e.clone();
                    if e.suffix == "nts.ch" {
                        e.regexes = vec![Regex::parse(r"^never(\d+)\.nts\.ch$").unwrap()];
                    }
                    e
                })
                .collect(),
        };
        router.reload_shard(nts_shard, &new_model).unwrap();

        // The nts answer changed; the other shard's exact answers
        // survived the reload in cache.
        assert_eq!(router.lookup("ge0-2.01.p.as15576.nts.ch").asn, None);
        let (other_host, other_asn) = [
            ("a.b.as64500.equinix.com", "equinix.com", 64500),
            ("as3356.example.net", "example.net", 3356),
        ]
        .iter()
        .find(|(_, suffix, _)| routing[*suffix] != nts_shard)
        .map(|&(h, _, asn)| (h, asn))
        .expect("two shards cannot both hold nts.ch");
        let hits_before = router.cache_stats().hits;
        assert_eq!(router.lookup(other_host).asn, Some(other_asn));
        assert_eq!(
            router.cache_stats().hits,
            hits_before + 1,
            "other shard's exact-route entry must still be served from cache"
        );
        let gens: Vec<u64> = router.shard_stats().iter().map(|s| s.generation).collect();
        assert_eq!(gens.iter().sum::<u64>(), 1, "exactly one shard advanced: {gens:?}");
    }

    #[test]
    fn reload_may_not_steal_a_suffix() {
        let m = model();
        let router = ShardRouter::from_model(&m, 2, 0).unwrap();
        let routing = Arc::clone(&router.routing.read().unwrap());
        let victim = &m.entries[0].suffix;
        let thief = (routing[victim] + 1) % 2;
        let steal = Model { entries: vec![m.entries[0].clone()] };
        let err = router.reload_shard(thief, &steal).unwrap_err();
        assert!(err.0.contains("owned by shard"), "{err}");
        // Nothing moved.
        assert_eq!(router.lookup_uncached("a.b.as64500.equinix.com").asn, Some(64500));
    }

    #[test]
    fn reload_can_add_and_drop_suffixes() {
        let router = ShardRouter::from_model(&model(), 2, 16).unwrap();
        assert_eq!(router.lookup("as1.fresh.io").asn, None);
        // Give shard 0 a brand-new suffix and nothing else.
        let fresh = Model { entries: vec![entry("fresh.io", &[r"^as(\d+)\.fresh\.io$"])] };
        router.reload_shard(0, &fresh).unwrap();
        assert_eq!(router.lookup("as1.fresh.io").asn, Some(1), "new suffix routed after reload");
        // Suffixes previously on shard 0 are gone from routing.
        let routing = Arc::clone(&router.routing.read().unwrap());
        assert_eq!(routing.values().filter(|&&s| s == 0).count(), 1);
        assert_eq!(router.model_len(), 1 + router.slots[1].gen.read().unwrap().engine.len());
    }

    #[test]
    fn duplicate_suffix_across_shards_rejected_at_build() {
        let m = Model { entries: vec![entry("dup.com", &[r"^as(\d+)\.dup\.com$"])] };
        let err = match ShardRouter::new(&[m.clone(), m], 0) {
            Err(e) => e,
            Ok(_) => panic!("duplicate suffix must be rejected"),
        };
        assert!(err.0.contains("owned by both"), "{err}");
    }

    #[test]
    fn per_shard_metrics_account_exactly() {
        let m = model();
        let obs = Arc::new(Obs::new());
        let router = ShardRouter::from_model_obs(&m, 2, 64, Arc::clone(&obs)).unwrap();
        let routing = Arc::clone(&router.routing.read().unwrap());
        let eq = routing["equinix.com"];
        let s = eq.to_string();
        let c = |name: &str, shard: &str| obs.registry().counter(name, &[("shard", shard)]).get();

        let h = "a.b.as64500.equinix.com";
        router.lookup(h); // compute on eq's shard
        router.lookup(h); // cache hit
        router.lookup(h); // cache hit
        router.lookup("nothing.example.org"); // miss route → shard="none"
        assert_eq!(c("hoiho_cache_misses_total", &s), 1);
        assert_eq!(c("hoiho_cache_hits_total", &s), 2);
        assert_eq!(c("hoiho_shard_queries_total", &s), 1, "hits must not reach the engine");
        assert_eq!(c("hoiho_cache_misses_total", "none"), 1);
        assert_eq!(c("hoiho_cache_hits_total", "none"), 0);
        assert_eq!(obs.registry().gauge("hoiho_shard_suffixes", &[("shard", &s)]).get(), 2);

        // A racing-insert survivor: an entry whose tag predates the
        // live generation. Its rejection is charged to its shard as
        // `stale`, and the recompute as a fresh miss.
        router.cache().insert(
            h,
            CachedAnswer {
                route: Route::Exact { shard: eq, generation: 999 },
                answer: QueryAnswer::MISS,
            },
        );
        assert_eq!(router.lookup(h).asn, Some(64500));
        assert_eq!(c("hoiho_cache_stale_total", &s), 1);
        assert_eq!(c("hoiho_cache_misses_total", &s), 2);

        // Reload bumps the reload counter and the generation gauge and
        // records a shard_reload event.
        let own = Model {
            entries: m.entries.iter().filter(|e| routing[&e.suffix] == eq).cloned().collect(),
        };
        router.reload_shard(eq, &own).unwrap();
        assert_eq!(c("hoiho_shard_reloads_total", &s), 1);
        assert_eq!(obs.registry().gauge("hoiho_shard_generation", &[("shard", &s)]).get(), 1);
        let kinds: Vec<String> =
            obs.events().tail(16).into_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"shard_reload".to_string()), "{kinds:?}");

        // Per shard, hits + misses across all series == total lookups
        // (the stale rejection became a miss, not a separate bucket).
        let lookups = 5u64;
        let total: u64 = [&s as &str, "none", &((eq + 1) % 2).to_string()]
            .iter()
            .map(|sh| c("hoiho_cache_hits_total", sh) + c("hoiho_cache_misses_total", sh))
            .sum();
        assert_eq!(total, lookups);
    }

    #[test]
    fn cluster_backend_protocol_surfaces() {
        let router = Arc::new(ShardRouter::from_model(&model(), 2, 32).unwrap());
        let backend = ClusterBackend::new(Arc::clone(&router));
        assert_eq!(backend.query("a.b.as64500.equinix.com", &TraceCtx::off()).asn, Some(64500));
        assert_eq!(backend.model_len(), 4);
        assert_eq!(backend.per_suffix().len(), 4);
        let stats = backend.cluster_stats().unwrap();
        assert!(stats.contains("shard\t0\tgeneration=0"), "{stats}");
        assert!(stats.contains("shard\t1\t"), "{stats}");
        assert!(stats.contains("cache\tcapacity=32\t"), "{stats}");
        assert!(stats.ends_with(".\n"), "{stats}");
        assert!(backend.reload("not-a-shard-reload").unwrap_err().contains("usage"));
        assert!(backend.reload("SHARD 99 /nope").unwrap_err().contains("bad shard")
            || backend.reload("SHARD 99 /nope").is_err());
    }
}
