//! The shard planner: partitions a model artifact into N balanced
//! shards by registrable-domain suffix, and the shard-map manifest
//! that records the partition.
//!
//! Planning is greedy bin-packing on per-suffix serving weight (the
//! textual size of a convention's regexes, a proxy for match cost):
//! suffixes are taken heaviest-first and each goes to the currently
//! lightest shard. The order is fully tie-broken (weight descending,
//! then suffix ascending; lightest shard ties go to the lowest index),
//! so a given model and shard count always produce the same plan.
//!
//! The manifest is a line-based text file in the same strict family as
//! the model artifact: a versioned header, one `A` record per suffix,
//! and an `E` trailer carrying totals so truncation can never parse.
//! [`ShardMap::render`] → [`ShardMap::parse`] → [`ShardMap::render`]
//! is a fixpoint (property-tested in `tests/properties.rs`):
//!
//! ```text
//! # comments and blank lines are ignored anywhere
//! hoiho-shardmap	1	4
//! A	equinix.com	2	137
//! A	nts.ch	0	52
//! E	2	189
//! ```

use hoiho_serve::model::{Model, ModelEntry};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Manifest format version written by [`ShardMap::render`] and the
/// only version [`ShardMap::parse`] accepts.
pub const SHARDMAP_VERSION: u32 = 1;

/// The planner's serving-cost weight for one convention: the total
/// textual length of its regexes (a proxy for match cost — the
/// dialect's matchers walk the pattern structure), never zero so every
/// suffix contributes to balance.
pub fn suffix_weight(entry: &ModelEntry) -> u64 {
    entry
        .regexes
        .iter()
        .map(|r| r.to_string().len() as u64)
        .sum::<u64>()
        .max(1)
}

/// One suffix's placement in the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The registrable-domain suffix (the engine's dispatch key).
    pub suffix: String,
    /// The owning shard, `0..shards`.
    pub shard: u32,
    /// The planner's weight for the suffix (recorded for audit; the
    /// router never recomputes it).
    pub weight: u64,
}

/// A full shard plan: which shard owns each suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Number of shards planned for (some may own no suffixes).
    pub shards: u32,
    /// The assignments, sorted by suffix (the render order, enforced
    /// on parse so the fixpoint holds).
    pub assignments: Vec<Assignment>,
}

/// A planning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// A manifest parse failure, pointing at the offending line (1-based;
/// 0 when not tied to a line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMapError {
    /// 1-based line number, 0 when unlocated.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl ShardMapError {
    fn at(line: usize, msg: impl Into<String>) -> ShardMapError {
        ShardMapError { line, msg: msg.into() }
    }
}

impl fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ShardMapError {}

/// Plans a partition of `model` into `shards` shards. Deterministic
/// for a given model and shard count.
pub fn plan(model: &Model, shards: u32) -> Result<ShardMap, PlanError> {
    if shards == 0 {
        return Err(PlanError("shard count must be at least 1".into()));
    }
    // Heaviest first, suffix as the total tie-break.
    let mut order: Vec<(u64, &str)> =
        model.entries.iter().map(|e| (suffix_weight(e), e.suffix.as_str())).collect();
    order.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));

    let mut loads = vec![0u64; shards as usize];
    let mut assignments: Vec<Assignment> = Vec::with_capacity(order.len());
    for (weight, suffix) in order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &w)| (w, i))
            .map(|(i, _)| i)
            .expect("at least one shard");
        loads[lightest] += weight;
        assignments.push(Assignment { suffix: suffix.to_string(), shard: lightest as u32, weight });
    }
    assignments.sort_by(|a, b| a.suffix.cmp(&b.suffix));
    Ok(ShardMap { shards, assignments })
}

/// Plans and materializes the partition: one valid v1 model artifact
/// per shard (entries in suffix order, possibly empty) plus the
/// manifest. The union of the shard models is exactly `model`.
pub fn split(model: &Model, shards: u32) -> Result<(Vec<Model>, ShardMap), PlanError> {
    let map = plan(model, shards)?;
    let mut out: Vec<Model> = (0..shards).map(|_| Model::default()).collect();
    for entry in &model.entries {
        let shard = map
            .shard_of(&entry.suffix)
            .expect("planner assigned every suffix");
        out[shard as usize].entries.push(entry.clone());
    }
    Ok((out, map))
}

/// Conventional file name for shard `k`'s model artifact inside a
/// shard directory.
pub fn shard_file_name(shard: u32) -> String {
    format!("shard.{shard}.model")
}

/// Conventional file name for the manifest inside a shard directory.
pub const SHARDMAP_FILE_NAME: &str = "shardmap.hoiho";

impl ShardMap {
    /// The shard owning `suffix`, if the plan covers it.
    pub fn shard_of(&self, suffix: &str) -> Option<u32> {
        self.assignments
            .binary_search_by(|a| a.suffix.as_str().cmp(suffix))
            .ok()
            .map(|i| self.assignments[i].shard)
    }

    /// Number of suffixes assigned.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when no suffixes are assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Sum of all assignment weights.
    pub fn total_weight(&self) -> u64 {
        self.assignments.iter().map(|a| a.weight).sum()
    }

    /// Per-shard total weights, index-addressable by shard.
    pub fn shard_weights(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.shards as usize];
        for a in &self.assignments {
            loads[a.shard as usize] += a.weight;
        }
        loads
    }

    /// Renders the manifest text; `parse(render(m)) == m`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("# hoiho-cluster shard map; format spec in DESIGN.md\n");
        let _ = writeln!(s, "hoiho-shardmap\t{SHARDMAP_VERSION}\t{}", self.shards);
        for a in &self.assignments {
            let _ = writeln!(s, "A\t{}\t{}\t{}", a.suffix, a.shard, a.weight);
        }
        let _ = writeln!(s, "E\t{}\t{}", self.len(), self.total_weight());
        s
    }

    /// Parses a manifest, reporting the first problem with its line
    /// number. Strictness: unknown tags, short/long records, shard
    /// indices outside `0..shards`, duplicate or out-of-order suffixes,
    /// and truncation (missing or mismatched `E` trailer) are errors.
    pub fn parse(text: &str) -> Result<ShardMap, ShardMapError> {
        let mut shards: Option<u32> = None;
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut trailer: Option<usize> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim_end_matches('\r');
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            if let Some(tl) = trailer {
                return Err(ShardMapError::at(
                    lineno,
                    format!("content after the E trailer on line {tl}"),
                ));
            }
            let Some(n_shards) = shards else {
                let fields: Vec<&str> = line.split('\t').collect();
                let [tag, version, count] = fields[..] else {
                    return Err(ShardMapError::at(lineno, "bad header (want 3 fields)"));
                };
                if tag != "hoiho-shardmap" {
                    return Err(ShardMapError::at(lineno, "missing hoiho-shardmap header"));
                }
                let version: u32 = version
                    .parse()
                    .map_err(|_| ShardMapError::at(lineno, "bad header version"))?;
                if version != SHARDMAP_VERSION {
                    return Err(ShardMapError::at(
                        lineno,
                        format!(
                            "unsupported shardmap version {version} (expected {SHARDMAP_VERSION})"
                        ),
                    ));
                }
                let count: u32 = count
                    .parse()
                    .map_err(|_| ShardMapError::at(lineno, "bad shard count"))?;
                if count == 0 {
                    return Err(ShardMapError::at(lineno, "shard count must be at least 1"));
                }
                shards = Some(count);
                continue;
            };
            let (tag, rest) = line.split_once('\t').unwrap_or((line, ""));
            match tag {
                "A" => {
                    let fields: Vec<&str> = rest.split('\t').collect();
                    let [suffix, shard, weight] = fields[..] else {
                        return Err(ShardMapError::at(
                            lineno,
                            format!("A record needs 3 fields, got {}", fields.len()),
                        ));
                    };
                    if suffix.is_empty() || suffix.chars().any(|c| c.is_whitespace()) {
                        return Err(ShardMapError::at(lineno, "bad suffix"));
                    }
                    if let Some(last) = assignments.last() {
                        match last.suffix.as_str().cmp(suffix) {
                            std::cmp::Ordering::Less => {}
                            std::cmp::Ordering::Equal => {
                                return Err(ShardMapError::at(
                                    lineno,
                                    format!("duplicate suffix {suffix}"),
                                ))
                            }
                            std::cmp::Ordering::Greater => {
                                return Err(ShardMapError::at(
                                    lineno,
                                    format!("suffix {suffix} out of sorted order"),
                                ))
                            }
                        }
                    }
                    let shard: u32 = shard
                        .parse()
                        .map_err(|_| ShardMapError::at(lineno, "bad shard index"))?;
                    if shard >= n_shards {
                        return Err(ShardMapError::at(
                            lineno,
                            format!("shard {shard} out of range (plan has {n_shards})"),
                        ));
                    }
                    let weight: u64 = weight
                        .parse()
                        .map_err(|_| ShardMapError::at(lineno, "bad weight"))?;
                    assignments.push(Assignment { suffix: suffix.to_string(), shard, weight });
                }
                "E" => {
                    let fields: Vec<&str> = rest.split('\t').collect();
                    let nums: Vec<u64> = fields
                        .iter()
                        .map(|v| v.parse::<u64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| ShardMapError::at(lineno, "bad trailer field"))?;
                    let [n, total] = nums[..] else {
                        return Err(ShardMapError::at(
                            lineno,
                            format!("E trailer needs 2 fields, got {}", nums.len()),
                        ));
                    };
                    let got_total: u64 = assignments.iter().map(|a| a.weight).sum();
                    if n != assignments.len() as u64 || total != got_total {
                        return Err(ShardMapError::at(
                            lineno,
                            format!(
                                "trailer mismatch: file says {n} assignments / weight {total}, \
                                 parsed {} / {got_total}",
                                assignments.len()
                            ),
                        ));
                    }
                    trailer = Some(lineno);
                }
                other => {
                    return Err(ShardMapError::at(
                        lineno,
                        format!("unknown record tag {other:?}"),
                    ));
                }
            }
        }
        let Some(shards) = shards else {
            return Err(ShardMapError::at(0, "empty shard map (no header)"));
        };
        if trailer.is_none() {
            return Err(ShardMapError::at(
                text.lines().count(),
                "truncated shard map: missing E trailer",
            ));
        }
        Ok(ShardMap { shards, assignments })
    }

    /// Writes the rendered manifest to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Reads and parses a manifest file.
    pub fn load(path: impl AsRef<Path>) -> Result<ShardMap, ShardMapError> {
        let text = std::fs::read_to_string(&path).map_err(|e| {
            ShardMapError::at(0, format!("cannot read {}: {e}", path.as_ref().display()))
        })?;
        ShardMap::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoiho::classify::NcClass;
    use hoiho::regex::Regex;
    use hoiho::taxonomy::Taxonomy;
    use hoiho_serve::model::EvalCounts;

    fn entry(suffix: &str, rx: &[&str]) -> ModelEntry {
        ModelEntry {
            suffix: suffix.to_string(),
            class: NcClass::Good,
            single: false,
            taxonomy: Taxonomy::Start,
            hostnames: 7,
            counts: EvalCounts::default(),
            regexes: rx.iter().map(|s| Regex::parse(s).unwrap()).collect(),
        }
    }

    fn model() -> Model {
        Model {
            entries: vec![
                entry("a.com", &[r"^as(\d+)\.a\.com$", r"^(\d+)-.+\.a\.com$"]),
                entry("b.net", &[r"^as(\d+)\.b\.net$"]),
                entry("c.org", &[r"^r(\d+)\.c\.org$"]),
                entry("d.ch", &[r"^gw-as(\d+)-[a-z]+\.d\.ch$", r"as(\d+)\.d\.ch$"]),
                entry("e.nz", &[r"^(\d+)\.e\.nz$"]),
            ],
        }
    }

    #[test]
    fn plan_is_deterministic_and_total() {
        let m = model();
        for shards in [1u32, 2, 3, 4, 8] {
            let p1 = plan(&m, shards).unwrap();
            let p2 = plan(&m, shards).unwrap();
            assert_eq!(p1, p2, "shards={shards}");
            assert_eq!(p1.len(), m.len());
            assert!(p1.assignments.iter().all(|a| a.shard < shards));
            // Every model suffix is assigned exactly once.
            for e in &m.entries {
                assert!(p1.shard_of(&e.suffix).is_some(), "{} unassigned", e.suffix);
            }
        }
        assert!(plan(&m, 0).is_err());
    }

    #[test]
    fn greedy_balance_bound_holds() {
        // Greedy heaviest-first guarantees max load − min load ≤ the
        // heaviest single item (standard LPT argument).
        let m = model();
        let max_item = m.entries.iter().map(suffix_weight).max().unwrap();
        for shards in [2u32, 3, 5] {
            let p = plan(&m, shards).unwrap();
            let loads = p.shard_weights();
            let (max, min) = (loads.iter().max().unwrap(), loads.iter().min().unwrap());
            assert!(
                max - min <= max_item,
                "shards={shards}: loads {loads:?} spread beyond max item {max_item}"
            );
        }
    }

    #[test]
    fn split_partitions_the_model_exactly() {
        let m = model();
        let (shards, map) = split(&m, 3).unwrap();
        assert_eq!(shards.len(), 3);
        // Each shard artifact is itself a valid v1 model.
        for s in &shards {
            assert_eq!(Model::parse(&s.render()).unwrap(), *s);
        }
        // The union, re-sorted, is the original model.
        let mut union: Vec<ModelEntry> =
            shards.iter().flat_map(|s| s.entries.iter().cloned()).collect();
        union.sort_by(|a, b| a.suffix.cmp(&b.suffix));
        assert_eq!(Model { entries: union }, m);
        // The manifest agrees with where entries landed.
        for (k, s) in shards.iter().enumerate() {
            for e in &s.entries {
                assert_eq!(map.shard_of(&e.suffix), Some(k as u32));
            }
        }
    }

    #[test]
    fn manifest_round_trips() {
        let (_, map) = split(&model(), 4).unwrap();
        let text = map.render();
        let parsed = ShardMap::parse(&text).unwrap();
        assert_eq!(parsed, map);
        assert_eq!(parsed.render(), text);
        // Empty plan (no suffixes) still round-trips.
        let empty = ShardMap { shards: 2, assignments: Vec::new() };
        assert_eq!(ShardMap::parse(&empty.render()).unwrap(), empty);
    }

    #[test]
    fn manifest_truncation_and_corruption_rejected() {
        let text = split(&model(), 2).unwrap().1.render();
        let lines: Vec<&str> = text.lines().collect();
        for cut in 0..lines.len() {
            assert!(
                ShardMap::parse(&lines[..cut].join("\n")).is_err(),
                "prefix of {cut} lines parsed"
            );
        }
        // Shard index out of range.
        let bad = "hoiho-shardmap\t1\t2\nA\ta.com\t9\t5\nE\t1\t5\n";
        assert!(ShardMap::parse(bad).unwrap_err().msg.contains("out of range"));
        // Unknown tag carries its line number.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[2] = "Z\twhat".into();
        let err = ShardMap::parse(&lines.join("\n")).unwrap_err();
        assert_eq!(err.line, 3);
        // Wrong version.
        assert!(ShardMap::parse("hoiho-shardmap\t9\t2\nE\t0\t0\n")
            .unwrap_err()
            .msg
            .contains("unsupported"));
        // Zero shards.
        assert!(ShardMap::parse("hoiho-shardmap\t1\t0\nE\t0\t0\n").is_err());
    }

    #[test]
    fn manifest_ordering_enforced() {
        // Out-of-order suffixes break the render fixpoint, so parse
        // rejects them rather than silently re-sorting.
        let text = "hoiho-shardmap\t1\t2\nA\tb.net\t0\t5\nA\ta.com\t1\t5\nE\t2\t10\n";
        assert!(ShardMap::parse(text).unwrap_err().msg.contains("out of sorted order"));
        let text = "hoiho-shardmap\t1\t2\nA\ta.com\t0\t5\nA\ta.com\t1\t5\nE\t2\t10\n";
        assert!(ShardMap::parse(text).unwrap_err().msg.contains("duplicate suffix"));
    }

    #[test]
    fn more_shards_than_suffixes_leaves_empty_shards() {
        let (shards, map) = split(&model(), 8).unwrap();
        assert_eq!(shards.len(), 8);
        assert_eq!(map.shards, 8);
        assert!(shards.iter().filter(|s| s.is_empty()).count() >= 3);
        // Empty shard artifacts still render/parse as valid models.
        for s in &shards {
            assert_eq!(Model::parse(&s.render()).unwrap(), *s);
        }
    }
}
