//! # hoiho-cluster — suffix-sharded serving tier
//!
//! Scales the single-engine serving path ([`hoiho_serve`]) out to N
//! independently reloadable shards with a bounded response cache:
//!
//! * [`plan`] — deterministic greedy partitioning of a model artifact
//!   into N weight-balanced shards by registrable-domain suffix, plus
//!   the shard-map manifest (strict parser, render→parse→render
//!   fixpoint, truncation-detecting trailer).
//! * [`cache`] — a std-only bounded LRU striped across mutex-guarded
//!   segments, with read-time validation hooks and
//!   hit/miss/insert/evict/invalidation counters.
//! * [`router`] — the shard router: dispatches by PSL registrable
//!   domain with longest-first label-suffix fallback preserved across
//!   shard boundaries, serves through the cache with per-shard
//!   generation (and global epoch) tags so a reloaded shard can never
//!   be answered from stale cache, and plugs into the serve protocol
//!   loop as a [`hoiho_serve::Backend`].
//!
//! The `hoiho-serve` binary lives in this crate (the serve crate sits
//! below the cluster layer): `shard` splits an artifact on disk, and
//! `serve --shards N --cache-capacity K` runs the clustered server.
//! See `DESIGN.md` §7c for the manifest format and the cache
//! invalidation rules.

pub mod cache;
pub mod plan;
pub mod router;

pub use cache::{CacheStats, ShardedLru};
pub use plan::{
    plan, shard_file_name, split, suffix_weight, Assignment, PlanError, ShardMap, ShardMapError,
    SHARDMAP_FILE_NAME, SHARDMAP_VERSION,
};
pub use router::{CachedAnswer, ClusterBackend, Route, RouterError, ShardRouter, ShardStats};
