//! Property-based tests for the cluster tier, on the devkit harness:
//! the shard-map manifest has the same fixpoint/truncation guarantees
//! as the model artifact, splitting is a deterministic balanced
//! partition, and — the serving-correctness property — cached answers
//! are byte-equal to uncached answers over arbitrary request streams,
//! including across a mid-stream per-shard reload.

use hoiho::classify::NcClass;
use hoiho::regex::Regex;
use hoiho::taxonomy::Taxonomy;
use hoiho_cluster::{plan, split, suffix_weight, ShardMap, ShardRouter};
use hoiho_devkit::prop::{any, string_of, vec_of, Gen};
use hoiho_devkit::{prop_assert, prop_assert_eq, props};
use hoiho_serve::model::{EvalCounts, Model, ModelEntry};
use std::collections::BTreeSet;

/// A registrable-domain-shaped suffix: `name.tld`.
fn suffix() -> impl Gen<Value = String> {
    (string_of("abcdefghijklmnopqrstuvwxyz", 1..=8usize), 0usize..5).prop_map(|(name, tld)| {
        format!("{name}.{}", ["com", "net", "org", "ch", "nz"][tld])
    })
}

/// One regex over `suffix`, same templates as the serve property tests.
fn template_regex(template: usize, suffix: &str) -> Regex {
    let esc = suffix.replace('.', "\\.");
    let src = match template % 4 {
        0 => format!("^as(\\d+)\\.{esc}$"),
        1 => format!("^as(\\d+)\\.[a-z]+\\.{esc}$"),
        2 => format!("(\\d+)-.+\\.{esc}$"),
        _ => format!("^[^\\.]+\\.as(\\d+)\\.{esc}$"),
    };
    Regex::parse(&src).expect("template regex parses")
}

fn entry() -> impl Gen<Value = ModelEntry> {
    (suffix(), vec_of(0usize..4, 1..=3usize), any::<bool>()).prop_map(
        |(suffix, templates, single)| ModelEntry {
            regexes: templates.iter().map(|&t| template_regex(t, &suffix)).collect(),
            suffix,
            class: NcClass::Good,
            single,
            taxonomy: Taxonomy::Start,
            hostnames: 3,
            counts: EvalCounts::default(),
        },
    )
}

/// An arbitrary model with deduplicated suffixes.
fn model() -> impl Gen<Value = Model> {
    vec_of(entry(), 1usize..8).prop_map(|mut entries| {
        let mut seen = BTreeSet::new();
        entries.retain(|e| seen.insert(e.suffix.clone()));
        entries.sort_by(|a, b| a.suffix.cmp(&b.suffix));
        Model { entries }
    })
}

/// The hostname universe a model induces: per suffix, names each regex
/// template shape can match, plus shapes that dispatch but miss, plus
/// hosts under no learned suffix at all.
fn universe(m: &Model) -> Vec<String> {
    let mut hosts = vec!["off-model.example.org".to_string(), "com".to_string()];
    for (i, e) in m.entries.iter().enumerate() {
        let s = &e.suffix;
        hosts.push(format!("as{}.{s}", 64500 + i));
        hosts.push(format!("as{}.pop.{s}", 100 + i));
        hosts.push(format!("{}-core.stuff.{s}", 7 + i));
        hosts.push(format!("r1.as{}.{s}", 4200 + i));
        hosts.push(format!("misses-everything.{s}"));
        hosts.push(format!("deep.label.chain.{s}"));
    }
    hosts
}

props! {
    cases = 64;

    /// The manifest guarantee: render → parse → render is a fixpoint,
    /// for any planned model and shard count.
    fn shardmap_render_parse_render_fixpoint(m in model(), shards in 1u32..7) {
        let map = plan(&m, shards).expect("plan");
        let text = map.render();
        let parsed = match ShardMap::parse(&text) {
            Ok(p) => p,
            Err(e) => return Err(format!("rendered manifest failed to parse: {e}")),
        };
        prop_assert_eq!(&parsed, &map);
        prop_assert_eq!(parsed.render(), text);
    }

    /// Every strict line-prefix of a manifest is rejected: the trailer
    /// makes truncation detectable at any cut point.
    fn shardmap_truncation_always_rejected(m in model(), shards in 1u32..7, cut in 0usize..10_000) {
        let map = plan(&m, shards).expect("plan");
        let text = map.render();
        let lines: Vec<&str> = text.lines().collect();
        let cut = cut % lines.len();
        let prefix = lines[..cut].join("\n");
        let err = match ShardMap::parse(&prefix) {
            Err(e) => e,
            Ok(_) => return Err(format!("prefix of {cut}/{} lines parsed", lines.len())),
        };
        prop_assert!(err.line <= lines.len(), "error line {} out of range", err.line);
    }

    /// Splitting is a deterministic exact partition and the greedy
    /// balance bound (spread ≤ heaviest item) holds.
    fn split_is_deterministic_balanced_partition(m in model(), shards in 1u32..7) {
        let (parts, map) = split(&m, shards).expect("split");
        let (parts2, map2) = split(&m, shards).expect("split again");
        prop_assert_eq!(&parts, &parts2);
        prop_assert_eq!(&map, &map2);
        // Exact partition: every entry lands in exactly one shard, on
        // the shard the manifest says, in suffix order.
        let mut union: Vec<ModelEntry> =
            parts.iter().flat_map(|p| p.entries.iter().cloned()).collect();
        union.sort_by(|a, b| a.suffix.cmp(&b.suffix));
        prop_assert_eq!(&Model { entries: union }, &m);
        for (k, p) in parts.iter().enumerate() {
            for e in &p.entries {
                prop_assert_eq!(map.shard_of(&e.suffix), Some(k as u32));
            }
        }
        // Balance bound.
        let loads = map.shard_weights();
        let spread = loads.iter().max().unwrap() - loads.iter().min().unwrap();
        let heaviest = m.entries.iter().map(suffix_weight).max().unwrap_or(1);
        prop_assert!(
            spread <= heaviest,
            "load spread {spread} exceeds heaviest item {heaviest}: {loads:?}"
        );
    }

    /// Serving correctness: for any request stream, a cache-enabled
    /// router answers byte-identically to an uncached one — including
    /// when one shard is hot-reloaded mid-stream on both.
    fn cached_equals_uncached_across_reload(
        m in model(),
        shards in 1u32..5,
        picks in vec_of(0usize..10_000, 8..=48usize),
        reload_at in 0usize..48,
        shard_pick in 0usize..8,
    ) {
        let hosts = universe(&m);
        let (parts, _) = split(&m, shards).expect("split");
        let cached = ShardRouter::new(&parts, 32).expect("cached router");
        let uncached = ShardRouter::new(&parts, 0).expect("uncached router");

        // The mid-stream reload: shard j, with its last convention
        // dropped (or a no-op reload when the shard is empty).
        let j = (shard_pick % shards as usize) as u32;
        let mut reloaded = parts[j as usize].clone();
        reloaded.entries.pop();

        for (step, pick) in picks.iter().enumerate() {
            if step == reload_at % picks.len() {
                cached.reload_shard(j, &reloaded).expect("reload cached");
                uncached.reload_shard(j, &reloaded).expect("reload uncached");
            }
            // Revisit earlier picks often so the cache actually hits.
            let h = &hosts[(pick % 7 * step.max(1)) % hosts.len()];
            let (a, b) = (cached.lookup(h), uncached.lookup(h));
            prop_assert!(a == b, "step {step}: host {h} diverged: {a:?} != {b:?}");
        }
        // The exercise must have produced real cache traffic.
        let s = cached.cache_stats();
        prop_assert_eq!(s.hits + s.misses, picks.len() as u64);
    }
}
