//! Validates the checked-in scenario corpus (`scenarios/*.hoiho`):
//! every file parses, compiles to a valid `SimConfig`, is named after
//! its file, and canonicalizes to a fixpoint. Keeping this next to the
//! parser means a corpus edit that miscounts the `E` trailer or typos
//! a key fails `cargo test` before it ever reaches CI's end-to-end
//! scenario run.

use hoiho_scenario::Scenario;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn corpus_parses_compiles_and_canonicalizes() {
    let mut names = BTreeSet::new();
    let mut files = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("scenarios/ directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "hoiho"))
        .collect();
    entries.sort();
    for path in entries {
        let sc = Scenario::load(&path)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(sc.name, stem, "{}: name must match the file stem", path.display());
        assert!(names.insert(sc.name.clone()), "duplicate scenario name {}", sc.name);
        sc.compile().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let canon = sc.render();
        let reparsed = Scenario::parse(&canon)
            .unwrap_or_else(|e| panic!("{}: canonical form fails to parse: {e}", path.display()));
        assert_eq!(reparsed, sc, "{}: canonicalization is not a fixpoint", path.display());
        assert_eq!(reparsed.render(), canon);
        files += 1;
    }
    assert!(files >= 6, "corpus must keep at least 6 scenarios, found {files}");
}

#[test]
fn corpus_seeds_are_distinct() {
    // Two scenarios sharing a seed would generate correlated worlds
    // and quietly weaken the matrix's coverage.
    let mut seeds = BTreeSet::new();
    for entry in std::fs::read_dir(corpus_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "hoiho") {
            let sc = Scenario::load(&path).unwrap();
            assert!(seeds.insert(sc.seed), "{}: seed {} reused", path.display(), sc.seed);
        }
    }
}
