//! Property-based tests for the scenario format and compiler, on the
//! devkit harness: render → parse → render is a fixpoint for
//! *arbitrary* valid scenarios (not just the checked-in corpus), and
//! equal (file, seed) pairs compile byte-identical internets — the
//! determinism contract the quality matrix in CI depends on.

use hoiho_devkit::prop::{string_of, Gen};
use hoiho_devkit::{prop_assert, prop_assert_eq, props};
use hoiho_netsim::{StyleMix, TierStyles, VendorMix};
use hoiho_scenario::{Rates, Scenario, Skew, Topology, Traffic};

/// A weight in steps of 0.05 over 0..=2 — exact under `{}` float
/// rendering, so fixpoint failures mean parser bugs, not float noise.
fn weight() -> impl Gen<Value = f64> {
    (0u32..=40).prop_map(|x| x as f64 / 20.0)
}

/// Like [`weight`] but never zero, for the slot that keeps a mix's
/// total positive (an all-zero mix is rejected at parse time, which
/// would make the fixpoint property vacuously fail).
fn live_weight() -> impl Gen<Value = f64> {
    (1u32..=40).prop_map(|x| x as f64 / 20.0)
}

/// A probability in steps of 0.05.
fn rate() -> impl Gen<Value = f64> {
    (0u32..=20).prop_map(|x| x as f64 / 20.0)
}

fn style_mix() -> impl Gen<Value = StyleMix> {
    (
        (weight(), weight(), live_weight(), weight(), weight()),
        (weight(), weight(), weight(), weight(), weight()),
    )
        .prop_map(|((none, infra, simple, start, end), (bare, complex, own_asn, as_name, ip_embed))| {
            StyleMix { none, infra, simple, start, end, bare, complex, own_asn, as_name, ip_embed }
        })
}

fn tier_styles() -> impl Gen<Value = TierStyles> {
    (0u32..8, style_mix(), style_mix(), style_mix()).prop_map(|(mask, t1, t2, e)| TierStyles {
        tier1: (mask & 1 != 0).then_some(t1),
        tier2: (mask & 2 != 0).then_some(t2),
        edge: (mask & 4 != 0).then_some(e),
    })
}

fn vendor_mix() -> impl Gen<Value = VendorMix> {
    (live_weight(), weight(), weight(), weight())
        .prop_map(|(generic, juniper, cisco, arista)| VendorMix { generic, juniper, cisco, arista })
}

/// A small topology: every value satisfies `SimConfig::validate`, and
/// worlds stay cheap enough to build inside the compile property.
fn topology() -> impl Gen<Value = Topology> {
    (
        (1usize..=2, 0usize..=3, 1usize..=6, 0usize..=2, 1usize..=3),
        (rate(), (0u32..=30).prop_map(|x| x as f64 / 10.0), rate()),
    )
        .prop_map(
            |((tier1, tier2, edge, ixps, vantage_points), (sibling, peering, ixp_member))| {
                Topology {
                    tier1,
                    tier2,
                    edge,
                    ixps,
                    vantage_points,
                    sibling_org_rate: sibling,
                    tier2_peering: peering,
                    ixp_member_rate: ixp_member,
                }
            },
        )
}

fn rates() -> impl Gen<Value = Rates> {
    (rate(), rate(), rate(), rate(), rate(), rate()).prop_map(
        |(stale, typo, sibling_embed, name_coverage, unresponsive, third_party)| Rates {
            stale,
            typo,
            sibling_embed,
            name_coverage,
            unresponsive,
            third_party,
        },
    )
}

fn traffic() -> impl Gen<Value = Traffic> {
    (
        0u32..4,
        (1u32..=30).prop_map(|x| x as f64 / 10.0),
        0usize..=5_000,
        1usize..=8,
        0usize..=32,
    )
        .prop_map(|(kind, s, requests, connections, batch)| Traffic {
            skew: if kind == 0 { Skew::Uniform } else { Skew::Zipf(s) },
            requests,
            connections,
            batch,
        })
}

fn scenario() -> impl Gen<Value = Scenario> {
    (
        (string_of("abcdefghijklmnopqrstuvwxyz0123456789-", 1..=12usize), 0u64..1 << 48),
        (topology(), rates()),
        (style_mix(), tier_styles(), vendor_mix(), traffic()),
    )
        .prop_map(|((name, seed), (topology, rates), (styles, tier_styles, vendors, traffic))| {
            Scenario { name, seed, topology, rates, styles, tier_styles, vendors, traffic }
        })
}

props! {
    cases = 64;

    /// The format guarantee, over arbitrary valid scenarios rather
    /// than the checked-in corpus: render → parse recovers the exact
    /// value and a second render is byte-identical.
    fn render_parse_render_fixpoint(sc in scenario()) {
        let text = sc.render();
        let parsed = match Scenario::parse(&text) {
            Ok(p) => p,
            Err(e) => return Err(format!("rendered scenario failed to parse: {e}")),
        };
        prop_assert_eq!(&parsed, &sc);
        prop_assert_eq!(parsed.render(), text);
    }

    /// Every strict line-prefix of a rendered scenario is rejected:
    /// the E trailer makes truncation detectable at any cut point.
    fn truncation_always_rejected(sc in scenario(), cut in 0usize..10_000) {
        let text = sc.render();
        let lines: Vec<&str> = text.lines().collect();
        let cut = cut % lines.len();
        let prefix = lines[..cut].join("\n");
        let err = match Scenario::parse(&prefix) {
            Err(e) => e,
            Ok(_) => return Err(format!("prefix of {cut}/{} lines parsed", lines.len())),
        };
        prop_assert!(err.line <= lines.len(), "error line {} out of range", err.line);
    }
}

props! {
    cases = 8;

    /// The determinism contract: two scenarios parsed from the same
    /// file text build byte-identical internets — same world digest,
    /// same hostname universe. This is what lets CI compare
    /// SCENARIOS.json quality metrics across commits.
    fn equal_file_and_seed_build_identical_worlds(sc in scenario()) {
        let text = sc.render();
        let a = Scenario::parse(&text).map_err(|e| format!("parse a: {e}"))?;
        let b = Scenario::parse(&text).map_err(|e| format!("parse b: {e}"))?;
        let wa = a.build().map_err(|e| format!("build a: {e}"))?;
        let wb = b.build().map_err(|e| format!("build b: {e}"))?;
        prop_assert_eq!(wa.digest(), wb.digest());
        prop_assert_eq!(
            hoiho_scenario::traffic::universe(&wa),
            hoiho_scenario::traffic::universe(&wb)
        );
    }
}
