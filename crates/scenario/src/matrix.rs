//! The per-scenario quality matrix (`SCENARIOS.json`).
//!
//! One record set per scenario, rendered in the devkit bench-results
//! schema (`{"benchmark": ..., "results": [...], "metrics": [...]}`,
//! one record per line) so `scripts/bench_diff.sh` diffs quality the
//! same way it diffs performance:
//!
//! * **metrics** (goodness, DOWN is a regression):
//!   `scenario/<name>/precision_pct`, `scenario/<name>/recall_pct`,
//!   `scenario/<name>/conventions_found_pct`;
//! * **results** (timings, UP is a regression):
//!   `scenario/<name>/extract_p50` and `.../extract_p99` — the serve
//!   path's per-hostname extraction latency over the scenario's
//!   ground-truth rows.
//!
//! The worlds are deterministic (see [`crate::compile`]), so any
//! movement in the committed matrix is a change in the learner or the
//! serve path — which is exactly what a reviewer wants flagged.

use std::fmt::Write as _;

/// One scenario's scored quality.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioQuality {
    /// The scenario's `[meta] name`.
    pub name: String,
    /// Extraction precision over ground-truth rows, `0..=1`.
    pub precision: f64,
    /// Extraction recall over ground-truth rows, `0..=1`.
    pub recall: f64,
    /// Suffixes the learned model carries a convention for.
    pub conventions_learned: usize,
    /// Suffixes that truthfully carry a learnable convention.
    pub conventions_truth: usize,
    /// Ground-truth rows scored.
    pub rows: usize,
    /// Median per-hostname extraction latency, nanoseconds.
    pub extract_p50_ns: f64,
    /// Tail (p99) per-hostname extraction latency, nanoseconds.
    pub extract_p99_ns: f64,
}

impl ScenarioQuality {
    /// Conventions found as a percentage of the learnable truth
    /// (100 when the truth set is empty: nothing to find, nothing
    /// missed).
    pub fn conventions_found_pct(&self) -> f64 {
        if self.conventions_truth == 0 {
            100.0
        } else {
            self.conventions_learned as f64 * 100.0 / self.conventions_truth as f64
        }
    }
}

/// JSON string literal (scenario names are `[a-z0-9-]`, but escape
/// defensively anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the matrix document. Scenarios are emitted in the order
/// given; callers sort by name for a stable committed file.
pub fn render_scenarios_json(items: &[ScenarioQuality]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"scenarios\",\n");
    s.push_str("  \"harness\": \"hoiho-scenario\",\n");
    s.push_str("  \"unit\": \"ns_per_iter\",\n");
    s.push_str("  \"results\": [\n");
    let mut results: Vec<String> = Vec::new();
    for q in items {
        for (which, ns) in [("extract_p50", q.extract_p50_ns), ("extract_p99", q.extract_p99_ns)] {
            results.push(format!(
                "    {{\"id\": {}, \"iters_per_sample\": 1, \"samples\": {}, \
                 \"median_ns\": {:.1}, \"mad_ns\": 0.0, \"throughput_elems_per_iter\": null, \
                 \"throughput_elems_per_sec\": null}}",
                json_str(&format!("scenario/{}/{which}", q.name)),
                q.rows,
                ns,
            ));
        }
    }
    s.push_str(&results.join(",\n"));
    s.push_str("\n  ],\n  \"metrics\": [\n");
    let mut metrics: Vec<String> = Vec::new();
    for q in items {
        for (which, value) in [
            ("precision_pct", q.precision * 100.0),
            ("recall_pct", q.recall * 100.0),
            ("conventions_found_pct", q.conventions_found_pct()),
        ] {
            assert!(value.is_finite(), "scenario {}: non-finite {which}", q.name);
            metrics.push(format!(
                "    {{\"id\": {}, \"value\": {:.3}, \"unit\": \"percent\"}}",
                json_str(&format!("scenario/{}/{which}", q.name)),
                value,
            ));
        }
    }
    s.push_str(&metrics.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str) -> ScenarioQuality {
        ScenarioQuality {
            name: name.into(),
            precision: 0.9876,
            recall: 0.5,
            conventions_learned: 3,
            conventions_truth: 4,
            rows: 120,
            extract_p50_ns: 800.0,
            extract_p99_ns: 2400.0,
        }
    }

    #[test]
    fn document_matches_the_bench_schema() {
        let json = render_scenarios_json(&[q("paper-default"), q("stale-churn")]);
        // One record per line, ids joinable by bench_diff's awk.
        assert!(json
            .contains("{\"id\": \"scenario/paper-default/extract_p50\", \"iters_per_sample\": 1"));
        assert!(json.contains(
            "{\"id\": \"scenario/stale-churn/precision_pct\", \"value\": 98.760, \"unit\": \"percent\"}"
        ));
        assert!(json.contains("\"median_ns\": 800.0"));
        assert!(json.contains("\"benchmark\": \"scenarios\""));
        for line in json.lines().filter(|l| l.contains("\"id\":")) {
            assert!(
                line.trim_start().starts_with('{') && line.trim_end().ends_with(&['}', ','][..]),
                "record not on its own line: {line}"
            );
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_truth_counts_as_fully_found() {
        let mut x = q("x");
        x.conventions_truth = 0;
        x.conventions_learned = 0;
        assert_eq!(x.conventions_found_pct(), 100.0);
        let y = q("y");
        assert_eq!(y.conventions_found_pct(), 75.0);
    }
}
