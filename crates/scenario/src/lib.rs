//! # hoiho-scenario — declarative worlds for the learning pipeline
//!
//! A *scenario* is a small text file describing an experimental world:
//! the shape of the AS topology, how operators name router interfaces
//! (per-tier style mixes, vendor fingerprints), how dirty the names are
//! (stale-name / typo / sibling rates), and what traffic the serving
//! path should see (hostname skew, batch shape). The paper evaluates
//! its learner against measured snapshots it cannot ship; scenarios are
//! the synthetic stand-in — each one a named, reviewable, reproducible
//! experiment checked into `scenarios/`.
//!
//! The crate has three halves:
//!
//! * [`format`] — the parser and canonical renderer for the sectioned
//!   `key = value` format (versioned header, `#` comments, strict
//!   1-based-line errors, `E` trailer so truncation never parses —
//!   the same strictness family as the model artifact and shard map).
//!   `render` → `parse` → `render` is a fixpoint, property-tested.
//! * [`compile`] — lowers a [`Scenario`] onto `hoiho-netsim`: a
//!   validated [`SimConfig`], the generated `Internet`, ground-truth
//!   rows (hostname → the ASN an extractor *should* yield), and the
//!   set of suffixes that truthfully carry a learnable convention.
//!   Determinism contract: equal (scenario text, seed) pairs compile
//!   byte-identical internets (`Internet::digest` equality).
//! * [`traffic`] — the serving-path workload: the hostname universe of
//!   a world plus a deterministic Zipf/uniform request stream, consumed
//!   by `hoiho-serve loadgen --scenario`.
//!
//! The quality matrix in [`matrix`] scores a learned model against a
//! scenario's ground truth (precision / recall / conventions found)
//! and renders `SCENARIOS.json` in the devkit bench schema, so
//! `scripts/bench_diff.sh` flags quality regressions exactly like
//! performance ones.

pub mod compile;
pub mod format;
pub mod matrix;
pub mod traffic;

use hoiho_netsim::{StyleMix, TierStyles, VendorMix};
use std::fmt;
use std::path::Path;

pub use matrix::ScenarioQuality;
pub use traffic::{Skew, Traffic};

/// Scenario format version written by [`Scenario::render`] and the only
/// version [`Scenario::parse`] accepts.
pub const SCENARIO_VERSION: u32 = 1;

/// Conventional extension for scenario files (`scenarios/*.hoiho`).
pub const SCENARIO_EXT: &str = "hoiho";

/// A parse or compile failure, pointing at the offending line (1-based;
/// 0 when not tied to a line, e.g. an unreadable file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number, 0 when unlocated.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl ScenarioError {
    pub(crate) fn at(line: usize, msg: impl Into<String>) -> ScenarioError {
        ScenarioError { line, msg: msg.into() }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// `[topology]` — the AS-level shape of the world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Tier-1 (clique) AS count, at least 1.
    pub tier1: usize,
    /// Tier-2 (regional transit) AS count.
    pub tier2: usize,
    /// Edge AS count.
    pub edge: usize,
    /// IXP count.
    pub ixps: usize,
    /// Traceroute vantage points, at least 1.
    pub vantage_points: usize,
    /// Fraction of organizations operating sibling ASNs.
    pub sibling_org_rate: f64,
    /// Average extra peer links per tier-2 AS.
    pub tier2_peering: f64,
    /// Fraction of edge ASes joining at least one IXP.
    pub ixp_member_rate: f64,
}

impl Default for Topology {
    fn default() -> Self {
        // Smaller than `SimConfig::default()` on purpose: a scenario
        // corpus is run end-to-end (sim → learn → serve) in CI, so the
        // default world learns in well under a second.
        Topology {
            tier1: 4,
            tier2: 16,
            edge: 96,
            ixps: 6,
            vantage_points: 12,
            sibling_org_rate: 0.05,
            tier2_peering: 2.0,
            ixp_member_rate: 0.25,
        }
    }
}

/// `[rates]` — how noisy the hostname data is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    /// Probability an ASN-bearing hostname names a previous neighbor.
    pub stale: f64,
    /// Probability of a single-digit typo in an embedded ASN.
    pub typo: f64,
    /// Probability a sibling ASN is annotated instead of the
    /// neighbor's own.
    pub sibling_embed: f64,
    /// Probability a named interface keeps its hostname at all.
    pub name_coverage: f64,
    /// Probability a traceroute hop does not respond.
    pub unresponsive: f64,
    /// Probability a hop answers from a third-party address.
    pub third_party: f64,
}

impl Default for Rates {
    fn default() -> Self {
        Rates {
            stale: 0.05,
            typo: 0.004,
            sibling_embed: 0.18,
            name_coverage: 0.92,
            unresponsive: 0.03,
            third_party: 0.18,
        }
    }
}

/// A parsed scenario. Field groups mirror the file's sections; see
/// [`format`] for the grammar and [`compile`] for the lowering onto
/// `hoiho-netsim`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// `[meta] name` — the scenario's identity; becomes the metric-id
    /// segment in `SCENARIOS.json` (`scenario/<name>/precision_pct`).
    pub name: String,
    /// `[meta] seed` — the world seed; everything downstream is
    /// deterministic in (scenario, seed).
    pub seed: u64,
    /// `[topology]`.
    pub topology: Topology,
    /// `[rates]`.
    pub rates: Rates,
    /// `[styles]` — the base naming-style mix.
    pub styles: StyleMix,
    /// `[styles.tier1]` / `[styles.tier2]` / `[styles.edge]` overrides.
    pub tier_styles: TierStyles,
    /// `[vendors]` — router-vendor mix (hostname fingerprints).
    pub vendors: VendorMix,
    /// `[traffic]` — the serving-path workload shape.
    pub traffic: Traffic,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: "default".into(),
            seed: 20200127,
            topology: Topology::default(),
            rates: Rates::default(),
            styles: StyleMix::default(),
            tier_styles: TierStyles::default(),
            vendors: VendorMix::default(),
            traffic: Traffic::default(),
        }
    }
}

impl Scenario {
    /// Reads and parses a scenario file.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(&path).map_err(|e| {
            ScenarioError::at(0, format!("cannot read {}: {e}", path.as_ref().display()))
        })?;
        Scenario::parse(&text)
    }

    /// Writes the canonical rendering to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}
