//! The serving-path workload a scenario describes: which hostnames get
//! queried, how unevenly, and in what shape.
//!
//! Real resolver traffic is heavily skewed — a few suffixes dominate —
//! which is exactly the regime the serve path's per-suffix cache and
//! shard router care about. A scenario therefore carries a [`Skew`]
//! (Zipf with exponent `s`, or uniform) over the world's hostname
//! universe, and `hoiho-serve loadgen --scenario` replays a stream
//! drawn from it. Streams are deterministic in the scenario seed, so a
//! benchmark run is reproducible end to end.

use hoiho_devkit::rngs::StdRng;
use hoiho_devkit::{RngExt, SeedableRng};
use hoiho_netsim::Internet;

/// Dedicated RNG stream for traffic sampling, fenced off from the
/// world-generation streams so the same seed can drive both.
const TRAFFIC_STREAM: u64 = 0x7F1C_0009;

/// How request frequency is distributed over the hostname universe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Every hostname equally likely.
    Uniform,
    /// Rank-`r` hostname drawn with weight `1 / r^s` (rank order =
    /// universe order). `s` must be finite and positive.
    Zipf(f64),
}

impl Skew {
    /// Parses the `[traffic] skew` value: `uniform` or `zipf <s>`.
    pub fn parse(value: &str) -> Result<Skew, String> {
        if value == "uniform" {
            return Ok(Skew::Uniform);
        }
        if let Some(s) = value.strip_prefix("zipf ") {
            let s: f64 = s
                .trim()
                .parse()
                .map_err(|_| format!("bad zipf exponent: {value:?}"))?;
            if !s.is_finite() || s <= 0.0 {
                return Err(format!("zipf exponent must be finite and positive, got {s}"));
            }
            return Ok(Skew::Zipf(s));
        }
        Err(format!("bad skew {value:?} (want `uniform` or `zipf <s>`)"))
    }

    /// Renders the value `parse` accepts.
    pub fn render(&self) -> String {
        match self {
            Skew::Uniform => "uniform".into(),
            Skew::Zipf(s) => format!("zipf {s}"),
        }
    }
}

/// `[traffic]` — the workload shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Traffic {
    /// Frequency distribution over the hostname universe.
    pub skew: Skew,
    /// Total requests a loadgen run issues, at least 1.
    pub requests: usize,
    /// Concurrent loadgen connections, at least 1.
    pub connections: usize,
    /// Hostnames per BATCH frame; 0 means plain one-QUERY-per-line.
    pub batch: usize,
}

impl Default for Traffic {
    fn default() -> Self {
        Traffic { skew: Skew::Zipf(1.1), requests: 20_000, connections: 4, batch: 0 }
    }
}

impl Traffic {
    /// Draws a deterministic request stream: `len` indices into a
    /// universe of `n` hostnames, distributed per the skew. Empty when
    /// the universe is empty.
    pub fn sample_indices(&self, n: usize, seed: u64, len: usize) -> Vec<usize> {
        if n == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ TRAFFIC_STREAM);
        match self.skew {
            Skew::Uniform => (0..len).map(|_| rng.random_range(0..n)).collect(),
            Skew::Zipf(s) => {
                // Cumulative weights once, then binary search per draw.
                let mut cdf = Vec::with_capacity(n);
                let mut total = 0.0f64;
                for r in 1..=n {
                    total += 1.0 / (r as f64).powf(s);
                    cdf.push(total);
                }
                (0..len)
                    .map(|_| {
                        let u: f64 = rng.random::<f64>() * total;
                        cdf.partition_point(|&c| c < u).min(n - 1)
                    })
                    .collect()
            }
        }
    }
}

/// The hostname universe of a world: every PTR name, sorted and
/// deduplicated. Rank order for Zipf is this order, so the head of the
/// alphabet is the hot set — arbitrary but stable, which is what a
/// reproducible workload needs.
pub fn universe(net: &Internet) -> Vec<String> {
    let mut names: Vec<String> =
        net.named_interfaces().map(|(i, _)| i.hostname.clone().expect("named")).collect();
    names.sort();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_in_range() {
        let t = Traffic::default();
        let a = t.sample_indices(100, 7, 5000);
        let b = t.sample_indices(100, 7, 5000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 100));
        assert_ne!(a, t.sample_indices(100, 8, 5000), "seed must matter");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let t = Traffic { skew: Skew::Zipf(1.2), ..Traffic::default() };
        let draws = t.sample_indices(1000, 42, 20_000);
        let head = draws.iter().filter(|&&i| i < 10).count();
        let tail = draws.iter().filter(|&&i| i >= 990).count();
        assert!(
            head > tail * 5,
            "head {head} should dominate tail {tail} under zipf"
        );
    }

    #[test]
    fn uniform_covers_the_universe() {
        let t = Traffic { skew: Skew::Uniform, ..Traffic::default() };
        let draws = t.sample_indices(8, 3, 4000);
        let mut seen = [false; 8];
        for &i in &draws {
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_universe_yields_empty_stream() {
        assert!(Traffic::default().sample_indices(0, 1, 100).is_empty());
    }
}
