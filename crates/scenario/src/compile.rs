//! Lowering a [`Scenario`] onto `hoiho-netsim`, and reading ground
//! truth back out of the generated world.
//!
//! The determinism contract: compiling the same scenario text with the
//! same seed always produces byte-identical internets — asserted via
//! `Internet::digest` equality in the crate's property tests and in
//! `tests/scenario_pipeline.rs`. That contract is what lets the
//! checked-in `SCENARIOS.json` quality matrix be diffed across PRs:
//! any movement is the learner/server changing, never the world.
//!
//! Ground-truth semantics (what an extractor *should* return for a
//! hostname, per `EmbeddedInfo`):
//!
//! * a clean neighbor annotation → the written ASN (== the operator);
//! * a **typo'd** or **sibling** annotation → still the *written*
//!   digits: a faithful extractor reads what the operator wrote, and
//!   the paper scores single-digit typos as matches (§3.1) and sibling
//!   ASNs as the same organization (Table 2);
//! * a **stale** annotation → `None`: the name describes a neighbor
//!   that no longer exists, so *any* extraction asserts a wrong
//!   operator;
//! * an own-ASN name → that ASN; anything else (infra names,
//!   AS-*name* conventions, IP-derived names) → `None`.

use crate::{Scenario, ScenarioError};
use hoiho_netsim::{EmbeddedInfo, Internet, SimConfig};
use std::collections::BTreeSet;

impl Scenario {
    /// The [`SimConfig`] this scenario lowers to (not yet validated).
    pub fn sim_config(&self) -> SimConfig {
        let t = &self.topology;
        let r = &self.rates;
        SimConfig {
            seed: self.seed,
            tier1: t.tier1,
            tier2: t.tier2,
            edge: t.edge,
            ixps: t.ixps,
            sibling_org_rate: t.sibling_org_rate,
            styles: self.styles,
            tier_styles: self.tier_styles,
            vendors: self.vendors,
            stale_rate: r.stale,
            typo_rate: r.typo,
            sibling_embed_rate: r.sibling_embed,
            name_coverage: r.name_coverage,
            vantage_points: t.vantage_points,
            unresponsive_rate: r.unresponsive,
            third_party_rate: r.third_party,
            tier2_peering: t.tier2_peering,
            ixp_member_rate: t.ixp_member_rate,
        }
    }

    /// Validates and returns the lowered config. The parser already
    /// rejects everything `SimConfig::validate` checks, so a failure
    /// here means a hand-built `Scenario` value — but repeating the
    /// check keeps `compile` the single safe entry point.
    pub fn compile(&self) -> Result<SimConfig, ScenarioError> {
        let cfg = self.sim_config();
        cfg.validate().map_err(|e| {
            ScenarioError::at(0, format!("scenario {} does not compile: {e}", self.name))
        })?;
        Ok(cfg)
    }

    /// Compiles and generates the world.
    pub fn build(&self) -> Result<Internet, ScenarioError> {
        Ok(Internet::generate(&self.compile()?))
    }
}

/// Ground-truth rows for a world: every named interface's hostname and
/// the ASN an extractor should yield for it (`None` when extracting
/// anything is wrong). Order follows interface ids, so the rows are
/// deterministic for a given world.
pub fn ground_truth_rows(net: &Internet) -> Vec<(String, Option<u32>)> {
    net.named_interfaces()
        .map(|(iface, _owner)| {
            let hostname = iface.hostname.clone().expect("named interface has a hostname");
            let expected = match &iface.embedded {
                EmbeddedInfo::NeighborAsn { stale: true, .. } => None,
                EmbeddedInfo::NeighborAsn { written, .. } => written.parse::<u32>().ok(),
                EmbeddedInfo::OwnAsn { asn } => Some(*asn),
                EmbeddedInfo::NoAsn => None,
            };
            (hostname, expected)
        })
        .collect()
}

/// The registrable suffixes that truthfully carry an ASN-embedding
/// naming convention: suffixes (operator or IXP) under which at least
/// one hostname embeds an ASN. This is the denominator for the
/// "conventions found" quality metric — the learner can at best learn
/// a convention per suffix in this set.
pub fn truth_suffixes(net: &Internet) -> BTreeSet<String> {
    // Candidate suffixes: every operator's naming suffix plus each
    // IXP's `<name>.net` (the suffix internet-generation assigns to
    // IXP LAN ports). Longest-first so `ix.brand.net` style nesting
    // can never mis-attribute.
    let mut cands: Vec<String> = net
        .aslevel
        .ases
        .iter()
        .map(|a| a.naming.suffix.clone())
        .filter(|s| !s.is_empty())
        .collect();
    cands.extend(net.aslevel.ixps.ixps().iter().map(|ix| format!("{}.net", ix.name)));
    cands.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    cands.dedup();

    let mut out = BTreeSet::new();
    for (iface, _) in net.named_interfaces() {
        if matches!(iface.embedded, EmbeddedInfo::NoAsn) {
            continue;
        }
        let h = iface.hostname.as_deref().expect("named");
        if let Some(s) = cands
            .iter()
            .find(|s| h.len() > s.len() + 1 && h.ends_with(s.as_str()) && h.as_bytes()[h.len() - s.len() - 1] == b'.')
        {
            out.insert(s.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        let mut sc = Scenario::default();
        sc.name = "unit".into();
        sc.seed = 99;
        sc.topology.tier1 = 2;
        sc.topology.tier2 = 6;
        sc.topology.edge = 30;
        sc.topology.ixps = 2;
        sc.topology.vantage_points = 5;
        sc
    }

    #[test]
    fn lowering_maps_every_field() {
        let mut sc = small();
        sc.rates.stale = 0.11;
        sc.traffic.batch = 32; // traffic does not affect the world
        let cfg = sc.compile().unwrap();
        assert_eq!(cfg.seed, 99);
        assert_eq!((cfg.tier1, cfg.tier2, cfg.edge, cfg.ixps), (2, 6, 30, 2));
        assert_eq!(cfg.stale_rate, 0.11);
        assert_eq!(cfg.vantage_points, 5);
        assert_eq!(cfg.styles, sc.styles);
    }

    #[test]
    fn equal_scenarios_compile_identical_worlds() {
        let sc = small();
        let text = sc.render();
        let a = Scenario::parse(&text).unwrap().build().unwrap();
        let b = Scenario::parse(&text).unwrap().build().unwrap();
        assert_eq!(a.digest(), b.digest());
        // A different seed is a different world.
        let mut other = sc.clone();
        other.seed = 100;
        assert_ne!(other.build().unwrap().digest(), a.digest());
    }

    #[test]
    fn hand_built_invalid_scenario_fails_compile() {
        let mut sc = small();
        sc.rates.stale = 2.0; // bypasses the parser's range check
        let e = sc.compile().unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.msg.contains("stale_rate"), "{e}");
    }

    #[test]
    fn ground_truth_covers_every_named_interface() {
        let net = small().build().unwrap();
        let rows = ground_truth_rows(&net);
        assert_eq!(rows.len(), net.named_interfaces().count());
        assert!(!rows.is_empty());
        // The world is noisy enough to have both kinds of rows.
        assert!(rows.iter().any(|(_, e)| e.is_some()), "no ASN-bearing rows");
        assert!(rows.iter().any(|(_, e)| e.is_none()), "no ASN-free rows");
        // Stale names must expect None even though digits are present.
        for (iface, _) in net.named_interfaces() {
            if let EmbeddedInfo::NeighborAsn { stale: true, .. } = iface.embedded {
                let h = iface.hostname.as_deref().unwrap();
                let row = rows.iter().find(|(n, _)| n == h).unwrap();
                assert_eq!(row.1, None, "stale {h} must expect no extraction");
            }
        }
    }

    #[test]
    fn truth_suffixes_are_real_suffixes_of_asn_hostnames() {
        let net = small().build().unwrap();
        let suffixes = truth_suffixes(&net);
        assert!(!suffixes.is_empty(), "world has no learnable conventions");
        for s in &suffixes {
            let dot = format!(".{s}");
            assert!(
                net.named_interfaces().any(|(i, _)| {
                    !matches!(i.embedded, EmbeddedInfo::NoAsn)
                        && i.hostname.as_deref().unwrap().ends_with(&dot)
                }),
                "{s} has no ASN-bearing hostname"
            );
        }
    }
}
