//! The scenario file format: strict parser and canonical renderer.
//!
//! The grammar is sectioned `key = value` text in the same strictness
//! family as the model artifact and the shard map: a versioned header,
//! `#` comments and blank lines ignored anywhere, every error carrying
//! a 1-based line number, and an `E` trailer holding section/key totals
//! so a truncated file can never parse. [`Scenario::render`] →
//! [`Scenario::parse`] → [`Scenario::render`] is a fixpoint
//! (property-tested in `tests/properties.rs`):
//!
//! ```text
//! # comments and blank lines are ignored anywhere
//! hoiho-scenario	1
//! [meta]
//! name = paper-default
//! seed = 20200127
//! [topology]
//! tier1 = 4
//! ...
//! [styles]
//! none = 0.3
//! ...
//! [traffic]
//! skew = zipf 1.1
//! ...
//! E	6	33
//! ```
//!
//! Sections may appear in any order (render emits the canonical order);
//! duplicate sections and duplicate keys are errors; unknown sections
//! and keys are errors. Values are validated where they are read, so
//! an out-of-range rate or an all-zero style mix is rejected with the
//! line it came from — the same all-zero check `SimConfig::validate`
//! repeats at compile time as defense in depth.
//!
//! A `[styles.tier1]`-style override section lists only the weights it
//! changes; unset weights inherit the **final** `[styles]` mix, so the
//! meaning does not depend on section order. `render` emits overrides
//! fully resolved (all ten weights), which is what makes the fixpoint
//! hold.

use crate::{Scenario, ScenarioError, Skew, SCENARIO_VERSION};
use hoiho_netsim::{StyleKind, StyleMix, VendorKind, VendorMix};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The sections of the grammar, in canonical render order.
const SECTIONS: [&str; 9] = [
    "meta",
    "topology",
    "rates",
    "styles",
    "styles.tier1",
    "styles.tier2",
    "styles.edge",
    "vendors",
    "traffic",
];

/// Mutable access to a style weight by grammar key, shared by the base
/// `[styles]` section and the per-tier overrides.
fn style_slot<'m>(m: &'m mut StyleMix, key: &str) -> Option<&'m mut f64> {
    Some(match key {
        "none" => &mut m.none,
        "infra" => &mut m.infra,
        "simple" => &mut m.simple,
        "start" => &mut m.start,
        "end" => &mut m.end,
        "bare" => &mut m.bare,
        "complex" => &mut m.complex,
        "own_asn" => &mut m.own_asn,
        "as_name" => &mut m.as_name,
        "ip_embed" => &mut m.ip_embed,
        _ => return None,
    })
}

fn vendor_slot<'m>(m: &'m mut VendorMix, key: &str) -> Option<&'m mut f64> {
    Some(match key {
        "generic" => &mut m.generic,
        "juniper" => &mut m.juniper,
        "cisco" => &mut m.cisco,
        "arista" => &mut m.arista,
        _ => return None,
    })
}

/// A weight value: finite and non-negative (zero-total is checked per
/// section once all weights are in).
fn parse_weight(line: usize, key: &str, value: &str) -> Result<f64, ScenarioError> {
    let v: f64 = value
        .parse()
        .map_err(|_| ScenarioError::at(line, format!("bad number for {key}: {value:?}")))?;
    if !v.is_finite() || v < 0.0 {
        return Err(ScenarioError::at(
            line,
            format!("{key} must be a finite non-negative weight, got {value}"),
        ));
    }
    Ok(v)
}

/// A probability: finite, in `0..=1`.
fn parse_rate(line: usize, key: &str, value: &str) -> Result<f64, ScenarioError> {
    let v: f64 = value
        .parse()
        .map_err(|_| ScenarioError::at(line, format!("bad number for {key}: {value:?}")))?;
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(ScenarioError::at(
            line,
            format!("{key} must be a probability in 0..=1, got {value}"),
        ));
    }
    Ok(v)
}

fn parse_count(line: usize, key: &str, value: &str) -> Result<usize, ScenarioError> {
    value
        .parse()
        .map_err(|_| ScenarioError::at(line, format!("bad count for {key}: {value:?}")))
}

/// In-flight per-tier override: which weights the section set, applied
/// onto the final base mix after the whole file is read.
#[derive(Default)]
struct PendingOverride {
    /// The section's own line (for the zero-total error).
    line: usize,
    /// `(style index, weight)` in file order.
    set: Vec<(usize, f64)>,
}

impl PendingOverride {
    fn resolve(&self, base: StyleMix) -> StyleMix {
        let mut m = base;
        for &(idx, v) in &self.set {
            *style_slot(&mut m, StyleKind::ALL[idx].label()).expect("index from parse") = v;
        }
        m
    }
}

impl Scenario {
    /// Parses scenario text, reporting the first problem with its line
    /// number. Missing sections and keys fall back to
    /// [`Scenario::default`] values except `[meta] name`, which is
    /// required (a scenario without an identity cannot be reported in
    /// the quality matrix).
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let mut sc = Scenario::default();
        sc.name.clear();

        let mut header = false;
        let mut section: Option<&'static str> = None;
        let mut seen_sections: BTreeSet<&'static str> = BTreeSet::new();
        let mut seen_keys: BTreeSet<(&'static str, String)> = BTreeSet::new();
        let mut trailer: Option<usize> = None;
        let mut n_sections = 0usize;
        let mut n_keys = 0usize;
        // Section start lines, for errors that belong to a whole
        // section (an all-zero mix has no single offending key line).
        let mut styles_line = 0usize;
        let mut vendors_line = 0usize;
        let mut overrides: [Option<PendingOverride>; 3] = [None, None, None];

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim_end_matches('\r').trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(tl) = trailer {
                return Err(ScenarioError::at(
                    lineno,
                    format!("content after the E trailer on line {tl}"),
                ));
            }
            if !header {
                let fields: Vec<&str> = line.split('\t').collect();
                let [tag, version] = fields[..] else {
                    return Err(ScenarioError::at(lineno, "bad header (want 2 fields)"));
                };
                if tag != "hoiho-scenario" {
                    return Err(ScenarioError::at(lineno, "missing hoiho-scenario header"));
                }
                let version: u32 = version
                    .parse()
                    .map_err(|_| ScenarioError::at(lineno, "bad header version"))?;
                if version != SCENARIO_VERSION {
                    return Err(ScenarioError::at(
                        lineno,
                        format!(
                            "unsupported scenario version {version} (expected {SCENARIO_VERSION})"
                        ),
                    ));
                }
                header = true;
                continue;
            }
            // Section header.
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(ScenarioError::at(lineno, "unterminated section header"));
                };
                let Some(&known) = SECTIONS.iter().find(|&&s| s == name) else {
                    return Err(ScenarioError::at(lineno, format!("unknown section [{name}]")));
                };
                if !seen_sections.insert(known) {
                    return Err(ScenarioError::at(lineno, format!("duplicate section [{known}]")));
                }
                match known {
                    "styles" => styles_line = lineno,
                    "vendors" => vendors_line = lineno,
                    "styles.tier1" => {
                        overrides[0] = Some(PendingOverride { line: lineno, set: Vec::new() })
                    }
                    "styles.tier2" => {
                        overrides[1] = Some(PendingOverride { line: lineno, set: Vec::new() })
                    }
                    "styles.edge" => {
                        overrides[2] = Some(PendingOverride { line: lineno, set: Vec::new() })
                    }
                    _ => {}
                }
                section = Some(known);
                n_sections += 1;
                continue;
            }
            // Trailer.
            if let Some(rest) = line.strip_prefix("E\t") {
                let nums: Vec<usize> = rest
                    .split('\t')
                    .map(|v| v.parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| ScenarioError::at(lineno, "bad trailer field"))?;
                let [secs, keys] = nums[..] else {
                    return Err(ScenarioError::at(
                        lineno,
                        format!("E trailer needs 2 fields, got {}", nums.len()),
                    ));
                };
                if secs != n_sections || keys != n_keys {
                    return Err(ScenarioError::at(
                        lineno,
                        format!(
                            "trailer mismatch: file says {secs} sections / {keys} keys, \
                             parsed {n_sections} / {n_keys}"
                        ),
                    ));
                }
                trailer = Some(lineno);
                continue;
            }
            // Key/value line.
            let Some((key, value)) = line.split_once('=') else {
                return Err(ScenarioError::at(lineno, format!("expected key = value, got {line:?}")));
            };
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() || value.is_empty() {
                return Err(ScenarioError::at(lineno, "empty key or value"));
            }
            let Some(sec) = section else {
                return Err(ScenarioError::at(lineno, format!("key {key} outside any section")));
            };
            if !seen_keys.insert((sec, key.to_string())) {
                return Err(ScenarioError::at(lineno, format!("duplicate key {key} in [{sec}]")));
            }
            n_keys += 1;
            let unknown =
                || ScenarioError::at(lineno, format!("unknown key {key} in [{sec}]"));
            match sec {
                "meta" => match key {
                    "name" => {
                        let ok = !value.is_empty()
                            && value.len() <= 64
                            && value
                                .chars()
                                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
                        if !ok {
                            return Err(ScenarioError::at(
                                lineno,
                                format!("name must be 1-64 chars of [a-z0-9-], got {value:?}"),
                            ));
                        }
                        sc.name = value.to_string();
                    }
                    "seed" => {
                        sc.seed = value.parse().map_err(|_| {
                            ScenarioError::at(lineno, format!("bad seed: {value:?}"))
                        })?;
                    }
                    _ => return Err(unknown()),
                },
                "topology" => {
                    let t = &mut sc.topology;
                    match key {
                        "tier1" => t.tier1 = parse_count(lineno, key, value)?,
                        "tier2" => t.tier2 = parse_count(lineno, key, value)?,
                        "edge" => t.edge = parse_count(lineno, key, value)?,
                        "ixps" => t.ixps = parse_count(lineno, key, value)?,
                        "vantage_points" => t.vantage_points = parse_count(lineno, key, value)?,
                        "sibling_org_rate" => t.sibling_org_rate = parse_rate(lineno, key, value)?,
                        "tier2_peering" => {
                            t.tier2_peering = parse_weight(lineno, key, value)?;
                        }
                        "ixp_member_rate" => t.ixp_member_rate = parse_rate(lineno, key, value)?,
                        _ => return Err(unknown()),
                    }
                    if t.tier1 == 0 && key == "tier1" {
                        return Err(ScenarioError::at(
                            lineno,
                            "tier1 must be at least 1 (the clique supplies transit)",
                        ));
                    }
                    if t.vantage_points == 0 && key == "vantage_points" {
                        return Err(ScenarioError::at(lineno, "vantage_points must be at least 1"));
                    }
                }
                "rates" => {
                    let r = &mut sc.rates;
                    let slot = match key {
                        "stale" => &mut r.stale,
                        "typo" => &mut r.typo,
                        "sibling_embed" => &mut r.sibling_embed,
                        "name_coverage" => &mut r.name_coverage,
                        "unresponsive" => &mut r.unresponsive,
                        "third_party" => &mut r.third_party,
                        _ => return Err(unknown()),
                    };
                    *slot = parse_rate(lineno, key, value)?;
                }
                "styles" => {
                    let Some(slot) = style_slot(&mut sc.styles, key) else {
                        return Err(unknown());
                    };
                    *slot = parse_weight(lineno, key, value)?;
                }
                "styles.tier1" | "styles.tier2" | "styles.edge" => {
                    let Some(idx) = StyleKind::ALL.iter().position(|s| s.label() == key) else {
                        return Err(unknown());
                    };
                    let v = parse_weight(lineno, key, value)?;
                    let tier = match sec {
                        "styles.tier1" => 0,
                        "styles.tier2" => 1,
                        _ => 2,
                    };
                    overrides[tier]
                        .as_mut()
                        .expect("override section was opened")
                        .set
                        .push((idx, v));
                }
                "vendors" => {
                    let Some(slot) = vendor_slot(&mut sc.vendors, key) else {
                        return Err(unknown());
                    };
                    *slot = parse_weight(lineno, key, value)?;
                }
                "traffic" => {
                    let t = &mut sc.traffic;
                    match key {
                        "skew" => t.skew = Skew::parse(value).map_err(|m| {
                            ScenarioError::at(lineno, m)
                        })?,
                        "requests" => {
                            t.requests = parse_count(lineno, key, value)?;
                            if t.requests == 0 {
                                return Err(ScenarioError::at(
                                    lineno,
                                    "requests must be at least 1",
                                ));
                            }
                        }
                        "connections" => {
                            t.connections = parse_count(lineno, key, value)?;
                            if t.connections == 0 {
                                return Err(ScenarioError::at(
                                    lineno,
                                    "connections must be at least 1",
                                ));
                            }
                        }
                        "batch" => t.batch = parse_count(lineno, key, value)?,
                        _ => return Err(unknown()),
                    }
                }
                other => unreachable!("section {other} accepted but not handled"),
            }
        }

        if !header {
            return Err(ScenarioError::at(0, "empty scenario (no header)"));
        }
        if trailer.is_none() {
            return Err(ScenarioError::at(
                text.lines().count(),
                "truncated scenario: missing E trailer",
            ));
        }
        if sc.name.is_empty() {
            return Err(ScenarioError::at(0, "scenario has no [meta] name"));
        }

        // Overrides inherit the *final* base mix, so their meaning is
        // independent of where [styles] sat in the file.
        let resolved: Vec<Option<(usize, StyleMix)>> = overrides
            .iter()
            .map(|o| o.as_ref().map(|p| (p.line, p.resolve(sc.styles))))
            .collect();
        sc.tier_styles.tier1 = resolved[0].map(|(_, m)| m);
        sc.tier_styles.tier2 = resolved[1].map(|(_, m)| m);
        sc.tier_styles.edge = resolved[2].map(|(_, m)| m);

        // Whole-mix checks land on the owning section's line.
        if let Err(e) = sc.styles.validate() {
            return Err(ScenarioError::at(styles_line, format!("[styles]: {e}")));
        }
        for (i, label) in ["tier1", "tier2", "edge"].iter().enumerate() {
            if let Some((line, mix)) = resolved[i] {
                if let Err(e) = mix.validate() {
                    return Err(ScenarioError::at(line, format!("[styles.{label}]: {e}")));
                }
            }
        }
        if let Err(e) = sc.vendors.validate() {
            return Err(ScenarioError::at(vendors_line, format!("[vendors]: {e}")));
        }
        Ok(sc)
    }

    /// Renders the canonical form: every section, every key, fixed
    /// order, overrides fully resolved. `parse(render(s)) == s`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("# hoiho scenario; grammar in DESIGN.md §7g\n");
        let _ = writeln!(s, "hoiho-scenario\t{SCENARIO_VERSION}");
        let mut n_sections = 0usize;
        let mut n_keys = 0usize;
        let mut sec = |s: &mut String, name: &str| {
            let _ = writeln!(s, "[{name}]");
            n_sections += 1;
        };
        macro_rules! kv {
            ($s:expr, $key:expr, $val:expr) => {{
                let _ = writeln!($s, "{} = {}", $key, $val);
                n_keys += 1;
            }};
        }

        sec(&mut s, "meta");
        kv!(s, "name", self.name);
        kv!(s, "seed", self.seed);

        sec(&mut s, "topology");
        let t = &self.topology;
        kv!(s, "tier1", t.tier1);
        kv!(s, "tier2", t.tier2);
        kv!(s, "edge", t.edge);
        kv!(s, "ixps", t.ixps);
        kv!(s, "vantage_points", t.vantage_points);
        kv!(s, "sibling_org_rate", t.sibling_org_rate);
        kv!(s, "tier2_peering", t.tier2_peering);
        kv!(s, "ixp_member_rate", t.ixp_member_rate);

        sec(&mut s, "rates");
        let r = &self.rates;
        kv!(s, "stale", r.stale);
        kv!(s, "typo", r.typo);
        kv!(s, "sibling_embed", r.sibling_embed);
        kv!(s, "name_coverage", r.name_coverage);
        kv!(s, "unresponsive", r.unresponsive);
        kv!(s, "third_party", r.third_party);

        let mut styles_section = |s: &mut String, name: &str, m: &StyleMix| {
            sec(s, name);
            for (kind, w) in StyleKind::ALL.iter().zip(m.weights()) {
                kv!(s, kind.label(), w);
            }
        };
        styles_section(&mut s, "styles", &self.styles);
        for (label, mix) in self.tier_styles.entries() {
            if let Some(m) = mix {
                styles_section(&mut s, &format!("styles.{label}"), &m);
            }
        }

        sec(&mut s, "vendors");
        for (kind, w) in VendorKind::ALL.iter().zip(self.vendors.weights()) {
            kv!(s, kind.label(), w);
        }

        sec(&mut s, "traffic");
        let tr = &self.traffic;
        kv!(s, "skew", tr.skew.render());
        kv!(s, "requests", tr.requests);
        kv!(s, "connections", tr.connections);
        kv!(s, "batch", tr.batch);

        let _ = writeln!(s, "E\t{n_sections}\t{n_keys}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let mut sc = Scenario::default();
        sc.name = "round-trip".into();
        let text = sc.render();
        let parsed = Scenario::parse(&text).unwrap();
        assert_eq!(parsed, sc);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn overrides_and_odd_values_round_trip() {
        let mut sc = Scenario::default();
        sc.name = "over".into();
        sc.seed = u64::MAX;
        sc.styles.simple = 0.12345678901234;
        let mut loud = sc.styles;
        loud.bare = 7.5;
        sc.tier_styles.tier2 = Some(loud);
        sc.vendors = hoiho_netsim::VendorMix { generic: 0.5, juniper: 0.25, cisco: 0.2, arista: 0.05 };
        sc.traffic.skew = Skew::Uniform;
        sc.traffic.batch = 0;
        let text = sc.render();
        let parsed = Scenario::parse(&text).unwrap();
        assert_eq!(parsed, sc);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn partial_override_inherits_final_base_regardless_of_order() {
        // [styles.edge] before [styles]: the override still inherits
        // the final base (simple = 2) for weights it does not set.
        let text = "hoiho-scenario\t1\n\
                    [meta]\nname = order\n\
                    [styles.edge]\nbare = 9\n\
                    [styles]\nsimple = 2\n\
                    E\t3\t3\n";
        let sc = Scenario::parse(text).unwrap();
        let edge = sc.tier_styles.edge.unwrap();
        assert_eq!(edge.bare, 9.0);
        assert_eq!(edge.simple, 2.0);
        assert_eq!(sc.styles.simple, 2.0);
        assert_eq!(sc.styles.bare, StyleMix::default().bare);
    }

    #[test]
    fn error_lines_are_exact() {
        // Unknown section on line 4.
        let text = "# c\nhoiho-scenario\t1\n[meta]\n[whatever]\nE\t2\t0\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!((e.line, e.msg.contains("unknown section")), (4, true), "{e}");

        // Unknown key on line 5.
        let text = "# c\nhoiho-scenario\t1\n[meta]\nname = x\nbogus = 1\nE\t1\t2\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!((e.line, e.msg.contains("unknown key bogus")), (5, true), "{e}");

        // Duplicate key on line 5.
        let text = "hoiho-scenario\t1\n[meta]\nname = x\nname = y\nE\t1\t2\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!((e.line, e.msg.contains("duplicate key name")), (4, true), "{e}");

        // Out-of-range rate on line 4.
        let text = "hoiho-scenario\t1\n[rates]\nstale = 0.2\ntypo = 1.5\nE\t1\t2\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!((e.line, e.msg.contains("probability")), (4, true), "{e}");
    }

    #[test]
    fn truncation_never_parses() {
        let mut sc = Scenario::default();
        sc.name = "cut".into();
        sc.tier_styles.tier1 = Some(sc.styles);
        let text = sc.render();
        let lines: Vec<&str> = text.lines().collect();
        for cut in 0..lines.len() {
            assert!(
                Scenario::parse(&lines[..cut].join("\n")).is_err(),
                "prefix of {cut} lines parsed"
            );
        }
        // Content after the trailer is rejected too.
        let extra = format!("{text}[meta]\n");
        assert!(Scenario::parse(&extra).unwrap_err().msg.contains("after the E trailer"));
        // A doctored trailer is caught by the totals.
        let doctored = text.replace("E\t", "E\t9");
        assert!(Scenario::parse(&doctored).unwrap_err().msg.contains("trailer mismatch"));
    }

    #[test]
    fn zero_mix_rejected_at_its_section_line() {
        // [styles] opens on line 2; all weights zeroed.
        let mut text = String::from("hoiho-scenario\t1\n[styles]\n");
        for k in StyleKind::ALL {
            text.push_str(&format!("{} = 0\n", k.label()));
        }
        text.push_str("[meta]\nname = z\nE\t2\t11\n");
        let e = Scenario::parse(&text).unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.msg.contains("zero total weight"), "{e}");

        // Same for a per-tier override that zeroes everything.
        let mut text = String::from("hoiho-scenario\t1\n[meta]\nname = z\n[styles.edge]\n");
        for k in StyleKind::ALL {
            text.push_str(&format!("{} = 0\n", k.label()));
        }
        text.push_str("E\t2\t11\n");
        let e = Scenario::parse(&text).unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        assert!(e.msg.contains("[styles.edge]"), "{e}");
    }

    #[test]
    fn header_and_name_required() {
        assert!(Scenario::parse("").unwrap_err().msg.contains("no header"));
        assert!(Scenario::parse("not-a-scenario\t1\nE\t0\t0\n").is_err());
        assert!(Scenario::parse("hoiho-scenario\t2\nE\t0\t0\n")
            .unwrap_err()
            .msg
            .contains("unsupported"));
        let e = Scenario::parse("hoiho-scenario\t1\nE\t0\t0\n").unwrap_err();
        assert!(e.msg.contains("no [meta] name"), "{e}");
        // Bad names: uppercase, slash, overlong.
        for bad in ["Name", "a/b", &"x".repeat(65)] {
            let text = format!("hoiho-scenario\t1\n[meta]\nname = {bad}\nE\t1\t1\n");
            assert!(Scenario::parse(&text).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn keys_outside_sections_rejected() {
        let text = "hoiho-scenario\t1\nname = x\nE\t0\t1\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("outside any section"), "{e}");
    }

    #[test]
    fn duplicate_sections_rejected() {
        let text = "hoiho-scenario\t1\n[meta]\nname = x\n[meta]\nE\t2\t1\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.msg.contains("duplicate section"), "{e}");
    }

    #[test]
    fn skew_values_parse_and_render() {
        for (text, skew) in [
            ("uniform", Skew::Uniform),
            ("zipf 1.1", Skew::Zipf(1.1)),
            ("zipf 0.5", Skew::Zipf(0.5)),
        ] {
            assert_eq!(Skew::parse(text).unwrap(), skew);
            assert_eq!(skew.render(), text);
        }
        for bad in ["zipf", "zipf -1", "zipf nan", "pareto 2", "zipf 0"] {
            assert!(Skew::parse(bad).is_err(), "{bad:?} accepted");
        }
    }
}
