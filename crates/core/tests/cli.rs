//! End-to-end test of the `hoiho` command-line binary: learn from a
//! training file, then apply the printed conventions to fresh hostnames.

use std::io::Write;
use std::process::{Command, Stdio};

const TRAINING: &str = "\
# asn addr hostname
64500 192.0.2.1 as64500-ae1.fra.bigco.net
64501 192.0.2.5 as64501-xe2.lhr.bigco.net
64502 192.0.2.9 as64502-ae9.ams.bigco.net
64503 192.0.2.13 as64503-ae2.fra.bigco.net
";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hoiho")
}

#[test]
fn learn_then_apply_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hoiho-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let train = dir.join("train.txt");
    std::fs::write(&train, TRAINING).unwrap();

    // learn
    let out = Command::new(bin()).arg("learn").arg(&train).output().unwrap();
    assert!(out.status.success(), "learn failed: {}", String::from_utf8_lossy(&out.stderr));
    let conventions = String::from_utf8(out.stdout).unwrap();
    assert!(conventions.contains("bigco.net"), "{conventions}");
    assert!(conventions.contains("(\\d+)"), "{conventions}");
    let conv_path = dir.join("conv.txt");
    std::fs::write(&conv_path, &conventions).unwrap();

    // apply (hostnames on stdin)
    let mut child = Command::new(bin())
        .arg("apply")
        .arg(&conv_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"as65000-te1.syd.bigco.net\ncore7.nyc.bigco.net\nas999.other.org\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "as65000-te1.syd.bigco.net\t65000");
    assert_eq!(lines[1], "core7.nyc.bigco.net\t-");
    assert_eq!(lines[2], "as999.other.org\t-");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_and_errors() {
    // No arguments: usage on stderr, exit code 2.
    let out = Command::new(bin()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // Missing file: exit code 1 with a readable message.
    let out = Command::new(bin()).arg("learn").arg("/nonexistent/x.txt").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Malformed training line.
    let dir = std::env::temp_dir().join(format!("hoiho-cli-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.txt");
    std::fs::write(&bad, "not-a-number 192.0.2.1 host.example.com\n").unwrap();
    let out = Command::new(bin()).arg("learn").arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad ASN"));
    std::fs::remove_dir_all(&dir).ok();
}
