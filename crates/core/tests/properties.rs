//! Property-based tests for the core learning machinery: the regex
//! dialect round-trips through its textual form, the matcher finds
//! instances sampled from a regex, edit distance behaves like a metric
//! (up to the OSA caveat), and evaluation counts stay consistent.

use hoiho::apparent::{congruence, Congruence};
use hoiho::editdist::damerau_levenshtein;
use hoiho::eval::{evaluate, Counts};
use hoiho::regex::{AltGroup, CharClass, Elem, Regex};
use hoiho::training::{HostObs, Observation};
use proptest::prelude::*;

/// Strategy: a literal chunk over the hostname alphabet (possibly with
/// dots and hyphens, never empty).
fn lit() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9][a-z0-9.-]{0,5}").unwrap()
}

/// Strategy: a non-empty alternation option (no punctuation — phase 2
/// merges simple strings).
fn alt_opt() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,4}").unwrap()
}

/// Strategy: one dialect element (excluding anchors and `.+`, handled at
/// the regex level).
fn elem() -> impl Strategy<Value = Elem> {
    prop_oneof![
        lit().prop_map(Elem::Lit),
        Just(Elem::Digits),
        Just(Elem::NotIn(".".to_string())),
        Just(Elem::NotIn("-".to_string())),
        Just(Elem::NotIn(".-".to_string())),
        Just(Elem::Class(CharClass { lower: true, digit: false, hyphen: false })),
        Just(Elem::Class(CharClass { lower: true, digit: true, hyphen: false })),
        Just(Elem::Class(CharClass { lower: true, digit: true, hyphen: true })),
        (proptest::collection::vec(alt_opt(), 1..3), any::<bool>())
            .prop_filter_map("alt needs options", |(opts, optional)| {
                AltGroup::from_variants(opts).map(|mut a| {
                    a.optional = a.optional || optional;
                    Elem::Alt(a)
                })
            }),
    ]
}

/// Strategy: a whole dialect regex with optional anchors, a capture
/// somewhere, and at most one `.+`.
fn regex() -> impl Strategy<Value = Regex> {
    (
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(elem(), 0..4),
        proptest::collection::vec(elem(), 0..4),
        any::<bool>(),
    )
        .prop_map(|(anchor_start, anchor_end, before, after, with_any)| {
            let mut elems = Vec::new();
            if anchor_start {
                elems.push(Elem::StartAnchor);
            }
            elems.extend(before);
            elems.push(Elem::CaptureDigits);
            if with_any {
                elems.push(Elem::Lit("-".to_string()));
                elems.push(Elem::Any);
            }
            elems.extend(after);
            if anchor_end {
                elems.push(Elem::EndAnchor);
            }
            Regex::new(elems)
        })
}

/// Samples a hostname fragment matching one element.
fn instance_of(e: &Elem, rng_bits: u64) -> String {
    let pick = |set: &[u8], n: usize| -> String {
        (0..n)
            .map(|i| set[(rng_bits as usize + i * 7) % set.len()] as char)
            .collect()
    };
    match e {
        Elem::StartAnchor | Elem::EndAnchor => String::new(),
        Elem::Lit(l) => l.clone(),
        Elem::CaptureDigits | Elem::Digits => pick(b"0123456789", 1 + (rng_bits % 4) as usize),
        Elem::NotIn(set) => {
            let alphabet: Vec<u8> = b"abcxyz0189.-"
                .iter()
                .copied()
                .filter(|&c| !set.as_bytes().contains(&c))
                .collect();
            pick(&alphabet, 1 + (rng_bits % 3) as usize)
        }
        Elem::Class(c) => {
            let mut alphabet = Vec::new();
            if c.lower {
                alphabet.extend_from_slice(b"abkz");
            }
            if c.digit {
                alphabet.extend_from_slice(b"079");
            }
            if c.hyphen {
                alphabet.push(b'-');
            }
            pick(&alphabet, 1 + (rng_bits % 3) as usize)
        }
        Elem::Any => pick(b"ab1.-", 1 + (rng_bits % 4) as usize),
        Elem::Alt(a) => {
            if a.optional && rng_bits.is_multiple_of(3) {
                String::new()
            } else {
                a.opts[(rng_bits as usize) % a.opts.len()].clone()
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Render → parse → render is a fixpoint.
    #[test]
    fn regex_roundtrip(r in regex()) {
        let text = r.to_string();
        let parsed = Regex::parse(&text)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        prop_assert_eq!(parsed.to_string(), text);
    }

    /// A hostname assembled from per-element instances matches.
    #[test]
    fn sampled_instance_matches(r in regex(), seed in any::<u64>()) {
        let host: String = r
            .elems()
            .iter()
            .enumerate()
            .map(|(i, e)| instance_of(e, seed.wrapping_add(i as u64 * 131)))
            .collect();
        prop_assert!(
            r.find(&host).is_some(),
            "{} failed to match its own instance {host:?}",
            r
        );
    }

    /// Captures are digit runs inside the match span.
    #[test]
    fn captures_are_digits(r in regex(), seed in any::<u64>()) {
        let host: String = r
            .elems()
            .iter()
            .enumerate()
            .map(|(i, e)| instance_of(e, seed.wrapping_add(i as u64 * 131)))
            .collect();
        if let Some(m) = r.find(&host) {
            for &(s, e) in &m.captures {
                prop_assert!(s >= m.span.0 && e <= m.span.1);
                prop_assert!(s < e);
                prop_assert!(host[s..e].bytes().all(|b| b.is_ascii_digit()));
            }
        }
    }

    /// Damerau-Levenshtein: symmetry, identity, and length bounds.
    #[test]
    fn editdist_metric_properties(a in "[0-9]{0,8}", b in "[0-9]{0,8}") {
        let d = damerau_levenshtein(&a, &b);
        prop_assert_eq!(d, damerau_levenshtein(&b, &a));
        prop_assert_eq!(d == 0, a == b);
        prop_assert!(d >= a.len().abs_diff(b.len()));
        prop_assert!(d <= a.len().max(b.len()));
    }

    /// Single-edit strings are at distance one.
    #[test]
    fn editdist_single_edits(s in "[0-9]{2,8}", pos in any::<usize>(), digit in 0u8..10) {
        let bytes = s.as_bytes();
        let p = pos % bytes.len();
        // Substitution with a different digit.
        let nd = b'0' + digit;
        if nd != bytes[p] {
            let mut sub = bytes.to_vec();
            sub[p] = nd;
            prop_assert_eq!(damerau_levenshtein(&s, std::str::from_utf8(&sub).unwrap()), 1);
        }
        // Deletion.
        let mut del = bytes.to_vec();
        del.remove(p);
        prop_assert_eq!(damerau_levenshtein(&s, std::str::from_utf8(&del).unwrap()), 1);
        // Transposition of distinct adjacent digits.
        if p + 1 < bytes.len() && bytes[p] != bytes[p + 1] {
            let mut tr = bytes.to_vec();
            tr.swap(p, p + 1);
            prop_assert_eq!(damerau_levenshtein(&s, std::str::from_utf8(&tr).unwrap()), 1);
        }
    }

    /// Exact numeric matches are always congruent; distance ≥ 2 never is.
    #[test]
    fn congruence_consistency(asn in 1u32..400_000) {
        prop_assert_eq!(congruence(&asn.to_string(), asn), Congruence::Exact);
        // Appending two digits makes it incongruent.
        let far = format!("{asn}00");
        if far.parse::<u32>().map(|v| v != asn).unwrap_or(true) {
            prop_assert_eq!(congruence(&far, asn), Congruence::No);
        }
    }

    /// Evaluation counts partition the hostname set.
    #[test]
    fn evaluation_counts_partition(asns in proptest::collection::vec(1u32..90_000, 1..20)) {
        let hosts: Vec<HostObs> = asns
            .iter()
            .enumerate()
            .map(|(i, &asn)| {
                // Half annotated, half plain infra names.
                let h = if i % 2 == 0 {
                    format!("as{asn}.pop{i}.example.com")
                } else {
                    format!("core-{i}.example.com")
                };
                HostObs::build(&Observation::new(&h, [192, 0, 2, 1], asn), "example.com")
            })
            .collect();
        let r = Regex::parse(r"^as(\d+)\.[a-z\d]+\.example\.com$").unwrap();
        let c: Counts = evaluate(std::slice::from_ref(&r), &hosts);
        prop_assert_eq!(c.total() as usize, hosts.len());
        prop_assert!(c.atp() <= i64::from(c.tp));
        prop_assert_eq!(c.matched(), c.tp + c.fp);
        prop_assert!(c.unique_tp_asns.len() <= c.tp as usize);
    }
}
