//! Property-based tests for the core learning machinery, on the devkit
//! harness: the regex dialect round-trips through its textual form, the
//! matcher finds instances sampled from a regex, edit distance behaves
//! like a metric (up to the OSA caveat), and evaluation counts stay
//! consistent.

use hoiho::apparent::{congruence, Congruence};
use hoiho::editdist::damerau_levenshtein;
use hoiho::eval::{evaluate, Counts};
use hoiho::learner::{learn_all, LearnConfig};
use hoiho::regex::{AltGroup, CharClass, CompiledRegex, Elem, MultiMatcher, Regex};
use hoiho::training::{HostObs, Observation, TrainingSet};
use hoiho_devkit::prop::{any, just, one_of, string_of, vec_of, Gen};
use hoiho_devkit::{prop_assert, prop_assert_eq, props};
use hoiho_psl::PublicSuffixList;

const LOWER_DIGIT: &str = "abcdefghijklmnopqrstuvwxyz0123456789";

/// A literal chunk over the hostname alphabet (possibly with dots and
/// hyphens, never empty): `[a-z0-9][a-z0-9.-]{0,5}`.
fn lit() -> impl Gen<Value = String> {
    (string_of(LOWER_DIGIT, 1..=1usize), string_of("abcdefghijklmnopqrstuvwxyz0123456789.-", 0..=5usize))
        .prop_map(|(head, tail)| format!("{head}{tail}"))
}

/// A non-empty alternation option (no punctuation — phase 2 merges
/// simple strings): `[a-z0-9]{1,4}`.
fn alt_opt() -> impl Gen<Value = String> {
    string_of(LOWER_DIGIT, 1..=4usize)
}

/// One dialect element (excluding anchors and `.+`, handled at the
/// regex level).
fn elem() -> impl Gen<Value = Elem> {
    one_of(vec![
        lit().prop_map(Elem::Lit).boxed(),
        just(Elem::Digits).boxed(),
        just(Elem::NotIn(".".to_string())).boxed(),
        just(Elem::NotIn("-".to_string())).boxed(),
        just(Elem::NotIn(".-".to_string())).boxed(),
        just(Elem::Class(CharClass { lower: true, digit: false, hyphen: false })).boxed(),
        just(Elem::Class(CharClass { lower: true, digit: true, hyphen: false })).boxed(),
        just(Elem::Class(CharClass { lower: true, digit: true, hyphen: true })).boxed(),
        (vec_of(alt_opt(), 1..3usize), any::<bool>())
            .prop_map(|(opts, optional)| {
                let mut a = AltGroup::from_variants(opts).expect("options are non-empty");
                a.optional = a.optional || optional;
                Elem::Alt(a)
            })
            .boxed(),
    ])
}

/// A whole dialect regex with optional anchors, a capture somewhere,
/// and at most one `.+`.
fn regex() -> impl Gen<Value = Regex> {
    (
        any::<bool>(),
        any::<bool>(),
        vec_of(elem(), 0..4usize),
        vec_of(elem(), 0..4usize),
        any::<bool>(),
    )
        .prop_map(|(anchor_start, anchor_end, before, after, with_any)| {
            let mut elems = Vec::new();
            if anchor_start {
                elems.push(Elem::StartAnchor);
            }
            elems.extend(before);
            elems.push(Elem::CaptureDigits);
            if with_any {
                elems.push(Elem::Lit("-".to_string()));
                elems.push(Elem::Any);
            }
            elems.extend(after);
            if anchor_end {
                elems.push(Elem::EndAnchor);
            }
            Regex::new(elems)
        })
}

/// Samples a hostname fragment matching one element.
fn instance_of(e: &Elem, rng_bits: u64) -> String {
    let pick = |set: &[u8], n: usize| -> String {
        (0..n)
            .map(|i| set[(rng_bits as usize + i * 7) % set.len()] as char)
            .collect()
    };
    match e {
        Elem::StartAnchor | Elem::EndAnchor => String::new(),
        Elem::Lit(l) => l.clone(),
        Elem::CaptureDigits | Elem::Digits => pick(b"0123456789", 1 + (rng_bits % 4) as usize),
        Elem::NotIn(set) => {
            let alphabet: Vec<u8> = b"abcxyz0189.-"
                .iter()
                .copied()
                .filter(|&c| !set.as_bytes().contains(&c))
                .collect();
            pick(&alphabet, 1 + (rng_bits % 3) as usize)
        }
        Elem::Class(c) => {
            let mut alphabet = Vec::new();
            if c.lower {
                alphabet.extend_from_slice(b"abkz");
            }
            if c.digit {
                alphabet.extend_from_slice(b"079");
            }
            if c.hyphen {
                alphabet.push(b'-');
            }
            pick(&alphabet, 1 + (rng_bits % 3) as usize)
        }
        Elem::Any => pick(b"ab1.-", 1 + (rng_bits % 4) as usize),
        Elem::Alt(a) => {
            if a.optional && rng_bits.is_multiple_of(3) {
                String::new()
            } else {
                a.opts[(rng_bits as usize) % a.opts.len()].clone()
            }
        }
    }
}

props! {
    cases = 256;

    /// Render → parse → render is a fixpoint.
    fn regex_roundtrip(r in regex()) {
        let text = r.to_string();
        let parsed = Regex::parse(&text)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"));
        prop_assert_eq!(parsed.to_string(), text);
    }

    /// A hostname assembled from per-element instances matches.
    fn sampled_instance_matches(r in regex(), seed in any::<u64>()) {
        let host: String = r
            .elems()
            .iter()
            .enumerate()
            .map(|(i, e)| instance_of(e, seed.wrapping_add(i as u64 * 131)))
            .collect();
        prop_assert!(
            r.find(&host).is_some(),
            "{} failed to match its own instance {host:?}",
            r
        );
    }

    /// The compiled program is bit-identical to the interpreter — same
    /// leftmost match, same captures, same trace spans — on the regex's
    /// own sampled instances, on random noise, on noise-flanked
    /// instances, and on the tricky fixed corpus (typo-congruent and
    /// embedded-IP hostnames, oversized digit runs).
    fn compiled_engine_equals_interpreter(
        r in regex(),
        seed in any::<u64>(),
        noise in string_of("abcxyz0189.-", 0..=12usize),
    ) {
        let c = CompiledRegex::compile(&r);
        let instance: String = r
            .elems()
            .iter()
            .enumerate()
            .map(|(i, e)| instance_of(e, seed.wrapping_add(i as u64 * 131)))
            .collect();
        let flanked_front = format!("{noise}{instance}");
        let flanked_back = format!("{instance}{noise}");
        let hosts = [
            instance.as_str(),
            noise.as_str(),
            flanked_front.as_str(),
            flanked_back.as_str(),
            // Typo-congruence corpus host (as24940 vs training 20940).
            "as24940.akl-ix.nz",
            // Embedded-IP overlap corpus host (Figure 3b).
            "50-236-216-122-static.hfc.comcastbusiness.net",
            // Digit run longer than any ASN.
            "as99999999999.pop1.example.com",
            "",
        ];
        for host in hosts {
            // `find_interpreted` is the oracle: `Regex::find` itself now
            // runs the cached compiled program.
            let oracle = r.find_interpreted(host);
            let oracle_extract =
                oracle.as_ref().and_then(|m| m.captures.first().map(|&(s, e)| &host[s..e]));
            prop_assert_eq!(c.find(host), oracle.clone());
            prop_assert_eq!(c.find_trace(host), r.find_trace_interpreted(host));
            prop_assert_eq!(c.extract(host), oracle_extract);
            prop_assert_eq!(c.is_match(host), oracle.is_some());
        }
    }

    /// `MultiMatcher` dispatch is a superset-exact filter over a
    /// generated pool: every regex that matches a host is dispatched
    /// for that host (no false negatives), on the regexes' own sampled
    /// instances, on noise, and on flanked instances. When the pool
    /// fits the bitmask fast path, it agrees with the scratch path.
    fn multi_matcher_dispatch_has_no_false_negatives(
        pool in vec_of(regex(), 1..6usize),
        seed in any::<u64>(),
        noise in string_of("abcxyz0189.-", 0..=12usize),
    ) {
        let programs: Vec<CompiledRegex> = pool.iter().map(CompiledRegex::compile).collect();
        let matcher = MultiMatcher::build(&programs);
        let mut scratch = matcher.scratch();
        let mut hosts: Vec<String> = vec![noise.clone(), String::new()];
        for r in &pool {
            let instance: String = r
                .elems()
                .iter()
                .enumerate()
                .map(|(i, e)| instance_of(e, seed.wrapping_add(i as u64 * 131)))
                .collect();
            hosts.push(format!("{noise}{instance}"));
            hosts.push(format!("{instance}{noise}"));
            hosts.push(instance);
        }
        for host in &hosts {
            let dispatched = matcher.dispatch(host.as_bytes(), &mut scratch).to_vec();
            for (ri, p) in programs.iter().enumerate() {
                if p.is_match(host) {
                    prop_assert!(
                        dispatched.contains(&(ri as u32)),
                        "{} matches {host:?} but was not dispatched",
                        pool[ri]
                    );
                }
            }
            if matcher.supports_mask() {
                let mask = matcher.dispatch_mask(host.as_bytes());
                let from_mask: Vec<u32> =
                    (0..64).filter(|&b| mask >> b & 1 == 1).collect();
                let mut sorted = dispatched.clone();
                sorted.sort_unstable();
                prop_assert_eq!(from_mask, sorted);
            }
        }
    }

    /// Captures are digit runs inside the match span.
    fn captures_are_digits(r in regex(), seed in any::<u64>()) {
        let host: String = r
            .elems()
            .iter()
            .enumerate()
            .map(|(i, e)| instance_of(e, seed.wrapping_add(i as u64 * 131)))
            .collect();
        if let Some(m) = r.find(&host) {
            for &(s, e) in &m.captures {
                prop_assert!(s >= m.span.0 && e <= m.span.1);
                prop_assert!(s < e);
                prop_assert!(host[s..e].bytes().all(|b| b.is_ascii_digit()));
            }
        }
    }

    /// Damerau-Levenshtein: symmetry, identity, and length bounds.
    fn editdist_metric_properties(
        a in string_of("0123456789", 0..=8usize),
        b in string_of("0123456789", 0..=8usize),
    ) {
        let d = damerau_levenshtein(&a, &b);
        prop_assert_eq!(d, damerau_levenshtein(&b, &a));
        prop_assert_eq!(d == 0, a == b);
        prop_assert!(d >= a.len().abs_diff(b.len()));
        prop_assert!(d <= a.len().max(b.len()));
    }

    /// Single-edit strings are at distance one.
    fn editdist_single_edits(
        s in string_of("0123456789", 2..=8usize),
        pos in any::<usize>(),
        digit in 0u8..10,
    ) {
        let bytes = s.as_bytes();
        let p = pos % bytes.len();
        // Substitution with a different digit.
        let nd = b'0' + digit;
        if nd != bytes[p] {
            let mut sub = bytes.to_vec();
            sub[p] = nd;
            prop_assert_eq!(damerau_levenshtein(&s, std::str::from_utf8(&sub).unwrap()), 1);
        }
        // Deletion.
        let mut del = bytes.to_vec();
        del.remove(p);
        prop_assert_eq!(damerau_levenshtein(&s, std::str::from_utf8(&del).unwrap()), 1);
        // Transposition of distinct adjacent digits.
        if p + 1 < bytes.len() && bytes[p] != bytes[p + 1] {
            let mut tr = bytes.to_vec();
            tr.swap(p, p + 1);
            prop_assert_eq!(damerau_levenshtein(&s, std::str::from_utf8(&tr).unwrap()), 1);
        }
    }

    /// Exact numeric matches are always congruent; distance ≥ 2 never is.
    fn congruence_consistency(asn in 1u32..400_000) {
        prop_assert_eq!(congruence(&asn.to_string(), asn), Congruence::Exact);
        // Appending two digits makes it incongruent.
        let far = format!("{asn}00");
        if far.parse::<u32>().map(|v| v != asn).unwrap_or(true) {
            prop_assert_eq!(congruence(&far, asn), Congruence::No);
        }
    }

    /// Evaluation counts partition the hostname set.
    fn evaluation_counts_partition(asns in vec_of(1u32..90_000, 1..20usize)) {
        let hosts: Vec<HostObs> = asns
            .iter()
            .enumerate()
            .map(|(i, &asn)| {
                // Half annotated, half plain infra names.
                let h = if i % 2 == 0 {
                    format!("as{asn}.pop{i}.example.com")
                } else {
                    format!("core-{i}.example.com")
                };
                HostObs::build(&Observation::new(&h, [192, 0, 2, 1], asn), "example.com")
            })
            .collect();
        let r = Regex::parse(r"^as(\d+)\.[a-z\d]+\.example\.com$").unwrap();
        let c: Counts = evaluate(std::slice::from_ref(&r), &hosts);
        prop_assert_eq!(c.total() as usize, hosts.len());
        prop_assert!(c.atp() <= i64::from(c.tp));
        prop_assert_eq!(c.matched(), c.tp + c.fp);
        prop_assert!(c.unique_tp_asns.len() <= c.tp as usize);
    }
}

/// Regression: threaded whole-snapshot learning must be byte-for-byte
/// identical to the single-threaded path, on a synthetic set large
/// enough (50 suffixes) to exercise real work stealing across threads.
#[test]
fn learn_all_threaded_equals_single_threaded_50_suffixes() {
    let psl = PublicSuffixList::builtin();
    let mut ts = TrainingSet::new();
    for d in 0..50u32 {
        for i in 0..12u32 {
            let asn = 30_000 + d * 40 + i;
            ts.push(Observation::new(
                &format!("as{asn}-ae{}.pop{}.operator{d}-net.net", i % 4, i % 5),
                [203, 0, 113, (i % 250) as u8],
                asn,
            ));
        }
    }
    let groups = ts.by_suffix(&psl);
    assert_eq!(groups.len(), 50, "one group per synthetic suffix");
    let single = learn_all(&groups, &LearnConfig { threads: 1, ..LearnConfig::default() });
    let multi = learn_all(&groups, &LearnConfig { threads: 8, ..LearnConfig::default() });
    assert_eq!(single.len(), multi.len());
    for (s, m) in single.iter().zip(&multi) {
        assert_eq!(s.convention.suffix, m.convention.suffix);
        assert_eq!(s.convention.to_string(), m.convention.to_string());
        assert_eq!(s.class, m.class);
        assert_eq!(s.single, m.single);
    }
}
