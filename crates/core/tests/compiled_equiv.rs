//! Equivalence oracles for the two-layer candidate-evaluation engine:
//!
//! * compiled classification (`classify_host_compiled`,
//!   `evaluate_compiled`, `regex_hit`) against the interpreter on
//!   corpora that exercise every §3.1 rule — typo congruence,
//!   embedded-IP overlap, oversized digit runs;
//! * `learn_all` with the outcome matrix on vs off: identical
//!   `LearnedConvention`s on a fixed-seed synthetic Internet, and a
//!   fixed-seed determinism check on the default (matrix) path.

use hoiho::eval::{
    classify_host, classify_host_compiled, classify_host_interpreted, evaluate, evaluate_compiled,
    evaluate_interpreted, regex_hit,
};
use hoiho::learner::{learn_all, LearnConfig, LearnedConvention};
use hoiho::regex::{CompiledRegex, Regex};
use hoiho::training::{HostObs, Observation, TrainingSet};
use hoiho_psl::PublicSuffixList;

fn rx(s: &str) -> Regex {
    Regex::parse(s).unwrap()
}

/// Hostnames that exercise every classification rule: exact congruence,
/// the typo rule, embedded-IP overlap (congruent digits that are part
/// of the interface's own address), incongruence, oversized digit
/// runs, unmatched-with-apparent (FN), and unmatched-plain (TN).
fn tricky_hosts() -> Vec<HostObs> {
    let rows: &[(&str, [u8; 4], u32, &str)] = &[
        ("as15576.nts.ch", [1, 1, 1, 1], 15576, "nts.ch"),
        ("as24940.akl-ix.nz", [1, 1, 1, 2], 20940, "akl-ix.nz"),
        (
            "50-236-216-122-static.hfc.comcastbusiness.net",
            [50, 236, 216, 122],
            122,
            "comcastbusiness.net",
        ),
        ("as44879.nts.ch", [1, 1, 1, 3], 15576, "nts.ch"),
        ("as99999999999.pop1.example.com", [1, 1, 1, 4], 100, "example.com"),
        ("p714.sgw.equinix.com", [1, 1, 1, 5], 714, "equinix.com"),
        ("24482-fr5-ix.equinix.com", [1, 1, 1, 6], 24482, "equinix.com"),
        ("netflix.zh2.corp.eu.equinix.com", [1, 1, 1, 7], 2906, "equinix.com"),
        ("core1.nts.ch", [1, 1, 1, 8], 15576, "nts.ch"),
        ("", [1, 1, 1, 9], 1, ""),
    ];
    rows.iter()
        .map(|&(h, addr, asn, sfx)| HostObs::build(&Observation::new(h, addr, asn), sfx))
        .collect()
}

fn tricky_sets() -> Vec<Vec<Regex>> {
    vec![
        vec![rx(r"as(\d+)\.nts\.ch$")],
        vec![rx(r"^as(\d+)\.akl-ix\.nz$")],
        vec![rx(r"(\d+)-static\.hfc\.comcastbusiness\.net$")],
        vec![rx(r"^as(\d+)\.[a-z\d]+\.example\.com$")],
        vec![
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            rx(r"^(\d+)-.+\.equinix\.com$"),
        ],
        // A captureless regex first: the set must fall through past it.
        vec![rx(r"^\d+\.[a-z]+\."), rx(r"(\d+)")],
        vec![],
    ]
}

#[test]
fn compiled_classification_equals_interpreter_on_tricky_corpora() {
    let hosts = tricky_hosts();
    for set in tricky_sets() {
        let programs: Vec<CompiledRegex> = set.iter().map(CompiledRegex::compile).collect();
        for h in &hosts {
            // `classify_host` itself runs cached compiled programs now, so
            // the tree-walking interpreter (`classify_host_interpreted`)
            // is the real oracle; the default path must agree with both.
            let oracle = classify_host_interpreted(&set, h);
            assert_eq!(
                oracle,
                classify_host_compiled(&programs, h),
                "set {set:?} on {:?}",
                h.hostname
            );
            assert_eq!(oracle, classify_host(&set, h), "set {set:?} on {:?}", h.hostname);
        }
        let oracle_counts = evaluate_interpreted(&set, &hosts);
        assert_eq!(oracle_counts, evaluate_compiled(&programs, &hosts), "{set:?}");
        assert_eq!(oracle_counts, evaluate(&set, &hosts), "{set:?}");
    }
}

/// `regex_hit` is the single-regex column cell: `Some(outcome)` exactly
/// when a one-regex set would resolve the host, with the same outcome.
#[test]
fn regex_hit_agrees_with_single_regex_classification() {
    let hosts = tricky_hosts();
    for set in tricky_sets() {
        for r in &set {
            let p = CompiledRegex::compile(r);
            let single = std::slice::from_ref(r);
            for h in &hosts {
                let full = classify_host(single, h);
                match regex_hit(&p, h) {
                    Some(o) => assert_eq!(o, full, "{r} on {:?}", h.hostname),
                    None => assert_eq!(
                        full,
                        hoiho::eval::negative_outcome(h),
                        "{r} on {:?}",
                        h.hostname
                    ),
                }
            }
        }
    }
}

/// Ground-truth training set from the tiny synthetic Internet at a
/// fixed seed (the same generator `hoiho learn --sim` uses).
fn sim_groups(seed: u64) -> Vec<hoiho::training::SuffixTraining> {
    let internet = hoiho_netsim::Internet::generate(&hoiho_netsim::SimConfig::tiny(seed));
    let mut ts = TrainingSet::new();
    for (iface, owner) in internet.named_interfaces() {
        let hostname = iface.hostname.as_deref().expect("named interface has a hostname");
        ts.push(Observation::new(hostname, iface.addr.to_be_bytes(), owner));
    }
    ts.by_suffix(&PublicSuffixList::builtin())
}

fn assert_identical(a: &[LearnedConvention], b: &[LearnedConvention]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.convention, y.convention, "regex lists differ for {}", x.convention.suffix);
        assert_eq!(x.convention.to_string(), y.convention.to_string());
        assert_eq!(x.counts, y.counts, "counts differ for {}", x.convention.suffix);
        assert_eq!(x.class, y.class);
        assert_eq!(x.single, y.single);
        assert_eq!(x.taxonomy, y.taxonomy);
        assert_eq!(x.hostnames, y.hostnames);
    }
}

/// The outcome-matrix fast path changes nothing: whole-pipeline output
/// on a fixed-seed synthetic Internet is identical with the matrix on
/// (default) and off (the direct re-evaluation oracle).
#[test]
fn learn_all_identical_with_outcome_matrix_on_and_off() {
    let groups = sim_groups(42);
    assert!(!groups.is_empty(), "tiny sim must yield suffix groups");
    let on_cfg = LearnConfig { threads: 1, ..LearnConfig::default() };
    assert!(on_cfg.sets.outcome_matrix, "matrix is the default");
    let mut off_cfg = on_cfg;
    off_cfg.sets.outcome_matrix = false;
    let on = learn_all(&groups, &on_cfg);
    let off = learn_all(&groups, &off_cfg);
    assert!(!on.is_empty(), "sim training must learn something");
    assert_identical(&on, &off);
}

/// Aho–Corasick literal dispatch changes nothing either: `learn_all`
/// output on the fixed-seed synthetic Internet is identical with the
/// multi-matcher on (default) and off (PR 5's per-regex column build).
/// `scripts/tier1.sh` runs this test by name as the equivalence gate.
#[test]
fn learn_all_identical_with_multi_matcher_on_and_off() {
    let groups = sim_groups(42);
    assert!(!groups.is_empty(), "tiny sim must yield suffix groups");
    let mut on_cfg = LearnConfig { threads: 1, ..LearnConfig::default() };
    assert!(on_cfg.sets.multi_matcher, "literal dispatch is the default");
    // Pin the dispatch path: the sim's small suffixes sit below the
    // default `multi_matcher_min_cells`, which would silently route
    // both sides through the per-regex build and test nothing.
    on_cfg.sets.multi_matcher_min_cells = 0;
    let mut off_cfg = on_cfg;
    off_cfg.sets.multi_matcher = false;
    let on = learn_all(&groups, &on_cfg);
    let off = learn_all(&groups, &off_cfg);
    assert!(!on.is_empty(), "sim training must learn something");
    assert_identical(&on, &off);
}

/// Fixed seed, fixed config ⇒ byte-identical output run to run.
#[test]
fn learn_all_matrix_path_is_deterministic() {
    let groups = sim_groups(7);
    let cfg = LearnConfig::default();
    let a = learn_all(&groups, &cfg);
    let b = learn_all(&groups, &cfg);
    assert_identical(&a, &b);
}
