//! Apparent-ASN detection and the §3.1 congruence rules.
//!
//! A hostname contains an *apparent ASN* when some digit run in it is
//! congruent with the router's training ASN. Congruence is exact numeric
//! equality, or the paper's typo tolerance: a Damerau-Levenshtein distance
//! of one where both numbers are at least three digits long and agree on
//! their first and last characters — a rule tuned to accept genuine typos
//! (`as202073.swissix.ch` for AS205073) while rejecting numbers that are
//! one edit away by coincidence (`605` vs AS6057 fails the last-digit
//! test; see Figure 3a).

use crate::editdist::is_distance_one;
use crate::iputil::overlaps_any;

/// How an extracted number relates to the training ASN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Congruence {
    /// Numerically equal to the training ASN.
    Exact,
    /// Accepted as a single-character typo of the training ASN.
    Typo,
    /// Not congruent.
    No,
}

impl Congruence {
    /// True for `Exact` or `Typo`.
    pub fn is_congruent(self) -> bool {
        !matches!(self, Congruence::No)
    }
}

/// Classifies an extracted digit string against the training ASN.
pub fn congruence(extracted: &str, training: u32) -> Congruence {
    if extracted.is_empty() || extracted.len() > 10 || !extracted.bytes().all(|b| b.is_ascii_digit())
    {
        return Congruence::No;
    }
    if let Ok(v) = extracted.parse::<u64>() {
        if v == u64::from(training) {
            return Congruence::Exact;
        }
    }
    let t = training.to_string();
    let e = extracted;
    if e.len() >= 3
        && t.len() >= 3
        && e.as_bytes()[0] == t.as_bytes()[0]
        && e.as_bytes()[e.len() - 1] == t.as_bytes()[t.len() - 1]
        && is_distance_one(e, &t)
    {
        return Congruence::Typo;
    }
    Congruence::No
}

/// Maximal digit runs in `hostname`, as byte spans.
pub fn digit_runs(hostname: &str) -> Vec<(usize, usize)> {
    let h = hostname.as_bytes();
    let mut runs = Vec::new();
    let mut i = 0;
    while i < h.len() {
        if h[i].is_ascii_digit() {
            let start = i;
            while i < h.len() && h[i].is_ascii_digit() {
                i += 1;
            }
            runs.push((start, i));
        } else {
            i += 1;
        }
    }
    runs
}

/// Finds an apparent ASN: a maximal digit run congruent with `training`
/// that is not part of an embedded IP address (`ip_spans` from
/// [`crate::iputil::embedded_ip_spans`]). Returns the first such span.
///
/// Digit runs inside an embedded IP are excluded here because they are
/// not ASN annotations — a regex that fails to match them is not missing
/// anything (no false negative), while a regex that extracts them is
/// flagged as a false positive by [`crate::eval`].
pub fn apparent_asn(
    hostname: &str,
    training: u32,
    ip_spans: &[(usize, usize)],
) -> Option<(usize, usize)> {
    for (s, e) in digit_runs(hostname) {
        if overlaps_any(ip_spans, s, e) {
            continue;
        }
        if congruence(&hostname[s..e], training).is_congruent() {
            return Some((s, e));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iputil::embedded_ip_spans;

    #[test]
    fn exact_congruence() {
        assert_eq!(congruence("15576", 15576), Congruence::Exact);
        assert_eq!(congruence("015576", 15576), Congruence::Exact);
        assert_eq!(congruence("701", 701), Congruence::Exact);
        assert_eq!(congruence("1", 1), Congruence::Exact);
    }

    #[test]
    fn typo_rule_accepts_paper_examples() {
        // Figure 3a rows that the paper counts as TPs under the rule.
        assert_eq!(congruence("24940", 20940), Congruence::Typo);
        assert_eq!(congruence("202073", 205073), Congruence::Typo);
        assert_eq!(congruence("20732", 207032), Congruence::Typo);
        // Figure 4 hostname h: transposition 22822 vs 22282.
        assert_eq!(congruence("22822", 22282), Congruence::Typo);
    }

    #[test]
    fn typo_rule_rejects_coincidences() {
        // 605 vs 6057: distance one, but last digits differ.
        assert_eq!(congruence("605", 6057), Congruence::No);
        // Short numbers (< 3 digits) never get typo tolerance.
        assert_eq!(congruence("12", 13), Congruence::No);
        assert_eq!(congruence("21", 12), Congruence::No);
        // First digit differs.
        assert_eq!(congruence("34940", 20940), Congruence::No);
        // Distance two.
        assert_eq!(congruence("24945", 20940), Congruence::No);
    }

    #[test]
    fn non_numeric_and_oversized_rejected() {
        assert_eq!(congruence("", 100), Congruence::No);
        assert_eq!(congruence("12a4", 124), Congruence::No);
        assert_eq!(congruence("12345678901", 123), Congruence::No);
    }

    #[test]
    fn digit_runs_found() {
        assert_eq!(
            digit_runs("te0-0-24.01.p.bre.ch.as15576.nts.ch"),
            vec![(2, 3), (4, 5), (6, 8), (9, 11), (23, 28)]
        );
        assert_eq!(digit_runs("no-digits.example.com"), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn apparent_asn_simple() {
        let h = "as24940.akl-ix.nz";
        assert_eq!(apparent_asn(h, 24940, &[]), Some((2, 7)));
        // Typo congruence also counts as apparent.
        assert_eq!(apparent_asn(h, 20940, &[]), Some((2, 7)));
        assert_eq!(apparent_asn(h, 3356, &[]), None);
    }

    #[test]
    fn apparent_asn_skips_embedded_ip() {
        let h = "209-201-58-109.dia.stat.centurylink.net";
        let spans = embedded_ip_spans(h, [209, 201, 58, 109]);
        // Without IP knowledge the leading 209 looks like AS209...
        assert_eq!(apparent_asn(h, 209, &[]), Some((0, 3)));
        // ...but the IP spans exclude it.
        assert_eq!(apparent_asn(h, 209, &spans), None);
    }

    #[test]
    fn apparent_asn_prefers_first_span() {
        let h = "100.100.example.com";
        assert_eq!(apparent_asn(h, 100, &[]), Some((0, 3)));
    }
}
