//! Phase 2 (§3.3): merge regexes that differ by a single simple string.
//!
//! Regexes `^p(\d+)…`, `^s(\d+)…` and `^(\d+)…` share everything but one
//! literal; merging produces `^(?:p|s)?(\d+)…` — the `?` because one
//! variant lacks the string entirely. The implementation abstracts each
//! regex into *keys*: for every literal element, the element list with
//! that literal replaced by a hole; and for every inter-element gap, the
//! list with a hole inserted (representing the empty variant). Regexes
//! sharing a key merge their hole-fillers into one alternation.
//!
//! When every filler shares a common prefix or suffix, the common part is
//! factored back into a literal so `(?:as|gw-as)` becomes `(?:gw-)?as` —
//! the paper's preference for regexes "a human might have built".

use crate::regex::{render_elems, AltGroup, Elem, Regex};
use std::collections::BTreeMap;

/// Merges near-identical regexes; returns only the newly created merged
/// regexes (callers keep the originals in the pool).
pub fn merge(pool: &[Regex]) -> Vec<Regex> {
    // Key: rendered skeleton with a hole marker. Value: set of fillers.
    let mut groups: BTreeMap<String, Vec<String>> = BTreeMap::new();

    for r in pool {
        let elems = r.elems();
        for (i, e) in elems.iter().enumerate() {
            if let Elem::Lit(l) = e {
                let key = skeleton_key(elems, i);
                groups.entry(key).or_default().push(l.clone());
            }
        }
        // Gap keys: the regex as the "empty string" variant at gap g.
        // Only gaps adjacent to a literal in some other regex can merge;
        // emitting all gaps is cheap and the dedup below drops dead keys.
        for g in 0..=elems.len() {
            // Skip gaps that would place the hole before `^` or after `$`.
            if g == 0 && matches!(elems.first(), Some(Elem::StartAnchor)) {
                continue;
            }
            if g == elems.len() && matches!(elems.last(), Some(Elem::EndAnchor)) {
                continue;
            }
            let key = skeleton_key_gap(elems, g);
            groups.entry(key).or_default().push(String::new());
        }
    }

    /// Over-merging guard: alternations beyond this many options are
    /// memorised training text, not a convention.
    const MAX_OPTIONS: usize = 8;

    let mut out = Vec::new();
    for (key, mut fillers) in groups {
        fillers.sort();
        fillers.dedup();
        // A merge needs at least two distinct non-empty-or-not variants,
        // including at least one non-empty literal.
        if fillers.len() < 2
            || fillers.len() > MAX_OPTIONS
            || fillers.iter().all(|f| f.is_empty())
        {
            continue;
        }
        if let Some(r) = build_merged(&key, &fillers) {
            out.push(r);
        }
    }
    out.sort_by_cached_key(|r| r.to_string());
    out.dedup();
    out
}

/// Marker that cannot appear in a rendered regex (uppercase is never
/// emitted by the dialect).
const HOLE: &str = "\u{1}HOLE\u{1}";

/// Renders `elems` with element `i` replaced by the hole. Rendering the
/// halves directly (no clone into a temporary `Regex`) is byte-identical
/// to the rendered `Regex`: literal coalescing never changes the
/// rendered form, and the hole bytes pass `escape_lit` untouched.
fn skeleton_key(elems: &[Elem], i: usize) -> String {
    let mut key = String::new();
    render_elems(&elems[..i], &mut key);
    key.push_str(HOLE);
    render_elems(&elems[i + 1..], &mut key);
    key
}

/// Renders `elems` with the hole inserted at gap `g`.
fn skeleton_key_gap(elems: &[Elem], g: usize) -> String {
    let mut key = String::new();
    render_elems(&elems[..g], &mut key);
    key.push_str(HOLE);
    render_elems(&elems[g..], &mut key);
    key
}

/// Rebuilds a merged regex from a skeleton key and its fillers.
fn build_merged(key: &str, fillers: &[String]) -> Option<Regex> {
    // Factor common prefix/suffix out of the non-empty fillers so the
    // alternation stays minimal.
    let nonempty: Vec<&str> = fillers.iter().filter(|f| !f.is_empty()).map(|s| s.as_str()).collect();
    let has_empty = fillers.iter().any(|f| f.is_empty());
    let prefix = common_prefix(&nonempty);
    let suffix = common_suffix(&nonempty, prefix.len());
    let variants: Vec<String> = fillers
        .iter()
        .map(|f| {
            if f.is_empty() {
                String::new()
            } else {
                f[prefix.len()..f.len() - suffix.len()].to_string()
            }
        })
        .collect();

    // "Simple strings" (§3.3) never span a label boundary: if what is
    // left after factoring the common affixes still contains a dot, the
    // regexes differ in structure, not in one string — do not merge.
    // (With an empty variant no affixes can be factored, so the raw
    // fillers must be dot-free.)
    let structural = if has_empty {
        fillers.iter().any(|f| f.contains('.'))
    } else {
        variants.iter().any(|v| v.contains('.'))
    };
    if structural {
        return None;
    }

    // If factoring collapses everything into the affixes (e.g. fillers
    // {"as"} plus empty), variants are {"", "as"}…; AltGroup handles it.
    let alt = AltGroup::from_variants(variants)?;
    let hole_replacement: Vec<Elem> = {
        let mut v = Vec::new();
        if !prefix.is_empty() && !has_empty {
            v.push(Elem::Lit(prefix.clone()));
        }
        if has_empty && !prefix.is_empty() {
            // Cannot factor affixes when an empty variant exists — the
            // empty variant must skip the affixes too. Re-expand.
            let alt = AltGroup::from_variants(
                fillers.to_vec(),
            )?;
            let mut w = vec![Elem::Alt(alt)];
            return splice(key, &mut w);
        }
        v.push(Elem::Alt(alt));
        if !suffix.is_empty() && !has_empty {
            v.push(Elem::Lit(suffix.clone()));
        }
        v
    };
    let mut repl = hole_replacement;
    splice(key, &mut repl)
}

/// Parses the skeleton key back and replaces the hole literal with
/// `replacement`.
fn splice(key: &str, replacement: &mut Vec<Elem>) -> Option<Regex> {
    // The key is a rendered regex whose hole lives inside a literal.
    // Rather than re-parse (the hole bytes are not in the dialect), split
    // the key string on the hole and parse the two halves.
    let pos = key.find(HOLE)?;
    let (left, right) = (&key[..pos], &key[pos + HOLE.len()..]);
    let mut elems: Vec<Elem> = Vec::new();
    if !left.is_empty() {
        elems.extend(Regex::parse(left).ok()?.elems().iter().cloned());
    }
    elems.append(replacement);
    if !right.is_empty() {
        // The right half may start mid-pattern with `$`/literals; the
        // parser accepts `$` only at the end, which holds here because the
        // hole never splits an element.
        elems.extend(Regex::parse(right).ok()?.elems().iter().cloned());
    }
    Some(Regex::new(elems))
}

fn common_prefix(strings: &[&str]) -> String {
    let Some(first) = strings.first() else { return String::new() };
    let mut len = first.len();
    for s in &strings[1..] {
        len = len.min(s.len());
        while len > 0 && s.as_bytes()[..len] != first.as_bytes()[..len] {
            len -= 1;
        }
    }
    first[..len].to_string()
}

fn common_suffix(strings: &[&str], reserved_prefix: usize) -> String {
    let Some(first) = strings.first() else { return String::new() };
    let mut len = first.len() - reserved_prefix;
    for s in &strings[1..] {
        let avail = s.len() - reserved_prefix;
        len = len.min(avail);
        while len > 0 && s.as_bytes()[s.len() - len..] != first.as_bytes()[first.len() - len..] {
            len -= 1;
        }
    }
    first[first.len() - len..].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    #[test]
    fn figure4_merge_p_s_and_bare() {
        // Regexes #1, #2, #3 merge into #5.
        let pool = vec![
            rx(r"^(\d+)\.[^\.]+\.equinix\.com$"),
            rx(r"^p(\d+)\.[^\.]+\.equinix\.com$"),
            rx(r"^s(\d+)\.[^\.]+\.equinix\.com$"),
        ];
        let merged = merge(&pool);
        let strings: Vec<String> = merged.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn two_mandatory_variants() {
        let pool = vec![rx(r"^p(\d+)\.x\.com$"), rx(r"^s(\d+)\.x\.com$")];
        let merged = merge(&pool);
        let strings: Vec<String> = merged.iter().map(|r| r.to_string()).collect();
        assert!(strings.iter().any(|s| s == r"^(?:p|s)(\d+)\.x\.com$"), "{strings:?}");
        // And the merged regex matches both shapes but not bare digits.
        let m = merged
            .iter()
            .find(|r| r.to_string() == r"^(?:p|s)(\d+)\.x\.com$")
            .unwrap();
        assert!(m.is_match("p1.x.com") && m.is_match("s2.x.com"));
        assert!(!m.is_match("1.x.com"));
    }

    #[test]
    fn common_affix_factored() {
        let pool = vec![rx(r"^as(\d+)\.x\.com$"), rx(r"^gw-as(\d+)\.x\.com$")];
        let merged = merge(&pool);
        let strings: Vec<String> = merged.iter().map(|r| r.to_string()).collect();
        assert!(strings.iter().any(|s| s == r"^(?:gw-)?as(\d+)\.x\.com$"), "{strings:?}");
    }

    #[test]
    fn unrelated_regexes_do_not_merge() {
        let pool = vec![rx(r"^as(\d+)\.x\.com$"), rx(r"^(\d+)-[^-]+\.y\.com$")];
        assert!(merge(&pool).is_empty());
    }

    #[test]
    fn differing_in_two_places_do_not_merge() {
        let pool = vec![rx(r"^a(\d+)\.x\.com$"), rx(r"^b(\d+)\.y\.com$")];
        assert!(merge(&pool).is_empty());
    }

    #[test]
    fn suffix_literal_difference_merges_too() {
        // Differences in a trailing literal are still single-string diffs.
        let pool = vec![rx(r"^as(\d+)\.cust\.x\.com$"), rx(r"^as(\d+)\.peer\.x\.com$")];
        let merged = merge(&pool);
        let strings: Vec<String> = merged.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^as(\d+)\.(?:cust|peer)\.x\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn three_way_merge_with_empty() {
        let pool = vec![
            rx(r"^(\d+)\.x\.com$"),
            rx(r"^p(\d+)\.x\.com$"),
            rx(r"^ps(\d+)\.x\.com$"),
        ];
        let merged = merge(&pool);
        let strings: Vec<String> = merged.iter().map(|r| r.to_string()).collect();
        // No affix factoring because of the empty variant.
        assert!(strings.iter().any(|s| s == r"^(?:p|ps)?(\d+)\.x\.com$"), "{strings:?}");
    }

    #[test]
    fn idempotent_on_merged_output() {
        let pool = vec![rx(r"^(?:p|s)?(\d+)\.x\.com$")];
        assert!(merge(&pool).is_empty());
    }

    #[test]
    fn common_prefix_and_suffix_helpers() {
        assert_eq!(common_prefix(&["abc", "abd"]), "ab");
        assert_eq!(common_prefix(&["abc"]), "abc");
        assert_eq!(common_prefix(&[]), "");
        assert_eq!(common_suffix(&["xas", "yas"], 0), "as");
        assert_eq!(common_suffix(&["as", "as"], 2), "");
    }
}
