//! Phase 4 (§3.5): build regex sets.
//!
//! Operators often use several hostname formats at once (Figure 4's
//! Equinix data mixes `p714.sgw…` with `24482-fr5-ix…`). A single regex
//! cannot cover both, so Hoiho combines regexes into a *set* forming one
//! naming convention: regexes are ranked by ATP and greedily extended
//! with lower-ranked regexes whenever the combination's ATP strictly
//! improves. Unlike the 2019 router-name work, a combination is kept even
//! if it lowers PPV — discrepancies between training and embedded ASNs
//! are the signal §5 consumes, so coverage wins (§3.5).

use crate::eval::{evaluate, evaluate_one, Counts};
use crate::regex::Regex;
use crate::training::HostObs;

/// A candidate naming convention: an ordered regex list with its
/// evaluation over the suffix's hostnames.
#[derive(Debug, Clone)]
pub struct CandidateNc {
    /// Regexes in rank order (first match wins).
    pub regexes: Vec<Regex>,
    /// Evaluation of the ordered set over the training hostnames.
    pub counts: Counts,
}

/// Tunables for set construction.
#[derive(Debug, Clone, Copy)]
pub struct SetsConfig {
    /// How many top-ranked regexes seed greedy set construction.
    pub max_starts: usize,
    /// Maximum number of regexes in one convention.
    pub max_set_size: usize,
    /// Cap on ranked regexes considered for extension.
    pub max_pool: usize,
}

impl Default for SetsConfig {
    fn default() -> Self {
        SetsConfig { max_starts: 12, max_set_size: 6, max_pool: 200 }
    }
}

/// Ranks `pool` by ATP and returns candidate conventions: every ranked
/// single regex plus the greedy combinations seeded from the top ranks.
///
/// Regexes that never achieve a true positive are dropped before
/// ranking — they cannot contribute to any convention.
pub fn build_sets(pool: &[Regex], hosts: &[HostObs], cfg: &SetsConfig) -> Vec<CandidateNc> {
    // Evaluate and rank individual regexes.
    let mut ranked: Vec<(Regex, Counts)> = pool
        .iter()
        .map(|r| (r.clone(), evaluate_one(r, hosts)))
        .filter(|(_, c)| c.tp > 0)
        .collect();
    ranked.sort_by(|a, b| {
        rank_order(&a.1, &b.1)
            // Anti-over-fitting tie-breaks: less memorised text, then
            // stronger components, then the textual form.
            .then_with(|| a.0.memorised_chars().cmp(&b.0.memorised_chars()))
            .then_with(|| b.0.component_strength().cmp(&a.0.component_strength()))
            .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
    });
    ranked.truncate(cfg.max_pool);
    ranked.dedup_by(|a, b| a.0 == b.0);

    let mut out: Vec<CandidateNc> = ranked
        .iter()
        .map(|(r, c)| CandidateNc { regexes: vec![r.clone()], counts: c.clone() })
        .collect();

    // Greedy combination from each of the top `max_starts` seeds.
    for i in 0..ranked.len().min(cfg.max_starts) {
        let mut cur: Vec<Regex> = vec![ranked[i].0.clone()];
        let mut cur_counts = ranked[i].1.clone();
        for (r, _) in ranked.iter().skip(i + 1) {
            if cur.len() >= cfg.max_set_size {
                break;
            }
            let mut trial = cur.clone();
            trial.push(r.clone());
            let c = evaluate(&trial, hosts);
            if c.atp() > cur_counts.atp() {
                cur = trial;
                cur_counts = c;
            }
        }
        if cur.len() > 1 {
            out.push(CandidateNc { regexes: cur, counts: cur_counts });
        }
    }

    // Dedup identical conventions (two seeds can converge).
    out.sort_by(|a, b| {
        rank_order(&a.counts, &b.counts)
            .then_with(|| a.regexes.len().cmp(&b.regexes.len()))
            .then_with(|| memorised(&a.regexes).cmp(&memorised(&b.regexes)))
            .then_with(|| strength(&b.regexes).cmp(&strength(&a.regexes)))
            .then_with(|| key(&a.regexes).cmp(&key(&b.regexes)))
    });
    out.dedup_by(|a, b| a.regexes == b.regexes);
    out
}

fn memorised(regexes: &[Regex]) -> usize {
    regexes.iter().map(|r| r.memorised_chars()).sum()
}

fn strength(regexes: &[Regex]) -> usize {
    regexes.iter().map(|r| r.component_strength()).sum()
}

/// Rank comparator: ATP descending, then TPs descending, then FPs
/// ascending.
fn rank_order(a: &Counts, b: &Counts) -> std::cmp::Ordering {
    b.atp()
        .cmp(&a.atp())
        .then_with(|| b.tp.cmp(&a.tp))
        .then_with(|| a.fp.cmp(&b.fp))
}

fn key(regexes: &[Regex]) -> String {
    let mut s = String::new();
    for r in regexes {
        s.push_str(&r.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Observation;

    fn hosts(rows: &[(&str, u32)], suffix: &str) -> Vec<HostObs> {
        rows.iter()
            .map(|&(h, a)| HostObs::build(&Observation::new(h, [192, 0, 2, 7], a), suffix))
            .collect()
    }

    fn rx(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    /// The Figure 4 training data (hostnames a–p with their ASNs).
    fn figure4_hosts() -> Vec<HostObs> {
        hosts(
            &[
                ("109.sgw.equinix.com", 109),
                ("714.os.equinix.com", 714),
                ("714.me1.equinix.com", 714),
                ("p714.sgw.equinix.com", 714),
                ("s714.sgw.equinix.com", 714),
                ("p24115.mel.equinix.com", 24115),
                ("s24115.tyo.equinix.com", 24115),
                ("22822-2.tyo.equinix.com", 22282),
                ("24482-fr5-ix.equinix.com", 24482),
                ("54827-dc5-ix2.equinix.com", 54827),
                ("55247-ch3-ix.equinix.com", 55247),
                ("netflix.zh2.corp.eu.equinix.com", 2906),
                ("ipv4.dosarrest.eqix.equinix.com", 19324),
                ("8069.tyo.equinix.com", 8075),
                ("8074.hkg.equinix.com", 8075),
                ("45437-sy1-ix.equinix.com", 55923),
            ],
            "equinix.com",
        )
    }

    #[test]
    fn figure4_combination_reaches_atp_8() {
        let pool = vec![
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"), // #6, ATP 1
            rx(r"^(\d+)-.+\.equinix\.com$"),                // #4, ATP -4
        ];
        let hs = figure4_hosts();
        let cands = build_sets(&pool, &hs, &SetsConfig::default());
        let best = &cands[0];
        assert_eq!(best.regexes.len(), 2, "expected the combined set first");
        assert_eq!(best.counts.atp(), 8);
        assert_eq!(best.counts.tp, 11);
        assert_eq!(best.counts.fp, 3);
        assert_eq!(best.counts.fnn, 0);
    }

    #[test]
    fn single_regexes_also_candidates() {
        let pool = vec![rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$")];
        let hs = figure4_hosts();
        let cands = build_sets(&pool, &hs, &SetsConfig::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].counts.atp(), 1);
        assert_eq!((cands[0].counts.tp, cands[0].counts.fp, cands[0].counts.fnn), (7, 2, 4));
    }

    #[test]
    fn zero_tp_regexes_dropped() {
        let pool = vec![rx(r"^zz(\d+)\.equinix\.com$")];
        let hs = figure4_hosts();
        assert!(build_sets(&pool, &hs, &SetsConfig::default()).is_empty());
    }

    #[test]
    fn combination_requires_strict_improvement() {
        // A redundant regex (subset of the first) must not be added.
        let pool = vec![
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            rx(r"^p(\d+)\.[a-z\d]+\.equinix\.com$"),
        ];
        let hs = figure4_hosts();
        let cands = build_sets(&pool, &hs, &SetsConfig::default());
        assert!(cands.iter().all(|c| c.regexes.len() == 1));
    }

    #[test]
    fn set_size_capped() {
        let pool = vec![
            rx(r"^(\d+)\.sgw\.equinix\.com$"),
            rx(r"^(\d+)\.os\.equinix\.com$"),
            rx(r"^(\d+)\.me1\.equinix\.com$"),
            rx(r"^p(\d+)\.sgw\.equinix\.com$"),
            rx(r"^s(\d+)\.sgw\.equinix\.com$"),
            rx(r"^p(\d+)\.mel\.equinix\.com$"),
            rx(r"^s(\d+)\.tyo\.equinix\.com$"),
        ];
        let hs = figure4_hosts();
        let cfg = SetsConfig { max_set_size: 3, ..SetsConfig::default() };
        let cands = build_sets(&pool, &hs, &cfg);
        assert!(cands.iter().all(|c| c.regexes.len() <= 3));
        assert!(cands.iter().any(|c| c.regexes.len() == 3));
    }
}
