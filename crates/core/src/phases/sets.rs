//! Phase 4 (§3.5): build regex sets.
//!
//! Operators often use several hostname formats at once (Figure 4's
//! Equinix data mixes `p714.sgw…` with `24482-fr5-ix…`). A single regex
//! cannot cover both, so Hoiho combines regexes into a *set* forming one
//! naming convention: regexes are ranked by ATP and greedily extended
//! with lower-ranked regexes whenever the combination's ATP strictly
//! improves. Unlike the 2019 router-name work, a combination is kept even
//! if it lowers PPV — discrepancies between training and embedded ASNs
//! are the signal §5 consumes, so coverage wins (§3.5).
//!
//! ## The outcome matrix
//!
//! Set semantics are first-match-wins per hostname, so a trial set's
//! `Counts` is fully determined by each member regex's *individual*
//! per-host outcome. The default fast path therefore evaluates every
//! pooled regex exactly once per host — through its compiled program
//! ([`crate::regex::CompiledRegex`]) — into a column of
//! `Option<Outcome>` cells (`Some` iff the regex matched with a
//! capture, which is when it would claim the host in a set). Ranking
//! folds each column into `Counts`, and greedy extension becomes an
//! incremental merge: only hosts the current set leaves unresolved are
//! consulted when scoring a trial, and the trial's ATP is the current
//! set's resolved tally plus the candidate column's contribution on
//! those hosts. No matcher runs during greedy extension at all.
//!
//! The default column build goes one step further (`multi_matcher:
//! true`): a pool-wide [`MultiMatcher`] — an Aho–Corasick automaton
//! over every program's required literals — scans each host **once**
//! and dispatches only the regexes whose literals all occurred (plus
//! the literal-free fallback bucket). Skipped cells are provably `None`
//! (a missing required literal rules the match out), so the matrix is
//! bit-identical to evaluating everything; the skip volume is exported
//! as `hoiho_learn_prefilter_skips_total`.
//!
//! The direct path (`outcome_matrix: false`) re-evaluates every trial
//! set with the interpreter, exactly as before; the equivalence tests
//! in `tests/compiled_equiv.rs` pin all paths to identical output.

use crate::eval::{
    evaluate, evaluate_one, negative_outcome, regex_hit, regex_hit_cached, Counts, Outcome,
};
use crate::regex::{CompiledRegex, MultiMatcher, Regex};
use crate::training::HostObs;
use hoiho_obs::Counter;
use std::sync::OnceLock;

/// A candidate naming convention: an ordered regex list with its
/// evaluation over the suffix's hostnames.
#[derive(Debug, Clone)]
pub struct CandidateNc {
    /// Regexes in rank order (first match wins).
    pub regexes: Vec<Regex>,
    /// Evaluation of the ordered set over the training hostnames.
    pub counts: Counts,
}

/// Tunables for set construction.
#[derive(Debug, Clone, Copy)]
pub struct SetsConfig {
    /// How many top-ranked regexes seed greedy set construction.
    pub max_starts: usize,
    /// Maximum number of regexes in one convention.
    pub max_set_size: usize,
    /// Cap on ranked regexes considered for extension.
    pub max_pool: usize,
    /// Use the memoized outcome-matrix fast path (default). The slow
    /// direct path re-evaluates every greedy trial with the
    /// interpreter; both produce identical output.
    pub outcome_matrix: bool,
    /// On the matrix path, build columns through one Aho–Corasick scan
    /// per host ([`MultiMatcher`] literal dispatch) instead of one full
    /// scan per (regex, host). Off falls back to the per-regex column
    /// build (the PR 5 path), kept as the equivalence oracle; both
    /// produce identical output.
    pub multi_matcher: bool,
    /// Smallest matrix (`pool × hosts` cells) worth an automaton: below
    /// this the [`MultiMatcher`] build costs more than the evaluations
    /// it skips, so the per-regex column build runs even with
    /// `multi_matcher` on. Tests force `0` to pin the dispatch path.
    pub multi_matcher_min_cells: usize,
}

impl Default for SetsConfig {
    fn default() -> Self {
        SetsConfig {
            max_starts: 12,
            max_set_size: 6,
            max_pool: 200,
            outcome_matrix: true,
            multi_matcher: true,
            multi_matcher_min_cells: 4096,
        }
    }
}

/// What one [`build_sets`] call actually evaluated: the observability
/// payload for the learner's `sets` trace span.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetsStats {
    /// (regex, host) evaluations that ran.
    pub dispatched: u64,
    /// Evaluations skipped by literal dispatch (a required literal was
    /// absent, so the cell is `None` without running the program).
    pub skipped: u64,
}

/// Process-global `hoiho_learn_evaluations_total{phase}` counters:
/// `rank` counts one evaluation per pooled regex (one column build on
/// the fast path), `greedy` one per trial-set scoring. Visible over the
/// serving `METRICS` verb and summarised by `hoiho learn --trace`.
fn eval_counters() -> &'static (Counter, Counter) {
    static COUNTERS: OnceLock<(Counter, Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = hoiho_obs::global().registry();
        (
            reg.counter("hoiho_learn_evaluations_total", &[("phase", "rank")]),
            reg.counter("hoiho_learn_evaluations_total", &[("phase", "greedy")]),
        )
    })
}

/// Process-global `hoiho_learn_prefilter_skips_total`: (regex, host)
/// evaluations the pool-wide literal dispatch proved unnecessary. Read
/// next to `hoiho_learn_evaluations_total{phase="rank"}` to see the
/// fraction of the matrix the automaton skipped.
fn prefilter_skips() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        hoiho_obs::global().registry().counter("hoiho_learn_prefilter_skips_total", &[])
    })
}

/// Ranks `pool` by ATP and returns candidate conventions: every ranked
/// single regex plus the greedy combinations seeded from the top ranks.
///
/// Regexes that never achieve a true positive are dropped before
/// ranking — they cannot contribute to any convention.
pub fn build_sets(pool: &[Regex], hosts: &[HostObs], cfg: &SetsConfig) -> Vec<CandidateNc> {
    build_sets_stats(pool, hosts, cfg).0
}

/// [`build_sets`] that also reports what the column build dispatched
/// and skipped — the learner attaches this to its `sets` trace span.
pub fn build_sets_stats(
    pool: &[Regex],
    hosts: &[HostObs],
    cfg: &SetsConfig,
) -> (Vec<CandidateNc>, SetsStats) {
    eval_counters().0.add(pool.len() as u64);
    let mut stats = SetsStats::default();
    let mut out = if cfg.outcome_matrix {
        build_sets_matrix(pool, hosts, cfg, &mut stats)
    } else {
        stats.dispatched = (pool.len() * hosts.len()) as u64;
        build_sets_direct(pool, hosts, cfg)
    };

    // Dedup identical conventions (two seeds can converge). The key is
    // computed once per candidate — the tie-breaks render the regexes
    // to text, far too expensive to re-run inside a comparator.
    out.sort_by_cached_key(|c| {
        (
            std::cmp::Reverse(c.counts.atp()),
            std::cmp::Reverse(c.counts.tp),
            c.counts.fp,
            c.regexes.len(),
            memorised(&c.regexes),
            std::cmp::Reverse(strength(&c.regexes)),
            key(&c.regexes),
        )
    });
    out.dedup_by(|a, b| a.regexes == b.regexes);
    (out, stats)
}

/// Rank-sorts evaluated candidates, in place, with the anti-over-fitting
/// tie-breaks, then applies the pool cap and drops duplicates.
fn rank_and_prune<T>(ranked: &mut Vec<(Regex, Counts, T)>, cfg: &SetsConfig) {
    // Mirrors `rank_order` plus the anti-over-fitting tie-breaks: less
    // memorised text, then stronger components, then the textual form.
    // One cached key per candidate — the textual tie-break formats the
    // regex, far too expensive to re-run inside a comparator.
    ranked.sort_by_cached_key(|(r, c, _)| {
        (
            std::cmp::Reverse(c.atp()),
            std::cmp::Reverse(c.tp),
            c.fp,
            r.memorised_chars(),
            std::cmp::Reverse(r.component_strength()),
            r.to_string(),
        )
    });
    ranked.truncate(cfg.max_pool);
    ranked.dedup_by(|a, b| a.0 == b.0);
}

/// Fast path: at most one compiled evaluation per (regex, host), then
/// pure column composition.
fn build_sets_matrix(
    pool: &[Regex],
    hosts: &[HostObs],
    cfg: &SetsConfig,
    stats: &mut SetsStats,
) -> Vec<CandidateNc> {
    let greedy_evals = &eval_counters().1;

    // Layer 1: each pooled regex compiles once into its on-`Regex` cache.
    // Layer 2: evaluate it at most once per host into its outcome column.
    // With `multi_matcher` on, "at most" does the heavy lifting: one
    // automaton scan per host dispatches only the regexes whose required
    // literals all occurred; a skipped cell is provably `None`, so the
    // columns are bit-identical to the evaluate-everything build below.
    let columns: Vec<Vec<Option<Outcome>>> = if cfg.multi_matcher
        && pool.len() * hosts.len() >= cfg.multi_matcher_min_cells
    {
        let programs: Vec<&CompiledRegex> = pool.iter().map(|r| r.program()).collect();
        let matcher = MultiMatcher::build(programs.iter().copied());
        let mut scratch = matcher.scratch();
        let mut columns: Vec<Vec<Option<Outcome>>> = vec![vec![None; hosts.len()]; pool.len()];
        for (hi, h) in hosts.iter().enumerate() {
            let dispatched = matcher.dispatch(h.hostname.as_bytes(), &mut scratch);
            stats.dispatched += dispatched.len() as u64;
            // Sibling regexes overwhelmingly extract the same span from
            // a host; the one-entry cache skips re-classifying it.
            let mut span_cache = None;
            for &ri in dispatched {
                columns[ri as usize][hi] = regex_hit_cached(programs[ri as usize], h, &mut span_cache);
            }
        }
        stats.skipped = (pool.len() * hosts.len()) as u64 - stats.dispatched;
        prefilter_skips().add(stats.skipped);
        columns
    } else {
        stats.dispatched = (pool.len() * hosts.len()) as u64;
        pool.iter()
            .map(|r| {
                let p = r.program();
                hosts.iter().map(|h| regex_hit(p, h)).collect()
            })
            .collect()
    };

    let mut ranked: Vec<(Regex, Counts, usize)> = pool
        .iter()
        .enumerate()
        .map(|(ci, r)| (r.clone(), column_counts(&columns[ci], hosts), ci))
        .filter(|(_, c, _)| c.tp > 0)
        .collect();
    rank_and_prune(&mut ranked, cfg);

    let mut out: Vec<CandidateNc> = ranked
        .iter()
        .map(|(r, c, _)| CandidateNc { regexes: vec![r.clone()], counts: c.clone() })
        .collect();

    // Greedy combination from each of the top `max_starts` seeds,
    // merging candidate columns over the still-unresolved hosts only.
    for i in 0..ranked.len().min(cfg.max_starts) {
        let mut cur: Vec<Regex> = vec![ranked[i].0.clone()];
        let mut cur_counts = ranked[i].1.clone();
        // First-match-wins state: resolved cells are the TP/FP hosts
        // some member already claims; everything else is still open.
        let mut resolved: Vec<Option<Outcome>> = columns[ranked[i].2].clone();
        let mut unresolved: Vec<usize> =
            (0..hosts.len()).filter(|&hi| resolved[hi].is_none()).collect();
        let mut res_tp = i64::from(cur_counts.tp);
        let mut res_fp = i64::from(cur_counts.fp);
        for (r, _, cj) in ranked.iter().skip(i + 1) {
            if cur.len() >= cfg.max_set_size {
                break;
            }
            greedy_evals.inc();
            let col = &columns[*cj];
            let (mut tp, mut fp, mut fnn) = (res_tp, res_fp, 0i64);
            for &hi in &unresolved {
                match col[hi] {
                    Some(Outcome::TruePositive(_)) => tp += 1,
                    Some(Outcome::FalsePositive(_)) => fp += 1,
                    _ => {
                        if hosts[hi].has_apparent() {
                            fnn += 1;
                        }
                    }
                }
            }
            if tp - (fp + fnn) > cur_counts.atp() {
                cur.push(r.clone());
                for &hi in &unresolved {
                    if col[hi].is_some() {
                        resolved[hi] = col[hi];
                    }
                }
                unresolved.retain(|&hi| resolved[hi].is_none());
                cur_counts = column_counts(&resolved, hosts);
                res_tp = i64::from(cur_counts.tp);
                res_fp = i64::from(cur_counts.fp);
            }
        }
        if cur.len() > 1 {
            out.push(CandidateNc { regexes: cur, counts: cur_counts });
        }
    }
    out
}

/// Direct path: the pre-matrix algorithm, re-evaluating each trial set
/// with the interpreter. Kept verbatim as the equivalence oracle.
fn build_sets_direct(pool: &[Regex], hosts: &[HostObs], cfg: &SetsConfig) -> Vec<CandidateNc> {
    let greedy_evals = &eval_counters().1;

    let mut ranked: Vec<(Regex, Counts, ())> = pool
        .iter()
        .map(|r| (r.clone(), evaluate_one(r, hosts), ()))
        .filter(|(_, c, _)| c.tp > 0)
        .collect();
    rank_and_prune(&mut ranked, cfg);

    let mut out: Vec<CandidateNc> = ranked
        .iter()
        .map(|(r, c, _)| CandidateNc { regexes: vec![r.clone()], counts: c.clone() })
        .collect();

    // Greedy combination from each of the top `max_starts` seeds.
    for i in 0..ranked.len().min(cfg.max_starts) {
        let mut cur: Vec<Regex> = vec![ranked[i].0.clone()];
        let mut cur_counts = ranked[i].1.clone();
        for (r, _, ()) in ranked.iter().skip(i + 1) {
            if cur.len() >= cfg.max_set_size {
                break;
            }
            greedy_evals.inc();
            let mut trial = cur.clone();
            trial.push(r.clone());
            let c = evaluate(&trial, hosts);
            if c.atp() > cur_counts.atp() {
                cur = trial;
                cur_counts = c;
            }
        }
        if cur.len() > 1 {
            out.push(CandidateNc { regexes: cur, counts: cur_counts });
        }
    }
    out
}

/// Folds a first-match-wins outcome column into `Counts`, filling
/// unresolved hosts with their negative outcome (FN/TN).
///
/// The unique-value sets are bulk-built (collect, sort, dedup) rather
/// than inserted per host: one column fold per pooled regex is the
/// inner loop of ranking, and per-record `BTreeSet` inserts dominated
/// it. Set contents are identical either way.
fn column_counts(col: &[Option<Outcome>], hosts: &[HostObs]) -> Counts {
    let mut c = Counts::default();
    let mut tp_asns: Vec<u32> = Vec::new();
    let mut extracted: Vec<u32> = Vec::new();
    for (hi, h) in hosts.iter().enumerate() {
        match col[hi].unwrap_or_else(|| negative_outcome(h)) {
            Outcome::TruePositive(v) => {
                c.tp += 1;
                tp_asns.push(h.training_asn);
                extracted.push(v);
            }
            Outcome::FalsePositive(v) => {
                c.fp += 1;
                extracted.push(v);
            }
            Outcome::FalseNegative => c.fnn += 1,
            Outcome::TrueNegative => c.tn += 1,
        }
    }
    tp_asns.sort_unstable();
    tp_asns.dedup();
    extracted.sort_unstable();
    extracted.dedup();
    c.unique_tp_asns = tp_asns;
    c.unique_extracted = extracted;
    c
}

fn memorised(regexes: &[Regex]) -> usize {
    regexes.iter().map(|r| r.memorised_chars()).sum()
}

fn strength(regexes: &[Regex]) -> usize {
    regexes.iter().map(|r| r.component_strength()).sum()
}

fn key(regexes: &[Regex]) -> String {
    let mut s = String::new();
    for r in regexes {
        s.push_str(&r.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Observation;

    fn hosts(rows: &[(&str, u32)], suffix: &str) -> Vec<HostObs> {
        rows.iter()
            .map(|&(h, a)| HostObs::build(&Observation::new(h, [192, 0, 2, 7], a), suffix))
            .collect()
    }

    fn rx(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    /// The Figure 4 training data (hostnames a–p with their ASNs).
    fn figure4_hosts() -> Vec<HostObs> {
        hosts(
            &[
                ("109.sgw.equinix.com", 109),
                ("714.os.equinix.com", 714),
                ("714.me1.equinix.com", 714),
                ("p714.sgw.equinix.com", 714),
                ("s714.sgw.equinix.com", 714),
                ("p24115.mel.equinix.com", 24115),
                ("s24115.tyo.equinix.com", 24115),
                ("22822-2.tyo.equinix.com", 22282),
                ("24482-fr5-ix.equinix.com", 24482),
                ("54827-dc5-ix2.equinix.com", 54827),
                ("55247-ch3-ix.equinix.com", 55247),
                ("netflix.zh2.corp.eu.equinix.com", 2906),
                ("ipv4.dosarrest.eqix.equinix.com", 19324),
                ("8069.tyo.equinix.com", 8075),
                ("8074.hkg.equinix.com", 8075),
                ("45437-sy1-ix.equinix.com", 55923),
            ],
            "equinix.com",
        )
    }

    #[test]
    fn figure4_combination_reaches_atp_8() {
        let pool = vec![
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"), // #6, ATP 1
            rx(r"^(\d+)-.+\.equinix\.com$"),                // #4, ATP -4
        ];
        let hs = figure4_hosts();
        let cands = build_sets(&pool, &hs, &SetsConfig::default());
        let best = &cands[0];
        assert_eq!(best.regexes.len(), 2, "expected the combined set first");
        assert_eq!(best.counts.atp(), 8);
        assert_eq!(best.counts.tp, 11);
        assert_eq!(best.counts.fp, 3);
        assert_eq!(best.counts.fnn, 0);
    }

    #[test]
    fn single_regexes_also_candidates() {
        let pool = vec![rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$")];
        let hs = figure4_hosts();
        let cands = build_sets(&pool, &hs, &SetsConfig::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].counts.atp(), 1);
        assert_eq!((cands[0].counts.tp, cands[0].counts.fp, cands[0].counts.fnn), (7, 2, 4));
    }

    #[test]
    fn zero_tp_regexes_dropped() {
        let pool = vec![rx(r"^zz(\d+)\.equinix\.com$")];
        let hs = figure4_hosts();
        assert!(build_sets(&pool, &hs, &SetsConfig::default()).is_empty());
    }

    #[test]
    fn combination_requires_strict_improvement() {
        // A redundant regex (subset of the first) must not be added.
        let pool = vec![
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            rx(r"^p(\d+)\.[a-z\d]+\.equinix\.com$"),
        ];
        let hs = figure4_hosts();
        let cands = build_sets(&pool, &hs, &SetsConfig::default());
        assert!(cands.iter().all(|c| c.regexes.len() == 1));
    }

    #[test]
    fn set_size_capped() {
        let pool = vec![
            rx(r"^(\d+)\.sgw\.equinix\.com$"),
            rx(r"^(\d+)\.os\.equinix\.com$"),
            rx(r"^(\d+)\.me1\.equinix\.com$"),
            rx(r"^p(\d+)\.sgw\.equinix\.com$"),
            rx(r"^s(\d+)\.sgw\.equinix\.com$"),
            rx(r"^p(\d+)\.mel\.equinix\.com$"),
            rx(r"^s(\d+)\.tyo\.equinix\.com$"),
        ];
        let hs = figure4_hosts();
        let cfg = SetsConfig { max_set_size: 3, ..SetsConfig::default() };
        let cands = build_sets(&pool, &hs, &cfg);
        assert!(cands.iter().all(|c| c.regexes.len() <= 3));
        assert!(cands.iter().any(|c| c.regexes.len() == 3));
    }

    /// The matrix and direct paths are interchangeable on Figure 4
    /// data: identical regex lists and identical full `Counts`.
    #[test]
    fn matrix_path_equals_direct_path() {
        let pool = vec![
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            rx(r"^(\d+)-.+\.equinix\.com$"),
            rx(r"^(\d+)\.sgw\.equinix\.com$"),
            rx(r"^p(\d+)\.[a-z\d]+\.equinix\.com$"),
            rx(r"(\d+)-[a-z\d]+-ix\.equinix\.com$"),
        ];
        let hs = figure4_hosts();
        let on = build_sets(&pool, &hs, &SetsConfig::default());
        let off =
            build_sets(&pool, &hs, &SetsConfig { outcome_matrix: false, ..SetsConfig::default() });
        assert_eq!(on.len(), off.len());
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.regexes, b.regexes);
            assert_eq!(a.counts, b.counts);
        }
    }

    /// Literal dispatch changes nothing: identical candidates and
    /// counts with the multi-matcher on (default) and off (the PR 5
    /// per-regex column build).
    #[test]
    fn multi_matcher_path_equals_per_regex_path() {
        let pool = vec![
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            rx(r"^(\d+)-.+\.equinix\.com$"),
            rx(r"^(\d+)\.sgw\.equinix\.com$"),
            rx(r"(\d+)-[a-z\d]+-ix\.equinix\.com$"),
            rx(r"(\d+)"), // literal-free: fallback bucket
        ];
        let hs = figure4_hosts();
        // min_cells 0 pins the dispatch path; the fixture is far below
        // the default threshold and would silently test nothing.
        let on = build_sets(
            &pool,
            &hs,
            &SetsConfig { multi_matcher_min_cells: 0, ..SetsConfig::default() },
        );
        let off =
            build_sets(&pool, &hs, &SetsConfig { multi_matcher: false, ..SetsConfig::default() });
        assert_eq!(on.len(), off.len());
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.regexes, b.regexes);
            assert_eq!(a.counts, b.counts);
        }
    }

    /// The dispatch stats account for the whole matrix, and the skip
    /// counter moves (>= because the registry is process-global).
    #[test]
    fn dispatch_stats_partition_the_matrix() {
        let pool = vec![
            rx(r"^(\d+)\.sgw\.equinix\.com$"),
            rx(r"^(\d+)-.+\.equinix\.com$"),
        ];
        let hs = figure4_hosts();
        let skips0 = prefilter_skips().get();
        let (_, stats) = build_sets_stats(
            &pool,
            &hs,
            &SetsConfig { multi_matcher_min_cells: 0, ..SetsConfig::default() },
        );
        assert_eq!(stats.dispatched + stats.skipped, (pool.len() * hs.len()) as u64);
        assert!(stats.skipped > 0, "`.sgw.` hosts are a minority: some cells must skip");
        assert!(prefilter_skips().get() >= skips0 + stats.skipped);
        // The oracle paths report a full matrix and no skips.
        let (_, direct) =
            build_sets_stats(&pool, &hs, &SetsConfig { multi_matcher: false, ..SetsConfig::default() });
        assert_eq!(direct.dispatched, (pool.len() * hs.len()) as u64);
        assert_eq!(direct.skipped, 0);
    }

    /// The `hoiho_learn_evaluations_total` counters move when sets are
    /// built (>= because other tests share the process-global registry).
    #[test]
    fn evaluation_counters_are_incremented() {
        let (rank, greedy) = eval_counters();
        let (rank0, greedy0) = (rank.get(), greedy.get());
        let pool = vec![
            rx(r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            rx(r"^(\d+)-.+\.equinix\.com$"),
        ];
        build_sets(&pool, &figure4_hosts(), &SetsConfig::default());
        assert!(rank.get() >= rank0 + 2, "rank evals should count each pooled regex");
        assert!(greedy.get() > greedy0, "greedy evals should count trial sets");
    }
}
