//! Phase 1 (§3.2): generate base regexes from hostname structure.
//!
//! For every hostname containing an apparent ASN, the generator locates
//! each congruent digit run within the punctuation structure of the local
//! part (see [`crate::label`]) and emits regexes combining:
//!
//! * literal context around the ASN within its punctuation-delimited
//!   subportion (`p714` → `p(\d+)`; `as24940` → `as(\d+)`);
//! * punctuation-exclusion components for the other portions — `[^\.]+`
//!   for a whole dot-delimited portion, or `[^-]+` per hyphen-delimited
//!   subportion with literal hyphens between;
//! * literal alternatives for subportions sharing the ASN's portion;
//! * at most one `.+`, standing for everything before or everything after
//!   the ASN;
//! * anchored and start-unanchored forms (conventions embedding the ASN
//!   at the end of a variable-prefix hostname, Figure 2, need the
//!   unanchored form).
//!
//! The suffix always stays a literal, and `$` is always present. The
//! cartesian expansion over per-portion choices is budget-capped for
//! hostnames with pathological punctuation structure.

use crate::apparent::{congruence, digit_runs};
use crate::iputil::overlaps_any;
use crate::label::{structure_of, Portion, SpanLocation, Structure};
use crate::regex::{Elem, Regex};
use crate::training::{HostObs, SuffixTraining};
use std::collections::BTreeSet;

/// Tunables for base generation; see [`crate::learner::LearnConfig`] for
/// the top-level knobs that feed these.
#[derive(Debug, Clone, Copy)]
pub struct BaseConfig {
    /// Hostnames (with apparent ASNs) sampled as structure donors.
    pub max_gen_hosts: usize,
    /// Cartesian budget per (hostname, candidate span, template).
    pub max_variants_per_candidate: usize,
    /// Hard cap on distinct base regexes per suffix.
    pub max_base_regexes: usize,
}

impl Default for BaseConfig {
    fn default() -> Self {
        BaseConfig { max_gen_hosts: 48, max_variants_per_candidate: 128, max_base_regexes: 4000 }
    }
}

/// One slot of a regex template: fixed elements or a choice among
/// alternative element runs.
enum Slot {
    Fixed(Vec<Elem>),
    Choice(Vec<Vec<Elem>>),
}

/// Generates the deduplicated base regexes for a suffix.
pub fn generate(st: &SuffixTraining, cfg: &BaseConfig) -> Vec<Regex> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut donors: BTreeSet<String> = BTreeSet::new();
    let mut out: Vec<Regex> = Vec::new();
    for host in sample_hosts(st, cfg.max_gen_hosts) {
        let local = host.local.as_str();
        if local.is_empty() {
            continue;
        }
        let structure = structure_of(local);
        if !structure.is_regular() {
            continue;
        }
        let spans = candidate_spans(host, local.len());
        if spans.is_empty() {
            continue;
        }
        // The candidate digits only ever enter a regex as the capture, so
        // hosts whose locals differ solely inside the candidate runs
        // donate an identical regex list; generating from one donor per
        // masked shape leaves the deduplicated output unchanged.
        if !donors.insert(donor_key(local, &spans)) {
            continue;
        }
        for r in host_regexes(local, &structure, &spans, &st.suffix, cfg) {
            if out.len() >= cfg.max_base_regexes {
                return out;
            }
            let key = r.to_string();
            if seen.insert(key) {
                out.push(r);
            }
        }
    }
    out
}

/// The local part with every candidate span masked to one `#` — a byte
/// that cannot appear in a hostname, so equal keys mean the locals are
/// identical outside the candidate digit runs.
fn donor_key(local: &str, spans: &[(usize, usize)]) -> String {
    let mut key = String::with_capacity(local.len());
    let mut pos = 0;
    for &(s, e) in spans {
        key.push_str(&local[pos..s]);
        key.push('#');
        pos = e;
    }
    key.push_str(&local[pos..]);
    key
}

/// Picks up to `max` hostnames with apparent ASNs, evenly spaced so the
/// sample sees format diversity across the (arbitrarily ordered) input.
fn sample_hosts(st: &SuffixTraining, max: usize) -> Vec<&HostObs> {
    let candidates: Vec<&HostObs> = st.hosts.iter().filter(|h| h.has_apparent()).collect();
    if candidates.len() <= max {
        return candidates;
    }
    let step = candidates.len() as f64 / max as f64;
    (0..max).map(|i| candidates[(i as f64 * step) as usize]).collect()
}

/// Generates base regexes for a single donor hostname's local part.
fn host_regexes(
    local: &str,
    structure: &Structure,
    spans: &[(usize, usize)],
    suffix: &str,
    cfg: &BaseConfig,
) -> Vec<Regex> {
    let mut out = Vec::new();
    for &(s, e) in spans {
        let Some(loc) = structure.locate(s, e) else { continue };
        let gen = CandidateGen { local, structure, suffix, span: (s, e), loc };
        gen.generate(cfg, &mut out);
    }
    out
}

/// Digit runs in the local part that are congruent with the training ASN
/// and outside any embedded IP span.
fn candidate_spans(host: &HostObs, local_len: usize) -> Vec<(usize, usize)> {
    digit_runs(&host.hostname)
        .into_iter()
        .filter(|&(_, e)| e <= local_len)
        .filter(|&(s, e)| !overlaps_any(&host.ip_spans, s, e))
        .filter(|&(s, e)| congruence(&host.hostname[s..e], host.training_asn).is_congruent())
        .collect()
}

/// Context for generating the variants of one candidate ASN span.
struct CandidateGen<'a> {
    local: &'a str,
    structure: &'a Structure,
    suffix: &'a str,
    span: (usize, usize),
    loc: SpanLocation,
}

impl CandidateGen<'_> {
    fn generate(&self, cfg: &BaseConfig, out: &mut Vec<Regex>) {
        let budget = cfg.max_variants_per_candidate;
        // Template A: fully anchored, all structure represented.
        expand(&self.template_anchored(), budget, out);
        // Template B: tail replaced by `.+`.
        if let Some(t) = self.template_tail_any() {
            expand(&t, budget, out);
        }
        // Template C: head replaced by `.+`.
        if let Some(t) = self.template_head_any() {
            expand(&t, budget, out);
        }
        // Template D: start-unanchored, beginning at the ASN subportion.
        if let Some(t) = self.template_unanchored() {
            expand(&t, budget, out);
        }
    }

    /// The portion holding the ASN.
    fn asn_portion(&self) -> &Portion {
        &self.structure.portions[self.loc.portion]
    }

    /// Literal context left of the digits within the ASN's subportion.
    fn left_lit(&self) -> &str {
        let (ss, _) = self.asn_portion().subs[self.loc.sub];
        &self.local[ss..self.span.0]
    }

    /// Literal context right of the digits within the ASN's subportion.
    fn right_lit(&self) -> &str {
        let (_, se) = self.asn_portion().subs[self.loc.sub];
        &self.local[self.span.1..se]
    }

    /// `Fixed` run for the capture and its in-subportion context.
    fn capture_slot(&self) -> Slot {
        let mut elems = Vec::new();
        if !self.left_lit().is_empty() {
            elems.push(Elem::Lit(self.left_lit().to_string()));
        }
        elems.push(Elem::CaptureDigits);
        if !self.right_lit().is_empty() {
            elems.push(Elem::Lit(self.right_lit().to_string()));
        }
        Slot::Fixed(elems)
    }

    /// The literal `\.suffix$` tail every regex carries.
    fn suffix_slot(&self) -> Slot {
        Slot::Fixed(vec![Elem::Lit(format!(".{}", self.suffix)), Elem::EndAnchor])
    }

    /// Choice slot for a run of subportions that share the ASN's portion,
    /// on one side of the capture. Options: every cartesian combination
    /// of literal-or-`[^-]+` per subportion joined with literal hyphens
    /// (capped), plus the whole run collapsed into one `[^\.]+` — the
    /// paper's `^(\d+)-[^\.]+\.equinix\.com$` shape, where `[^\.]+`
    /// spans `fr5-ix`. `leading` appends the hyphen joining the run to
    /// the capture; trailing runs prepend it.
    fn sibling_run_slot(&self, subs: &[(usize, usize)], leading: bool) -> Slot {
        const MAX_CARTESIAN: usize = 16;
        let mut opts: Vec<Vec<Elem>> = vec![Vec::new()];
        for (i, &(s, e)) in subs.iter().enumerate() {
            let text = self.local[s..e].to_string();
            let mut next: Vec<Vec<Elem>> = Vec::new();
            for base in &opts {
                for piece in [Elem::Lit(text.clone()), Elem::NotIn("-".to_string())] {
                    if next.len() >= MAX_CARTESIAN {
                        break;
                    }
                    let mut o = base.clone();
                    if i > 0 {
                        o.push(Elem::Lit("-".to_string()));
                    }
                    o.push(piece);
                    next.push(o);
                }
            }
            opts = next;
        }
        if subs.len() >= 2 {
            // Collapsed: one [^\.]+ spanning the hyphens of the run.
            opts.push(vec![Elem::NotIn(".".to_string())]);
        }
        for o in &mut opts {
            if leading {
                o.push(Elem::Lit("-".to_string()));
            } else {
                o.insert(0, Elem::Lit("-".to_string()));
            }
        }
        Slot::Choice(opts)
    }

    /// Choice slot for a whole non-ASN portion: `[^\.]+`, or (when the
    /// portion has hyphens) per-subportion `[^-]+` joined with literal
    /// hyphens.
    fn portion_slot(&self, p: &Portion) -> Slot {
        let mut opts = vec![vec![Elem::NotIn(".".to_string())]];
        if p.subs.len() >= 2 {
            let mut alt = Vec::new();
            for (i, _) in p.subs.iter().enumerate() {
                if i > 0 {
                    alt.push(Elem::Lit("-".to_string()));
                }
                alt.push(Elem::NotIn("-".to_string()));
            }
            opts.push(alt);
        }
        Slot::Choice(opts)
    }

    /// Slots for the ASN's own portion: sibling runs (choice) around the
    /// capture (fixed), hyphens literal.
    fn asn_portion_slots(&self, slots: &mut Vec<Slot>) {
        let p = self.asn_portion();
        if self.loc.sub > 0 {
            slots.push(self.sibling_run_slot(&p.subs[..self.loc.sub], true));
        }
        slots.push(self.capture_slot());
        if self.loc.sub + 1 < p.subs.len() {
            slots.push(self.sibling_run_slot(&p.subs[self.loc.sub + 1..], false));
        }
    }

    /// Template A: `^` + all portions + `\.suffix$`.
    fn template_anchored(&self) -> Vec<Slot> {
        let mut slots = vec![Slot::Fixed(vec![Elem::StartAnchor])];
        for (pi, p) in self.structure.portions.iter().enumerate() {
            if pi > 0 {
                slots.push(Slot::Fixed(vec![Elem::Lit(".".to_string())]));
            }
            if pi == self.loc.portion {
                self.asn_portion_slots(&mut slots);
            } else {
                slots.push(self.portion_slot(p));
            }
        }
        slots.push(self.suffix_slot());
        slots
    }

    /// Template B: everything after the ASN subportion becomes
    /// `<sep>.+`, e.g. `^(\d+)-.+\.equinix\.com$` (Figure 4 regex #4).
    /// `None` when nothing follows the ASN subportion.
    fn template_tail_any(&self) -> Option<Vec<Slot>> {
        let p = self.asn_portion();
        let more_subs = self.loc.sub + 1 < p.subs.len();
        let more_portions = self.loc.portion + 1 < self.structure.portions.len();
        if !more_subs && !more_portions {
            return None;
        }
        let sep = if more_subs { "-" } else { "." };
        let mut slots = vec![Slot::Fixed(vec![Elem::StartAnchor])];
        for pre in &self.structure.portions[..self.loc.portion] {
            slots.push(self.portion_slot(pre));
            slots.push(Slot::Fixed(vec![Elem::Lit(".".to_string())]));
        }
        // The ASN portion, truncated after the capture subportion.
        if self.loc.sub > 0 {
            slots.push(self.sibling_run_slot(&p.subs[..self.loc.sub], true));
        }
        slots.push(self.capture_slot());
        slots.push(Slot::Fixed(vec![Elem::Lit(sep.to_string()), Elem::Any]));
        slots.push(self.suffix_slot());
        Some(slots)
    }

    /// Template C: everything before the ASN subportion becomes `^.+<sep>`.
    /// `None` when the ASN subportion starts the hostname.
    fn template_head_any(&self) -> Option<Vec<Slot>> {
        if self.loc.portion == 0 && self.loc.sub == 0 {
            return None;
        }
        let sep = if self.loc.sub > 0 { "-" } else { "." };
        let mut slots = vec![Slot::Fixed(vec![
            Elem::StartAnchor,
            Elem::Any,
            Elem::Lit(sep.to_string()),
        ])];
        self.rest_from_capture(&mut slots);
        Some(slots)
    }

    /// Template D: start-unanchored — the regex begins at the ASN
    /// subportion's literal context (Figure 2's `as(\d+)\.nts\.ch$`).
    /// `None` when the ASN subportion starts the hostname (the anchored
    /// template already covers that shape).
    fn template_unanchored(&self) -> Option<Vec<Slot>> {
        if self.loc.portion == 0 && self.loc.sub == 0 {
            return None;
        }
        let mut slots = Vec::new();
        self.rest_from_capture(&mut slots);
        Some(slots)
    }

    /// Appends slots for the capture subportion through to `$`.
    fn rest_from_capture(&self, slots: &mut Vec<Slot>) {
        let p = self.asn_portion();
        slots.push(self.capture_slot());
        if self.loc.sub + 1 < p.subs.len() {
            slots.push(self.sibling_run_slot(&p.subs[self.loc.sub + 1..], false));
        }
        for p in &self.structure.portions[self.loc.portion + 1..] {
            slots.push(Slot::Fixed(vec![Elem::Lit(".".to_string())]));
            slots.push(self.portion_slot(p));
        }
        slots.push(self.suffix_slot());
    }
}

/// Expands a template's cartesian product of choices into regexes,
/// stopping at `budget` variants.
fn expand(slots: &[Slot], budget: usize, out: &mut Vec<Regex>) {
    let mut acc: Vec<Elem> = Vec::new();
    let mut produced = 0usize;
    expand_rec(slots, 0, &mut acc, budget, &mut produced, out);
}

fn expand_rec(
    slots: &[Slot],
    i: usize,
    acc: &mut Vec<Elem>,
    budget: usize,
    produced: &mut usize,
    out: &mut Vec<Regex>,
) {
    if *produced >= budget {
        return;
    }
    if i == slots.len() {
        out.push(Regex::new(acc.clone()));
        *produced += 1;
        return;
    }
    match &slots[i] {
        Slot::Fixed(elems) => {
            let mark = acc.len();
            acc.extend(elems.iter().cloned());
            expand_rec(slots, i + 1, acc, budget, produced, out);
            acc.truncate(mark);
        }
        Slot::Choice(opts) => {
            for opt in opts {
                let mark = acc.len();
                acc.extend(opt.iter().cloned());
                expand_rec(slots, i + 1, acc, budget, produced, out);
                acc.truncate(mark);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Observation;

    fn st(rows: &[(&str, u32)], suffix: &str) -> SuffixTraining {
        let obs: Vec<Observation> = rows
            .iter()
            .map(|&(h, a)| Observation::new(h, [192, 0, 2, 1], a))
            .collect();
        SuffixTraining::build(suffix, &obs)
    }

    fn strings(regexes: &[Regex]) -> Vec<String> {
        regexes.iter().map(|r| r.to_string()).collect()
    }

    #[test]
    fn figure4_hostname_i_shapes() {
        // Paper §3.2: for 24482-fr5-ix.equinix.com Hoiho builds
        // ^(\d+)-[^-]+-[^-]+\.equinix\.com$, ^(\d+)-[^\.]+\.equinix\.com$
        // and ^(\d+)-.+\.equinix\.com$ (among others).
        let st = st(&[("24482-fr5-ix.equinix.com", 24482)], "equinix.com");
        let got = strings(&generate(&st, &BaseConfig::default()));
        for want in [
            r"^(\d+)-[^-]+-[^-]+\.equinix\.com$",
            r"^(\d+)-[^\.]+\.equinix\.com$",
            r"^(\d+)-.+\.equinix\.com$",
        ] {
            assert!(got.iter().any(|g| g == want), "missing {want} in {got:?}");
        }
    }

    #[test]
    fn figure4_hostname_d_embeds_literal_context() {
        // p714.sgw.equinix.com must yield ^p(\d+)\.[^\.]+\.equinix\.com$.
        let st = st(&[("p714.sgw.equinix.com", 714)], "equinix.com");
        let got = strings(&generate(&st, &BaseConfig::default()));
        assert!(got.iter().any(|g| g == r"^p(\d+)\.[^\.]+\.equinix\.com$"), "{got:?}");
    }

    #[test]
    fn figure2_unanchored_form_generated() {
        let st = st(&[("ge0-2.01.p.ost.ch.as15576.nts.ch", 15576)], "nts.ch");
        let got = strings(&generate(&st, &BaseConfig::default()));
        assert!(got.iter().any(|g| g == r"as(\d+)\.nts\.ch$"), "{got:?}");
        // Head-any form too.
        assert!(got.iter().any(|g| g == r"^.+\.as(\d+)\.nts\.ch$"), "{got:?}");
    }

    #[test]
    fn sibling_subportions_offer_literal_and_generalised() {
        let st = st(&[("gw-as20732.init7.net", 20732)], "init7.net");
        let got = strings(&generate(&st, &BaseConfig::default()));
        assert!(got.iter().any(|g| g == r"^gw-as(\d+)\.init7\.net$"), "{got:?}");
        assert!(got.iter().any(|g| g == r"^[^-]+-as(\d+)\.init7\.net$"), "{got:?}");
        assert!(got.iter().any(|g| g == r"as(\d+)\.init7\.net$"), "{got:?}");
    }

    #[test]
    fn no_apparent_asn_no_regexes() {
        let st = st(&[("core1.example.com", 65000)], "example.com");
        assert!(generate(&st, &BaseConfig::default()).is_empty());
    }

    #[test]
    fn irregular_hostnames_skipped() {
        let st = st(&[("a--100.example.com", 100)], "example.com");
        assert!(generate(&st, &BaseConfig::default()).is_empty());
    }

    #[test]
    fn embedded_ip_not_a_candidate() {
        let obs = vec![Observation::new(
            "209-201-58-109.dia.stat.centurylink.net",
            [209, 201, 58, 109],
            209,
        )];
        let st = SuffixTraining::build("centurylink.net", &obs);
        assert!(generate(&st, &BaseConfig::default()).is_empty());
    }

    #[test]
    fn dedup_across_hostnames() {
        let st = st(
            &[("as100.x.example.com", 100), ("as200.x.example.com", 200)],
            "example.com",
        );
        let got = strings(&generate(&st, &BaseConfig::default()));
        let mut sorted = got.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(got.len(), sorted.len(), "duplicates in {got:?}");
        assert!(got.iter().any(|g| g == r"^as(\d+)\.[^\.]+\.example\.com$"));
    }

    #[test]
    fn budget_caps_output() {
        let st = st(
            &[("a-b-c-d-e.f-g-h.i-j-k.l-m.100.example.com", 100)],
            "example.com",
        );
        let cfg = BaseConfig { max_variants_per_candidate: 8, ..BaseConfig::default() };
        let got = generate(&st, &cfg);
        assert!(!got.is_empty());
        assert!(got.len() <= 4 * 8, "{}", got.len());
    }

    #[test]
    fn typo_congruent_run_is_candidate() {
        // 22822 vs training 22282 (transposition) still donates structure.
        let st = st(&[("22822-2.tyo.equinix.com", 22282)], "equinix.com");
        let got = strings(&generate(&st, &BaseConfig::default()));
        assert!(got.iter().any(|g| g == r"^(\d+)-.+\.equinix\.com$"), "{got:?}");
    }
}
