//! Phase 3 (§3.4): embed character classes.
//!
//! For every regex that matches training hostnames, inspect what each
//! punctuation-exclusion component (`[^\.]+`, `[^-]+`) or wildcard (`.+`)
//! actually matched, and specialise it:
//!
//! * when every matched substring decomposes into the *same sequence* of
//!   character-type runs (letters, digits, hyphens), the component becomes
//!   that sequence — `[^\.]+` matching `pop7`, `lns3` becomes
//!   `[a-z]+\d+` (the paper's "bare" example shows this shape);
//! * otherwise the component becomes the smallest single class covering
//!   every character seen — `[^\.]+` matching `sgw`, `me1`, `tyo`
//!   becomes `[a-z\d]+` (Figure 4, regex #5 → #6);
//! * if the matches contain characters outside the class alphabet (a `.`
//!   under `.+`), the component is left alone.
//!
//! The specialised regex is added to the pool; the original stays.

use crate::regex::{CharClass, Elem, Regex};
use crate::training::HostObs;

/// Maximum run-sequence length worth emitting; longer sequences are
/// almost certainly over-fitted to a handful of hostnames.
const MAX_SEQUENCE: usize = 4;

/// Specialises each regex in `pool` against the matched hostnames.
/// Returns only the newly created regexes.
pub fn embed_classes(pool: &[Regex], hosts: &[HostObs]) -> Vec<Regex> {
    let mut out = Vec::new();
    for r in pool {
        if let Some(s) = specialise(r, hosts) {
            if &s != r {
                out.push(s);
            }
        }
    }
    out.sort_by_key(|r| r.to_string());
    out.dedup();
    out
}

/// Builds the specialised variant of one regex, or `None` when the regex
/// matched nothing or nothing could be specialised.
pub fn specialise(regex: &Regex, hosts: &[HostObs]) -> Option<Regex> {
    let elems = regex.elems();
    // Collected matched substrings per element index.
    let mut matched: Vec<Vec<String>> = vec![Vec::new(); elems.len()];
    let mut any = false;
    // The cached program amortises the compile over the whole hostname
    // set (and across phases); compiled traces are bit-identical to the
    // interpreter's.
    let program = regex.program();
    for h in hosts {
        let Some((_, trace)) = program.find_trace(&h.hostname) else { continue };
        any = true;
        for (i, e) in elems.iter().enumerate() {
            if matches!(e, Elem::NotIn(_) | Elem::Any) {
                let (s, eo) = trace[i];
                matched[i].push(h.hostname[s..eo].to_string());
            }
        }
    }
    if !any {
        return None;
    }
    let mut changed = false;
    let mut new_elems: Vec<Elem> = Vec::new();
    for (i, e) in elems.iter().enumerate() {
        match e {
            Elem::NotIn(_) | Elem::Any if !matched[i].is_empty() => {
                match replacement(&matched[i]) {
                    Some(repl) => {
                        changed = true;
                        new_elems.extend(repl);
                    }
                    None => new_elems.push(e.clone()),
                }
            }
            _ => new_elems.push(e.clone()),
        }
    }
    if changed {
        Some(Regex::new(new_elems))
    } else {
        None
    }
}

/// A run of characters of one type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunType {
    Lower,
    Digit,
    Hyphen,
}

fn run_types(s: &str) -> Option<Vec<(RunType, usize)>> {
    let mut runs: Vec<(RunType, usize)> = Vec::new();
    for ch in s.chars() {
        let t = match ch {
            'a'..='z' => RunType::Lower,
            '0'..='9' => RunType::Digit,
            '-' => RunType::Hyphen,
            _ => return None,
        };
        match runs.last_mut() {
            Some((lt, n)) if *lt == t => *n += 1,
            _ => runs.push((t, 1)),
        }
    }
    Some(runs)
}

/// Decides the replacement elements for a component that matched
/// `samples`. `None` when no specialisation is possible.
fn replacement(samples: &[String]) -> Option<Vec<Elem>> {
    // Try the common run-type sequence first.
    if let Some(seq) = common_sequence(samples) {
        if seq.len() > 1 && seq.len() <= MAX_SEQUENCE {
            return Some(sequence_elems(&seq, samples));
        }
    }
    // Fall back to a single covering class.
    let mut class = CharClass::EMPTY;
    for s in samples {
        class = class.union(CharClass::covering(s)?);
    }
    if class.is_empty() {
        return None;
    }
    if class.digit && !class.lower && !class.hyphen {
        Some(vec![Elem::Digits])
    } else {
        Some(vec![Elem::Class(class)])
    }
}

/// The shared run-type sequence across all samples, if identical.
fn common_sequence(samples: &[String]) -> Option<Vec<RunType>> {
    let mut iter = samples.iter();
    let first = run_types(iter.next()?)?;
    let types: Vec<RunType> = first.iter().map(|&(t, _)| t).collect();
    for s in iter {
        let rt = run_types(s)?;
        if rt.len() != types.len() || rt.iter().map(|&(t, _)| t).ne(types.iter().copied()) {
            return None;
        }
    }
    Some(types)
}

/// Renders a run-type sequence as elements. Hyphen runs become a literal
/// `-` when every sample has a single hyphen there, else a hyphen class.
fn sequence_elems(seq: &[RunType], samples: &[String]) -> Vec<Elem> {
    // Compute, per position, whether all samples have run length 1.
    let mut all_len1: Vec<bool> = vec![true; seq.len()];
    for s in samples {
        if let Some(rt) = run_types(s) {
            for (i, &(_, n)) in rt.iter().enumerate() {
                if n != 1 {
                    all_len1[i] = false;
                }
            }
        }
    }
    seq.iter()
        .zip(all_len1)
        .map(|(&t, len1)| match t {
            RunType::Lower => Elem::Class(CharClass { lower: true, digit: false, hyphen: false }),
            RunType::Digit => Elem::Digits,
            RunType::Hyphen if len1 => Elem::Lit("-".to_string()),
            RunType::Hyphen => Elem::Class(CharClass { lower: false, digit: false, hyphen: true }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Observation;

    fn hosts(rows: &[(&str, u32)], suffix: &str) -> Vec<HostObs> {
        rows.iter()
            .map(|&(h, a)| HostObs::build(&Observation::new(h, [192, 0, 2, 9], a), suffix))
            .collect()
    }

    fn rx(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    #[test]
    fn figure4_regex5_becomes_regex6() {
        let hs = hosts(
            &[
                ("109.sgw.equinix.com", 109),
                ("714.os.equinix.com", 714),
                ("714.me1.equinix.com", 714),
                ("p714.sgw.equinix.com", 714),
                ("s714.sgw.equinix.com", 714),
                ("p24115.mel.equinix.com", 24115),
                ("s24115.tyo.equinix.com", 24115),
            ],
            "equinix.com",
        );
        let pool = vec![rx(r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn sequence_inference_letters_then_digits() {
        let hs = hosts(
            &[("605.pop7.example.com", 605), ("923.lns3.example.com", 923)],
            "example.com",
        );
        let pool = vec![rx(r"^(\d+)\.[^\.]+\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(\d+)\.[a-z]+\d+\.example\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn dot_under_any_blocks_specialisation() {
        let hs = hosts(&[("100-a.b.example.com", 100)], "example.com");
        let pool = vec![rx(r"^(\d+)-.+\.example\.com$")];
        // `.+` matched "a.b": contains a dot, cannot become a class.
        assert!(embed_classes(&pool, &hs).is_empty());
    }

    #[test]
    fn any_specialises_when_dot_free() {
        let hs = hosts(
            &[("100-ae1.example.com", 100), ("200-xe2.example.com", 200)],
            "example.com",
        );
        let pool = vec![rx(r"^(\d+)-.+\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(strings.iter().any(|s| s == r"^(\d+)-[a-z]+\d+\.example\.com$"), "{strings:?}");
    }

    #[test]
    fn unmatched_regex_yields_nothing() {
        let hs = hosts(&[("as100.x.example.com", 100)], "example.com");
        let pool = vec![rx(r"^zz(\d+)\.example\.com$")];
        assert!(embed_classes(&pool, &hs).is_empty());
    }

    #[test]
    fn digit_only_component_becomes_digits() {
        let hs = hosts(
            &[("a.7.as100.example.com", 100), ("b.31.as200.example.com", 200)],
            "example.com",
        );
        let pool = vec![rx(r"^[^\.]+\.[^\.]+\.as(\d+)\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^[a-z]+\.\d+\.as(\d+)\.example\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn hyphen_sequence_with_constant_hyphen() {
        // [^\.]+ matching "fr5-ix" and "dc2-ix": sequence letters, digits,
        // literal hyphen, letters.
        let hs = hosts(
            &[("100.fr5-ix.example.com", 100), ("200.dc2-ix.example.com", 200)],
            "example.com",
        );
        let pool = vec![rx(r"^(\d+)\.[^\.]+\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(\d+)\.[a-z]+\d+-[a-z]+\.example\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn mixed_structures_fall_back_to_covering_class() {
        let hs = hosts(
            &[("100.fr5-ix.example.com", 100), ("200.tyo.example.com", 200)],
            "example.com",
        );
        let pool = vec![rx(r"^(\d+)\.[^\.]+\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(\d+)\.[a-z\d-]+\.example\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn already_specialised_unchanged() {
        let hs = hosts(&[("100.abc.example.com", 100)], "example.com");
        let pool = vec![rx(r"^(\d+)\.[a-z]+\.example\.com$")];
        assert!(embed_classes(&pool, &hs).is_empty());
    }
}
