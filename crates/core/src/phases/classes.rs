//! Phase 3 (§3.4): embed character classes.
//!
//! For every regex that matches training hostnames, inspect what each
//! punctuation-exclusion component (`[^\.]+`, `[^-]+`) or wildcard (`.+`)
//! actually matched, and specialise it:
//!
//! * when every matched substring decomposes into the *same sequence* of
//!   character-type runs (letters, digits, hyphens), the component becomes
//!   that sequence — `[^\.]+` matching `pop7`, `lns3` becomes
//!   `[a-z]+\d+` (the paper's "bare" example shows this shape);
//! * otherwise the component becomes the smallest single class covering
//!   every character seen — `[^\.]+` matching `sgw`, `me1`, `tyo`
//!   becomes `[a-z\d]+` (Figure 4, regex #5 → #6);
//! * if the matches contain characters outside the class alphabet (a `.`
//!   under `.+`), the component is left alone.
//!
//! The specialised regex is added to the pool; the original stays.

use crate::regex::{CharClass, CompiledRegex, Elem, MultiMatcher, Regex};
use crate::training::HostObs;

/// Maximum run-sequence length worth emitting; longer sequences are
/// almost certainly over-fitted to a handful of hostnames.
const MAX_SEQUENCE: usize = 4;

/// Smallest matrix (`pool × hosts` cells) worth an automaton: below
/// this the [`MultiMatcher`] build costs more than the traces it
/// skips, so every pair is traced directly.
const DISPATCH_MIN_CELLS: usize = 4096;

/// Specialises each regex in `pool` against the matched hostnames.
/// Returns only the newly created regexes.
pub fn embed_classes(pool: &[Regex], hosts: &[HostObs]) -> Vec<Regex> {
    let mut out = if pool.len() * hosts.len() >= DISPATCH_MIN_CELLS {
        embed_dispatch(pool, hosts)
    } else {
        pool.iter()
            .filter_map(|r| specialise_hosts(r, hosts.iter()).filter(|s| s != r))
            .collect()
    };
    out.sort_by_cached_key(|r| r.to_string());
    out.dedup();
    out
}

/// The dispatch-filtered specialisation walk: one literal-dispatch scan
/// per host decides which regexes need to trace it at all. A host
/// missing a regex's required literal cannot match, so skipping it
/// leaves the collected substrings — and the specialised output —
/// identical to tracing every pair.
fn embed_dispatch(pool: &[Regex], hosts: &[HostObs]) -> Vec<Regex> {
    let programs: Vec<&CompiledRegex> = pool.iter().map(|r| r.program()).collect();
    let matcher = MultiMatcher::build(programs.iter().copied());
    let mut scratch = matcher.scratch();
    let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); pool.len()];
    for (hi, h) in hosts.iter().enumerate() {
        for &ri in matcher.dispatch(h.hostname.as_bytes(), &mut scratch) {
            candidates[ri as usize].push(hi as u32);
        }
    }
    let mut out = Vec::new();
    for (r, cand) in pool.iter().zip(&candidates) {
        let hs = cand.iter().map(|&hi| &hosts[hi as usize]);
        if let Some(s) = specialise_hosts(r, hs) {
            if &s != r {
                out.push(s);
            }
        }
    }
    out
}

/// Builds the specialised variant of one regex, or `None` when the regex
/// matched nothing or nothing could be specialised.
pub fn specialise(regex: &Regex, hosts: &[HostObs]) -> Option<Regex> {
    specialise_hosts(regex, hosts.iter())
}

fn specialise_hosts<'a>(
    regex: &Regex,
    hosts: impl Iterator<Item = &'a HostObs>,
) -> Option<Regex> {
    let elems = regex.elems();
    // Collected matched substrings per element index, borrowed from the
    // hostnames — specialisation only inspects them, so no copies.
    let mut matched: Vec<Vec<&'a str>> = vec![Vec::new(); elems.len()];
    let mut any = false;
    // The cached program amortises the compile over the whole hostname
    // set (and across phases); compiled traces are bit-identical to the
    // interpreter's.
    let program = regex.program();
    // Only the span buffer is needed (no captures), reused across the
    // whole hostname set — `find_trace_into` is the allocation-free
    // form of `find_trace`.
    let mut trace: Vec<(usize, usize)> = Vec::new();
    for h in hosts {
        if !program.find_trace_into(&h.hostname, &mut trace) {
            continue;
        }
        any = true;
        for (i, e) in elems.iter().enumerate() {
            if matches!(e, Elem::NotIn(_) | Elem::Any) {
                let (s, eo) = trace[i];
                matched[i].push(&h.hostname[s..eo]);
            }
        }
    }
    if !any {
        return None;
    }
    let mut changed = false;
    let mut new_elems: Vec<Elem> = Vec::new();
    for (i, e) in elems.iter().enumerate() {
        match e {
            Elem::NotIn(_) | Elem::Any if !matched[i].is_empty() => {
                match replacement(&matched[i]) {
                    Some(repl) => {
                        changed = true;
                        new_elems.extend(repl);
                    }
                    None => new_elems.push(e.clone()),
                }
            }
            _ => new_elems.push(e.clone()),
        }
    }
    if changed {
        Some(Regex::new(new_elems))
    } else {
        None
    }
}

/// Run type codes packed into [`RunSig::types`], two bits per run.
const RUN_LOWER: u32 = 0;
const RUN_DIGIT: u32 = 1;
const RUN_HYPHEN: u32 = 2;

/// Packed run decomposition of one sample: the run count, the run
/// types (two bits each, low-to-high), and a bitmask of the runs with
/// length exactly 1. `MAX_SEQUENCE` bounds the run count long before
/// either pack saturates.
#[derive(Clone, Copy)]
struct RunSig {
    n: u32,
    types: u32,
    len1: u32,
}

/// Decomposes `s` into its run signature in one allocation-free pass.
/// `None` when `s` leaves the run alphabet or needs more than `cap`
/// runs — callers compare against a first sample with at most `cap`
/// runs, so a longer decomposition can never match anyway.
fn run_sig(s: &str, cap: u32) -> Option<RunSig> {
    let mut sig = RunSig { n: 0, types: 0, len1: 0 };
    let mut prev = u32::MAX;
    let mut run_len = 0u32;
    for &b in s.as_bytes() {
        let t = match b {
            b'a'..=b'z' => RUN_LOWER,
            b'0'..=b'9' => RUN_DIGIT,
            b'-' => RUN_HYPHEN,
            _ => return None,
        };
        if t == prev {
            run_len += 1;
            continue;
        }
        if sig.n > 0 && run_len == 1 {
            sig.len1 |= 1 << (sig.n - 1);
        }
        if sig.n == cap {
            return None;
        }
        sig.types |= t << (2 * sig.n);
        sig.n += 1;
        prev = t;
        run_len = 1;
    }
    if sig.n > 0 && run_len == 1 {
        sig.len1 |= 1 << (sig.n - 1);
    }
    Some(sig)
}

/// Decides the replacement elements for a component that matched
/// `samples`. `None` when no specialisation is possible.
fn replacement(samples: &[&str]) -> Option<Vec<Elem>> {
    // Try the common run-type sequence first.
    if let Some(repl) = sequence_replacement(samples) {
        return Some(repl);
    }
    // Fall back to a single covering class.
    let mut class = CharClass::EMPTY;
    for &s in samples {
        class = class.union(CharClass::covering(s)?);
    }
    if class.is_empty() {
        return None;
    }
    if class.digit && !class.lower && !class.hyphen {
        Some(vec![Elem::Digits])
    } else {
        Some(vec![Elem::Class(class)])
    }
}

/// Replacement via the shared run-type sequence: when every sample
/// decomposes into the identical sequence of 2..=MAX_SEQUENCE runs,
/// render that sequence as elements. Hyphen runs become a literal `-`
/// when every sample has a single hyphen there, else a hyphen class.
/// One packed [`run_sig`] pass per sample covers both the sequence
/// check and the run-length-1 test.
fn sequence_replacement(samples: &[&str]) -> Option<Vec<Elem>> {
    let mut iter = samples.iter();
    let first = run_sig(iter.next()?, MAX_SEQUENCE as u32)?;
    if first.n <= 1 {
        return None;
    }
    // Per position, whether every sample's run has length 1.
    let mut len1 = first.len1;
    for &s in iter {
        let sig = run_sig(s, first.n)?;
        if sig.n != first.n || sig.types != first.types {
            return None;
        }
        len1 &= sig.len1;
    }
    Some(
        (0..first.n)
            .map(|i| match (first.types >> (2 * i)) & 3 {
                RUN_LOWER => Elem::Class(CharClass { lower: true, digit: false, hyphen: false }),
                RUN_DIGIT => Elem::Digits,
                RUN_HYPHEN if len1 >> i & 1 == 1 => Elem::Lit("-".to_string()),
                _ => Elem::Class(CharClass { lower: false, digit: false, hyphen: true }),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::Observation;

    fn hosts(rows: &[(&str, u32)], suffix: &str) -> Vec<HostObs> {
        rows.iter()
            .map(|&(h, a)| HostObs::build(&Observation::new(h, [192, 0, 2, 9], a), suffix))
            .collect()
    }

    fn rx(s: &str) -> Regex {
        Regex::parse(s).unwrap()
    }

    #[test]
    fn figure4_regex5_becomes_regex6() {
        let hs = hosts(
            &[
                ("109.sgw.equinix.com", 109),
                ("714.os.equinix.com", 714),
                ("714.me1.equinix.com", 714),
                ("p714.sgw.equinix.com", 714),
                ("s714.sgw.equinix.com", 714),
                ("p24115.mel.equinix.com", 24115),
                ("s24115.tyo.equinix.com", 24115),
            ],
            "equinix.com",
        );
        let pool = vec![rx(r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(?:p|s)?(\d+)\.[a-z\d]+\.equinix\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn sequence_inference_letters_then_digits() {
        let hs = hosts(
            &[("605.pop7.example.com", 605), ("923.lns3.example.com", 923)],
            "example.com",
        );
        let pool = vec![rx(r"^(\d+)\.[^\.]+\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(\d+)\.[a-z]+\d+\.example\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn dot_under_any_blocks_specialisation() {
        let hs = hosts(&[("100-a.b.example.com", 100)], "example.com");
        let pool = vec![rx(r"^(\d+)-.+\.example\.com$")];
        // `.+` matched "a.b": contains a dot, cannot become a class.
        assert!(embed_classes(&pool, &hs).is_empty());
    }

    #[test]
    fn any_specialises_when_dot_free() {
        let hs = hosts(
            &[("100-ae1.example.com", 100), ("200-xe2.example.com", 200)],
            "example.com",
        );
        let pool = vec![rx(r"^(\d+)-.+\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(strings.iter().any(|s| s == r"^(\d+)-[a-z]+\d+\.example\.com$"), "{strings:?}");
    }

    #[test]
    fn unmatched_regex_yields_nothing() {
        let hs = hosts(&[("as100.x.example.com", 100)], "example.com");
        let pool = vec![rx(r"^zz(\d+)\.example\.com$")];
        assert!(embed_classes(&pool, &hs).is_empty());
    }

    #[test]
    fn digit_only_component_becomes_digits() {
        let hs = hosts(
            &[("a.7.as100.example.com", 100), ("b.31.as200.example.com", 200)],
            "example.com",
        );
        let pool = vec![rx(r"^[^\.]+\.[^\.]+\.as(\d+)\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^[a-z]+\.\d+\.as(\d+)\.example\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn hyphen_sequence_with_constant_hyphen() {
        // [^\.]+ matching "fr5-ix" and "dc2-ix": sequence letters, digits,
        // literal hyphen, letters.
        let hs = hosts(
            &[("100.fr5-ix.example.com", 100), ("200.dc2-ix.example.com", 200)],
            "example.com",
        );
        let pool = vec![rx(r"^(\d+)\.[^\.]+\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(\d+)\.[a-z]+\d+-[a-z]+\.example\.com$"),
            "{strings:?}"
        );
    }

    #[test]
    fn mixed_structures_fall_back_to_covering_class() {
        let hs = hosts(
            &[("100.fr5-ix.example.com", 100), ("200.tyo.example.com", 200)],
            "example.com",
        );
        let pool = vec![rx(r"^(\d+)\.[^\.]+\.example\.com$")];
        let new = embed_classes(&pool, &hs);
        let strings: Vec<String> = new.iter().map(|r| r.to_string()).collect();
        assert!(
            strings.iter().any(|s| s == r"^(\d+)\.[a-z\d-]+\.example\.com$"),
            "{strings:?}"
        );
    }

    /// The dispatch-filtered pool walk in `embed_classes` produces the
    /// same output as specialising every regex against every host.
    #[test]
    fn dispatch_filtered_embed_equals_naive_specialise() {
        let hs = hosts(
            &[
                ("109.sgw.equinix.com", 109),
                ("p714.sgw.equinix.com", 714),
                ("100-ae1.example.com", 100),
                ("200-xe2.example.com", 200),
                ("605.pop7.example.com", 605),
                ("923.lns3.example.com", 923),
            ],
            "example.com",
        );
        let pool = vec![
            rx(r"^(?:p|s)?(\d+)\.[^\.]+\.equinix\.com$"),
            rx(r"^(\d+)-.+\.example\.com$"),
            rx(r"^(\d+)\.[^\.]+\.example\.com$"),
            rx(r"(\d+)-[^\.]+"), // literal-free: rides the fallback bucket
        ];
        let mut naive: Vec<Regex> = pool
            .iter()
            .filter_map(|r| specialise(r, &hs).filter(|s| s != r))
            .collect();
        naive.sort_by_key(|r| r.to_string());
        naive.dedup();
        // `embed_dispatch` directly: the fixture sits far below
        // `DISPATCH_MIN_CELLS`, where `embed_classes` takes the naive
        // path itself and the comparison would test nothing.
        let mut dispatched = embed_dispatch(&pool, &hs);
        dispatched.sort_by_cached_key(|r| r.to_string());
        dispatched.dedup();
        assert_eq!(dispatched, naive);
        assert_eq!(embed_classes(&pool, &hs), naive);
    }

    #[test]
    fn already_specialised_unchanged() {
        let hs = hosts(&[("100.abc.example.com", 100)], "example.com");
        let pool = vec![rx(r"^(\d+)\.[a-z]+\.example\.com$")];
        assert!(embed_classes(&pool, &hs).is_empty());
    }
}
