//! The four learning phases of §3: base regex generation, merging,
//! character-class embedding, and regex-set construction.
//!
//! Each phase grows the candidate pool (earlier candidates stay in the
//! pool and compete on ATP) — the figure-4 walkthrough in the paper shows
//! the surviving representative of each phase, not a replacement of the
//! pool. [`crate::select`] makes the final choice.

pub mod base;
pub mod classes;
pub mod merge;
pub mod sets;
