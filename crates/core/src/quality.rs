//! Ground-truth quality scoring for extraction pipelines.
//!
//! The learner's own [`crate::eval`] counts score candidate regexes
//! against *training* ASNs, which are themselves inferred and noisy.
//! This module scores a finished extractor against **ground truth** —
//! rows of (hostname, the ASN the hostname should yield, or `None`
//! when extracting anything is wrong, e.g. a stale name or a hostname
//! that carries no ASN). The simulator knows this truth exactly
//! (`hoiho-netsim`'s `EmbeddedInfo`), and the scenario quality matrix
//! (`SCENARIOS.json`) is built from these counts.
//!
//! Conventions:
//! * a row with `expected = Some(a)` scores **tp** when the extractor
//!   returns exactly `a`, **fp** on any other extraction, **fn** on no
//!   extraction;
//! * a row with `expected = None` scores **tn** on no extraction and
//!   **fp** on any extraction (extracting digits from a stale or
//!   ASN-free hostname asserts ownership that is wrong).
//!
//! Precision is therefore "of the ASNs we asserted, how many were the
//! true operator", and recall "of the hostnames that truthfully named
//! an operator, how many did we resolve" — the serve-path analogue of
//! the paper's PPV-style evaluation.

/// One ground-truth row: a hostname and the ASN it should yield.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthRow {
    /// The hostname presented to the extractor.
    pub hostname: String,
    /// The correct extraction: `Some(asn)` when the hostname truly
    /// identifies that operator, `None` when no extraction is correct.
    pub expected: Option<u32>,
}

impl TruthRow {
    /// Convenience constructor.
    pub fn new(hostname: impl Into<String>, expected: Option<u32>) -> TruthRow {
        TruthRow { hostname: hostname.into(), expected }
    }
}

/// Confusion counts of an extractor against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityCounts {
    /// Extractions that matched the expected ASN.
    pub tp: u64,
    /// Extractions that were wrong (wrong ASN, or any ASN where the
    /// truth is none).
    pub fp: u64,
    /// Expected ASNs the extractor missed.
    pub fnn: u64,
    /// Correct silences.
    pub tn: u64,
}

impl QualityCounts {
    /// Scores one row.
    pub fn observe(&mut self, expected: Option<u32>, got: Option<u32>) {
        match (expected, got) {
            (Some(e), Some(g)) if e == g => self.tp += 1,
            (_, Some(_)) => self.fp += 1,
            (Some(_), None) => self.fnn += 1,
            (None, None) => self.tn += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &QualityCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fnn += other.fnn;
        self.tn += other.tn;
    }

    /// Rows scored.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fnn + self.tn
    }

    /// tp / (tp + fp); 1.0 when nothing was asserted (an extractor
    /// that says nothing tells no lies).
    pub fn precision(&self) -> f64 {
        let asserted = self.tp + self.fp;
        if asserted == 0 {
            1.0
        } else {
            self.tp as f64 / asserted as f64
        }
    }

    /// tp / (tp + fn); 0.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let findable = self.tp + self.fnn;
        if findable == 0 {
            0.0
        } else {
            self.tp as f64 / findable as f64
        }
    }
}

/// Scores `extract` over ground-truth `rows`.
pub fn score<'a, I, F>(rows: I, mut extract: F) -> QualityCounts
where
    I: IntoIterator<Item = &'a TruthRow>,
    F: FnMut(&str) -> Option<u32>,
{
    let mut c = QualityCounts::default();
    for row in rows {
        c.observe(row.expected, extract(&row.hostname));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_cells() {
        let rows = [
            TruthRow::new("as64500.x.net", Some(64500)), // tp
            TruthRow::new("as64500.y.net", Some(64501)), // fp (wrong asn)
            TruthRow::new("stale-as1.z.net", None),      // fp (asserted on a lie)
            TruthRow::new("as7.q.net", Some(7)),         // fn (extractor silent)
            TruthRow::new("cr1.pop.net", None),          // tn
        ];
        let c = score(&rows, |h| match h {
            "as64500.x.net" | "as64500.y.net" => Some(64500),
            "stale-as1.z.net" => Some(1),
            _ => None,
        });
        assert_eq!(c, QualityCounts { tp: 1, fp: 2, fnn: 1, tn: 1 });
        assert_eq!(c.total(), 5);
        assert!((c.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn silent_extractor_has_perfect_precision_zero_recall() {
        let rows = [
            TruthRow::new("as1.a.net", Some(1)),
            TruthRow::new("cr1.b.net", None),
        ];
        let c = score(&rows, |_| None);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.tn, 1);
        assert_eq!(c.fnn, 1);
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = QualityCounts { tp: 1, fp: 2, fnn: 3, tn: 4 };
        let b = QualityCounts { tp: 10, fp: 20, fnn: 30, tn: 40 };
        a.merge(&b);
        assert_eq!(a, QualityCounts { tp: 11, fp: 22, fnn: 33, tn: 44 });
    }

    #[test]
    fn empty_rows_score_empty() {
        let c = score(&[], |_| Some(1));
        assert_eq!(c.total(), 0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
    }
}
