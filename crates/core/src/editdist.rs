//! Damerau-Levenshtein edit distance (optimal string alignment variant).
//!
//! The paper (§3.1) treats an extracted number as a possible typo of the
//! training ASN when the Damerau-Levenshtein distance between the two
//! digit strings is one — i.e. one insertion, deletion, substitution, or
//! transposition of adjacent characters (Damerau 1964; Levenshtein 1966).
//! The optimal string alignment variant (no substring may be edited twice)
//! is sufficient here because only distance one matters.

/// Computes the optimal-string-alignment Damerau-Levenshtein distance
/// between `a` and `b` over bytes.
///
/// Runs in `O(|a|·|b|)` time and `O(|b|)` space (three rolling rows).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a = a.as_bytes();
    let b = b.as_bytes();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }

    let w = b.len() + 1;
    // prev2 = row i-2, prev = row i-1, cur = row i.
    let mut prev2: Vec<usize> = vec![0; w];
    let mut prev: Vec<usize> = (0..w).collect();
    let mut cur: Vec<usize> = vec![0; w];

    for i in 1..=a.len() {
        cur[0] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (prev[j] + 1) // deletion
                .min(cur[j - 1] + 1) // insertion
                .min(prev[j - 1] + cost); // substitution
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(prev2[j - 2] + 1); // transposition
            }
            cur[j] = d;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// True when the distance between `a` and `b` is exactly one. Short
/// circuits on length difference greater than one, and rejects empty
/// inputs outright: an empty digit string is never a one-typo ASN, and
/// callers must not have to rely on upstream length guards (such as the
/// ≥3-digit rule in `apparent::congruence`) for that.
pub fn is_distance_one(a: &str, b: &str) -> bool {
    let (la, lb) = (a.len(), b.len());
    if la == 0 || lb == 0 || la.abs_diff(lb) > 1 {
        return false;
    }
    damerau_levenshtein(a, b) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert_eq!(damerau_levenshtein("15576", "15576"), 0);
        assert!(!is_distance_one("15576", "15576"));
    }

    #[test]
    fn empty_cases() {
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("", "123"), 3);
        assert_eq!(damerau_levenshtein("123", ""), 3);
        // The raw distance between "" and "1" is one, but an empty
        // digit string is never a one-typo ASN.
        assert_eq!(damerau_levenshtein("", "1"), 1);
        assert!(!is_distance_one("", "1"));
        assert!(!is_distance_one("1", ""));
        assert!(!is_distance_one("", ""));
    }

    #[test]
    fn substitution() {
        // Paper figure 3a: training 20940 vs extracted 24940.
        assert_eq!(damerau_levenshtein("20940", "24940"), 1);
        // Training 205073 vs extracted 202073.
        assert_eq!(damerau_levenshtein("205073", "202073"), 1);
    }

    #[test]
    fn deletion_and_insertion() {
        // Paper figure 3a: training 207032 vs extracted 20732.
        assert_eq!(damerau_levenshtein("207032", "20732"), 1);
        assert_eq!(damerau_levenshtein("20732", "207032"), 1);
        // Training 6057 vs extracted 605.
        assert_eq!(damerau_levenshtein("6057", "605"), 1);
    }

    #[test]
    fn transposition() {
        // Paper figure 4, hostname h: training 22282 vs extracted 22822.
        assert_eq!(damerau_levenshtein("22282", "22822"), 1);
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
    }

    #[test]
    fn transposition_not_double_counted() {
        // OSA: "ca" -> "abc" is 3 (cannot edit the transposed pair again);
        // plain DL would give 2. Distance-one behaviour is unaffected.
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
    }

    #[test]
    fn distance_two() {
        assert_eq!(damerau_levenshtein("701", "855"), 3);
        assert_eq!(damerau_levenshtein("1234", "1543"), 2);
        assert!(!is_distance_one("1234", "1543"));
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("20940", "24940"), ("6057", "605"), ("701", "855"), ("", "x")] {
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }

    #[test]
    fn length_shortcut_consistent() {
        assert!(!is_distance_one("1", "12345"));
        assert_eq!(damerau_levenshtein("1", "12345"), 4);
    }
}
