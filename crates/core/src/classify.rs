//! §4 classification of naming conventions.
//!
//! * **Good** — extracted at least three unique ASNs congruent with
//!   training ASNs, with PPV ≥ 80%.
//! * **Promising** — at least two unique congruent ASNs, PPV ≥ 50%.
//! * **Poor** — everything else.
//!
//! Good and promising NCs are *usable*. Orthogonally, an NC is *single*
//! when it extracts one unique ASN across the whole suffix — the
//! operator labels their own ASN in every hostname (Figure 2's
//! `nts.ch`), rather than annotating neighbors. The paper analyses
//! single NCs separately (108 in the January 2020 ITDK), so the flag is
//! carried alongside the class rather than folded into it.

use crate::eval::Counts;

/// Quality class of a learned convention (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NcClass {
    /// ≥3 unique congruent ASNs, PPV ≥ 80%.
    Good,
    /// ≥2 unique congruent ASNs, PPV ≥ 50%.
    Promising,
    /// The rest.
    Poor,
}

impl NcClass {
    /// Good and promising conventions are usable for inference.
    pub fn usable(self) -> bool {
        matches!(self, NcClass::Good | NcClass::Promising)
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            NcClass::Good => "good",
            NcClass::Promising => "promising",
            NcClass::Poor => "poor",
        }
    }

    /// Inverse of [`NcClass::label`], for parsing serialized models.
    pub fn parse_label(s: &str) -> Option<NcClass> {
        match s {
            "good" => Some(NcClass::Good),
            "promising" => Some(NcClass::Promising),
            "poor" => Some(NcClass::Poor),
            _ => None,
        }
    }
}

/// Classifies an NC from its evaluation counts (§4).
pub fn classify(counts: &Counts) -> NcClass {
    let uniq = counts.unique_tp_asns.len();
    let ppv = counts.ppv();
    if uniq >= 3 && ppv >= 0.8 {
        NcClass::Good
    } else if uniq >= 2 && ppv >= 0.5 {
        NcClass::Promising
    } else {
        NcClass::Poor
    }
}

/// True when the NC extracts a single unique value across the suffix —
/// the operator embeds their own ASN (Figure 2), not their neighbors'.
pub fn is_single(counts: &Counts) -> bool {
    counts.unique_extracted.len() == 1 && counts.tp > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(tp: u32, fp: u32, uniq_tp: &[u32], uniq_ex: &[u32]) -> Counts {
        Counts {
            tp,
            fp,
            fnn: 0,
            tn: 0,
            unique_tp_asns: uniq_tp.to_vec(),
            unique_extracted: uniq_ex.to_vec(),
        }
    }

    #[test]
    fn good_requires_three_unique_and_high_ppv() {
        let c = counts(10, 2, &[1, 2, 3], &[1, 2, 3]);
        assert_eq!(classify(&c), NcClass::Good);
        assert!(classify(&c).usable());
    }

    #[test]
    fn ppv_boundary_80() {
        // 8/10 = exactly 0.8 → good.
        assert_eq!(classify(&counts(8, 2, &[1, 2, 3], &[1, 2, 3])), NcClass::Good);
        // 7/10 < 0.8 but ≥ 0.5 with ≥2 unique → promising.
        assert_eq!(classify(&counts(7, 3, &[1, 2, 3], &[1, 2, 3])), NcClass::Promising);
    }

    #[test]
    fn promising_requires_two_unique_and_half_ppv() {
        assert_eq!(classify(&counts(5, 5, &[1, 2], &[1, 2])), NcClass::Promising);
        assert_eq!(classify(&counts(4, 6, &[1, 2], &[1, 2])), NcClass::Poor);
        assert!(!NcClass::Poor.usable());
    }

    #[test]
    fn single_unique_asn_cannot_be_usable() {
        let c = counts(50, 0, &[15576], &[15576]);
        assert_eq!(classify(&c), NcClass::Poor);
        assert!(is_single(&c));
    }

    #[test]
    fn single_flag_requires_one_extracted_value() {
        // Figure 2: three TPs (AS15576's own routers) plus three FPs, all
        // extracting 15576.
        let c = counts(3, 3, &[15576], &[15576]);
        assert!(is_single(&c));
        // Two distinct extracted values → not single.
        let c = counts(3, 3, &[15576], &[15576, 3356]);
        assert!(!is_single(&c));
        // No TPs at all → not single (nothing congruent).
        let c = counts(0, 3, &[], &[15576]);
        assert!(!is_single(&c));
    }

    #[test]
    fn labels() {
        assert_eq!(NcClass::Good.label(), "good");
        assert_eq!(NcClass::Promising.label(), "promising");
        assert_eq!(NcClass::Poor.label(), "poor");
    }

    #[test]
    fn parse_label_round_trips() {
        for c in [NcClass::Good, NcClass::Promising, NcClass::Poor] {
            assert_eq!(NcClass::parse_label(c.label()), Some(c));
        }
        assert_eq!(NcClass::parse_label("excellent"), None);
        assert_eq!(NcClass::parse_label(""), None);
    }
}
