//! End-to-end learning: runs the four phases plus selection and
//! classification for each suffix, with a threaded driver for whole
//! training sets.

use crate::classify::{classify, is_single, NcClass};
use crate::convention::NamingConvention;
use crate::eval::Counts;
use crate::phases::base::{self, BaseConfig};
use crate::phases::classes::embed_classes;
use crate::phases::merge::merge;
use crate::phases::sets::{build_sets_stats, SetsConfig};
use crate::select::select_best;
use crate::taxonomy::{taxonomy_of, Taxonomy};
use crate::training::SuffixTraining;

/// Tunables for the whole pipeline.
#[derive(Debug, Clone, Copy)]
pub struct LearnConfig {
    /// Base-regex generation knobs (§3.2).
    pub base: BaseConfig,
    /// Set-construction knobs (§3.5).
    pub sets: SetsConfig,
    /// Suffixes with fewer hostnames carrying apparent ASNs than this are
    /// skipped — one annotated hostname cannot establish a convention.
    pub min_apparent: usize,
    /// Worker threads for [`learn_all`]; 0 means one per available core.
    pub threads: usize,
    /// Ablation switch: run the merge phase (§3.3).
    pub enable_merge: bool,
    /// Ablation switch: run the character-class phase (§3.4).
    pub enable_classes: bool,
    /// Ablation switch: build multi-regex sets (§3.5). When off, only
    /// single-regex conventions compete.
    pub enable_sets: bool,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            base: BaseConfig::default(),
            sets: SetsConfig::default(),
            min_apparent: 2,
            threads: 0,
            enable_merge: true,
            enable_classes: true,
            enable_sets: true,
        }
    }
}

/// A learned convention with its evaluation and classification.
#[derive(Debug, Clone)]
pub struct LearnedConvention {
    /// The selected naming convention.
    pub convention: NamingConvention,
    /// Evaluation of the convention over its suffix's training data.
    pub counts: Counts,
    /// §4 quality class.
    pub class: NcClass,
    /// True when the convention extracts one unique ASN (Figure 2).
    pub single: bool,
    /// Table 1 shape taxonomy.
    pub taxonomy: Taxonomy,
    /// Number of hostnames in the suffix's training data.
    pub hostnames: usize,
}

/// Learns a naming convention for one suffix, or `None` when the suffix
/// has too few apparent ASNs or no viable regex emerges.
pub fn learn_suffix(st: &SuffixTraining, cfg: &LearnConfig) -> Option<LearnedConvention> {
    learn_suffix_traced(st, cfg, None)
}

/// [`learn_suffix`] with optional tracing: when a tracer is given, each
/// pipeline phase that runs is wrapped in a span named after it
/// (`generate`, `merge`, `classes`, `sets`, `select`), all carrying a
/// `suffix` argument and enclosed in a `learn_suffix` span. With
/// `None`, the only cost over the untraced path is a handful of
/// `Option` checks.
pub fn learn_suffix_traced(
    st: &SuffixTraining,
    cfg: &LearnConfig,
    tracer: Option<&hoiho_obs::Tracer>,
) -> Option<LearnedConvention> {
    let suffix = st.suffix.as_str();
    let span = |name: &str| tracer.map(|t| t.span(name, &[("suffix", suffix)]));
    let _outer = span("learn_suffix");
    if st.apparent_count() < cfg.min_apparent {
        return None;
    }
    // Phase 1: base regexes (§3.2).
    let mut pool = {
        let _s = span("generate");
        base::generate(st, &cfg.base)
    };
    if pool.is_empty() {
        return None;
    }
    // Phase 2: merge near-identical regexes (§3.3). New regexes join the
    // pool; originals stay and compete on ATP.
    if cfg.enable_merge {
        let _s = span("merge");
        pool.extend(merge(&pool));
        dedup(&mut pool);
    }
    // Phase 3: embed character classes (§3.4).
    if cfg.enable_classes {
        let _s = span("classes");
        pool.extend(embed_classes(&pool, &st.hosts));
        dedup(&mut pool);
    }
    // Phase 4: regex sets (§3.5), then selection (§3.6).
    let sets_cfg = if cfg.enable_sets {
        cfg.sets
    } else {
        SetsConfig { max_set_size: 1, max_starts: 0, ..cfg.sets }
    };
    let candidates = {
        // The sets span also records the workload size, so `--trace`
        // output shows what the outcome matrix amortised.
        let pool_size = pool.len().to_string();
        let host_count = st.hosts.len().to_string();
        let mut _s = tracer.map(|t| {
            t.span(
                "sets",
                &[("suffix", suffix), ("pool_size", &pool_size), ("hosts", &host_count)],
            )
        });
        let (candidates, stats) = build_sets_stats(&pool, &st.hosts, &sets_cfg);
        if let Some(g) = _s.as_mut() {
            g.arg("dispatched", &stats.dispatched.to_string());
        }
        candidates
    };
    let best = {
        let _s = span("select");
        select_best(&candidates)?
    };

    let convention = NamingConvention::new(&st.suffix, best.regexes.clone());
    let counts = best.counts.clone();
    Some(LearnedConvention {
        class: classify(&counts),
        single: is_single(&counts),
        taxonomy: taxonomy_of(&convention),
        hostnames: st.hosts.len(),
        convention,
        counts,
    })
}

/// Learns conventions for many suffixes in parallel. Results come back
/// sorted by suffix, independent of thread scheduling.
pub fn learn_all(suffixes: &[SuffixTraining], cfg: &LearnConfig) -> Vec<LearnedConvention> {
    learn_all_traced(suffixes, cfg, None)
}

/// [`learn_all`] with optional tracing. The tracer is shared by every
/// worker thread; span *order* follows scheduling, but each suffix
/// still gets its full set of phase spans (distinguishable by the
/// `suffix` argument and nested by time containment per thread).
pub fn learn_all_traced(
    suffixes: &[SuffixTraining],
    cfg: &LearnConfig,
    tracer: Option<&hoiho_obs::Tracer>,
) -> Vec<LearnedConvention> {
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.threads
    };
    let threads = threads.max(1).min(suffixes.len().max(1));

    let mut out: Vec<LearnedConvention> = if threads <= 1 || suffixes.len() <= 1 {
        suffixes.iter().filter_map(|st| learn_suffix_traced(st, cfg, tracer)).collect()
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<std::sync::Mutex<Vec<LearnedConvention>>> =
            (0..threads).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for slot in &results {
                scope.spawn(|| {
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(st) = suffixes.get(i) else { break };
                        if let Some(lc) = learn_suffix_traced(st, cfg, tracer) {
                            slot.lock().unwrap().push(lc);
                        }
                    }
                });
            }
        });
        results.into_iter().flat_map(|m| m.into_inner().unwrap()).collect()
    };
    out.sort_by(|a, b| a.convention.suffix.cmp(&b.convention.suffix));
    out
}

fn dedup(pool: &mut Vec<crate::regex::Regex>) {
    let mut seen = std::collections::BTreeSet::new();
    pool.retain(|r| seen.insert(r.to_string()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{Observation, SuffixTraining, TrainingSet};
    use hoiho_psl::PublicSuffixList;

    fn learn(rows: &[(&str, u32)]) -> Vec<LearnedConvention> {
        let mut ts = TrainingSet::new();
        for &(h, a) in rows {
            ts.push(Observation::new(h, [192, 0, 2, 3], a));
        }
        let groups = ts.by_suffix(&PublicSuffixList::builtin());
        learn_all(&groups, &LearnConfig::default())
    }

    #[test]
    fn learns_simple_as_convention() {
        let learned = learn(&[
            ("as64500.border1.example.com", 64500),
            ("as64501.border2.example.com", 64501),
            ("as64502.core3.example.com", 64502),
            ("as64503.core4.example.com", 64503),
        ]);
        assert_eq!(learned.len(), 1);
        let lc = &learned[0];
        assert_eq!(lc.convention.suffix, "example.com");
        assert_eq!(lc.class, NcClass::Good);
        assert!(!lc.single);
        assert_eq!(lc.counts.tp, 4);
        assert_eq!(lc.counts.fp, 0);
        // All training hostnames had letters-then-digits middle labels,
        // so the learned convention generalises to that shape.
        assert_eq!(lc.convention.extract("as65000.pop9.example.com"), Some(65000));
    }

    #[test]
    fn learns_figure2_single_convention() {
        let learned = learn(&[
            ("ge0-2.01.p.ost.ch.as15576.nts.ch", 15576),
            ("lo1000.01.lns.czh.ch.as15576.nts.ch", 15576),
            ("te0-0-24.01.p.bre.ch.as15576.nts.ch", 15576),
            ("01.r.cba.ch.bl.cust.as15576.nts.ch", 44879),
            ("02.r.czh.ch.sda.cust.as15576.nts.ch", 51768),
            ("01.r.cbs.ch.wwc.cust.as15576.nts.ch", 206616),
        ]);
        assert_eq!(learned.len(), 1);
        let lc = &learned[0];
        // Whatever shape wins, it must extract 15576 and be single/poor.
        assert_eq!(lc.class, NcClass::Poor);
        assert!(lc.single);
        assert_eq!(lc.counts.unique_extracted.len(), 1);
    }

    #[test]
    fn too_few_apparent_hosts_skipped() {
        let learned = learn(&[
            ("as64500.border1.example.com", 64500),
            ("plain.core.example.com", 64501),
        ]);
        assert!(learned.is_empty());
    }

    #[test]
    fn multiple_suffixes_sorted() {
        let learned = learn(&[
            ("as1000.a.zzz-example.net", 1000),
            ("as2000.b.zzz-example.net", 2000),
            ("as3000.c.zzz-example.net", 3000),
            ("as64500.border1.example.com", 64500),
            ("as64501.border2.example.com", 64501),
            ("as64502.core3.example.com", 64502),
        ]);
        assert_eq!(learned.len(), 2);
        assert_eq!(learned[0].convention.suffix, "example.com");
        assert_eq!(learned[1].convention.suffix, "zzz-example.net");
    }

    #[test]
    fn ablations_degrade_gracefully() {
        // The Figure 4 data needs merge + classes + sets to reach ATP 8;
        // each ablation must still learn *something*, with ATP no better
        // than the full pipeline.
        let rows: Vec<(&str, u32)> = vec![
            ("109.sgw.equinix.com", 109),
            ("714.os.equinix.com", 714),
            ("714.me1.equinix.com", 714),
            ("p714.sgw.equinix.com", 714),
            ("s714.sgw.equinix.com", 714),
            ("p24115.mel.equinix.com", 24115),
            ("s24115.tyo.equinix.com", 24115),
            ("22822-2.tyo.equinix.com", 22282),
            ("24482-fr5-ix.equinix.com", 24482),
            ("54827-dc5-ix2.equinix.com", 54827),
            ("55247-ch3-ix.equinix.com", 55247),
            ("8069.tyo.equinix.com", 8075),
            ("8074.hkg.equinix.com", 8075),
            ("45437-sy1-ix.equinix.com", 55923),
        ];
        let obs: Vec<Observation> =
            rows.iter().map(|&(h, a)| Observation::new(h, [192, 0, 2, 4], a)).collect();
        let st = SuffixTraining::build("equinix.com", &obs);
        let full = learn_suffix(&st, &LearnConfig::default()).unwrap();
        for ablated_cfg in [
            LearnConfig { enable_merge: false, ..LearnConfig::default() },
            LearnConfig { enable_classes: false, ..LearnConfig::default() },
            LearnConfig { enable_sets: false, ..LearnConfig::default() },
        ] {
            let ablated = learn_suffix(&st, &ablated_cfg).expect("still learns");
            assert!(
                ablated.counts.atp() <= full.counts.atp(),
                "ablation beat the full pipeline"
            );
        }
        // Without sets, the convention is a single regex and must lose
        // coverage on this two-format suffix.
        let no_sets = learn_suffix(
            &st,
            &LearnConfig { enable_sets: false, ..LearnConfig::default() },
        )
        .unwrap();
        assert_eq!(no_sets.convention.len(), 1);
        assert!(no_sets.counts.atp() < full.counts.atp());
    }

    #[test]
    fn traced_run_emits_one_span_per_phase_per_suffix() {
        use hoiho_obs::{ManualClock, Tracer};
        use std::sync::Arc;
        let mut ts = TrainingSet::new();
        for &(h, a) in &[
            ("as64500.border1.example.com", 64500u32),
            ("as64501.border2.example.com", 64501),
            ("as1000.a.zzz-example.net", 1000),
            ("as2000.b.zzz-example.net", 2000),
        ] {
            ts.push(Observation::new(h, [192, 0, 2, 3], a));
        }
        let groups = ts.by_suffix(&PublicSuffixList::builtin());
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::with_clock(clock);
        let learned =
            learn_all_traced(&groups, &LearnConfig::default(), Some(&tracer));
        assert_eq!(learned.len(), 2);
        let spans = tracer.records();
        for suffix in ["example.com", "zzz-example.net"] {
            for phase in ["learn_suffix", "generate", "merge", "classes", "sets", "select"] {
                let n = spans
                    .iter()
                    .filter(|s| {
                        s.name == phase
                            && s.args.iter().any(|(k, v)| k == "suffix" && v == suffix)
                    })
                    .count();
                assert_eq!(n, 1, "expected exactly one {phase} span for {suffix}");
            }
        }
        // The sets span also records its workload size.
        for s in spans.iter().filter(|s| s.name == "sets") {
            assert!(s.args.iter().any(|(k, v)| k == "pool_size" && v.parse::<usize>().is_ok()));
            assert!(s.args.iter().any(|(k, v)| k == "hosts" && v.parse::<usize>().is_ok()));
            assert!(s.args.iter().any(|(k, v)| k == "dispatched" && v.parse::<u64>().is_ok()));
        }
        // Untraced runs stay untraced.
        let silent = Tracer::new();
        learn_all_traced(&groups, &LearnConfig::default(), None);
        assert!(silent.is_empty());
    }

    #[test]
    fn threaded_matches_single_threaded() {
        let rows: Vec<(String, u32)> = (0..12)
            .flat_map(|d| {
                (0..4).map(move |i| {
                    (format!("as{}.r{}.domain{}-example.com", 64500 + i, i, d), 64500 + i)
                })
            })
            .collect();
        let rows_ref: Vec<(&str, u32)> = rows.iter().map(|(h, a)| (h.as_str(), *a)).collect();
        let mut ts = TrainingSet::new();
        for &(h, a) in &rows_ref {
            ts.push(Observation::new(h, [192, 0, 2, 3], a));
        }
        let groups = ts.by_suffix(&PublicSuffixList::builtin());
        let mut cfg = LearnConfig { threads: 1, ..LearnConfig::default() };
        let single = learn_all(&groups, &cfg);
        cfg.threads = 4;
        let multi = learn_all(&groups, &cfg);
        assert_eq!(single.len(), multi.len());
        for (a, b) in single.iter().zip(&multi) {
            assert_eq!(a.convention, b.convention);
            assert_eq!(a.counts, b.counts);
        }
    }
}
