//! Hostname structure: portions and subportions.
//!
//! Base-regex generation (§3.2) reasons about the *structure* a hostname
//! encodes with punctuation: the local part (everything left of the
//! domain suffix) splits on `.` into **portions**, and each portion splits
//! on `-` into **subportions**. For `te-4-0-0-85.53w.ba07.mctn.nb` the
//! portions are `te-4-0-0-85`, `53w`, `ba07`, `mctn`, `nb`, and the first
//! portion has subportions `te`, `4`, `0`, `0`, `85`.
//!
//! Spans are byte offsets into the local part so the generator can slice
//! literal context without copying.

/// One dot-delimited portion of a hostname's local part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Portion {
    /// Byte span of the portion within the local part.
    pub span: (usize, usize),
    /// Byte spans of the hyphen-delimited subportions, in order. A portion
    /// without hyphens has exactly one subportion equal to its own span.
    pub subs: Vec<(usize, usize)>,
}

/// The parsed structure of a local part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Structure {
    /// Dot-delimited portions in order of appearance.
    pub portions: Vec<Portion>,
}

/// Location of a byte span within a [`Structure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanLocation {
    /// Index into [`Structure::portions`].
    pub portion: usize,
    /// Index into that portion's `subs`.
    pub sub: usize,
}

/// Strips `.suffix` from the end of `hostname`, returning the local part.
///
/// Returns `None` when the hostname *is* the suffix (no local part) or
/// does not end with the suffix at a label boundary.
pub fn local_part<'a>(hostname: &'a str, suffix: &str) -> Option<&'a str> {
    if hostname.len() <= suffix.len() + 1 {
        return None;
    }
    let cut = hostname.len() - suffix.len();
    if !hostname[cut..].eq_ignore_ascii_case(suffix) {
        return None;
    }
    if hostname.as_bytes()[cut - 1] != b'.' {
        return None;
    }
    Some(&hostname[..cut - 1])
}

/// Parses the portion/subportion structure of a local part.
///
/// Empty portions and subportions (consecutive punctuation, leading or
/// trailing punctuation) produce empty spans; the generator treats those
/// hostnames as irregular and skips them via [`Structure::is_regular`].
pub fn structure_of(local: &str) -> Structure {
    let mut portions = Vec::new();
    let mut pstart = 0usize;
    let bytes = local.as_bytes();
    for i in 0..=bytes.len() {
        if i == bytes.len() || bytes[i] == b'.' {
            portions.push(parse_portion(local, pstart, i));
            pstart = i + 1;
        }
    }
    Structure { portions }
}

#[allow(clippy::needless_range_loop)] // the index marks split points, not items
fn parse_portion(local: &str, start: usize, end: usize) -> Portion {
    let bytes = local.as_bytes();
    let mut subs = Vec::new();
    let mut sstart = start;
    for i in start..=end {
        if i == end || bytes[i] == b'-' {
            subs.push((sstart, i));
            sstart = i + 1;
        }
    }
    Portion { span: (start, end), subs }
}

impl Structure {
    /// True when every portion and subportion is non-empty — i.e. no
    /// leading/trailing/doubled punctuation anywhere.
    pub fn is_regular(&self) -> bool {
        self.portions
            .iter()
            .all(|p| p.span.0 < p.span.1 && p.subs.iter().all(|&(s, e)| s < e))
    }

    /// Finds the portion and subportion containing the byte span
    /// `[start, end)`, which must fall entirely within one subportion.
    pub fn locate(&self, start: usize, end: usize) -> Option<SpanLocation> {
        for (pi, p) in self.portions.iter().enumerate() {
            if start >= p.span.0 && end <= p.span.1 {
                for (si, &(s, e)) in p.subs.iter().enumerate() {
                    if start >= s && end <= e {
                        return Some(SpanLocation { portion: pi, sub: si });
                    }
                }
                return None; // spans a hyphen inside the portion
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_part_strips_suffix() {
        assert_eq!(local_part("p714.sgw.equinix.com", "equinix.com"), Some("p714.sgw"));
        assert_eq!(local_part("equinix.com", "equinix.com"), None);
        assert_eq!(local_part("x.other.com", "equinix.com"), None);
        // Suffix must align on a label boundary.
        assert_eq!(local_part("xequinix.com", "equinix.com"), None);
        assert_eq!(local_part("a.xequinix.com", "equinix.com"), None);
    }

    #[test]
    fn structure_portions_and_subs() {
        let s = structure_of("te-4-0-0-85.53w.ba07");
        assert_eq!(s.portions.len(), 3);
        assert_eq!(s.portions[0].span, (0, 11));
        assert_eq!(
            s.portions[0].subs,
            vec![(0, 2), (3, 4), (5, 6), (7, 8), (9, 11)]
        );
        assert_eq!(s.portions[1].span, (12, 15));
        assert_eq!(s.portions[1].subs, vec![(12, 15)]);
        assert!(s.is_regular());
    }

    #[test]
    fn irregular_structures_detected() {
        assert!(!structure_of("a..b").is_regular());
        assert!(!structure_of("a.-b").is_regular());
        assert!(!structure_of("-a.b").is_regular());
        assert!(!structure_of("a.b-").is_regular());
        assert!(!structure_of("").is_regular());
        assert!(structure_of("a").is_regular());
    }

    #[test]
    fn locate_finds_subportion() {
        let local = "mlg4bras1-be127-605";
        let s = structure_of(local);
        // The "605" span.
        let loc = s.locate(16, 19).unwrap();
        assert_eq!(loc, SpanLocation { portion: 0, sub: 2 });
        assert_eq!(&local[s.portions[0].subs[2].0..s.portions[0].subs[2].1], "605");
        // A span crossing a hyphen cannot be located.
        assert_eq!(s.locate(8, 12), None);
        // Out of range.
        assert_eq!(s.locate(19, 25), None);
    }

    #[test]
    fn single_portion_no_hyphen() {
        let s = structure_of("as15576");
        assert_eq!(s.portions.len(), 1);
        assert_eq!(s.portions[0].subs, vec![(0, 7)]);
    }
}
