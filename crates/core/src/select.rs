//! Phase 5 (§3.6): select the best naming convention.
//!
//! Candidates are ranked by ATP; the top candidate is the provisional
//! best, even if a lower-ranked regex had better PPV. Then lower-ranked
//! candidates expressed in *fewer* regexes are preferred when they match
//! at least as many hostnames, have at least as many TPs, and at most one
//! additional FP — fewer regexes mean less opportunity for the set to be
//! over-fitted to the training data.

use crate::phases::sets::CandidateNc;

/// Picks the best convention from ranked candidates (as produced by
/// [`crate::phases::sets::build_sets`]). Returns `None` on an empty
/// candidate list.
pub fn select_best(candidates: &[CandidateNc]) -> Option<&CandidateNc> {
    let mut iter = candidates.iter();
    let mut best = iter.next()?;
    for c in iter {
        if c.regexes.len() < best.regexes.len()
            && c.counts.matched() >= best.counts.matched()
            && c.counts.tp >= best.counts.tp
            && c.counts.fp <= best.counts.fp + 1
        {
            best = c;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Counts;
    use crate::regex::Regex;

    fn cand(regexes: &[&str], tp: u32, fp: u32, fnn: u32) -> CandidateNc {
        CandidateNc {
            regexes: regexes.iter().map(|s| Regex::parse(s).unwrap()).collect(),
            counts: Counts { tp, fp, fnn, ..Counts::default() },
        }
    }

    #[test]
    fn empty_candidates() {
        assert!(select_best(&[]).is_none());
    }

    #[test]
    fn top_atp_wins_by_default() {
        let cands = vec![
            cand(&[r"^a(\d+)\.x\.com$", r"^b(\d+)\.x\.com$"], 10, 0, 0),
            cand(&[r"^c(\d+)\.x\.com$"], 5, 0, 5),
        ];
        let best = select_best(&cands).unwrap();
        assert_eq!(best.regexes.len(), 2);
    }

    #[test]
    fn smaller_nc_preferred_when_close() {
        // Two-regex NC: 10 TP, 1 FP (ATP 9). One-regex NC: 10 TP, 2 FP
        // (ATP 8) — matches as many hostnames (12 ≥ 11), same TPs, one
        // extra FP: preferred for its simplicity.
        let cands = vec![
            cand(&[r"^a(\d+)\.x\.com$", r"^b(\d+)\.x\.com$"], 10, 1, 0),
            cand(&[r"^c(\d+)\.x\.com$"], 10, 2, 0),
        ];
        let best = select_best(&cands).unwrap();
        assert_eq!(best.regexes.len(), 1);
    }

    #[test]
    fn smaller_nc_rejected_when_fp_gap_large() {
        let cands = vec![
            cand(&[r"^a(\d+)\.x\.com$", r"^b(\d+)\.x\.com$"], 10, 0, 0),
            cand(&[r"^c(\d+)\.x\.com$"], 10, 2, 0),
        ];
        let best = select_best(&cands).unwrap();
        assert_eq!(best.regexes.len(), 2);
    }

    #[test]
    fn smaller_nc_rejected_when_fewer_tps() {
        let cands = vec![
            cand(&[r"^a(\d+)\.x\.com$", r"^b(\d+)\.x\.com$"], 10, 0, 0),
            cand(&[r"^c(\d+)\.x\.com$"], 9, 1, 1),
        ];
        let best = select_best(&cands).unwrap();
        assert_eq!(best.regexes.len(), 2);
    }

    #[test]
    fn preference_chains_to_even_smaller() {
        let cands = vec![
            cand(&[r"^a(\d+)\.x$", r"^b(\d+)\.x$", r"^c(\d+)\.x$"], 10, 0, 0),
            cand(&[r"^d(\d+)\.x$", r"^e(\d+)\.x$"], 10, 1, 0),
            cand(&[r"^f(\d+)\.x$"], 10, 2, 0),
        ];
        // Three → two (one extra FP, same TP) → the single-regex NC has
        // two FPs more than the *current* best (the two-regex NC has 1,
        // single has 2 → within one extra FP of it). Chain applies.
        let best = select_best(&cands).unwrap();
        assert_eq!(best.regexes.len(), 1);
    }
}
